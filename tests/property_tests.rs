//! Property-based tests (proptest) over the core data structures and
//! invariants that every experiment relies on.

use nettrace::{
    aggregate_flows, netflow, pcap, AggregationConfig, FiveTuple, FlowRecord, PacketRecord,
    PacketTrace, Protocol, TrafficLabel,
};
use proptest::prelude::*;

fn arb_protocol() -> impl Strategy<Value = Protocol> {
    prop_oneof![
        Just(Protocol::Tcp),
        Just(Protocol::Udp),
        Just(Protocol::Icmp),
        (0u8..=255).prop_map(Protocol::from_number),
    ]
}

fn arb_tuple() -> impl Strategy<Value = FiveTuple> {
    (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>(), arb_protocol()).prop_map(
        |(s, d, sp, dp, pr)| {
            // Port-less protocols carry zero ports by convention.
            if pr.has_ports() {
                FiveTuple::new(s, d, sp, dp, pr)
            } else {
                FiveTuple::new(s, d, 0, 0, pr)
            }
        },
    )
}

fn arb_packet() -> impl Strategy<Value = PacketRecord> {
    (arb_tuple(), 0u64..10_000_000_000, 20u16..=9_000).prop_map(|(ft, ts, len)| {
        PacketRecord::new(ts, ft, len)
    })
}

fn arb_flow() -> impl Strategy<Value = FlowRecord> {
    (
        arb_tuple(),
        0.0f64..1e9,
        0.0f64..1e7,
        1u64..1_000_000,
        1u64..1_000_000_000,
        prop_oneof![
            Just(None),
            Just(Some(TrafficLabel::Benign)),
            (0usize..10).prop_map(|i| Some(TrafficLabel::Attack(nettrace::AttackType::ALL[i]))),
        ],
    )
        .prop_map(|(ft, start, dur, pkts, bytes, label)| FlowRecord {
            five_tuple: ft,
            start_ms: (start * 1000.0).round() / 1000.0, // CSV keeps 3 decimals
            duration_ms: (dur * 1000.0).round() / 1000.0,
            packets: pkts,
            bytes,
            label,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pcap_round_trips_arbitrary_packets(packets in prop::collection::vec(arb_packet(), 1..50)) {
        let trace = PacketTrace::from_records(packets);
        let bytes = pcap::write_pcap(&trace);
        let back = pcap::read_pcap(&bytes).expect("own output parses");
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn pcap_headers_always_have_valid_checksums(p in arb_packet()) {
        let h = nettrace::ipv4::Ipv4Header::from_record(&p);
        prop_assert!(h.checksum_valid());
        let parsed = nettrace::ipv4::Ipv4Header::parse(&h.to_bytes()).unwrap();
        prop_assert_eq!(parsed, h);
    }

    #[test]
    fn netflow_csv_round_trips_arbitrary_flows(flows in prop::collection::vec(arb_flow(), 1..50)) {
        let trace = nettrace::FlowTrace::from_records(flows);
        let csv = netflow::write_netflow_csv(&trace);
        let back = netflow::read_netflow_csv(&csv).expect("own output parses");
        prop_assert_eq!(back.len(), trace.len());
        for (a, b) in back.flows.iter().zip(&trace.flows) {
            prop_assert_eq!(a.five_tuple, b.five_tuple);
            prop_assert_eq!(a.packets, b.packets);
            prop_assert_eq!(a.bytes, b.bytes);
            prop_assert_eq!(a.label, b.label);
            prop_assert!((a.start_ms - b.start_ms).abs() < 1e-3);
        }
    }

    #[test]
    fn aggregation_conserves_packets_and_bytes(packets in prop::collection::vec(arb_packet(), 1..100)) {
        let trace = PacketTrace::from_records(packets);
        let flows = aggregate_flows(&trace, AggregationConfig::default());
        let total_bytes: u64 = trace.packets.iter().map(|p| p.packet_len as u64).sum();
        prop_assert_eq!(flows.total_packets(), trace.len() as u64);
        prop_assert_eq!(flows.total_bytes(), total_bytes);
        // Every flow key existed in the packet trace.
        let keys: std::collections::HashSet<FiveTuple> =
            trace.packets.iter().map(|p| p.five_tuple).collect();
        prop_assert!(flows.flows.iter().all(|f| keys.contains(&f.five_tuple)));
    }

    #[test]
    fn emd_is_a_metric_on_samples(
        a in prop::collection::vec(-1e6f64..1e6, 1..60),
        b in prop::collection::vec(-1e6f64..1e6, 1..60),
        c in prop::collection::vec(-1e6f64..1e6, 1..60),
    ) {
        use distmetrics::emd_1d;
        let dab = emd_1d(&a, &b);
        prop_assert!((dab - emd_1d(&b, &a)).abs() < 1e-6 * (1.0 + dab), "symmetry");
        prop_assert!(emd_1d(&a, &a) < 1e-9, "identity");
        let dac = emd_1d(&a, &c);
        let dcb = emd_1d(&c, &b);
        prop_assert!(dac <= dab + dcb + 1e-6 * (1.0 + dab + dcb), "triangle");
    }

    #[test]
    fn jsd_is_symmetric_and_bounded(
        a in prop::collection::vec(0u16..50, 1..100),
        b in prop::collection::vec(0u16..50, 1..100),
    ) {
        use distmetrics::jsd_from_samples;
        let d = jsd_from_samples(&a, &b);
        prop_assert!((0.0..=2.0f64.ln() + 1e-12).contains(&d));
        prop_assert!((d - jsd_from_samples(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn bit_codec_round_trips_any_value(v in any::<u32>()) {
        let c = fieldcodec::BitCodec::ipv4();
        prop_assert_eq!(c.decode(&c.encode(v as u64)), v as u64);
    }

    #[test]
    fn continuous_codec_round_trips_within_range(
        samples in prop::collection::vec(0.0f64..1e8, 2..50),
        log in any::<bool>(),
    ) {
        let codec = fieldcodec::ContinuousCodec::fit(&samples, log);
        for &x in &samples {
            let y = codec.decode(codec.encode(x));
            // f32 quantization over the fitted range bounds the error.
            let (lo, hi) = codec.range();
            let scale = if log { (1.0 + x).max(1.0) } else { (hi - lo).max(1.0) };
            prop_assert!((y - x).abs() <= scale * 1e-3 + 1e-6, "{} -> {}", x, y);
        }
    }

    #[test]
    fn validity_tests_accept_well_formed_flows(
        pkts in 1u64..1000,
        per_pkt in 40u64..1500,
        sp in 1024u16..65535,
    ) {
        // A TCP flow with sane per-packet size always passes Test 2.
        let ft = FiveTuple::new(0x0a000001, 0x0a000002, sp, 443, Protocol::Tcp);
        let f = FlowRecord::new(ft, 0.0, 1.0, pkts, pkts * per_pkt);
        prop_assert!(nettrace::validity::test2_bytes_packets(&f));
        prop_assert!(nettrace::validity::test1_ip_validity(ft.src_ip, ft.dst_ip));
        prop_assert!(nettrace::validity::test3_port_protocol(sp, 443, Protocol::Tcp));
    }

    #[test]
    fn spearman_is_invariant_to_monotone_transforms(
        xs in prop::collection::vec(-100.0f64..100.0, 3..30),
    ) {
        use distmetrics::spearman_rank_correlation;
        // Skip degenerate all-equal vectors.
        let distinct = xs.iter().any(|&x| x != xs[0]);
        prop_assume!(distinct);
        // x³ + 2x is strictly monotone and never saturates into ties
        // (unlike exp/tanh on wide inputs).
        let ys: Vec<f64> = xs.iter().map(|&x| x * x * x + 2.0 * x).collect();
        let rho = spearman_rank_correlation(&xs, &ys).unwrap();
        prop_assert!((rho - 1.0).abs() < 1e-9, "monotone map preserves ranks: {}", rho);
    }
}
