//! Cross-crate integration tests: the full NetShare pipeline from dataset
//! simulation through training, generation, fidelity scoring, and
//! serialization.

use distmetrics::{fidelity_flow, fidelity_packet};
use netshare::{postprocess, NetShare, NetShareConfig};
use nettrace::{netflow, pcap, FiveTuple, FlowRecord, FlowTrace, Protocol};
use rand::prelude::*;
use trace_synth::{generate_flows, generate_packets, DatasetKind};

fn tiny_cfg(seed: u64) -> NetShareConfig {
    let mut cfg = NetShareConfig::fast();
    cfg.n_chunks = 2;
    cfg.seed_steps = 40;
    cfg.finetune_steps = 10;
    cfg.ip2vec_public_packets = 1_500;
    cfg.seed = seed;
    cfg
}

/// A garbage trace: uniformly random fields, no structure at all.
fn random_flow_trace(n: usize, seed: u64) -> FlowTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    FlowTrace::from_records(
        (0..n)
            .map(|_| {
                FlowRecord::new(
                    FiveTuple::new(
                        rng.gen(),
                        rng.gen(),
                        rng.gen(),
                        rng.gen(),
                        Protocol::from_number(rng.gen()),
                    ),
                    rng.gen_range(0.0..1e6),
                    rng.gen_range(0.0..1e5),
                    rng.gen_range(1..1_000_000),
                    rng.gen_range(1..100_000_000),
                )
            })
            .collect(),
    )
}

#[test]
fn netshare_beats_random_garbage_on_fidelity() {
    let real = generate_flows(DatasetKind::Ugr16, 1_500, 1);
    let mut model = NetShare::fit_flows(&real, &tiny_cfg(2)).unwrap();
    let synth = model.generate_flows(1_500);
    let garbage = random_flow_trace(1_500, 3);

    let synth_report = fidelity_flow(&real, &synth);
    let garbage_report = fidelity_flow(&real, &garbage);
    assert!(
        synth_report.mean_jsd() < garbage_report.mean_jsd(),
        "NetShare mean JSD {} must beat garbage {}",
        synth_report.mean_jsd(),
        garbage_report.mean_jsd()
    );
}

#[test]
fn generated_flows_survive_netflow_round_trip() {
    let real = generate_flows(DatasetKind::Cidds, 1_000, 4);
    let mut cfg = tiny_cfg(5);
    cfg.with_labels = true;
    let mut model = NetShare::fit_flows(&real, &cfg).unwrap();
    let synth = model.generate_flows(500);
    let csv = postprocess::to_netflow_csv(&synth);
    let back = netflow::read_netflow_csv(&csv).expect("self-parse");
    assert_eq!(back.len(), synth.len());
}

#[test]
fn generated_packets_survive_pcap_round_trip_with_valid_checksums() {
    let real = generate_packets(DatasetKind::Dc, 1_000, 6);
    let mut model = NetShare::fit_packets(&real, &tiny_cfg(7)).unwrap();
    let synth = model.generate_packets(400);
    let bytes = postprocess::to_pcap_bytes(&synth);
    let back = pcap::read_pcap(&bytes).expect("self-parse");
    assert_eq!(back.len(), synth.len());
    // Spot-check the first IPv4 header's checksum on the wire.
    let ip = nettrace::ipv4::Ipv4Header::parse(&bytes[40..]).unwrap();
    assert!(ip.checksum_valid(), "post-processing must regenerate checksums");
}

#[test]
fn synthetic_trace_has_multi_record_tuples() {
    // The headline structural property (Fig. 1): NetShare's sequence
    // model produces tuples with multiple records.
    let real = generate_packets(DatasetKind::Caida, 1_500, 8);
    let mut model = NetShare::fit_packets(&real, &tiny_cfg(9)).unwrap();
    let synth = model.generate_packets(1_000);
    let multi = synth
        .group_by_five_tuple()
        .values()
        .filter(|v| v.len() > 1)
        .count();
    assert!(multi > 0, "NetShare must generate multi-packet flows");
}

#[test]
fn ip_transform_plus_csv_round_trip_preserves_structure() {
    let real = generate_flows(DatasetKind::Ugr16, 800, 10);
    let mut model = NetShare::fit_flows(&real, &tiny_cfg(11)).unwrap();
    let mut synth = model.generate_flows(300);
    let before_tuples = synth.unique_flows();
    postprocess::transform_ips_flow(
        &mut synth,
        postprocess::DEFAULT_PRIVATE_BASE,
        postprocess::DEFAULT_PRIVATE_PREFIX,
        99,
    );
    // Identity structure approximately preserved (hash collisions only).
    assert!(synth.unique_flows() as f64 > before_tuples as f64 * 0.95);
    assert!(synth.flows.iter().all(|f| f.five_tuple.src_ip >> 24 == 10));
}

#[test]
fn packet_fidelity_report_has_all_fields() {
    let real = generate_packets(DatasetKind::Ca, 800, 12);
    let mut model = NetShare::fit_packets(&real, &tiny_cfg(13)).unwrap();
    let synth = model.generate_packets(400);
    let r = fidelity_packet(&real, &synth);
    assert_eq!(r.jsd.len(), 5);
    assert_eq!(r.emd.len(), 3);
    assert!(r.jsd.iter().all(|(_, v)| v.is_finite()));
    assert!(r.emd.iter().all(|(_, v)| v.is_finite()));
}
