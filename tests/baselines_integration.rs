//! Integration tests of the six baseline generators against the dataset
//! simulators — each must fit, generate valid records, and exhibit its
//! paper-documented structural signature.

use baselines::{
    ctgan::CtGanPacket, CtGan, EWganGp, FlowSynthesizer, FlowWgan, PacGan, PacketCGan,
    PacketSynthesizer, Stan,
};
use trace_synth::{generate_flows, generate_packets, DatasetKind};

const N: usize = 600;
const STEPS: usize = 30;

#[test]
fn all_flow_baselines_run_on_all_flow_datasets() {
    for kind in DatasetKind::FLOW {
        let real = generate_flows(kind, N, 1);
        let mut models: Vec<Box<dyn FlowSynthesizer>> = vec![
            Box::new(CtGan::fit_flows(&real, STEPS, 2)),
            Box::new(Stan::fit_flows(&real, STEPS, 3)),
            Box::new(EWganGp::fit_flows(&real, STEPS, 4)),
        ];
        for m in models.iter_mut() {
            let synth = m.generate_flows(200);
            assert_eq!(synth.len(), 200, "{} on {}", m.name(), kind.name());
            assert!(
                synth.flows.iter().all(|f| f.packets >= 1 && f.bytes >= 1),
                "{} on {} produced empty flows",
                m.name(),
                kind.name()
            );
            assert!(synth
                .flows
                .iter()
                .all(|f| f.duration_ms.is_finite() && f.start_ms.is_finite()));
        }
    }
}

#[test]
fn all_packet_baselines_run_on_all_packet_datasets() {
    for kind in DatasetKind::PACKET {
        let real = generate_packets(kind, N, 5);
        let mut models: Vec<Box<dyn PacketSynthesizer>> = vec![
            Box::new(CtGanPacket::fit_packets(&real, STEPS, 6)),
            Box::new(PacGan::fit_packets(&real, STEPS, 7)),
            Box::new(PacketCGan::fit_packets(&real, STEPS, 8)),
            Box::new(FlowWgan::fit_packets(&real, STEPS, 9)),
        ];
        for m in models.iter_mut() {
            let synth = m.generate_packets(200);
            assert_eq!(synth.len(), 200, "{} on {}", m.name(), kind.name());
            assert!(
                synth.packets.iter().all(|p| p.packet_len >= 20),
                "{} on {} produced sub-IP-header packets",
                m.name(),
                kind.name()
            );
        }
    }
}

#[test]
fn packet_baselines_exhibit_the_fig1b_limitation() {
    // Paper C1: record-per-row baselines essentially never produce
    // multi-packet flows.
    let real = generate_packets(DatasetKind::Caida, N, 10);
    let mut models: Vec<Box<dyn PacketSynthesizer>> = vec![
        Box::new(PacGan::fit_packets(&real, STEPS, 11)),
        Box::new(PacketCGan::fit_packets(&real, STEPS, 12)),
        Box::new(FlowWgan::fit_packets(&real, STEPS, 13)),
    ];
    let real_multi_frac = {
        let g = real.group_by_five_tuple();
        g.values().filter(|v| v.len() > 1).count() as f64 / g.len() as f64
    };
    assert!(real_multi_frac > 0.3, "real trace has multi-packet flows");
    for m in models.iter_mut() {
        let synth = m.generate_packets(400);
        let g = synth.group_by_five_tuple();
        let frac = g.values().filter(|v| v.len() > 1).count() as f64 / g.len().max(1) as f64;
        assert!(
            frac < real_multi_frac / 2.0,
            "{} unexpectedly produced many multi-packet flows ({frac} vs real {real_multi_frac})",
            m.name()
        );
    }
}

#[test]
fn stan_only_emits_training_hosts() {
    let real = generate_flows(DatasetKind::Ton, N, 14);
    let mut stan = Stan::fit_flows(&real, STEPS, 15);
    let synth = stan.generate_flows(300);
    let hosts: std::collections::HashSet<u32> =
        real.flows.iter().map(|f| f.five_tuple.src_ip).collect();
    assert!(synth
        .flows
        .iter()
        .all(|f| hosts.contains(&f.five_tuple.src_ip)));
}
