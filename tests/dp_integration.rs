//! Integration tests of the differential-privacy path: DP-SGD training,
//! RDP accounting, and the public-pretraining recipe.

use netshare::{DpOptions, DpPretrainSource, NetShare, NetShareConfig};
use privacy::compute_epsilon;
use trace_synth::{generate_flows, DatasetKind};

fn dp_cfg(sigma: f32, pretrain: usize, seed: u64) -> NetShareConfig {
    let mut cfg = NetShareConfig::fast();
    cfg.n_chunks = 2;
    cfg.seed_steps = 30;
    cfg.finetune_steps = 8;
    cfg.ip2vec_public_packets = 1_500;
    cfg.seed = seed;
    cfg.dp = Some(DpOptions {
        noise_multiplier: sigma,
        clip_norm: 1.0,
        delta: 1e-5,
        public_pretrain_steps: pretrain,
        pretrain_source: DpPretrainSource::SameDomain,
    });
    cfg
}

#[test]
fn more_noise_means_smaller_epsilon() {
    let real = generate_flows(DatasetKind::Ugr16, 800, 1);
    let low_noise = NetShare::fit_flows(&real, &dp_cfg(0.6, 5, 2)).unwrap();
    let high_noise = NetShare::fit_flows(&real, &dp_cfg(2.5, 5, 3)).unwrap();
    let (e_low, e_high) = (
        low_noise.epsilon().unwrap(),
        high_noise.epsilon().unwrap(),
    );
    assert!(
        e_high < e_low,
        "σ=2.5 must give smaller ε than σ=0.6: {e_high} vs {e_low}"
    );
}

#[test]
fn accountant_matches_pipeline_inputs() {
    // ε reported by the pipeline equals the max over per-chunk accountant
    // calls (parallel composition over disjoint chunks).
    let real = generate_flows(DatasetKind::Ugr16, 800, 4);
    let cfg = dp_cfg(1.0, 5, 5);
    let model = NetShare::fit_flows(&real, &cfg).unwrap();
    let eps = model.epsilon().unwrap();
    // Steps per chunk: finetune_steps × n_critic; batch 24 of ~chunk-sized
    // datasets. Recompute a bound with q=1 (worst case) and check the
    // pipeline ε is below it.
    let dp = cfg.dp.unwrap();
    let steps = (cfg.finetune_steps * 2) as u64; // n_critic = 2 in fast()
    let upper = compute_epsilon(1.0, dp.noise_multiplier as f64, steps, dp.delta);
    assert!(
        eps <= upper + 1e-9,
        "pipeline ε {eps} must be ≤ the q=1 bound {upper}"
    );
    assert!(eps > 0.0);
}

#[test]
fn dp_training_still_generates_valid_traces() {
    let real = generate_flows(DatasetKind::Ugr16, 800, 6);
    let mut model = NetShare::fit_flows(&real, &dp_cfg(1.5, 10, 7)).unwrap();
    let synth = model.generate_flows(300);
    assert_eq!(synth.len(), 300);
    assert!(synth.flows.iter().all(|f| f.packets >= 1));
    let r = nettrace::validity::check_flow_trace(&synth);
    assert!(r.test1 > 0.5, "DP output should still be mostly valid: {}", r.test1);
}

#[test]
fn pretrain_source_changes_the_model() {
    let real = generate_flows(DatasetKind::Ugr16, 600, 8);
    let mut same_cfg = dp_cfg(1.0, 15, 9);
    let mut diff_cfg = same_cfg.clone();
    if let Some(dp) = diff_cfg.dp.as_mut() {
        dp.pretrain_source = DpPretrainSource::DifferentDomain;
    }
    let mut same = NetShare::fit_flows(&real, &same_cfg).unwrap();
    let mut diff = NetShare::fit_flows(&real, &diff_cfg).unwrap();
    let a = same.generate_flows(200);
    let b = diff.generate_flows(200);
    assert_ne!(a, b, "different public sources must yield different models");
    // keep cfg mutable usage explicit
    same_cfg.seed += 1;
}
