#!/bin/bash
# Runs every paper table/figure experiment, logging to results/.
set -u
cd "$(dirname "$0")"
export NETSHARE_N="${NETSHARE_N:-4000}"
export NETSHARE_STEPS="${NETSHARE_STEPS:-200}"
mkdir -p results
BINS="fig1_flow_records fig2_large_support fig3_service_ports fig4_scalability \
fig10_fidelity fig16_17_more_fidelity fig12_prediction tab3_rank_prediction \
fig13_sketches fig14_anomaly tab6_7_consistency tab2_encoding_ablation \
ablation_reformulation ablation_chunks overfitting_check fig5_privacy fig15_dp_cdfs"
for bin in $BINS; do
  echo "===== $bin ($(date +%T)) ====="
  ./target/release/$bin || echo "!! $bin failed with exit $?"
done
echo "===== all experiments done ($(date +%T)) ====="
