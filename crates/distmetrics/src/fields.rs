//! Named field-distribution extractors (paper §6.2, Finding 1).
//!
//! NetFlow metrics: SA, DA, SP, DP, PR (categorical) and TS, TD, PKT, BYT
//! (continuous). PCAP metrics: SA, DA, SP, DP, PR (categorical) and PS,
//! PAT, FS (continuous).

use nettrace::{FlowTrace, PacketTrace};
use std::collections::HashMap;

/// Categorical field names for flow traces.
pub const FLOW_CATEGORICAL: [&str; 5] = ["SA", "DA", "SP", "DP", "PR"];
/// Continuous field names for flow traces.
pub const FLOW_CONTINUOUS: [&str; 4] = ["TS", "TD", "PKT", "BYT"];
/// Categorical field names for packet traces.
pub const PACKET_CATEGORICAL: [&str; 5] = ["SA", "DA", "SP", "DP", "PR"];
/// Continuous field names for packet traces.
pub const PACKET_CONTINUOUS: [&str; 3] = ["PS", "PAT", "FS"];

/// Count map of a categorical field over a flow trace.
///
/// SA/DA return address counts (to be compared *rank-frequency*, per the
/// paper's "popularity rank" framing); SP/DP return port counts; PR
/// protocol counts.
///
/// # Panics
/// Panics on an unknown field name.
pub fn flow_categorical(trace: &FlowTrace, field: &str) -> HashMap<u64, u64> {
    let mut counts = HashMap::new();
    for f in &trace.flows {
        let key: u64 = match field {
            "SA" => f.five_tuple.src_ip as u64,
            "DA" => f.five_tuple.dst_ip as u64,
            "SP" => f.five_tuple.src_port as u64,
            "DP" => f.five_tuple.dst_port as u64,
            "PR" => f.five_tuple.proto.number() as u64,
            other => panic!("unknown flow categorical field {other}"), // lint: allow(panic-in-lib) field names come from the fixed catalogue above (lint: allow(panic-in-lib) field names come from the fixed catalogue above)
        };
        *counts.entry(key).or_insert(0) += 1;
    }
    counts
}

/// Sample vector of a continuous field over a flow trace.
///
/// # Panics
/// Panics on an unknown field name.
pub fn flow_continuous(trace: &FlowTrace, field: &str) -> Vec<f64> {
    trace
        .flows
        .iter()
        .map(|f| match field {
            "TS" => f.start_ms,
            "TD" => f.duration_ms,
            "PKT" => f.packets as f64,
            "BYT" => f.bytes as f64,
            other => panic!("unknown flow continuous field {other}"), // lint: allow(panic-in-lib) field names come from the fixed catalogue above (lint: allow(panic-in-lib) field names come from the fixed catalogue above)
        })
        .collect()
}

/// Count map of a categorical field over a packet trace.
///
/// # Panics
/// Panics on an unknown field name.
pub fn packet_categorical(trace: &PacketTrace, field: &str) -> HashMap<u64, u64> {
    let mut counts = HashMap::new();
    for p in &trace.packets {
        let key: u64 = match field {
            "SA" => p.five_tuple.src_ip as u64,
            "DA" => p.five_tuple.dst_ip as u64,
            "SP" => p.five_tuple.src_port as u64,
            "DP" => p.five_tuple.dst_port as u64,
            "PR" => p.five_tuple.proto.number() as u64,
            other => panic!("unknown packet categorical field {other}"), // lint: allow(panic-in-lib) field names come from the fixed catalogue above (lint: allow(panic-in-lib) field names come from the fixed catalogue above)
        };
        *counts.entry(key).or_insert(0) += 1;
    }
    counts
}

/// Sample vector of a continuous field over a packet trace.
///
/// `PS` is packet size (bytes); `PAT` packet arrival time (ms); `FS` flow
/// size — the number of packets sharing each five-tuple (one sample per
/// flow, the Fig. 1b quantity).
///
/// # Panics
/// Panics on an unknown field name.
pub fn packet_continuous(trace: &PacketTrace, field: &str) -> Vec<f64> {
    match field {
        "PS" => trace.packets.iter().map(|p| p.packet_len as f64).collect(),
        "PAT" => trace.packets.iter().map(|p| p.ts_millis()).collect(),
        "FS" => trace
            .group_by_five_tuple()
            .values()
            .map(|v| v.len() as f64)
            .collect(),
        other => panic!("unknown packet continuous field {other}"), // lint: allow(panic-in-lib) field names come from the fixed catalogue above (lint: allow(panic-in-lib) field names come from the fixed catalogue above)
    }
}

/// Number of flow records sharing each five-tuple (one sample per tuple) —
/// the Fig. 1a quantity.
pub fn flow_records_per_tuple(trace: &FlowTrace) -> Vec<f64> {
    trace
        .group_by_five_tuple()
        .values()
        .map(|v| v.len() as f64)
        .collect()
}

/// The top-k most frequent values of a count map with their relative
/// frequencies, most frequent first (the Fig. 3 "top-5 service ports").
pub fn top_k(counts: &HashMap<u64, u64>, k: usize) -> Vec<(u64, f64)> {
    let total: u64 = counts.values().sum();
    if total == 0 {
        return Vec::new();
    }
    let mut items: Vec<(u64, u64)> = counts.iter().map(|(&k, &v)| (k, v)).collect();
    items.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    items
        .into_iter()
        .take(k)
        .map(|(key, c)| (key, c as f64 / total as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::{FiveTuple, FlowRecord, PacketRecord, Protocol};

    fn flow_trace() -> FlowTrace {
        let ft = |sp, dp| FiveTuple::new(1, 2, sp, dp, Protocol::Tcp);
        FlowTrace::from_records(vec![
            FlowRecord::new(ft(100, 80), 0.0, 10.0, 5, 500),
            FlowRecord::new(ft(100, 80), 20.0, 10.0, 3, 300),
            FlowRecord::new(ft(200, 443), 5.0, 1.0, 1, 40),
        ])
    }

    #[test]
    fn flow_categorical_counts() {
        let t = flow_trace();
        let dp = flow_categorical(&t, "DP");
        assert_eq!(dp[&80], 2);
        assert_eq!(dp[&443], 1);
        let pr = flow_categorical(&t, "PR");
        assert_eq!(pr[&6], 3);
    }

    #[test]
    fn flow_continuous_values() {
        let t = flow_trace();
        let pkt = flow_continuous(&t, "PKT");
        let mut sorted = pkt.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(sorted, vec![1.0, 3.0, 5.0]);
        assert_eq!(flow_continuous(&t, "TS").len(), 3);
    }

    #[test]
    fn records_per_tuple() {
        let t = flow_trace();
        let mut rpt = flow_records_per_tuple(&t);
        rpt.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(rpt, vec![1.0, 2.0]);
    }

    #[test]
    fn packet_fs_counts_per_tuple() {
        let ft = FiveTuple::new(1, 2, 3, 4, Protocol::Udp);
        let other = FiveTuple::new(5, 6, 7, 8, Protocol::Udp);
        let t = PacketTrace::from_records(vec![
            PacketRecord::new(0, ft, 100),
            PacketRecord::new(1, ft, 100),
            PacketRecord::new(2, other, 100),
        ]);
        let mut fs = packet_continuous(&t, "FS");
        fs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(fs, vec![1.0, 2.0]);
        assert_eq!(packet_continuous(&t, "PS"), vec![100.0, 100.0, 100.0]);
    }

    #[test]
    fn top_k_orders_by_frequency() {
        let t = flow_trace();
        let top = top_k(&flow_categorical(&t, "DP"), 2);
        assert_eq!(top[0].0, 80);
        assert!((top[0].1 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(top[1].0, 443);
    }

    #[test]
    #[should_panic(expected = "unknown flow categorical field")]
    fn unknown_field_panics() {
        let _ = flow_categorical(&flow_trace(), "XX");
    }
}
