//! Empirical CDF utilities for the CDF-style figures (Figs. 1, 2, 15).

/// An empirical CDF: sorted support points with cumulative probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    xs: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF of a sample (NaNs are dropped).
    pub fn new(samples: &[f64]) -> Self {
        let mut xs: Vec<f64> = samples.iter().cloned().filter(|v| !v.is_nan()).collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        Ecdf { xs }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the ECDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// `F(x)` — the fraction of samples ≤ `x` (0 for an empty ECDF).
    pub fn eval(&self, x: f64) -> f64 {
        if self.xs.is_empty() {
            return 0.0;
        }
        let idx = self.xs.partition_point(|&v| v <= x);
        idx as f64 / self.xs.len() as f64
    }

    /// The `q`-quantile (`q ∈ [0,1]`), `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.xs.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * (self.xs.len() - 1) as f64).round()) as usize;
        Some(self.xs[idx])
    }

    /// Evaluates the CDF on a log-spaced grid over `[lo, hi]` — the shape
    /// of the paper's log-x CDF plots. Returns `(x, F(x))` pairs.
    pub fn log_grid(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(lo > 0.0 && hi > lo && points >= 2, "invalid log grid");
        let ratio = (hi / lo).ln();
        (0..points)
            .map(|i| {
                // Pin the endpoint exactly — exp/ln rounding would otherwise
                // land just below `hi` and miss samples equal to it.
                let x = if i == points - 1 {
                    hi
                } else {
                    lo * (ratio * i as f64 / (points - 1) as f64).exp()
                };
                (x, self.eval(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_definition() {
        let e = Ecdf::new(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(10.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new(&(0..101).map(|i| i as f64).collect::<Vec<_>>());
        assert_eq!(e.quantile(0.0), Some(0.0));
        assert_eq!(e.quantile(0.5), Some(50.0));
        assert_eq!(e.quantile(1.0), Some(100.0));
        assert_eq!(Ecdf::new(&[]).quantile(0.5), None);
    }

    #[test]
    fn log_grid_is_monotone() {
        let e = Ecdf::new(&[1.0, 10.0, 100.0, 1000.0]);
        let grid = e.log_grid(1.0, 1000.0, 10);
        assert_eq!(grid.len(), 10);
        assert!(grid.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(grid.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(grid.last().unwrap().1, 1.0);
    }

    #[test]
    fn nan_samples_dropped() {
        let e = Ecdf::new(&[1.0, f64::NAN, 2.0]);
        assert_eq!(e.len(), 2);
    }
}
