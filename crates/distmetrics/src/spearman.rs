//! Spearman rank correlation, used by the paper for *order preservation*:
//! do algorithms rank the same on synthetic data as on real data
//! (Tables 3 and 4)?

/// Average ranks (1-based), with ties receiving the mean of their ranks.
fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Positions i..=j share the same value; average rank (1-based).
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman's ρ between two paired score vectors (tie-aware: Pearson on
/// average ranks). Returns a value in `[-1, 1]`; `None` for fewer than two
/// points or zero rank variance on either side.
pub fn spearman_rank_correlation(a: &[f64], b: &[f64]) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "paired vectors must match in length");
    let n = a.len();
    if n < 2 {
        return None;
    }
    let ra = average_ranks(a);
    let rb = average_ranks(b);
    let mean = (n as f64 + 1.0) / 2.0;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for i in 0..n {
        let da = ra[i] - mean;
        let db = rb[i] - mean;
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
    }
    if var_a == 0.0 || var_b == 0.0 { // lint: allow(float-eq) exact zero variance occurs only for constant ranks; a tolerance would misclassify near-ties
        return None;
    }
    Some(cov / (var_a.sqrt() * var_b.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement_is_one() {
        let a = vec![0.1, 0.5, 0.9, 0.3];
        let b = vec![1.0, 5.0, 9.0, 3.0];
        assert!((spearman_rank_correlation(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_reversal_is_minus_one() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![3.0, 2.0, 1.0];
        assert!((spearman_rank_correlation(&a, &b).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_value_without_ties() {
        // a = [1,2,3,4,5], b = [3,1,2,5,4] → d = [-2,1,1,-1,1],
        // Σd² = 8, ρ = 1 − 6·8/(5·24) = 0.6.
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let b = vec![3.0, 1.0, 2.0, 5.0, 4.0];
        assert!((spearman_rank_correlation(&a, &b).unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn ties_use_average_ranks() {
        let r = average_ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn constant_vector_has_no_correlation() {
        let a = vec![1.0, 1.0, 1.0];
        let b = vec![1.0, 2.0, 3.0];
        assert_eq!(spearman_rank_correlation(&a, &b), None);
    }

    #[test]
    fn too_few_points_is_none() {
        assert_eq!(spearman_rank_correlation(&[1.0], &[2.0]), None);
    }
}
