//! Earth Mover's Distance (1-D Wasserstein-1) for continuous fields.
//!
//! The paper (§6.2, footnote 7) uses EMD for continuous fields because it
//! "is equivalent to the integrated absolute error between the CDFs of the
//! two distributions" and is insensitive to histogram binning. That is
//! exactly how it is computed here — exactly, from the empirical CDFs.

/// Exact 1-D EMD between two sample sets: `∫ |F_p(x) − F_q(x)| dx`.
///
/// Returns 0 for two empty inputs; if only one side is empty the distance
/// is undefined and this returns `f64::INFINITY` (a generator that emits
/// nothing is infinitely far from any data).
pub fn emd_1d(p: &[f64], q: &[f64]) -> f64 {
    match (p.is_empty(), q.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return f64::INFINITY,
        _ => {}
    }
    let mut ps = p.to_vec();
    let mut qs = q.to_vec();
    ps.sort_by(|a, b| a.total_cmp(b));
    qs.sort_by(|a, b| a.total_cmp(b));

    // Sweep the merged support, integrating |F_p - F_q| between breakpoints.
    let np = ps.len() as f64;
    let nq = qs.len() as f64;
    let (mut i, mut j) = (0usize, 0usize);
    let mut emd = 0.0;
    let mut prev_x = f64::NAN;
    while i < ps.len() || j < qs.len() {
        let x = match (ps.get(i), qs.get(j)) {
            (Some(&a), Some(&b)) => a.min(b),
            (Some(&a), None) => a,
            (None, Some(&b)) => b,
            (None, None) => unreachable!(),
        };
        if !prev_x.is_nan() && x > prev_x {
            let fp = i as f64 / np;
            let fq = j as f64 / nq;
            emd += (fp - fq).abs() * (x - prev_x);
        }
        while i < ps.len() && ps[i] <= x {
            i += 1;
        }
        while j < qs.len() && qs[j] <= x {
            j += 1;
        }
        prev_x = x;
    }
    emd
}

/// The paper's per-field EMD normalization: given the EMDs of several
/// models on one field, affinely map them to `[0.1, 0.9]` (min → 0.1,
/// max → 0.9) "for better visualization". With a single value or all-equal
/// values, everything maps to 0.5. Infinite entries (empty outputs) pin to
/// 0.9 and are excluded from the scaling of the rest.
pub fn normalize_emds(values: &[f64]) -> Vec<f64> {
    let finite: Vec<f64> = values.iter().cloned().filter(|v| v.is_finite()).collect();
    let (min, max) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                0.9
            } else if max > min {
                0.1 + 0.8 * (v - min) / (max - min)
            } else {
                0.5
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_emd() {
        let p = vec![1.0, 2.0, 3.0];
        assert!(emd_1d(&p, &p) < 1e-12);
    }

    #[test]
    fn point_masses_distance_is_shift() {
        // δ(0) vs δ(5): EMD = 5.
        let p = vec![0.0];
        let q = vec![5.0];
        assert!((emd_1d(&p, &q) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn shifted_distribution_emd_equals_shift() {
        let p: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let q: Vec<f64> = (0..100).map(|i| i as f64 + 2.5).collect();
        assert!((emd_1d(&p, &q) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn emd_is_symmetric_and_triangleish() {
        let p = vec![0.0, 1.0, 2.0];
        let q = vec![0.5, 1.5, 3.0];
        let r = vec![10.0, 11.0];
        assert!((emd_1d(&p, &q) - emd_1d(&q, &p)).abs() < 1e-12);
        assert!(emd_1d(&p, &r) <= emd_1d(&p, &q) + emd_1d(&q, &r) + 1e-9);
    }

    #[test]
    fn different_sample_counts_supported() {
        // Uniform [0,1] with 100 vs 1000 samples: EMD should be small.
        let p: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let q: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        assert!(emd_1d(&p, &q) < 0.02);
    }

    #[test]
    fn empty_side_is_infinite() {
        assert_eq!(emd_1d(&[], &[1.0]), f64::INFINITY);
        assert_eq!(emd_1d(&[], &[]), 0.0);
    }

    #[test]
    fn normalization_maps_to_paper_range() {
        let n = normalize_emds(&[1.0, 3.0, 2.0]);
        assert!((n[0] - 0.1).abs() < 1e-12);
        assert!((n[1] - 0.9).abs() < 1e-12);
        assert!((n[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalization_handles_degenerate_cases() {
        assert_eq!(normalize_emds(&[2.0, 2.0]), vec![0.5, 0.5]);
        let with_inf = normalize_emds(&[1.0, f64::INFINITY, 2.0]);
        assert!((with_inf[1] - 0.9).abs() < 1e-12);
        assert!((with_inf[0] - 0.1).abs() < 1e-12);
    }
}
