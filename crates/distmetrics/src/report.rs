//! Aggregate fidelity reports: the per-model numbers behind Figs. 4, 5,
//! 10, 16, 17.

use crate::emd::emd_1d;
use crate::fields::{
    flow_categorical, flow_continuous, packet_categorical, packet_continuous, FLOW_CATEGORICAL,
    FLOW_CONTINUOUS, PACKET_CATEGORICAL, PACKET_CONTINUOUS,
};
use crate::jsd::jsd_rank_frequency;
use nettrace::{FlowTrace, PacketTrace};

/// Per-field fidelity of one synthetic trace against the real trace.
#[derive(Debug, Clone)]
pub struct FidelityReport {
    /// `(field, JSD)` for each categorical field.
    pub jsd: Vec<(&'static str, f64)>,
    /// `(field, raw EMD)` for each continuous field. Normalization to
    /// `[0.1, 0.9]` happens *across models* via
    /// [`crate::emd::normalize_emds`], not per report.
    pub emd: Vec<(&'static str, f64)>,
}

impl FidelityReport {
    /// Mean JSD over categorical fields (the paper's y-axis on the JSD
    /// panels).
    pub fn mean_jsd(&self) -> f64 {
        if self.jsd.is_empty() {
            return 0.0;
        }
        self.jsd.iter().map(|(_, v)| v).sum::<f64>() / self.jsd.len() as f64
    }

    /// Raw EMD for a named field.
    pub fn emd_for(&self, field: &str) -> Option<f64> {
        self.emd.iter().find(|(f, _)| *f == field).map(|(_, v)| *v)
    }

    /// Raw JSD for a named field.
    pub fn jsd_for(&self, field: &str) -> Option<f64> {
        self.jsd.iter().find(|(f, _)| *f == field).map(|(_, v)| *v)
    }
}

/// Computes the flow-trace fidelity report (SA/DA/SP/DP/PR JSD;
/// TS/TD/PKT/BYT EMD).
///
/// SA and DA are compared as *rank-frequency* profiles (popularity
/// structure); ports and protocol as identity-matched distributions.
pub fn fidelity_flow(real: &FlowTrace, synthetic: &FlowTrace) -> FidelityReport {
    let _span = telemetry::span!("fidelity/flow");
    telemetry::metrics::counter("fidelity.reports").inc();
    let _timer = telemetry::metrics::scoped_timer_us("fidelity.us");
    let jsd = FLOW_CATEGORICAL
        .iter()
        .map(|&f| {
            let d = if f == "SA" || f == "DA" {
                jsd_rank_frequency(&flow_categorical(real, f), &flow_categorical(synthetic, f))
            } else {
                crate::jsd::jsd_from_counts(
                    &flow_categorical(real, f),
                    &flow_categorical(synthetic, f),
                )
            };
            (f, d)
        })
        .collect();
    let emd = FLOW_CONTINUOUS
        .iter()
        .map(|&f| {
            (
                f,
                emd_1d(&flow_continuous(real, f), &flow_continuous(synthetic, f)),
            )
        })
        .collect();
    FidelityReport { jsd, emd }
}

/// Computes the packet-trace fidelity report (SA/DA/SP/DP/PR JSD;
/// PS/PAT/FS EMD).
pub fn fidelity_packet(real: &PacketTrace, synthetic: &PacketTrace) -> FidelityReport {
    let _span = telemetry::span!("fidelity/packet");
    telemetry::metrics::counter("fidelity.reports").inc();
    let _timer = telemetry::metrics::scoped_timer_us("fidelity.us");
    let jsd = PACKET_CATEGORICAL
        .iter()
        .map(|&f| {
            let d = if f == "SA" || f == "DA" {
                jsd_rank_frequency(
                    &packet_categorical(real, f),
                    &packet_categorical(synthetic, f),
                )
            } else {
                crate::jsd::jsd_from_counts(
                    &packet_categorical(real, f),
                    &packet_categorical(synthetic, f),
                )
            };
            (f, d)
        })
        .collect();
    let emd = PACKET_CONTINUOUS
        .iter()
        .map(|&f| {
            (
                f,
                emd_1d(
                    &packet_continuous(real, f),
                    &packet_continuous(synthetic, f),
                ),
            )
        })
        .collect();
    FidelityReport { jsd, emd }
}

/// Computes the paper's summary "mean normalized EMD" for a set of models:
/// for each continuous field, normalize the models' EMDs to `[0.1, 0.9]`,
/// then average per model across fields. Input and output are indexed by
/// model.
pub fn mean_normalized_emd(reports: &[&FidelityReport]) -> Vec<f64> {
    if reports.is_empty() {
        return Vec::new();
    }
    let fields: Vec<&'static str> = reports[0].emd.iter().map(|(f, _)| *f).collect();
    let mut sums = vec![0.0; reports.len()];
    for field in &fields {
        let vals: Vec<f64> = reports
            .iter()
            .map(|r| r.emd_for(field).expect("reports must share fields")) // lint: allow(panic-in-lib) caller contract: reports share one field list (lint: allow(panic-in-lib) caller contract: reports share one field list)
            .collect();
        let norm = crate::emd::normalize_emds(&vals);
        for (s, v) in sums.iter_mut().zip(norm) {
            *s += v;
        }
    }
    sums.iter().map(|s| s / fields.len() as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::{FiveTuple, FlowRecord, Protocol};

    fn trace(seed: u64, port: u16) -> FlowTrace {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        FlowTrace::from_records(
            (0..200)
                .map(|i| {
                    let ft = FiveTuple::new(
                        rng.gen_range(0..50),
                        rng.gen_range(0..20),
                        rng.gen_range(1024..2048),
                        port,
                        Protocol::Tcp,
                    );
                    FlowRecord::new(ft, i as f64, rng.gen_range(0.0..100.0), rng.gen_range(1..50), rng.gen_range(40..5000))
                })
                .collect(),
        )
    }

    #[test]
    fn identical_traces_score_near_zero() {
        let t = trace(1, 80);
        let r = fidelity_flow(&t, &t);
        assert!(r.mean_jsd() < 1e-9);
        assert!(r.emd.iter().all(|(_, v)| *v < 1e-9));
    }

    #[test]
    fn different_port_increases_dp_jsd() {
        let a = trace(1, 80);
        let b = trace(2, 443);
        let r = fidelity_flow(&a, &b);
        assert!(r.jsd_for("DP").unwrap() > 0.5, "disjoint ports diverge");
    }

    #[test]
    fn mean_normalized_emd_ranks_models() {
        let real = trace(1, 80);
        let good = trace(2, 80);
        let mut bad = trace(3, 80);
        // Corrupt the bad model: multiply all byte counts.
        for f in &mut bad.flows {
            f.bytes *= 100;
            f.duration_ms *= 50.0;
        }
        let r_good = fidelity_flow(&real, &good);
        let r_bad = fidelity_flow(&real, &bad);
        let norm = mean_normalized_emd(&[&r_good, &r_bad]);
        assert!(norm[0] < norm[1], "good model must normalize lower: {norm:?}");
    }
}
