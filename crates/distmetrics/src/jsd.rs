//! Jensen-Shannon divergence for categorical distributions.

use std::collections::HashMap;
use std::hash::Hash;

/// JSD between two discrete distributions given as count maps. Returns a
/// value in `[0, ln 2]`; 0 iff the normalized distributions are equal.
///
/// Categories absent from one map are treated as probability zero there —
/// exactly the situation when a generator invents or misses values.
pub fn jsd_from_counts<K: Eq + Hash>(p: &HashMap<K, u64>, q: &HashMap<K, u64>) -> f64 {
    let p_total: u64 = p.values().sum();
    let q_total: u64 = q.values().sum();
    if p_total == 0 || q_total == 0 {
        // One side is empty: maximal divergence unless both are empty.
        return if p_total == q_total { 0.0 } else { (2.0f64).ln() };
    }
    let mut keys: Vec<&K> = p.keys().collect();
    for k in q.keys() {
        if !p.contains_key(k) {
            keys.push(k);
        }
    }
    let mut jsd = 0.0;
    for k in keys {
        let pi = *p.get(k).unwrap_or(&0) as f64 / p_total as f64;
        let qi = *q.get(k).unwrap_or(&0) as f64 / q_total as f64;
        let mi = 0.5 * (pi + qi);
        if pi > 0.0 {
            jsd += 0.5 * pi * (pi / mi).ln();
        }
        if qi > 0.0 {
            jsd += 0.5 * qi * (qi / mi).ln();
        }
    }
    jsd.max(0.0)
}

/// JSD between two sample streams of a categorical variable.
pub fn jsd_from_samples<K: Eq + Hash + Clone>(p: &[K], q: &[K]) -> f64 {
    let mut pc: HashMap<K, u64> = HashMap::new();
    for x in p {
        *pc.entry(x.clone()).or_insert(0) += 1;
    }
    let mut qc: HashMap<K, u64> = HashMap::new();
    for x in q {
        *qc.entry(x.clone()).or_insert(0) += 1;
    }
    jsd_from_counts(&pc, &qc)
}

/// JSD between two *rank-frequency* profiles: the inputs are count maps
/// whose keys are discarded; only the sorted frequency profile matters.
/// This is the paper's SA/DA metric ("relative frequency of addresses
/// ranking from most- to least-frequent") — it compares popularity
/// *structure* without requiring the same addresses on both sides.
pub fn jsd_rank_frequency<K: Eq + Hash>(p: &HashMap<K, u64>, q: &HashMap<K, u64>) -> f64 {
    let profile = |m: &HashMap<K, u64>| -> Vec<u64> {
        let mut v: Vec<u64> = m.values().cloned().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    };
    let pv = profile(p);
    let qv = profile(q);
    let n = pv.len().max(qv.len());
    let mut pc = HashMap::with_capacity(n);
    let mut qc = HashMap::with_capacity(n);
    for i in 0..n {
        pc.insert(i, pv.get(i).cloned().unwrap_or(0));
        qc.insert(i, qv.get(i).cloned().unwrap_or(0));
    }
    jsd_from_counts(&pc, &qc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&'static str, u64)]) -> HashMap<&'static str, u64> {
        pairs.iter().cloned().collect()
    }

    #[test]
    fn identical_distributions_have_zero_jsd() {
        let p = counts(&[("a", 10), ("b", 5)]);
        let q = counts(&[("a", 20), ("b", 10)]); // same normalized dist
        assert!(jsd_from_counts(&p, &q) < 1e-12);
    }

    #[test]
    fn disjoint_supports_give_ln2() {
        let p = counts(&[("a", 10)]);
        let q = counts(&[("b", 10)]);
        assert!((jsd_from_counts(&p, &q) - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn jsd_is_symmetric() {
        let p = counts(&[("a", 7), ("b", 3), ("c", 1)]);
        let q = counts(&[("a", 2), ("b", 8)]);
        assert!((jsd_from_counts(&p, &q) - jsd_from_counts(&q, &p)).abs() < 1e-12);
    }

    #[test]
    fn jsd_bounded_by_ln2() {
        let p = counts(&[("a", 1), ("b", 100), ("c", 3)]);
        let q = counts(&[("x", 50), ("b", 1)]);
        let d = jsd_from_counts(&p, &q);
        assert!(d > 0.0 && d <= (2.0f64).ln() + 1e-12);
    }

    #[test]
    fn samples_api_matches_counts_api() {
        let p = vec!["a", "a", "b"];
        let q = vec!["a", "b", "b"];
        let via_samples = jsd_from_samples(&p, &q);
        let via_counts = jsd_from_counts(&counts(&[("a", 2), ("b", 1)]), &counts(&[("a", 1), ("b", 2)]));
        assert!((via_samples - via_counts).abs() < 1e-12);
    }

    #[test]
    fn rank_frequency_ignores_identity() {
        // Same popularity structure under different labels → zero JSD.
        let p = counts(&[("a", 10), ("b", 5), ("c", 1)]);
        let q = counts(&[("x", 10), ("y", 5), ("z", 1)]);
        assert!(jsd_rank_frequency(&p, &q) < 1e-12);
        // Different structure → positive.
        let r = counts(&[("x", 6), ("y", 6), ("z", 4)]);
        assert!(jsd_rank_frequency(&p, &r) > 0.01);
    }

    #[test]
    fn empty_vs_nonempty_is_maximal() {
        let p: HashMap<&str, u64> = HashMap::new();
        let q = counts(&[("a", 3)]);
        assert!((jsd_from_counts(&p, &q) - (2.0f64).ln()).abs() < 1e-12);
        let r: HashMap<&str, u64> = HashMap::new();
        assert_eq!(jsd_from_counts(&p, &r), 0.0);
    }
}
