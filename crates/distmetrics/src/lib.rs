//! # distmetrics
//!
//! The fidelity-metric layer of the evaluation (paper §6.2, Finding 1).
//! The paper scores synthetic traces by comparing real-vs-synthetic
//! distributions of header fields:
//!
//! * **categorical fields** (SA, DA, SP, DP, PR) with Jensen-Shannon
//!   divergence ([`jsd`]);
//! * **continuous fields** (TS, TD, PKT, BYT for NetFlow; PS, PAT, FS for
//!   PCAP) with Earth Mover's Distance ([`emd`]), normalized per field to
//!   `[0.1, 0.9]` across the compared models;
//! * downstream-task *orderings* with Spearman rank correlation
//!   ([`spearman`]).
//!
//! [`fields`] extracts each named distribution from a trace and
//! [`report`] aggregates everything into the per-model numbers behind
//! Figs. 4, 5, 10, 16, 17.

pub mod cdf;
pub mod emd;
pub mod fields;
pub mod jsd;
pub mod overfitting;
pub mod report;
pub mod spearman;

pub use emd::{emd_1d, normalize_emds};
pub use jsd::{jsd_from_counts, jsd_from_samples};
pub use overfitting::{flow_overlap, packet_overlap, OverlapReport};
pub use report::{fidelity_flow, fidelity_packet, FidelityReport};
pub use spearman::spearman_rank_correlation;
