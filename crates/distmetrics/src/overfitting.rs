//! Memorization / overfitting measurement (paper §8, "Measuring
//! overfitting"): "Our preliminary analysis by measuring the ratio of
//! overlap between synthetic and real values of src/dst IPs and 5-tuples
//! suggests that NetShare is not memorizing."
//!
//! A generator that *memorizes* reproduces exact training values far more
//! often than a fresh sample of the same process would; one that
//! *generalizes* overlaps at roughly the holdout rate. These helpers
//! compute the overlap ratios and the holdout-calibrated verdict.

use crate::fields::{flow_categorical, packet_categorical};
use nettrace::{FiveTuple, FlowTrace, PacketTrace};
use std::collections::HashSet;

/// Overlap ratios between a synthetic trace and its training trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapReport {
    /// Fraction of synthetic source IPs present in the training trace.
    pub src_ip: f64,
    /// Fraction of synthetic destination IPs present in the training trace.
    pub dst_ip: f64,
    /// Fraction of synthetic full five-tuples present in the training
    /// trace — the strongest memorization signal (an exact five-tuple
    /// match reproduces an entire training record key).
    pub five_tuple: f64,
}

fn overlap<T: Eq + std::hash::Hash>(synthetic: &[T], training: &HashSet<T>) -> f64 {
    if synthetic.is_empty() {
        return 0.0;
    }
    synthetic.iter().filter(|v| training.contains(v)).count() as f64 / synthetic.len() as f64
}

/// Computes overlap ratios for a flow trace.
pub fn flow_overlap(training: &FlowTrace, synthetic: &FlowTrace) -> OverlapReport {
    let train_src: HashSet<u64> = flow_categorical(training, "SA").into_keys().collect();
    let train_dst: HashSet<u64> = flow_categorical(training, "DA").into_keys().collect();
    let train_tuples: HashSet<FiveTuple> =
        training.flows.iter().map(|f| f.five_tuple).collect();
    let syn_src: Vec<u64> = synthetic.flows.iter().map(|f| f.five_tuple.src_ip as u64).collect();
    let syn_dst: Vec<u64> = synthetic.flows.iter().map(|f| f.five_tuple.dst_ip as u64).collect();
    let syn_tuples: Vec<FiveTuple> = synthetic.flows.iter().map(|f| f.five_tuple).collect();
    OverlapReport {
        src_ip: overlap(&syn_src, &train_src),
        dst_ip: overlap(&syn_dst, &train_dst),
        five_tuple: overlap(&syn_tuples, &train_tuples),
    }
}

/// Computes overlap ratios for a packet trace.
pub fn packet_overlap(training: &PacketTrace, synthetic: &PacketTrace) -> OverlapReport {
    let train_src: HashSet<u64> = packet_categorical(training, "SA").into_keys().collect();
    let train_dst: HashSet<u64> = packet_categorical(training, "DA").into_keys().collect();
    let train_tuples: HashSet<FiveTuple> =
        training.packets.iter().map(|p| p.five_tuple).collect();
    let syn_src: Vec<u64> = synthetic.packets.iter().map(|p| p.five_tuple.src_ip as u64).collect();
    let syn_dst: Vec<u64> = synthetic.packets.iter().map(|p| p.five_tuple.dst_ip as u64).collect();
    let syn_tuples: Vec<FiveTuple> = synthetic.packets.iter().map(|p| p.five_tuple).collect();
    OverlapReport {
        src_ip: overlap(&syn_src, &train_src),
        dst_ip: overlap(&syn_dst, &train_dst),
        five_tuple: overlap(&syn_tuples, &train_tuples),
    }
}

/// Memorization verdict calibrated against a holdout draw of the same
/// process: a generator is flagged as memorizing when its five-tuple
/// overlap exceeds the holdout's by more than `slack` (absolute).
pub fn is_memorizing(
    synthetic: &OverlapReport,
    holdout: &OverlapReport,
    slack: f64,
) -> bool {
    synthetic.five_tuple > holdout.five_tuple + slack
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::{FlowRecord, Protocol};

    fn trace(tuples: &[(u32, u32, u16)]) -> FlowTrace {
        FlowTrace::from_records(
            tuples
                .iter()
                .enumerate()
                .map(|(i, &(s, d, p))| {
                    FlowRecord::new(FiveTuple::new(s, d, 1000, p, Protocol::Tcp), i as f64, 1.0, 1, 40)
                })
                .collect(),
        )
    }

    #[test]
    fn exact_copy_has_full_overlap() {
        let t = trace(&[(1, 2, 80), (3, 4, 443)]);
        let r = flow_overlap(&t, &t);
        assert_eq!(r.src_ip, 1.0);
        assert_eq!(r.dst_ip, 1.0);
        assert_eq!(r.five_tuple, 1.0);
    }

    #[test]
    fn disjoint_traces_have_zero_overlap() {
        let a = trace(&[(1, 2, 80)]);
        let b = trace(&[(9, 8, 22)]);
        let r = flow_overlap(&a, &b);
        assert_eq!(r.src_ip, 0.0);
        assert_eq!(r.five_tuple, 0.0);
    }

    #[test]
    fn partial_overlap_is_fractional() {
        let train = trace(&[(1, 2, 80), (3, 4, 443)]);
        let synth = trace(&[(1, 2, 80), (9, 9, 22)]);
        let r = flow_overlap(&train, &synth);
        assert_eq!(r.five_tuple, 0.5);
        assert_eq!(r.src_ip, 0.5);
    }

    #[test]
    fn memorization_verdict_uses_holdout_calibration() {
        let copy = OverlapReport { src_ip: 1.0, dst_ip: 1.0, five_tuple: 0.9 };
        let normal = OverlapReport { src_ip: 0.6, dst_ip: 0.6, five_tuple: 0.1 };
        assert!(is_memorizing(&copy, &normal, 0.2));
        assert!(!is_memorizing(&normal, &normal, 0.2));
    }
}
