//! Fixed-time chunking with explicit flow tags (paper Insight 3).
//!
//! The merged trace is sliced into `M` equal *time* intervals (splitting
//! by packet count would break DP: one record could shift every later
//! record's chunk assignment). Each five-tuple's records inside a chunk
//! form one training sequence, annotated with the paper's flow tags:
//! a 0/1 flag saying whether the flow *starts* in this chunk, plus an
//! `M`-bit vector of which chunks the flow appears in — the signal that
//! lets independently fine-tuned chunk models stay consistent on
//! cross-chunk flows.

use nettrace::{FiveTuple, FlowRecord, FlowTrace, PacketRecord, PacketTrace};
use std::collections::BTreeMap;

/// One five-tuple's activity inside one chunk.
#[derive(Debug, Clone)]
pub struct FlowGroup<T> {
    /// The flow key.
    pub tuple: FiveTuple,
    /// The tuple's records within this chunk, in time order.
    pub items: Vec<T>,
    /// Flow tag: does the flow's first record fall in this chunk?
    pub starts_here: bool,
    /// Flow tag: chunk-presence bit vector (length `M`).
    pub presence: Vec<bool>,
}

/// A chunked trace: per-chunk groups plus the chunk time bounds.
#[derive(Debug, Clone)]
pub struct Chunked<T> {
    /// `chunks[c]` holds the groups active in chunk `c`.
    pub chunks: Vec<Vec<FlowGroup<T>>>,
    /// `[start_ms, end_ms)` of each chunk.
    pub bounds: Vec<(f64, f64)>,
}

impl<T> Chunked<T> {
    /// Total number of items across all chunks and groups.
    pub fn total_items(&self) -> usize {
        self.chunks
            .iter()
            .flat_map(|c| c.iter().map(|g| g.items.len()))
            .sum()
    }

    /// Number of chunks `M`.
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }
}

/// Generic chunker over timestamped, tuple-keyed items.
fn chunk_items<T: Clone>(
    items: &[T],
    tuple_of: impl Fn(&T) -> FiveTuple,
    time_of: impl Fn(&T) -> f64,
    m: usize,
) -> Chunked<T> {
    assert!(m >= 1, "need at least one chunk");
    if items.is_empty() {
        return Chunked {
            chunks: vec![Vec::new(); m],
            bounds: vec![(0.0, 1.0); m],
        };
    }
    let t0 = items.iter().map(&time_of).fold(f64::INFINITY, f64::min);
    let t1 = items.iter().map(&time_of).fold(f64::NEG_INFINITY, f64::max);
    let span = (t1 - t0).max(1e-9);
    let chunk_len = span / m as f64 * (1.0 + 1e-12);
    let bounds: Vec<(f64, f64)> = (0..m)
        .map(|c| (t0 + c as f64 * chunk_len, t0 + (c + 1) as f64 * chunk_len))
        .collect();
    let chunk_of = |t: f64| (((t - t0) / chunk_len) as usize).min(m - 1);

    // Group per (tuple, chunk) and track per-tuple presence + first chunk.
    let mut per_tuple: BTreeMap<FiveTuple, (usize, Vec<bool>)> = BTreeMap::new();
    let mut grouped: BTreeMap<(FiveTuple, usize), Vec<T>> = BTreeMap::new();
    for item in items {
        let tuple = tuple_of(item);
        let c = chunk_of(time_of(item));
        let entry = per_tuple.entry(tuple).or_insert((c, vec![false; m]));
        entry.0 = entry.0.min(c);
        entry.1[c] = true;
        grouped.entry((tuple, c)).or_default().push(item.clone());
    }

    let mut chunks: Vec<Vec<FlowGroup<T>>> = vec![Vec::new(); m];
    // BTreeMap drains in sorted key order, so output order is deterministic.
    for ((tuple, c), mut items) in grouped {
        items.sort_by(|a, b| time_of(a).total_cmp(&time_of(b)));
        let (first_chunk, presence) = per_tuple[&tuple].clone();
        chunks[c].push(FlowGroup {
            tuple,
            items,
            starts_here: first_chunk == c,
            presence,
        });
    }
    Chunked { chunks, bounds }
}

/// Chunks a flow trace by record start time.
pub fn chunk_flows(trace: &FlowTrace, m: usize) -> Chunked<FlowRecord> {
    chunk_items(&trace.flows, |f| f.five_tuple, |f| f.start_ms, m)
}

/// Chunks a packet trace by arrival time.
pub fn chunk_packets(trace: &PacketTrace, m: usize) -> Chunked<PacketRecord> {
    chunk_items(&trace.packets, |p| p.five_tuple, |p| p.ts_millis(), m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::Protocol;

    fn ft(sp: u16) -> FiveTuple {
        FiveTuple::new(1, 2, sp, 80, Protocol::Tcp)
    }

    fn rec(sp: u16, start: f64) -> FlowRecord {
        FlowRecord::new(ft(sp), start, 1.0, 1, 40)
    }

    #[test]
    fn no_record_lost_and_bounds_cover() {
        let t = FlowTrace::from_records((0..100).map(|i| rec(i as u16, i as f64)).collect());
        let ch = chunk_flows(&t, 5);
        assert_eq!(ch.total_items(), 100);
        assert_eq!(ch.n_chunks(), 5);
        assert!(ch.bounds.windows(2).all(|w| (w[0].1 - w[1].0).abs() < 1e-9));
    }

    #[test]
    fn cross_chunk_flow_has_correct_tags() {
        // Tuple 7 appears at t=5 and t=95 (chunks 0 and 4 of 5).
        let t = FlowTrace::from_records(vec![
            rec(7, 5.0),
            rec(7, 95.0),
            rec(8, 0.0),
            rec(9, 99.0),
        ]);
        let ch = chunk_flows(&t, 5);
        // Find tuple 7 groups.
        let g0 = ch.chunks[0].iter().find(|g| g.tuple == ft(7)).unwrap();
        let g4 = ch.chunks[4].iter().find(|g| g.tuple == ft(7)).unwrap();
        assert!(g0.starts_here, "first chunk carries the start flag");
        assert!(!g4.starts_here, "later chunk does not");
        let expected = vec![true, false, false, false, true];
        assert_eq!(g0.presence, expected);
        assert_eq!(g4.presence, expected, "presence vector identical in all chunks");
    }

    #[test]
    fn records_within_group_are_time_ordered() {
        let t = FlowTrace::from_records(vec![rec(1, 9.0), rec(1, 3.0), rec(1, 6.0)]);
        let ch = chunk_flows(&t, 1);
        let g = &ch.chunks[0][0];
        assert!(g.items.windows(2).all(|w| w[0].start_ms <= w[1].start_ms));
    }

    #[test]
    fn single_chunk_is_v0_layout() {
        let t = FlowTrace::from_records((0..20).map(|i| rec(i as u16 % 3, i as f64)).collect());
        let ch = chunk_flows(&t, 1);
        assert_eq!(ch.chunks[0].len(), 3, "one group per tuple");
        assert!(ch.chunks[0].iter().all(|g| g.starts_here));
        assert!(ch.chunks[0].iter().all(|g| g.presence == vec![true]));
    }

    #[test]
    fn packet_chunking_uses_arrival_time() {
        let p = |sp: u16, ms: u64| {
            PacketRecord::new(ms * 1000, FiveTuple::new(1, 2, sp, 80, Protocol::Udp), 100)
        };
        let t = PacketTrace::from_records(vec![p(1, 0), p(1, 50), p(2, 99)]);
        let ch = chunk_packets(&t, 2);
        assert_eq!(ch.chunks[0].len(), 1);
        assert_eq!(ch.chunks[1].len(), 2, "tuple 1 reappears in chunk 1 plus tuple 2");
        assert_eq!(ch.total_items(), 3);
    }

    #[test]
    fn empty_trace_chunks_cleanly() {
        let ch = chunk_flows(&FlowTrace::new(), 3);
        assert_eq!(ch.n_chunks(), 3);
        assert_eq!(ch.total_items(), 0);
    }
}
