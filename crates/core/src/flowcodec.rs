//! Flow-dataset codec: encodes chunked flow groups into DoppelGANger
//! training samples and decodes generated samples back to flow records.
//!
//! Per the paper (§4.1, Insight 1): "for NetFlow, each time series element
//! contains flow start time/duration, packets/bytes per flow, type
//! (attack/benign when applicable)". Metadata is the encoded five-tuple
//! plus the flow tags of Insight 3. One deliberate deviation: the
//! benign/attack *type* is modeled as flow **metadata** rather than a
//! per-record field — within a five-tuple group the label is constant in
//! practice, and metadata placement puts it under the auxiliary
//! discriminator's direct supervision (record-level labels collapse to
//! the majority class at CPU training scale).

use crate::chunking::FlowGroup;
use crate::tuplecodec::TupleCodec;
use doppelganger::{FeatureSpec, Segment};
use fieldcodec::ContinuousCodec;
use nettrace::{AttackType, FlowRecord, FlowTrace, TrafficLabel};

/// Number of continuous record fields: start fraction, duration, packets,
/// bytes.
const RECORD_CONT: usize = 4;

/// A fitted flow codec (one per pipeline run).
pub struct FlowCodec {
    /// Five-tuple codec (shared with the packet pipeline).
    pub tuples: TupleCodec,
    duration: ContinuousCodec,
    packets: ContinuousCodec,
    bytes: ContinuousCodec,
    with_labels: bool,
    n_chunks: usize,
    /// Whether the Insight-3 flow tags are populated (ablation knob).
    pub tags_enabled: bool,
}

impl FlowCodec {
    /// Fits the continuous ranges on `trace` (private data in the non-DP
    /// pipeline; pass a public trace in DP mode so normalization never
    /// touches private data).
    pub fn fit(trace: &FlowTrace, tuples: TupleCodec, n_chunks: usize, with_labels: bool) -> Self {
        let durations: Vec<f64> = trace.flows.iter().map(|f| f.duration_ms).collect();
        let pkts: Vec<f64> = trace.flows.iter().map(|f| f.packets as f64).collect();
        let byts: Vec<f64> = trace.flows.iter().map(|f| f.bytes as f64).collect();
        FlowCodec {
            tuples,
            duration: ContinuousCodec::fit(&durations, true),
            packets: ContinuousCodec::fit(&pkts, true),
            bytes: ContinuousCodec::fit(&byts, true),
            with_labels,
            n_chunks,
            tags_enabled: true,
        }
    }

    /// Metadata layout: tuple segments (bit IPs continuous, hybrid
    /// port/protocol categoricals + embeddings) + label one-hot (labeled
    /// datasets) + flow-tag bits.
    pub fn meta_spec(&self) -> FeatureSpec {
        let mut segs = self.tuples.segments();
        if self.with_labels {
            segs.push(Segment::Categorical {
                dim: TrafficLabel::NUM_CLASSES,
            });
        }
        segs.push(Segment::Continuous {
            dim: 1 + self.n_chunks,
        });
        FeatureSpec::new(segs)
    }

    /// Record layout: 4 continuous fields.
    pub fn record_spec(&self) -> FeatureSpec {
        FeatureSpec::new(vec![Segment::Continuous { dim: RECORD_CONT }])
    }

    /// Encodes one chunked group into `(metadata, record sequence)`.
    /// Record times are normalized relative to the chunk bounds.
    pub fn encode_group(
        &self,
        group: &FlowGroup<FlowRecord>,
        bounds: (f64, f64),
    ) -> (Vec<f32>, Vec<Vec<f32>>) {
        let mut meta = Vec::with_capacity(self.meta_spec().dim());
        self.tuples.encode_into(&group.tuple, &mut meta);
        if self.with_labels {
            let mut onehot = vec![0.0; TrafficLabel::NUM_CLASSES];
            let cls = group
                .items
                .first()
                .and_then(|f| f.label)
                .map(|l| l.class_index())
                .unwrap_or(0);
            onehot[cls] = 1.0;
            meta.extend(onehot);
        }
        if self.tags_enabled {
            meta.push(if group.starts_here { 1.0 } else { 0.0 });
            for &p in &group.presence {
                meta.push(if p { 1.0 } else { 0.0 });
            }
        } else {
            meta.resize(meta.len() + 1 + self.n_chunks, 0.0);
        }

        let chunk_len = (bounds.1 - bounds.0).max(1e-9);
        let records = group
            .items
            .iter()
            .map(|f| {
                vec![
                    (((f.start_ms - bounds.0) / chunk_len).clamp(0.0, 1.0)) as f32,
                    self.duration.encode(f.duration_ms),
                    self.packets.encode(f.packets as f64),
                    self.bytes.encode(f.bytes as f64),
                ]
            })
            .collect();
        (meta, records)
    }

    /// Decodes one generated sample into flow records placed inside the
    /// given chunk bounds.
    pub fn decode_sample(
        &self,
        meta: &[f32],
        records: &[Vec<f32>],
        bounds: (f64, f64),
    ) -> Vec<FlowRecord> {
        let tuple = self.tuples.decode(&meta[..self.tuples.dim()]);
        let label = if self.with_labels {
            let onehot = &meta[self.tuples.dim()..self.tuples.dim() + TrafficLabel::NUM_CLASSES];
            let cls = onehot
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            Some(if cls == 0 {
                TrafficLabel::Benign
            } else {
                TrafficLabel::Attack(AttackType::ALL[cls - 1])
            })
        } else {
            None
        };
        let chunk_len = (bounds.1 - bounds.0).max(1e-9);
        records
            .iter()
            .map(|r| {
                let start_ms = bounds.0 + r[0] as f64 * chunk_len;
                let duration_ms = self.duration.decode(r[1]).max(0.0);
                let packets = self.packets.decode(r[2]).round().max(1.0) as u64;
                let bytes = self.bytes.decode(r[3]).round().max(1.0) as u64;
                let mut rec = FlowRecord::new(tuple, start_ms, duration_ms, packets, bytes);
                rec.label = label;
                rec
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunking::chunk_flows;
    use nettrace::{FiveTuple, Protocol};
    use trace_synth::public::ip2vec_public_corpus;

    fn codec(with_labels: bool) -> FlowCodec {
        let tuples = TupleCodec::fit_public(&ip2vec_public_corpus(1_500, 5), 8, 3);
        let trace = sample_trace();
        FlowCodec::fit(&trace, tuples, 4, with_labels)
    }

    fn sample_trace() -> FlowTrace {
        let ft = |sp| FiveTuple::new(0x0a000001, 0xc0a80001, sp, 80, Protocol::Tcp);
        FlowTrace::from_records(vec![
            FlowRecord::new(ft(1000), 0.0, 50.0, 10, 4000)
                .with_label(TrafficLabel::Benign),
            FlowRecord::new(ft(1000), 500.0, 10.0, 2, 100)
                .with_label(TrafficLabel::Attack(AttackType::Dos)),
            FlowRecord::new(ft(2000), 900.0, 0.0, 1, 40).with_label(TrafficLabel::Benign),
        ])
    }

    #[test]
    fn encode_decode_round_trips_values() {
        let c = codec(true);
        let trace = sample_trace();
        let ch = chunk_flows(&trace, 4);
        for (ci, chunk) in ch.chunks.iter().enumerate() {
            for g in chunk {
                let (meta, recs) = c.encode_group(g, ch.bounds[ci]);
                assert_eq!(meta.len(), c.meta_spec().dim());
                assert!(meta.iter().all(|&x| (0.0..=1.0).contains(&x)));
                let decoded = c.decode_sample(&meta, &recs, ch.bounds[ci]);
                assert_eq!(decoded.len(), g.items.len());
                for (d, o) in decoded.iter().zip(&g.items) {
                    assert_eq!(d.five_tuple.dst_port, 80);
                    assert_eq!(d.five_tuple.src_ip, o.five_tuple.src_ip);
                    assert!((d.start_ms - o.start_ms).abs() < 5.0, "{} vs {}", d.start_ms, o.start_ms);
                    // Log-scale round trip: within ~10% relative error.
                    let rel = (d.packets as f64 - o.packets as f64).abs() / o.packets as f64;
                    assert!(rel < 0.5, "packets {} vs {}", d.packets, o.packets);
                    assert_eq!(d.label, o.label, "label survives");
                }
            }
        }
    }

    #[test]
    fn labels_live_in_the_metadata() {
        let with = codec(true).meta_spec().dim();
        let without = codec(false).meta_spec().dim();
        assert_eq!(with, without + TrafficLabel::NUM_CLASSES);
        assert_eq!(codec(true).record_spec().dim(), codec(false).record_spec().dim());
    }

    #[test]
    fn flow_tags_are_appended_to_metadata() {
        let c = codec(false);
        let trace = sample_trace();
        let ch = chunk_flows(&trace, 4);
        let g = &ch.chunks[0][0];
        let (meta, _) = c.encode_group(g, ch.bounds[0]);
        let tags = &meta[meta.len() - (1 + 4)..];
        assert_eq!(tags.len(), 1 + 4, "start flag + M presence bits");
        assert_eq!(tags[0], 1.0, "starts in its first chunk");
    }
}
