//! Packet-dataset codec: chunked packet groups ↔ DoppelGANger samples.
//!
//! Per the paper (§4.1, Insight 1): "for PCAP data, each sequence element
//! (packet) includes a raw timestamp, packet size, and other IP header
//! fields (we exclude the IP option field and checksum)". We model
//! timestamp, size, TTL, and TOS; checksum is regenerated in
//! post-processing and options are absent from all modeled traces.

use crate::chunking::FlowGroup;
use crate::tuplecodec::TupleCodec;
use doppelganger::{FeatureSpec, Segment};
use fieldcodec::ContinuousCodec;
use nettrace::{PacketRecord, PacketTrace};

/// Record fields: arrival fraction, size, TTL, TOS.
const RECORD_CONT: usize = 4;

/// A fitted packet codec.
pub struct PacketCodec {
    /// Five-tuple codec.
    pub tuples: TupleCodec,
    size: ContinuousCodec,
    n_chunks: usize,
    /// Whether the Insight-3 flow tags are populated (ablation knob).
    pub tags_enabled: bool,
}

impl PacketCodec {
    /// Fits the size range on `trace` (pass a public trace in DP mode).
    pub fn fit(trace: &PacketTrace, tuples: TupleCodec, n_chunks: usize) -> Self {
        let sizes: Vec<f64> = trace.packets.iter().map(|p| p.packet_len as f64).collect();
        PacketCodec {
            tuples,
            size: ContinuousCodec::fit(&sizes, true),
            n_chunks,
            tags_enabled: true,
        }
    }

    /// Metadata layout: tuple segments (bit IPs continuous, hybrid
    /// port/protocol categoricals + embeddings) + flow-tag bits.
    pub fn meta_spec(&self) -> FeatureSpec {
        let mut segs = self.tuples.segments();
        segs.push(Segment::Continuous {
            dim: 1 + self.n_chunks,
        });
        FeatureSpec::new(segs)
    }

    /// Record layout: 4 continuous fields.
    pub fn record_spec(&self) -> FeatureSpec {
        FeatureSpec::continuous(RECORD_CONT)
    }

    /// Encodes one chunked group.
    pub fn encode_group(
        &self,
        group: &FlowGroup<PacketRecord>,
        bounds: (f64, f64),
    ) -> (Vec<f32>, Vec<Vec<f32>>) {
        let mut meta = Vec::with_capacity(self.meta_spec().dim());
        self.tuples.encode_into(&group.tuple, &mut meta);
        if self.tags_enabled {
            meta.push(if group.starts_here { 1.0 } else { 0.0 });
            for &p in &group.presence {
                meta.push(if p { 1.0 } else { 0.0 });
            }
        } else {
            meta.resize(meta.len() + 1 + self.n_chunks, 0.0);
        }
        let chunk_len = (bounds.1 - bounds.0).max(1e-9);
        let records = group
            .items
            .iter()
            .map(|p| {
                vec![
                    (((p.ts_millis() - bounds.0) / chunk_len).clamp(0.0, 1.0)) as f32,
                    self.size.encode(p.packet_len as f64),
                    p.ttl as f32 / 255.0,
                    p.tos as f32 / 255.0,
                ]
            })
            .collect();
        (meta, records)
    }

    /// Decodes one generated sample into packets inside the chunk bounds.
    /// Sizes are floored at the protocol minimum (a derived-field
    /// correction, like the regenerated checksum).
    pub fn decode_sample(
        &self,
        meta: &[f32],
        records: &[Vec<f32>],
        bounds: (f64, f64),
    ) -> Vec<PacketRecord> {
        let tuple = self.tuples.decode(&meta[..self.tuples.dim()]);
        let chunk_len = (bounds.1 - bounds.0).max(1e-9);
        records
            .iter()
            .map(|r| {
                let ts_ms = bounds.0 + r[0] as f64 * chunk_len;
                let size = self
                    .size
                    .decode(r[1])
                    .round()
                    .clamp(tuple.proto.min_packet_size() as f64, 65_535.0)
                    as u16;
                let mut p = PacketRecord::new((ts_ms.max(0.0) * 1000.0) as u64, tuple, size);
                p.ttl = (r[2].clamp(0.0, 1.0) * 255.0).round() as u8;
                p.tos = (r[3].clamp(0.0, 1.0) * 255.0).round() as u8;
                p
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunking::chunk_packets;
    use nettrace::{FiveTuple, Protocol};
    use trace_synth::public::ip2vec_public_corpus;

    fn codec() -> (PacketCodec, PacketTrace) {
        let tuples = TupleCodec::fit_public(&ip2vec_public_corpus(1_500, 6), 8, 4);
        let trace = sample_trace();
        (PacketCodec::fit(&trace, tuples, 3), trace)
    }

    fn sample_trace() -> PacketTrace {
        let ft = FiveTuple::new(0x0a000001, 0xc0a80001, 40_000, 443, Protocol::Tcp);
        PacketTrace::from_records(
            (0..9)
                .map(|i| {
                    let mut p = PacketRecord::new(i * 100_000, ft, 1460);
                    p.ttl = 57;
                    p
                })
                .collect(),
        )
    }

    #[test]
    fn encode_decode_round_trips() {
        let (c, trace) = codec();
        let ch = chunk_packets(&trace, 3);
        for (ci, chunk) in ch.chunks.iter().enumerate() {
            for g in chunk {
                let (meta, recs) = c.encode_group(g, ch.bounds[ci]);
                let decoded = c.decode_sample(&meta, &recs, ch.bounds[ci]);
                assert_eq!(decoded.len(), g.items.len());
                for (d, o) in decoded.iter().zip(&g.items) {
                    assert_eq!(d.five_tuple.dst_port, 443);
                    assert_eq!(d.ttl, o.ttl);
                    let rel = (d.packet_len as f64 - 1460.0).abs() / 1460.0;
                    assert!(rel < 0.2, "size {} vs 1460", d.packet_len);
                    let dt = (d.ts_millis() - o.ts_millis()).abs();
                    assert!(dt < 5.0, "timestamp error {dt} ms");
                }
            }
        }
    }

    #[test]
    fn decoded_sizes_respect_protocol_minimum() {
        let (c, trace) = codec();
        let ch = chunk_packets(&trace, 3);
        let g = &ch.chunks[0][0];
        let (meta, mut recs) = c.encode_group(g, ch.bounds[0]);
        // Force the size dimension to 0 (smaller than any TCP packet).
        for r in &mut recs {
            r[1] = 0.0;
        }
        let decoded = c.decode_sample(&meta, &recs, ch.bounds[0]);
        assert!(decoded.iter().all(|p| p.packet_len >= 40));
    }
}
