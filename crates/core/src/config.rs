//! Pipeline configuration.

use nnet::dpsgd::DpSgdConfig;
use std::path::PathBuf;

/// How the chunk-training jobs are scheduled, checkpointed, and retried
/// (the reproduction of the paper's Ray-based training topology).
///
/// None of these fields affect *what* is trained — the orchestrated run is
/// bitwise identical at any worker count — so they are excluded from the
/// run fingerprint that gates [`resume`](OrchestratorOptions::resume).
#[derive(Debug, Clone, Default)]
pub struct OrchestratorOptions {
    /// Worker threads for the job pool; `0` means one per logical core
    /// (honoring `RAYON_NUM_THREADS`).
    pub workers: usize,
    /// Directory for the checkpoint manifest, per-job model payloads, and
    /// the `events.jsonl` stream; `None` disables persistence.
    pub checkpoint_dir: Option<PathBuf>,
    /// Skip jobs the manifest can verify (same config fingerprint, intact
    /// payload digest) instead of retraining them.
    pub resume: bool,
    /// Retries after a job's first failed attempt (panic or error) before
    /// the run fails. `None` uses the orchestrator default.
    pub max_retries: Option<u32>,
    /// Test/CI fault injection (the chaos plan): comma-separated
    /// `job:class:count` entries (legacy `job:count` = transient). Also
    /// settable via `NETSHARE_INJECT_FAULT`. Malformed specs are a
    /// configuration error, never silently ignored.
    pub fault_spec: Option<String>,
    /// Watchdog wall-clock budget per job attempt (seconds); an attempt
    /// running past it is cooperatively cancelled and retried. `None`
    /// disables the deadline.
    pub max_job_secs: Option<f64>,
    /// Verified checkpoint generations retained per job (older ones are
    /// pruned). `None` uses the orchestrator default (3).
    pub keep_generations: Option<usize>,
    /// Divergence-sentinel rollbacks allowed per training job before the
    /// job fails. `None` uses the sentinel default.
    pub rollback_budget: Option<u32>,
    /// Test/CI divergence injection: `"<job-id>:<step>"` poisons the named
    /// job's model with a NaN at that generator step, forcing the sentinel
    /// to roll back. Also settable via `NETSHARE_INJECT_DIVERGENCE`.
    pub divergence_spec: Option<String>,
}

/// Which public dataset seeds the DP pre-training (paper Fig. 5's
/// "DP Pretrained-SAME" vs "DP Pretrained-DIFF").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DpPretrainSource {
    /// Same-domain public data (CAIDA-Chicago-2015-like backbone trace).
    #[default]
    SameDomain,
    /// Different-domain public data (data-center trace) — the paper shows
    /// this gives much smaller gains.
    DifferentDomain,
}

/// Differential-privacy options for [`crate::NetShare`].
#[derive(Debug, Clone, Copy)]
pub struct DpOptions {
    /// DP-SGD noise multiplier σ (per-coordinate noise stddev is
    /// σ·clip_norm on the per-batch gradient sum).
    pub noise_multiplier: f32,
    /// Per-example gradient clipping norm.
    pub clip_norm: f32,
    /// δ for the reported (ε, δ) guarantee.
    pub delta: f64,
    /// Generator steps of *public* pre-training before the DP fine-tune
    /// (paper Insight 4). Zero reproduces "Naive DP".
    pub public_pretrain_steps: usize,
    /// Which public dataset to pre-train on.
    pub pretrain_source: DpPretrainSource,
}

impl DpOptions {
    /// The DP-SGD configuration for the critic.
    pub fn dpsgd(&self) -> DpSgdConfig {
        DpSgdConfig {
            clip_norm: self.clip_norm,
            noise_multiplier: self.noise_multiplier,
        }
    }
}

/// End-to-end NetShare configuration.
#[derive(Debug, Clone)]
pub struct NetShareConfig {
    /// Number of fixed-time chunks `M` (paper default: 10). `1` disables
    /// chunked fine-tuning and reproduces the monolithic "NetShare-V0".
    pub n_chunks: usize,
    /// Maximum records (flow datasets) or packets (packet datasets) per
    /// five-tuple sequence within a chunk; longer sequences truncate.
    pub max_seq_len: usize,
    /// Generator steps for the seed chunk (and for V0's single model).
    pub seed_steps: usize,
    /// Generator steps for each fine-tuned chunk (≪ `seed_steps`; this is
    /// where the Insight-3 CPU-hours saving comes from).
    pub finetune_steps: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Critic steps per generator step.
    pub n_critic: usize,
    /// WGAN weight-clipping bound for the critics.
    pub weight_clip: f32,
    /// Weight of the auxiliary (metadata-only) critic.
    pub aux_weight: f32,
    /// IP2Vec embedding width for ports/protocols.
    pub embed_dim: usize,
    /// Number of public packets used to train the IP2Vec dictionary.
    pub ip2vec_public_packets: usize,
    /// Whether flow records carry labels to model (labeled datasets).
    pub with_labels: bool,
    /// Whether to append the Insight-3 flow tags (start flag + chunk
    /// presence bits) to the metadata. Disabling is an ablation knob; the
    /// tag dimensions are still allocated but zeroed so architectures
    /// stay comparable.
    pub use_flow_tags: bool,
    /// Master RNG seed.
    pub seed: u64,
    /// Differential privacy; `None` trains non-privately.
    pub dp: Option<DpOptions>,
    /// Job scheduling, checkpointing, and fault tolerance.
    pub orchestrator: OrchestratorOptions,
}

impl NetShareConfig {
    /// Paper-shaped defaults scaled to CPU experiments.
    pub fn default_config() -> Self {
        NetShareConfig {
            n_chunks: 10,
            max_seq_len: 8,
            seed_steps: 300,
            finetune_steps: 60,
            batch_size: 32,
            lr: 1e-3,
            n_critic: 2,
            weight_clip: 0.1,
            aux_weight: 1.0,
            embed_dim: 12,
            ip2vec_public_packets: 12_000,
            with_labels: false,
            use_flow_tags: true,
            seed: 17,
            dp: None,
            orchestrator: OrchestratorOptions::default(),
        }
    }

    /// A fast configuration for tests and examples (minutes → seconds).
    pub fn fast() -> Self {
        NetShareConfig {
            n_chunks: 4,
            max_seq_len: 5,
            seed_steps: 60,
            finetune_steps: 15,
            batch_size: 24,
            ip2vec_public_packets: 3_000,
            embed_dim: 8,
            ..NetShareConfig::default_config()
        }
    }

    /// The "NetShare-V0" ablation: one monolithic model over the whole
    /// trace (no chunking, no fine-tuning) — the intermediate design of
    /// paper Fig. 4 that costs ~10× more CPU for the same data.
    pub fn v0_from(mut self) -> Self {
        // All records in one chunk, all trained at full (seed) depth.
        self.n_chunks = 1;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v0_collapses_to_one_chunk() {
        let cfg = NetShareConfig::default_config().v0_from();
        assert_eq!(cfg.n_chunks, 1);
    }

    #[test]
    fn dp_options_map_to_dpsgd() {
        let dp = DpOptions {
            noise_multiplier: 1.3,
            clip_norm: 0.7,
            delta: 1e-5,
            public_pretrain_steps: 10,
            pretrain_source: DpPretrainSource::SameDomain,
        };
        let cfg = dp.dpsgd();
        assert_eq!(cfg.noise_multiplier, 1.3);
        assert_eq!(cfg.clip_norm, 0.7);
    }
}
