//! Post-processing: derived fields and the optional privacy extensions.
//!
//! The paper (§5) ships two "optional domain-specific privacy extensions
//! that can be applied to the generated traces: (1) IP transformation
//! which transfers synthetic IPs to a user-specified range or a default
//! private range; (2) specific attributes (e.g., IP addresses/port
//! numbers/protocol) can be retrained to a user-desired distribution".
//! Derived-field regeneration (the IPv4 checksum) happens in
//! `nettrace::pcap` when a trace is serialized; [`to_pcap_bytes`] is the
//! convenience wrapper.

use nettrace::{FlowTrace, PacketTrace};
use rand::prelude::*;
use std::collections::BTreeMap;

/// Default private target range: 10.0.0.0/8.
pub const DEFAULT_PRIVATE_BASE: u32 = 0x0a00_0000;
/// Default private prefix length.
pub const DEFAULT_PRIVATE_PREFIX: u32 = 8;

/// Deterministically remaps an IP into `base/prefix`, preserving identity
/// structure: equal inputs map to equal outputs, distinct inputs collide
/// only by hash accident in the smaller host space.
fn remap_ip(ip: u32, base: u32, prefix: u32, salt: u64) -> u32 {
    assert!(prefix <= 31, "prefix must leave host bits");
    let host_bits = 32 - prefix;
    let mask = if host_bits == 32 { u32::MAX } else { (1u32 << host_bits) - 1 };
    // SplitMix64-style hash of (ip, salt).
    let mut x = (ip as u64) ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (base & !mask) | ((x as u32) & mask)
}

/// IP transformation over a flow trace: every source/destination address
/// is consistently remapped into `base/prefix`.
pub fn transform_ips_flow(trace: &mut FlowTrace, base: u32, prefix: u32, salt: u64) {
    for f in &mut trace.flows {
        f.five_tuple.src_ip = remap_ip(f.five_tuple.src_ip, base, prefix, salt);
        f.five_tuple.dst_ip = remap_ip(f.five_tuple.dst_ip, base, prefix, salt);
    }
}

/// IP transformation over a packet trace.
pub fn transform_ips_packet(trace: &mut PacketTrace, base: u32, prefix: u32, salt: u64) {
    for p in &mut trace.packets {
        p.five_tuple.src_ip = remap_ip(p.five_tuple.src_ip, base, prefix, salt);
        p.five_tuple.dst_ip = remap_ip(p.five_tuple.dst_ip, base, prefix, salt);
    }
}

/// Attribute retraining: resamples every destination port from a
/// user-specified distribution, consistently per original port value
/// (so flows that shared a service still do).
pub fn retrain_dst_ports_flow(
    trace: &mut FlowTrace,
    distribution: &[(u16, f64)],
    seed: u64,
) {
    assert!(!distribution.is_empty(), "need a non-empty distribution");
    let total: f64 = distribution.iter().map(|(_, w)| w).sum();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mapping: BTreeMap<u16, u16> = BTreeMap::new();
    for f in &mut trace.flows {
        let new = *mapping.entry(f.five_tuple.dst_port).or_insert_with(|| {
            let mut u = rng.gen::<f64>() * total;
            for &(p, w) in distribution {
                if u < w {
                    return p;
                }
                u -= w;
            }
            // lint: allow(panic-in-lib) distribution verified non-empty by the assert above
            distribution.last().unwrap().0
        });
        f.five_tuple.dst_port = new;
    }
}

/// Serializes a generated packet trace to pcap bytes, regenerating the
/// IPv4 checksum for every packet (the paper's two-step derived-field
/// generation).
pub fn to_pcap_bytes(trace: &PacketTrace) -> Vec<u8> {
    nettrace::pcap::write_pcap(trace)
}

/// Serializes a generated flow trace to NetFlow CSV.
pub fn to_netflow_csv(trace: &FlowTrace) -> String {
    nettrace::netflow::write_netflow_csv(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::{FiveTuple, FlowRecord, PacketRecord, Protocol};

    fn flow_trace() -> FlowTrace {
        let mk = |src, dst, dp| {
            FlowRecord::new(FiveTuple::new(src, dst, 1000, dp, Protocol::Tcp), 0.0, 1.0, 1, 40)
        };
        FlowTrace::from_records(vec![
            mk(0xc0a80101, 0x08080808, 80),
            mk(0xc0a80101, 0x08080404, 443),
            mk(0xc0a80102, 0x08080808, 80),
        ])
    }

    #[test]
    fn ip_transform_lands_in_range_and_preserves_identity() {
        let mut t = flow_trace();
        transform_ips_flow(&mut t, DEFAULT_PRIVATE_BASE, DEFAULT_PRIVATE_PREFIX, 42);
        for f in &t.flows {
            assert_eq!(f.five_tuple.src_ip >> 24, 10, "src in 10/8");
            assert_eq!(f.five_tuple.dst_ip >> 24, 10, "dst in 10/8");
        }
        // Rows 0 and 1 shared a source; rows 0 and 2 shared a destination.
        assert_eq!(t.flows[0].five_tuple.src_ip, t.flows[1].five_tuple.src_ip);
        assert_eq!(t.flows[0].five_tuple.dst_ip, t.flows[2].five_tuple.dst_ip);
        assert_ne!(t.flows[0].five_tuple.src_ip, t.flows[2].five_tuple.src_ip);
    }

    #[test]
    fn ip_transform_is_salt_dependent() {
        let mut a = flow_trace();
        let mut b = flow_trace();
        transform_ips_flow(&mut a, DEFAULT_PRIVATE_BASE, 8, 1);
        transform_ips_flow(&mut b, DEFAULT_PRIVATE_BASE, 8, 2);
        assert_ne!(a.flows[0].five_tuple.src_ip, b.flows[0].five_tuple.src_ip);
    }

    #[test]
    fn packet_transform_works_too() {
        let ft = FiveTuple::new(0x01020304, 0x05060708, 1, 2, Protocol::Udp);
        let mut t = PacketTrace::from_records(vec![PacketRecord::new(0, ft, 100)]);
        transform_ips_packet(&mut t, 0xac10_0000, 12, 7); // 172.16/12
        assert_eq!(t.packets[0].five_tuple.src_ip >> 20, 0xac10_0000 >> 20);
    }

    #[test]
    fn port_retraining_matches_target_distribution() {
        let mut t = FlowTrace::from_records(
            (0..2000u32)
                .map(|i| {
                    FlowRecord::new(
                        FiveTuple::new(1, 2, 1000, (i % 997) as u16, Protocol::Tcp),
                        i as f64,
                        1.0,
                        1,
                        40,
                    )
                })
                .collect(),
        );
        retrain_dst_ports_flow(&mut t, &[(80, 0.7), (443, 0.3)], 5);
        let p80 = t.flows.iter().filter(|f| f.five_tuple.dst_port == 80).count();
        let frac = p80 as f64 / t.len() as f64;
        assert!((frac - 0.7).abs() < 0.08, "got {frac}");
        assert!(t
            .flows
            .iter()
            .all(|f| f.five_tuple.dst_port == 80 || f.five_tuple.dst_port == 443));
    }

    #[test]
    fn port_retraining_is_consistent_per_original_port() {
        let mut t = FlowTrace::from_records(vec![
            FlowRecord::new(FiveTuple::new(1, 2, 1000, 8080, Protocol::Tcp), 0.0, 1.0, 1, 40),
            FlowRecord::new(FiveTuple::new(3, 4, 1001, 8080, Protocol::Tcp), 1.0, 1.0, 1, 40),
        ]);
        retrain_dst_ports_flow(&mut t, &[(80, 0.5), (443, 0.5)], 9);
        assert_eq!(t.flows[0].five_tuple.dst_port, t.flows[1].five_tuple.dst_port);
    }

    #[test]
    fn pcap_bytes_have_valid_checksums() {
        let ft = FiveTuple::new(0x0a000001, 0x0a000002, 1234, 80, Protocol::Tcp);
        let t = PacketTrace::from_records(vec![PacketRecord::new(0, ft, 60)]);
        let bytes = to_pcap_bytes(&t);
        let back = nettrace::pcap::read_pcap(&bytes).unwrap();
        assert_eq!(back.len(), 1);
    }
}
