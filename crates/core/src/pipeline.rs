//! The end-to-end NetShare pipeline (paper Fig. 9).

use crate::artifact::ModelArtifact;
use crate::chunking::{chunk_flows, chunk_packets, Chunked};
use crate::config::NetShareConfig;
use crate::flowcodec::FlowCodec;
use crate::packetcodec::PacketCodec;
use crate::tuplecodec::TupleCodec;
use doppelganger::{DgConfig, DoppelGanger, SentinelConfig, TimeSeriesDataset, TrainControl};
use nettrace::{aggregate_flows, AggregationConfig, FlowTrace, PacketTrace};
use orchestrator::{
    ChaosPlan, Event, EventLog, JobInputs, JobSpec, OrchestratorError, Plan, RunOptions,
    WatchdogOptions,
};
use rand::prelude::*;
use std::fmt;
use std::path::PathBuf;

/// Pipeline errors.
#[derive(Debug)]
pub enum PipelineError {
    /// The input trace has no records.
    EmptyTrace,
    /// A configuration value failed validation before any training ran
    /// (e.g. a malformed fault or divergence injection spec).
    Config(String),
    /// A checkpoint/manifest/event-stream filesystem operation failed.
    Checkpoint {
        /// Offending path.
        path: PathBuf,
        /// OS error text.
        message: String,
    },
    /// A training job exhausted its retries (watchdog cancellations,
    /// divergence past the rollback budget, panics, or plain errors).
    Training {
        /// Job id.
        job: String,
        /// Attempts executed.
        attempts: u32,
        /// Final failure (panic message or job error).
        error: String,
    },
    /// Training failed inside the orchestrator for a non-job reason (an
    /// invalid job plan or an undecodable artifact).
    Orchestrator(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::EmptyTrace => write!(f, "cannot fit NetShare on an empty trace"),
            PipelineError::Config(m) => write!(f, "invalid configuration: {m}"),
            PipelineError::Checkpoint { path, message } => {
                write!(f, "checkpoint I/O failed at {}: {message}", path.display())
            }
            PipelineError::Training { job, attempts, error } => {
                write!(f, "training job {job} failed after {attempts} attempt(s): {error}")
            }
            PipelineError::Orchestrator(m) => write!(f, "chunk training failed: {m}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<OrchestratorError> for PipelineError {
    fn from(e: OrchestratorError) -> Self {
        match e {
            OrchestratorError::Io { path, message } => PipelineError::Checkpoint { path, message },
            OrchestratorError::JobFailed { job, attempts, error } => {
                PipelineError::Training { job, attempts, error }
            }
            other => PipelineError::Orchestrator(other.to_string()),
        }
    }
}

enum Codec {
    Flow(FlowCodec),
    Packet(PacketCodec),
}

/// Which sampler the generation loops draw from.
///
/// At default precision the two paths are **bitwise-equal** (the
/// `infer_equiv` suite proves it), so this is purely a speed knob; the
/// reference path survives as the oracle the fast path is checked
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplePath {
    /// The training-graph sampler (`DoppelGanger::sample`): rebuilds
    /// activations per call. Kept as the equivalence oracle.
    Reference,
    /// The frozen arena-backed sampler (`DoppelGanger::sample_fast`):
    /// no gradient caches, recycled activations. The default.
    Fast,
}

/// A fitted NetShare model: one DoppelGANger per chunk, plus the codec and
/// chunk geometry needed to decode generated samples back into a trace.
pub struct NetShare {
    cfg: NetShareConfig,
    codec: Codec,
    /// Per-chunk models (`None` for chunks with no training data).
    models: Vec<Option<DoppelGanger>>,
    bounds: Vec<(f64, f64)>,
    /// Real record/packet counts per chunk (drives proportional sampling).
    chunk_counts: Vec<usize>,
    rng: StdRng,
    /// Wall-clock seconds of the fit call (parallel chunks overlap).
    pub wall_seconds: f64,
    /// Summed per-chunk training seconds — the "total CPU hours" axis of
    /// the paper's Fig. 4 (machines run chunks simultaneously, so wall
    /// time underestimates cost).
    pub cpu_seconds: f64,
    /// Sampling rates (batch/chunk size) per trained chunk, for the DP
    /// accountant.
    dp_rates: Vec<(f64, u64)>,
    /// The orchestrator event stream of the fit (also mirrored to
    /// `<checkpoint_dir>/events.jsonl` when checkpointing is on).
    events: Vec<Event>,
}

/// What [`NetShare::train_chunks`] hands back to the fit entry points:
/// per-chunk models (`None` for empty chunks), summed per-chunk CPU
/// seconds, wall seconds, per-chunk DP sampling rates, and the
/// orchestrator event stream.
type ChunkTraining = (
    Vec<Option<DoppelGanger>>,
    f64,
    f64,
    Vec<(f64, u64)>,
    Vec<Event>,
);

impl NetShare {
    /// Fits on a flow-header trace (the NetFlow pipeline).
    pub fn fit_flows(trace: &FlowTrace, cfg: &NetShareConfig) -> Result<NetShare, PipelineError> {
        if trace.is_empty() {
            return Err(PipelineError::EmptyTrace);
        }
        let _span = telemetry::span!("fit_flows");
        let public_pkts =
            trace_synth::public::ip2vec_public_corpus(cfg.ip2vec_public_packets, cfg.seed ^ 0xab);
        let tuples = TupleCodec::fit_public(&public_pkts, cfg.embed_dim, cfg.seed ^ 0xcd);
        // In DP mode, normalization ranges must not depend on private data.
        let mut codec = if cfg.dp.is_some() {
            let public_flows = aggregate_flows(&public_pkts, AggregationConfig::default());
            FlowCodec::fit(&public_flows, tuples, cfg.n_chunks, cfg.with_labels)
        } else {
            FlowCodec::fit(trace, tuples, cfg.n_chunks, cfg.with_labels)
        };
        codec.tags_enabled = cfg.use_flow_tags;

        let chunked = chunk_flows(trace, cfg.n_chunks);
        let datasets: Vec<Option<TimeSeriesDataset>> = chunked
            .chunks
            .iter()
            .enumerate()
            .map(|(ci, groups)| {
                if groups.is_empty() {
                    return None;
                }
                let mut meta = Vec::with_capacity(groups.len());
                let mut seqs = Vec::with_capacity(groups.len());
                for g in groups {
                    let (m, s) = codec.encode_group(g, chunked.bounds[ci]);
                    meta.push(m);
                    seqs.push(s);
                }
                Some(TimeSeriesDataset::new(meta, seqs, cfg.max_seq_len))
            })
            .collect();

        let (models, cpu_seconds, wall_seconds, dp_rates, events) = Self::train_chunks(
            cfg,
            codec.meta_spec(),
            codec.record_spec(),
            &datasets,
            || {
                // Public pre-training dataset for DP mode: the chosen
                // public trace run through the same encode path.
                let src = pretrain_packets(cfg, &public_pkts);
                let public_flows = aggregate_flows(&src, AggregationConfig::default());
                let pc = chunk_flows(&public_flows, cfg.n_chunks);
                let mut meta = Vec::new();
                let mut seqs = Vec::new();
                for (ci, groups) in pc.chunks.iter().enumerate() {
                    for g in groups {
                        let (m, s) = codec.encode_group(g, pc.bounds[ci]);
                        meta.push(m);
                        seqs.push(s);
                    }
                }
                TimeSeriesDataset::new(meta, seqs, cfg.max_seq_len)
            },
        )?;

        Ok(NetShare {
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xef),
            codec: Codec::Flow(codec),
            models,
            bounds: chunked.bounds.clone(),
            chunk_counts: chunk_item_counts(&chunked),
            wall_seconds,
            cpu_seconds,
            dp_rates,
            events,
            cfg: cfg.clone(),
        })
    }

    /// Fits on per-epoch flow traces by first merging them (Insight 1).
    pub fn fit_flow_epochs(
        epochs: &[FlowTrace],
        cfg: &NetShareConfig,
    ) -> Result<NetShare, PipelineError> {
        let merged = nettrace::epoch::merge_flow_epochs(epochs);
        NetShare::fit_flows(&merged, cfg)
    }

    /// Fits on a packet-header trace (the PCAP pipeline).
    pub fn fit_packets(
        trace: &PacketTrace,
        cfg: &NetShareConfig,
    ) -> Result<NetShare, PipelineError> {
        if trace.is_empty() {
            return Err(PipelineError::EmptyTrace);
        }
        let _span = telemetry::span!("fit_packets");
        let public_pkts =
            trace_synth::public::ip2vec_public_corpus(cfg.ip2vec_public_packets, cfg.seed ^ 0xab);
        let tuples = TupleCodec::fit_public(&public_pkts, cfg.embed_dim, cfg.seed ^ 0xcd);
        let mut codec = if cfg.dp.is_some() {
            PacketCodec::fit(&public_pkts, tuples, cfg.n_chunks)
        } else {
            PacketCodec::fit(trace, tuples, cfg.n_chunks)
        };
        codec.tags_enabled = cfg.use_flow_tags;

        let chunked = chunk_packets(trace, cfg.n_chunks);
        let datasets: Vec<Option<TimeSeriesDataset>> = chunked
            .chunks
            .iter()
            .enumerate()
            .map(|(ci, groups)| {
                if groups.is_empty() {
                    return None;
                }
                let mut meta = Vec::with_capacity(groups.len());
                let mut seqs = Vec::with_capacity(groups.len());
                for g in groups {
                    let (m, s) = codec.encode_group(g, chunked.bounds[ci]);
                    meta.push(m);
                    seqs.push(s);
                }
                Some(TimeSeriesDataset::new(meta, seqs, cfg.max_seq_len))
            })
            .collect();

        let (models, cpu_seconds, wall_seconds, dp_rates, events) = Self::train_chunks(
            cfg,
            codec.meta_spec(),
            codec.record_spec(),
            &datasets,
            || {
                let src = pretrain_packets(cfg, &public_pkts);
                let pc = chunk_packets(&src, cfg.n_chunks);
                let mut meta = Vec::new();
                let mut seqs = Vec::new();
                for (ci, groups) in pc.chunks.iter().enumerate() {
                    for g in groups {
                        let (m, s) = codec.encode_group(g, pc.bounds[ci]);
                        meta.push(m);
                        seqs.push(s);
                    }
                }
                TimeSeriesDataset::new(meta, seqs, cfg.max_seq_len)
            },
        )?;

        Ok(NetShare {
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xef),
            codec: Codec::Packet(codec),
            models,
            bounds: chunked.bounds.clone(),
            chunk_counts: chunk_item_counts(&chunked),
            wall_seconds,
            cpu_seconds,
            dp_rates,
            events,
            cfg: cfg.clone(),
        })
    }

    /// Shared chunk-training logic, run as a job DAG on the orchestrator
    /// (mirroring the paper's Ray topology): one `pretrain` job — seed
    /// chunk at full depth, or public pre-training in DP mode — and one
    /// `chunk-<i>` fine-tune job per non-empty chunk, each depending on
    /// the pretrain artifact.
    ///
    /// Jobs communicate through [`ModelArtifact`]s (parameters + sampler
    /// RNG state), and the final models are rebuilt *from artifacts* on
    /// both the live and the resumed path, so the result is bitwise
    /// identical at any worker count and across kill/resume.
    fn train_chunks(
        cfg: &NetShareConfig,
        meta_spec: doppelganger::FeatureSpec,
        record_spec: doppelganger::FeatureSpec,
        datasets: &[Option<TimeSeriesDataset>],
        build_public: impl Fn() -> TimeSeriesDataset + Send + Sync,
    ) -> Result<ChunkTraining, PipelineError> {
        // The pretrained model every chunk fine-tunes from. No data at all
        // (every chunk empty) means nothing to train.
        let Some(seed_idx) = datasets.iter().position(|d| d.is_some()) else {
            let none: Vec<Option<DoppelGanger>> = datasets.iter().map(|_| None).collect();
            return Ok((none, 0.0, 0.0, Vec::new(), Vec::new()));
        };
        let seed_data = datasets[seed_idx]
            .as_ref()
            .expect("seed_idx points at a non-empty chunk"); // lint: allow(panic-in-lib) seed_idx was selected from the non-empty chunks (lint: allow(panic-in-lib) seed_idx was selected from the non-empty chunks)

        let base_dg = |steps: usize, seed: u64, dp: Option<nnet::dpsgd::DpSgdConfig>| {
            let mut dg = DgConfig::small(meta_spec.clone(), record_spec.clone(), cfg.max_seq_len);
            dg.gen_steps = steps;
            dg.batch_size = cfg.batch_size;
            // DP fine-tuning uses a reduced learning rate so the noisy
            // gradients refine (rather than overwrite) the pre-trained
            // weights — the mechanism behind the Insight-4 gains.
            dg.lr = if dp.is_some() { cfg.lr * 0.3 } else { cfg.lr };
            dg.n_critic = cfg.n_critic;
            dg.weight_clip = cfg.weight_clip;
            dg.aux_weight = cfg.aux_weight;
            dg.seed = seed;
            dg.dp = dp;
            dg
        };
        // Steps are specified for the *whole* trace and scaled to each
        // chunk's share of the data (training effort ∝ data seen, like the
        // epoch-based training in the paper). This is what makes chunking
        // cheaper in total CPU: the seed chunk gets full-depth training on
        // 1/M of the data and every other chunk only a short fine-tune.
        let total_items: usize = datasets
            .iter()
            .flatten()
            .map(|d| d.len())
            .sum::<usize>()
            .max(1);

        let orch = &cfg.orchestrator;
        // Injection specs are validated up front: a typo in a chaos knob
        // must abort the run with exit-code-2 semantics, not silently
        // train without the fault the CI run was counting on.
        let chaos = orch
            .fault_spec
            .as_deref()
            .map(ChaosPlan::parse)
            .transpose()
            .map_err(PipelineError::Config)?;
        let divergence = orch
            .divergence_spec
            .as_deref()
            .map(parse_divergence_spec)
            .transpose()
            .map_err(PipelineError::Config)?;
        let mut events = EventLog::new();
        if std::env::var("NETSHARE_DEBUG_STEPS").is_ok() {
            events = events.with_stderr();
        }
        if let Some(dir) = &orch.checkpoint_dir {
            std::fs::create_dir_all(dir).map_err(|e| PipelineError::Checkpoint {
                path: dir.clone(),
                message: e.to_string(),
            })?;
            let path = dir.join("events.jsonl");
            events = events.with_file(&path).map_err(|e| PipelineError::Checkpoint {
                path,
                message: e.to_string(),
            })?;
        }
        let events = std::sync::Arc::new(events);
        // With the sanitizer compiled in, route its trips into this run's
        // event stream: the hook fires on the tripping worker thread just
        // before the fatal panic, so the layer-attributed diagnostic is on
        // disk before the orchestrator's panic recovery files the generic
        // JobRetried/JobFailed.
        #[cfg(feature = "sanitize")]
        {
            let sink = std::sync::Arc::clone(&events);
            nnet::sanitize::set_hook(move |inc: &nnet::sanitize::Incident| {
                sink.emit(Event::SanitizerTripped {
                    scope: inc.scope.clone(),
                    op: inc.op.clone(),
                    kind: inc.kind.name().to_string(),
                    detail: inc.detail.clone(),
                });
            });
        }

        // Bridge telemetry spans into the same JSONL stream. With the
        // `telemetry` feature off this installs nothing (the sink setter is
        // a no-op and spans never fire). Like the sanitize hook, the sink
        // is process-global and last-writer-wins across concurrent runs.
        {
            let sink = std::sync::Arc::clone(&events);
            telemetry::span::set_span_sink(move |sp: &telemetry::span::SpanEvent| {
                sink.emit(Event::Span {
                    path: sp.path.clone(),
                    start_us: sp.start_ns / 1_000,
                    duration_us: sp.duration_ns / 1_000,
                    depth: sp.depth,
                });
            });
        }

        let scaled = |job: &str, steps: usize, len: usize| -> usize {
            let v = ((steps as f64 * len as f64 / total_items as f64).ceil() as usize).max(5);
            events.emit(Event::ScaledSteps {
                job: job.to_string(),
                requested: steps as u64,
                scaled: v as u64,
                items: len as u64,
                total_items: total_items as u64,
            });
            v
        };
        let emit_losses = |job: &str, model: &DoppelGanger| {
            events.emit(Event::Losses {
                job: job.to_string(),
                d_loss: model.stats.d_loss.last().copied().unwrap_or(0.0) as f64,
                g_loss: model.stats.g_loss.last().copied().unwrap_or(0.0) as f64,
                critic_steps: model.stats.critic_steps,
                gen_steps: model.stats.g_loss.len() as u64,
            });
        };

        // Cooperative training controls: the cancel probe surfaces
        // watchdog / run-failure cancellations between generator steps,
        // and the observer feeds the watchdog heartbeat (and the
        // `train.steps_per_sec` gauge).
        let control_from = |inp: &JobInputs<ModelArtifact>| -> TrainControl {
            let token = inp.cancel.clone();
            let heartbeat = inp.heartbeat.clone();
            TrainControl {
                cancel: Some(std::sync::Arc::new(move || token.reason())),
                observer: Some(std::sync::Arc::new(move |steps| heartbeat.beat(steps))),
            }
        };
        let divergence = &divergence;
        // All training runs under the divergence sentinel; a healthy run
        // is bitwise-identical to plain `train_steps`, so the pool's
        // determinism guarantees are untouched.
        let train_guarded = |model: &mut DoppelGanger,
                             data: &TimeSeriesDataset,
                             steps: usize,
                             job: &str,
                             inp: &JobInputs<ModelArtifact>,
                             dp: bool|
         -> Result<(), String> {
            let mut scfg = SentinelConfig::default();
            if let Some(budget) = orch.rollback_budget {
                scfg.rollback_budget = budget;
            }
            if dp {
                // A rollback would replay DP-SGD steps the accountant has
                // already charged (its state is not snapshotted), so DP
                // jobs get no budget: divergence fails the attempt loudly.
                scfg.rollback_budget = 0;
            } else if let Some((dj, at)) = divergence {
                if dj == job {
                    scfg.inject_non_finite_at = Some(*at);
                }
            }
            let rollbacks = model
                .train_steps_sentinel(data, steps, &scfg, &control_from(inp))
                .map_err(|e| e.to_string())?;
            for (i, rb) in rollbacks.iter().enumerate() {
                events.emit(Event::SentinelRollback {
                    job: job.to_string(),
                    step: rb.step,
                    reason: rb.reason.clone(),
                    rollback: (i + 1) as u32,
                    lr: rb.lr as f64,
                });
            }
            Ok(())
        };

        // --- the job DAG --------------------------------------------------
        let base_dg = &base_dg;
        let scaled = &scaled;
        let emit_losses = &emit_losses;
        let build_public = &build_public;
        let train_guarded = &train_guarded;
        let mut jobs: Vec<JobSpec<'_, ModelArtifact>> = Vec::with_capacity(datasets.len() + 1);
        jobs.push(JobSpec::new(
            "pretrain",
            Vec::<String>::new(),
            move |inp: &JobInputs<ModelArtifact>| {
                let _span = telemetry::span!("pretrain");
                let mut model = DoppelGanger::new(base_dg(0, cfg.seed ^ 0x91, None));
                match cfg.dp {
                    Some(dp_opts) => {
                        // DP: pre-train (non-privately) on public data.
                        let public = build_public();
                        train_guarded(
                            &mut model,
                            &public,
                            dp_opts.public_pretrain_steps,
                            "pretrain",
                            inp,
                            false,
                        )?;
                    }
                    None => {
                        // Non-DP: seed chunk trains from scratch at full
                        // depth (scaled to its data share).
                        train_guarded(
                            &mut model,
                            seed_data,
                            scaled("pretrain", cfg.seed_steps, seed_data.len()),
                            "pretrain",
                            inp,
                            false,
                        )?;
                    }
                }
                emit_losses("pretrain", &model);
                Ok(ModelArtifact::capture(&model, None))
            },
        ));
        for (ci, data) in datasets.iter().enumerate() {
            let Some(data) = data.as_ref() else { continue };
            let id = format!("chunk-{ci}");
            jobs.push(JobSpec::new(
                id.clone(),
                ["pretrain"],
                move |inp: &JobInputs<ModelArtifact>| {
                    let _span = telemetry::span!("chunk[{ci}]/fine_tune");
                    let seed_model = inp
                        .dep("pretrain")?
                        .rebuild(base_dg(0, cfg.seed ^ 0x91, None))?;
                    let (model, rate) = match cfg.dp {
                        Some(dp_opts) => {
                            // Every chunk (including the first) DP
                            // fine-tunes from the public model.
                            let mut m = DoppelGanger::from_pretrained(
                                base_dg(0, cfg.seed ^ (ci as u64) << 8, Some(dp_opts.dpsgd())),
                                &seed_model,
                            );
                            train_guarded(
                                &mut m,
                                data,
                                scaled(&id, cfg.finetune_steps, data.len()),
                                &id,
                                inp,
                                true,
                            )?;
                            let q = (cfg.batch_size as f64 / data.len() as f64).min(1.0);
                            let steps = m.dp_steps();
                            (m, Some((q, steps)))
                        }
                        None if ci == seed_idx => {
                            // The seed model *is* this chunk's model.
                            // (Cloning is avoided by retraining 0 extra
                            // steps from its artifact.)
                            let mut m = DoppelGanger::from_pretrained(
                                base_dg(0, cfg.seed ^ 0x91, None),
                                &seed_model,
                            );
                            train_guarded(&mut m, data, 0, &id, inp, false)?;
                            (m, None)
                        }
                        None => {
                            let mut m = DoppelGanger::from_pretrained(
                                base_dg(0, cfg.seed ^ (ci as u64) << 8, None),
                                &seed_model,
                            );
                            train_guarded(
                                &mut m,
                                data,
                                scaled(&id, cfg.finetune_steps, data.len()),
                                &id,
                                inp,
                                false,
                            )?;
                            (m, None)
                        }
                    };
                    emit_losses(&id, &model);
                    Ok(ModelArtifact::capture(&model, rate))
                },
            ));
        }
        let plan = Plan::new(jobs).map_err(PipelineError::Orchestrator)?;

        let defaults = RunOptions::default();
        let opts = RunOptions {
            workers: orch.workers,
            max_retries: orch.max_retries.unwrap_or(defaults.max_retries),
            checkpoint_dir: orch.checkpoint_dir.clone(),
            resume: orch.resume,
            run_key: run_key(cfg, &meta_spec, &record_spec, datasets),
            chaos,
            keep_generations: orch.keep_generations.unwrap_or(defaults.keep_generations),
            watchdog: WatchdogOptions {
                max_job_secs: orch.max_job_secs,
                ..WatchdogOptions::default()
            },
            ..defaults
        };
        let report = orchestrator::run(&plan, &opts, &events)?;

        // --- rebuild models from artifacts --------------------------------
        let mut models = Vec::with_capacity(datasets.len());
        let mut dp_rates = Vec::new();
        for (ci, data) in datasets.iter().enumerate() {
            if data.is_none() {
                models.push(None);
                continue;
            }
            let artifact = report
                .outputs
                .get(&format!("chunk-{ci}"))
                .ok_or_else(|| PipelineError::Orchestrator(format!("missing chunk-{ci} output")))?;
            let dg_cfg = match cfg.dp {
                Some(dp_opts) => base_dg(0, cfg.seed ^ (ci as u64) << 8, Some(dp_opts.dpsgd())),
                None if ci == seed_idx => base_dg(0, cfg.seed ^ 0x91, None),
                None => base_dg(0, cfg.seed ^ (ci as u64) << 8, None),
            };
            let model = artifact.rebuild(dg_cfg).map_err(PipelineError::Orchestrator)?;
            if let Some(rate) = artifact.dp_rate {
                dp_rates.push(rate);
            }
            models.push(Some(model));
        }
        Ok((
            models,
            report.cpu_seconds,
            report.wall_seconds,
            dp_rates,
            events.events(),
        ))
    }

    /// Generates a synthetic flow trace of approximately `n` records,
    /// remerged in start-time order (the post-processing step).
    ///
    /// Draws from the frozen arena-backed sampler ([`SamplePath::Fast`]),
    /// whose output is bitwise-equal to the reference path (proven by the
    /// `infer_equiv` suite), so traces are byte-identical either way.
    ///
    /// # Panics
    /// Panics if the model was fit on packets.
    pub fn generate_flows(&mut self, n: usize) -> FlowTrace {
        self.generate_flows_via(n, SamplePath::Fast)
    }

    /// [`Self::generate_flows`] with an explicit sampler choice.
    ///
    /// # Panics
    /// Panics if the model was fit on packets.
    pub fn generate_flows_via(&mut self, n: usize, path: SamplePath) -> FlowTrace {
        let _span = telemetry::span!("generate_flows[{n}]");
        let codec = match &self.codec {
            Codec::Flow(c) => c,
            Codec::Packet(_) => panic!("model was fit on packets; call generate_packets"), // lint: allow(panic-in-lib) documented contract panic (see doc comment) (lint: allow(panic-in-lib) documented contract panic (see doc comment))
        };
        let total: usize = self.chunk_counts.iter().sum::<usize>().max(1);
        let mut flows = Vec::with_capacity(n);
        for ci in 0..self.models.len() {
            let want = (n as f64 * self.chunk_counts[ci] as f64 / total as f64).round() as usize;
            let Some(model) = self.models[ci].as_mut() else {
                continue;
            };
            let bounds = self.bounds[ci];
            let mut got = 0usize;
            while got < want {
                let take = ((want - got) / 2 + 1).clamp(1, 64);
                let batch = match path {
                    SamplePath::Reference => model.sample(take),
                    SamplePath::Fast => model.sample_fast(take),
                };
                for s in batch {
                    let recs = codec.decode_sample(&s.meta, &s.records, bounds);
                    got += recs.len();
                    flows.extend(recs);
                }
            }
        }
        let mut trace = FlowTrace::from_records(flows);
        trace.truncate(n);
        trace
    }

    /// Generates a synthetic packet trace of approximately `n` packets,
    /// remerged by raw timestamp.
    ///
    /// Draws from the frozen arena-backed sampler ([`SamplePath::Fast`]);
    /// see [`Self::generate_flows`] for the equivalence guarantee.
    ///
    /// # Panics
    /// Panics if the model was fit on flows.
    pub fn generate_packets(&mut self, n: usize) -> PacketTrace {
        self.generate_packets_via(n, SamplePath::Fast)
    }

    /// [`Self::generate_packets`] with an explicit sampler choice.
    ///
    /// # Panics
    /// Panics if the model was fit on flows.
    pub fn generate_packets_via(&mut self, n: usize, path: SamplePath) -> PacketTrace {
        let _span = telemetry::span!("generate_packets[{n}]");
        let codec = match &self.codec {
            Codec::Packet(c) => c,
            Codec::Flow(_) => panic!("model was fit on flows; call generate_flows"), // lint: allow(panic-in-lib) documented contract panic (see doc comment) (lint: allow(panic-in-lib) documented contract panic (see doc comment))
        };
        let total: usize = self.chunk_counts.iter().sum::<usize>().max(1);
        let mut packets = Vec::with_capacity(n);
        for ci in 0..self.models.len() {
            let want = (n as f64 * self.chunk_counts[ci] as f64 / total as f64).round() as usize;
            let Some(model) = self.models[ci].as_mut() else {
                continue;
            };
            let bounds = self.bounds[ci];
            let mut got = 0usize;
            while got < want {
                let take = ((want - got) / 2 + 1).clamp(1, 64);
                let batch = match path {
                    SamplePath::Reference => model.sample(take),
                    SamplePath::Fast => model.sample_fast(take),
                };
                for s in batch {
                    let recs = codec.decode_sample(&s.meta, &s.records, bounds);
                    got += recs.len();
                    packets.extend(recs);
                }
            }
        }
        let mut trace = PacketTrace::from_records(packets);
        trace.truncate(n);
        let _ = &self.rng; // reserved for future stochastic post-processing
        trace
    }

    /// The (ε, δ) privacy guarantee of the fitted model, `None` when DP is
    /// off. Chunks train on *disjoint* time slices, so parallel
    /// composition applies: ε is the maximum over chunks.
    pub fn epsilon(&self) -> Option<f64> {
        let dp = self.cfg.dp?;
        let eps = self
            .dp_rates
            .iter()
            .map(|&(q, steps)| {
                privacy::compute_epsilon(q, dp.noise_multiplier as f64, steps, dp.delta)
            })
            .fold(0.0f64, f64::max);
        Some(eps)
    }

    /// Number of chunk models actually trained.
    pub fn trained_chunks(&self) -> usize {
        self.models.iter().filter(|m| m.is_some()).count()
    }

    /// The orchestrator event stream of the fit: run/job lifecycle,
    /// retries, scaled step budgets, and final losses. Mirrored to
    /// `<checkpoint_dir>/events.jsonl` when checkpointing is enabled.
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

/// Selects the DP pre-training packet source per the configured
/// [`crate::config::DpPretrainSource`].
fn pretrain_packets(cfg: &NetShareConfig, same_domain: &PacketTrace) -> PacketTrace {
    match cfg.dp.map(|d| d.pretrain_source) {
        Some(crate::config::DpPretrainSource::DifferentDomain) => {
            trace_synth::dc::generate(same_domain.len().max(1_000), cfg.seed ^ 0x0d1ff)
        }
        _ => same_domain.clone(),
    }
}

/// Parses a `"<job-id>:<step>"` divergence-injection spec (the
/// `NETSHARE_INJECT_DIVERGENCE` grammar): poison the named job's model
/// with a NaN at that generator step so the sentinel must roll back.
pub fn parse_divergence_spec(spec: &str) -> Result<(String, u64), String> {
    let err = || {
        format!(
            "invalid divergence spec `{spec}`: expected `job:step` \
             with a non-negative integer step"
        )
    };
    let (job, step) = spec.rsplit_once(':').ok_or_else(err)?;
    if job.is_empty() {
        return Err(err());
    }
    let step: u64 = step.parse().map_err(|_| err())?;
    Ok((job.to_string(), step))
}

/// Fingerprints the *training-relevant* configuration and data geometry.
/// A manifest written under a different key is ignored on resume —
/// changing the seed, step budget, DP options, or the data itself must
/// never silently reuse stale checkpoints. Orchestration knobs (worker
/// count, retries, checkpoint dir, chaos faults) deliberately do not
/// participate: they change scheduling, never the trained bits. The
/// divergence-injection spec *does* participate — a forced rollback
/// changes the weights, so its checkpoints must not leak into clean runs.
fn run_key(
    cfg: &NetShareConfig,
    meta_spec: &doppelganger::FeatureSpec,
    record_spec: &doppelganger::FeatureSpec,
    datasets: &[Option<TimeSeriesDataset>],
) -> String {
    let lens: Vec<usize> = datasets
        .iter()
        .map(|d| d.as_ref().map_or(0, |d| d.len()))
        .collect();
    let div = match &cfg.orchestrator.divergence_spec {
        Some(spec) => format!("|div={spec}"),
        None => String::new(),
    };
    let desc = format!(
        "v1|seed={}|chunks={}|steps={}+{}|bs={}|lr={}|nc={}|wc={}|aux={}|maxlen={}|embed={}|labels={}|tags={}|dp={:?}|meta={}|rec={}|lens={:?}{div}",
        cfg.seed,
        cfg.n_chunks,
        cfg.seed_steps,
        cfg.finetune_steps,
        cfg.batch_size,
        cfg.lr,
        cfg.n_critic,
        cfg.weight_clip,
        cfg.aux_weight,
        cfg.max_seq_len,
        cfg.embed_dim,
        cfg.with_labels,
        cfg.use_flow_tags,
        cfg.dp,
        meta_spec.dim(),
        record_spec.dim(),
        lens,
    );
    format!("{:016x}", orchestrator::fnv1a64(desc.as_bytes()))
}

fn chunk_item_counts<T>(chunked: &Chunked<T>) -> Vec<usize> {
    chunked
        .chunks
        .iter()
        .map(|c| c.iter().map(|g| g.items.len()).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DpOptions;
    use trace_synth::{generate_flows as synth_flows, generate_packets as synth_packets, DatasetKind};

    fn tiny_cfg() -> NetShareConfig {
        let mut cfg = NetShareConfig::fast();
        cfg.n_chunks = 2;
        cfg.seed_steps = 12;
        cfg.finetune_steps = 4;
        cfg.ip2vec_public_packets = 1_200;
        cfg.max_seq_len = 4;
        cfg
    }

    #[test]
    fn flow_pipeline_end_to_end() {
        let real = synth_flows(DatasetKind::Ugr16, 600, 1);
        let mut model = NetShare::fit_flows(&real, &tiny_cfg()).unwrap();
        assert!(model.trained_chunks() >= 1);
        let synth = model.generate_flows(300);
        assert!(synth.len() >= 250 && synth.len() <= 300, "got {}", synth.len());
        assert!(synth
            .flows
            .windows(2)
            .all(|w| w[0].start_ms <= w[1].start_ms), "time-sorted output");
        assert!(synth.flows.iter().all(|f| f.packets >= 1));
    }

    #[test]
    fn packet_pipeline_end_to_end() {
        let real = synth_packets(DatasetKind::Caida, 600, 2);
        let mut model = NetShare::fit_packets(&real, &tiny_cfg()).unwrap();
        let synth = model.generate_packets(300);
        assert!(synth.len() >= 250 && synth.len() <= 300);
        assert!(synth.packets.iter().all(|p| p.packet_len >= 20));
    }

    #[test]
    fn empty_trace_is_an_error() {
        assert!(matches!(
            NetShare::fit_flows(&FlowTrace::new(), &tiny_cfg()),
            Err(PipelineError::EmptyTrace)
        ));
    }

    #[test]
    fn dp_mode_reports_epsilon() {
        let real = synth_flows(DatasetKind::Ugr16, 400, 3);
        let mut cfg = tiny_cfg();
        cfg.dp = Some(DpOptions {
            noise_multiplier: 1.0,
            clip_norm: 1.0,
            delta: 1e-5,
            public_pretrain_steps: 6,
            pretrain_source: Default::default(),
        });
        let mut model = NetShare::fit_flows(&real, &cfg).unwrap();
        let eps = model.epsilon().expect("DP mode must report epsilon");
        assert!(eps.is_finite() && eps > 0.0, "ε = {eps}");
        let synth = model.generate_flows(100);
        assert!(!synth.is_empty());
    }

    #[test]
    fn non_dp_has_no_epsilon() {
        let real = synth_flows(DatasetKind::Ugr16, 300, 4);
        let model = NetShare::fit_flows(&real, &tiny_cfg()).unwrap();
        assert!(model.epsilon().is_none());
    }

    #[test]
    fn v0_single_chunk_trains_one_model() {
        let real = synth_flows(DatasetKind::Ugr16, 300, 5);
        let cfg = tiny_cfg().v0_from();
        let model = NetShare::fit_flows(&real, &cfg).unwrap();
        assert_eq!(model.trained_chunks(), 1);
    }

    #[test]
    fn divergence_spec_grammar() {
        assert_eq!(
            parse_divergence_spec("chunk-1:40").unwrap(),
            ("chunk-1".to_string(), 40)
        );
        for bad in ["", "chunk-1", "chunk-1:", ":40", "chunk-1:x", "chunk-1:-3"] {
            let err = parse_divergence_spec(bad).unwrap_err();
            assert!(err.contains("expected `job:step`"), "{err}");
        }
    }

    #[test]
    fn malformed_injection_specs_are_config_errors() {
        let real = synth_flows(DatasetKind::Ugr16, 200, 7);
        let mut cfg = tiny_cfg();
        cfg.orchestrator.fault_spec = Some("chunk-1:bogus".into());
        assert!(matches!(
            NetShare::fit_flows(&real, &cfg),
            Err(PipelineError::Config(e)) if e.contains("invalid fault spec")
        ));
        let mut cfg = tiny_cfg();
        cfg.orchestrator.divergence_spec = Some("no-step".into());
        assert!(matches!(
            NetShare::fit_flows(&real, &cfg),
            Err(PipelineError::Config(e)) if e.contains("expected `job:step`")
        ));
    }

    #[test]
    fn epoch_merge_entry_point() {
        let real = synth_flows(DatasetKind::Ugr16, 400, 6);
        let epochs = nettrace::epoch::split_flow_epochs(&real, 4);
        let mut model = NetShare::fit_flow_epochs(&epochs, &tiny_cfg()).unwrap();
        let synth = model.generate_flows(100);
        assert!(!synth.is_empty());
    }
}
