//! The serializable product of one training job.
//!
//! [`ModelArtifact`] lives in the `doppelganger` crate since PR 7 (the
//! serving daemon `netshared` loads artifacts without depending on the
//! full pipeline crate); this module re-exports it so existing
//! `netshare::ModelArtifact` users keep working. [`ArtifactBundle`] adds
//! the config + name so a single file is enough to rebuild a sampler.

pub use doppelganger::{ArtifactBundle, ModelArtifact};
