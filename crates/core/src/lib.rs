//! # netshare
//!
//! The end-to-end NetShare pipeline (paper §4), assembled from the
//! substrate crates:
//!
//! 1. **Pre-processing** (Insight 1): merge measurement epochs into one
//!    giant trace, split it into per-five-tuple sequences, and encode
//!    header fields (Insight 2: bit-encoded IPs, IP2Vec-embedded
//!    ports/protocols trained on public data, `log(1+x)`+min-max
//!    continuous fields) — [`flowcodec`], [`packetcodec`], [`tuplecodec`].
//! 2. **Training** (Insights 1/3/4): slice the flow trace into `M`
//!    fixed-time chunks with explicit flow tags, train a DoppelGANger
//!    time-series GAN on the first ("seed") chunk, then fine-tune the
//!    remaining chunks *in parallel* from the seed model — [`chunking`],
//!    [`pipeline`]. In DP mode, pre-train on a public trace and fine-tune
//!    with DP-SGD, with ε reported by the RDP accountant.
//! 3. **Post-processing**: map embeddings back to words via
//!    nearest-neighbour search, regenerate derived fields (IPv4 checksum),
//!    remerge by raw timestamp, and optionally apply the privacy
//!    extensions (IP-range transformation, attribute retraining) —
//!    [`postprocess`].
//!
//! The quickest way in is [`NetShare`] in [`pipeline`]:
//!
//! ```no_run
//! use netshare::{NetShare, NetShareConfig};
//! use trace_synth::{generate_flows, DatasetKind};
//!
//! let real = generate_flows(DatasetKind::Ugr16, 5_000, 1);
//! let cfg = NetShareConfig::fast();
//! let mut model = NetShare::fit_flows(&real, &cfg).unwrap();
//! let synthetic = model.generate_flows(5_000);
//! ```

pub mod artifact;
pub mod chunking;
pub mod config;
pub mod flowcodec;
pub mod packetcodec;
pub mod pipeline;
pub mod postprocess;
pub mod tuplecodec;

pub use artifact::{ArtifactBundle, ModelArtifact};
pub use config::{DpOptions, DpPretrainSource, NetShareConfig, OrchestratorOptions};
pub use pipeline::{parse_divergence_spec, NetShare, PipelineError, SamplePath};

// Re-exported so downstream code can inspect [`NetShare::events`] and the
// on-disk run directory without naming the orchestrator crate directly.
pub use orchestrator::{Event as OrchestratorEvent, Manifest as RunManifest};
