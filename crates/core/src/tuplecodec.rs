//! Five-tuple ↔ metadata-vector codec (paper Insight 2 / Table 2).
//!
//! Layout per tuple: `[src_ip 32 bits ‖ dst_ip 32 bits ‖ src-port hybrid ‖
//! dst-port hybrid ‖ protocol hybrid]`.
//!
//! * IPs use the data-independent bit encoding (DP-safe).
//! * Ports and protocol use a **hybrid categorical + IP2Vec** encoding:
//!   a softmax over the top-K most frequent port words of the *public*
//!   corpus (DoppelGANger's native treatment of categorical metadata)
//!   plus the IP2Vec embedding, which both disambiguates the "other"
//!   bucket and carries semantics for rare ports. The categorical
//!   vocabulary is derived from public data only, so — like the bit
//!   encoding — it never touches the private trace (the Insight-2 privacy
//!   requirement). Decoding uses the category when it names a concrete
//!   port and falls back to nearest-neighbour search over the public
//!   dictionary otherwise, restricted to (port, protocol) pairs the
//!   public corpus exhibits (keeps Appendix-B Test 3 compliance).

use doppelganger::Segment;
use fieldcodec::{BitCodec, Ip2Vec, Ip2VecConfig, Word};
use nettrace::{FiveTuple, PacketTrace, Protocol};
use std::collections::{BTreeMap, BTreeSet};

/// Number of public-corpus service ports given categorical slots.
const TOP_PORTS: usize = 40;
/// Protocol categorical vocabulary (TCP, UDP, ICMP) + other.
const PROTO_VOCAB: [u8; 3] = [6, 17, 1];

/// A fitted five-tuple codec.
pub struct TupleCodec {
    ip2vec: Ip2Vec,
    ip_bits: BitCodec,
    embed_dim: usize,
    /// Top-K public ports, most frequent first; index = categorical slot.
    service_ports: Vec<u16>,
    service_index: BTreeMap<u16, usize>,
    port_lo: Vec<f32>,
    port_hi: Vec<f32>,
    proto_lo: Vec<f32>,
    proto_hi: Vec<f32>,
    /// Fallback port embedding for out-of-dictionary ports (zeros before
    /// normalization — decodes to the dictionary's most central port).
    fallback_port: Vec<f32>,
    fallback_proto: Vec<f32>,
    /// (port, protocol) pairs observed in the public corpus.
    port_proto_pairs: BTreeSet<(u16, u8)>,
}

impl TupleCodec {
    /// Trains the IP2Vec dictionary on a public packet corpus and fits the
    /// categorical vocabulary and embedding normalization ranges.
    pub fn fit_public(public: &PacketTrace, embed_dim: usize, seed: u64) -> Self {
        let cfg = Ip2VecConfig {
            dim: embed_dim,
            epochs: 2,
            lr: 0.05,
            negatives: 4,
            seed,
        };
        let ip2vec = Ip2Vec::train_on_packets(public, cfg);

        // Port popularity + per-kind embedding ranges over the corpus.
        let mut port_counts: BTreeMap<u16, u64> = BTreeMap::new();
        let mut port_lo = vec![f32::INFINITY; embed_dim];
        let mut port_hi = vec![f32::NEG_INFINITY; embed_dim];
        let mut proto_lo = vec![f32::INFINITY; embed_dim];
        let mut proto_hi = vec![f32::NEG_INFINITY; embed_dim];
        let mut any_port = vec![0.0f32; embed_dim];
        let mut any_proto = vec![0.0f32; embed_dim];
        let mut n_port = 0u32;
        let mut n_proto = 0u32;
        let mut port_proto_pairs = BTreeSet::new();
        for p in &public.packets {
            if p.five_tuple.proto.has_ports() {
                let pr = p.five_tuple.proto.number();
                port_proto_pairs.insert((p.five_tuple.src_port, pr));
                port_proto_pairs.insert((p.five_tuple.dst_port, pr));
                // Destination ports define "service" popularity.
                *port_counts.entry(p.five_tuple.dst_port).or_insert(0) += 1;
            }
            for w in fieldcodec::ip2vec::sentence(p.five_tuple) {
                if let Some(e) = ip2vec.embedding(&w) {
                    match w {
                        Word::Port(_) => {
                            for d in 0..embed_dim {
                                port_lo[d] = port_lo[d].min(e[d]);
                                port_hi[d] = port_hi[d].max(e[d]);
                                any_port[d] += e[d];
                            }
                            n_port += 1;
                        }
                        Word::Proto(_) => {
                            for d in 0..embed_dim {
                                proto_lo[d] = proto_lo[d].min(e[d]);
                                proto_hi[d] = proto_hi[d].max(e[d]);
                                any_proto[d] += e[d];
                            }
                            n_proto += 1;
                        }
                        Word::Ip(_) => {}
                    }
                }
            }
        }
        let mut by_count: Vec<(u16, u64)> = port_counts.into_iter().collect();
        by_count.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let service_ports: Vec<u16> = by_count.iter().take(TOP_PORTS).map(|&(p, _)| p).collect();
        let service_index = service_ports
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i))
            .collect();

        let fix = |lo: &mut Vec<f32>, hi: &mut Vec<f32>| {
            for d in 0..embed_dim {
                if !lo[d].is_finite() || !hi[d].is_finite() {
                    lo[d] = 0.0;
                    hi[d] = 1.0;
                }
                if hi[d] - lo[d] < 1e-6 {
                    hi[d] = lo[d] + 1e-6;
                }
            }
        };
        fix(&mut port_lo, &mut port_hi);
        fix(&mut proto_lo, &mut proto_hi);
        let fallback_port = any_port
            .iter()
            .map(|s| if n_port > 0 { s / n_port as f32 } else { 0.0 })
            .collect();
        let fallback_proto = any_proto
            .iter()
            .map(|s| if n_proto > 0 { s / n_proto as f32 } else { 0.0 })
            .collect();
        TupleCodec {
            ip2vec,
            ip_bits: BitCodec::ipv4(),
            embed_dim,
            service_ports,
            service_index,
            port_lo,
            port_hi,
            proto_lo,
            proto_hi,
            fallback_port,
            fallback_proto,
            port_proto_pairs,
        }
    }

    /// Width of one hybrid port block: categorical (K + other) + embedding.
    fn port_block(&self) -> usize {
        self.service_ports.len() + 1 + self.embed_dim
    }

    /// Width of the hybrid protocol block: categorical (3 + other) + embedding.
    fn proto_block(&self) -> usize {
        PROTO_VOCAB.len() + 1 + self.embed_dim
    }

    /// Encoded width.
    pub fn dim(&self) -> usize {
        64 + 2 * self.port_block() + self.proto_block()
    }

    /// Embedding width.
    pub fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    /// The feature-spec segments for this codec's output, in order — the
    /// GAN applies softmax to the categorical slots and sigmoid to the
    /// rest (DoppelGANger's native categorical treatment).
    pub fn segments(&self) -> Vec<Segment> {
        let k = self.service_ports.len() + 1;
        vec![
            Segment::Continuous { dim: 64 },
            Segment::Categorical { dim: k },
            Segment::Continuous { dim: self.embed_dim },
            Segment::Categorical { dim: k },
            Segment::Continuous { dim: self.embed_dim },
            Segment::Categorical { dim: PROTO_VOCAB.len() + 1 },
            Segment::Continuous { dim: self.embed_dim },
        ]
    }

    fn norm(v: f32, lo: f32, hi: f32) -> f32 {
        ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
    }

    fn denorm(v: f32, lo: f32, hi: f32) -> f32 {
        lo + v.clamp(0.0, 1.0) * (hi - lo)
    }

    fn encode_port(&self, port: u16, out: &mut Vec<f32>) {
        let k = self.service_ports.len() + 1;
        let start = out.len();
        out.resize(start + k, 0.0);
        match self.service_index.get(&port) {
            Some(&i) => out[start + i] = 1.0,
            None => out[start + k - 1] = 1.0, // "other"
        }
        let emb = self
            .ip2vec
            .embedding(&Word::Port(port))
            .unwrap_or(&self.fallback_port);
        for (d, &e) in emb.iter().enumerate().take(self.embed_dim) {
            out.push(Self::norm(e, self.port_lo[d], self.port_hi[d]));
        }
    }

    fn encode_proto(&self, proto: Protocol, out: &mut Vec<f32>) {
        let k = PROTO_VOCAB.len() + 1;
        let start = out.len();
        out.resize(start + k, 0.0);
        match PROTO_VOCAB.iter().position(|&p| p == proto.number()) {
            Some(i) => out[start + i] = 1.0,
            None => out[start + k - 1] = 1.0,
        }
        let emb = self
            .ip2vec
            .embedding(&Word::Proto(proto.number()))
            .unwrap_or(&self.fallback_proto);
        for (d, &e) in emb.iter().enumerate().take(self.embed_dim) {
            out.push(Self::norm(e, self.proto_lo[d], self.proto_hi[d]));
        }
    }

    /// Appends the encoding of a five-tuple to `out`.
    pub fn encode_into(&self, ft: &FiveTuple, out: &mut Vec<f32>) {
        self.ip_bits.encode_into(ft.src_ip as u64, out);
        self.ip_bits.encode_into(ft.dst_ip as u64, out);
        self.encode_port(ft.src_port, out);
        self.encode_port(ft.dst_port, out);
        self.encode_proto(ft.proto, out);
    }

    /// Encodes into a fresh vector.
    pub fn encode(&self, ft: &FiveTuple) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.dim());
        self.encode_into(ft, &mut out);
        out
    }

    fn argmax(slice: &[f32]) -> usize {
        slice
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Nearest port whose (port, protocol) pair occurs in the public
    /// corpus; falls back to the unrestricted nearest neighbour.
    fn nearest_compatible_port(&self, vec: &[f32], proto_num: u8) -> u16 {
        let restricted = self.ip2vec.nearest(vec, |w| match w {
            Word::Port(p) => self.port_proto_pairs.contains(&(*p, proto_num)),
            _ => false,
        });
        match restricted {
            Some(Word::Port(p)) => p,
            _ => self.ip2vec.nearest_port(vec).unwrap_or(0),
        }
    }

    fn decode_port(&self, block: &[f32], proto_num: u8) -> u16 {
        let k = self.service_ports.len() + 1;
        let cat = Self::argmax(&block[..k]);
        if cat < self.service_ports.len() {
            let port = self.service_ports[cat];
            // Only accept the categorical decode when the (port, proto)
            // pair is publicly attested; otherwise fall through to the
            // protocol-compatible embedding path (Appendix-B Test 3).
            if self.port_proto_pairs.contains(&(port, proto_num)) {
                return port;
            }
        }
        // "Other" (or incompatible category): nearest-neighbour over the
        // embedding slice, restricted to non-catalogue, protocol-compatible
        // ports — catalogue ports have their own slots, so the embedding
        // path represents the ephemeral mass.
        let emb: Vec<f32> = block[k..]
            .iter()
            .enumerate()
            .map(|(d, &x)| Self::denorm(x, self.port_lo[d], self.port_hi[d]))
            .collect();
        let restricted = self.ip2vec.nearest(&emb, |w| match w {
            Word::Port(p) => {
                !self.service_index.contains_key(p)
                    && self.port_proto_pairs.contains(&(*p, proto_num))
            }
            _ => false,
        });
        match restricted {
            Some(Word::Port(p)) => p,
            _ => self.nearest_compatible_port(&emb, proto_num),
        }
    }

    fn decode_proto(&self, block: &[f32]) -> Protocol {
        let k = PROTO_VOCAB.len() + 1;
        let cat = Self::argmax(&block[..k]);
        if cat < PROTO_VOCAB.len() {
            return Protocol::from_number(PROTO_VOCAB[cat]);
        }
        let emb: Vec<f32> = block[k..]
            .iter()
            .enumerate()
            .map(|(d, &x)| Self::denorm(x, self.proto_lo[d], self.proto_hi[d]))
            .collect();
        Protocol::from_number(self.ip2vec.nearest_proto(&emb).unwrap_or(6))
    }

    /// Decodes a generated metadata slice back to a five-tuple.
    ///
    /// # Panics
    /// Panics if `v.len() != self.dim()`.
    pub fn decode(&self, v: &[f32]) -> FiveTuple {
        assert_eq!(v.len(), self.dim(), "metadata width mismatch");
        let pb = self.port_block();
        let src_ip = self.ip_bits.decode(&v[0..32]) as u32;
        let dst_ip = self.ip_bits.decode(&v[32..64]) as u32;
        let proto = self.decode_proto(&v[64 + 2 * pb..]);
        let (src_port, dst_port) = if proto.has_ports() {
            (
                self.decode_port(&v[64..64 + pb], proto.number()),
                self.decode_port(&v[64 + pb..64 + 2 * pb], proto.number()),
            )
        } else {
            (0, 0)
        };
        FiveTuple::new(src_ip, dst_ip, src_port, dst_port, proto)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_synth::public::ip2vec_public_corpus;

    fn codec() -> TupleCodec {
        TupleCodec::fit_public(&ip2vec_public_corpus(2_000, 3), 8, 11)
    }

    #[test]
    fn encode_decode_round_trips_common_tuples() {
        let c = codec();
        for &(sp, dp, proto) in &[
            (40_000u16, 80u16, Protocol::Tcp),
            (51_515, 53, Protocol::Udp),
            (0, 0, Protocol::Icmp),
        ] {
            let ft = FiveTuple::new(0x0a010203, 0xc0a80011, sp, dp, proto);
            let enc = c.encode(&ft);
            assert_eq!(enc.len(), c.dim());
            assert!(enc.iter().all(|&x| (0.0..=1.0).contains(&x)), "encoded in [0,1]");
            let back = c.decode(&enc);
            assert_eq!(back.src_ip, ft.src_ip);
            assert_eq!(back.dst_ip, ft.dst_ip);
            assert_eq!(back.proto, ft.proto, "protocol survives");
            assert_eq!(back.dst_port, ft.dst_port, "well-known port survives");
        }
    }

    #[test]
    fn segments_cover_the_full_dim() {
        let c = codec();
        let total: usize = c.segments().iter().map(|s| s.dim()).sum();
        assert_eq!(total, c.dim());
    }

    #[test]
    fn service_ports_use_categorical_slots() {
        let c = codec();
        // Port 80 must be in the public top-K (it dominates the corpus).
        assert!(c.service_index.contains_key(&80), "80 in catalogue");
        let ft = FiveTuple::new(1, 2, 40_000, 80, Protocol::Tcp);
        let enc = c.encode(&ft);
        let k = c.service_ports.len() + 1;
        let dst_cat = &enc[64 + c.port_block()..64 + c.port_block() + k];
        assert_eq!(dst_cat.iter().filter(|&&x| x == 1.0).count(), 1);
        assert!(dst_cat[c.service_index[&80]] == 1.0);
    }

    #[test]
    fn icmp_decodes_with_zero_ports() {
        let c = codec();
        let ft = FiveTuple::new(1, 2, 0, 0, Protocol::Icmp);
        let back = c.decode(&c.encode(&ft));
        assert_eq!(back.src_port, 0);
        assert_eq!(back.dst_port, 0);
    }

    #[test]
    fn unknown_port_falls_back_gracefully() {
        let c = codec();
        let ft = FiveTuple::new(1, 2, 65_535, 80, Protocol::Tcp);
        let back = c.decode(&c.encode(&ft));
        assert_eq!(back.dst_port, 80);
    }

    #[test]
    fn decoded_ports_are_protocol_compatible() {
        // Even for arbitrary metadata vectors, the decoded (port, proto)
        // pair must be valid (Appendix-B Test 3).
        let c = codec();
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let mut v: Vec<f32> = (0..c.dim()).map(|_| rng.gen()).collect();
            // Harden the categorical slots like generation does.
            let spec = doppelganger::FeatureSpec::new(c.segments());
            spec.harden_row(&mut v);
            let ft = c.decode(&v);
            assert!(
                nettrace::validity::test3_port_protocol(ft.src_port, ft.dst_port, ft.proto),
                "incompatible decode: {ft}"
            );
        }
    }

    #[test]
    fn ephemeral_ports_decode_via_embedding() {
        let c = codec();
        // A high ephemeral port not in the catalogue should round-trip to
        // *some* non-catalogue port via the embedding path (exact identity
        // is not required for ephemeral ports).
        let ft = FiveTuple::new(1, 2, 1024, 49_000, Protocol::Tcp);
        let enc = c.encode(&ft);
        let back = c.decode(&enc);
        // Ephemeral identity is not preserved, but the decode must land
        // outside the service catalogue (the "other" mass stays ephemeral).
        assert!(
            !c.service_index.contains_key(&back.dst_port),
            "ephemeral decoded into the catalogue: {}",
            back.dst_port
        );
    }
}
