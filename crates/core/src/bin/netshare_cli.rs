//! `netshare_cli` — one-shot synthetic trace generation from the command
//! line, the workflow the paper envisions for data holders (§5: share the
//! *generated traces*, not the model).
//!
//! ```text
//! netshare_cli synth-flows   real.csv  synthetic.csv  [options]
//! netshare_cli synth-packets real.pcap synthetic.pcap [options]
//! netshare_cli pull          host:port artifact       [pull options]
//! netshare_cli coord         run-dir                  [coord options]
//! netshare_cli gc            run-dir
//!
//! pull options (client of the `netshared` streaming daemon):
//!   --count <N>        samples to pull (default 100)
//!   --credit <C>       DATA-frame flow-control window (default 4)
//!   --retries <R>      reconnects allowed on retryable serving faults
//!                      (connection loss, `draining`, `overloaded`);
//!                      resumes from the last delivered frame (default 0)
//!   --backoff-ms <B>   base reconnect backoff in milliseconds, doubling
//!                      per attempt with seeded jitter (default 100)
//!   --out <file>       write samples as JSONL there (default: stdout)
//!   --metrics-out <f>  write the telemetry metrics snapshot (JSON) there
//!
//! coord options (multi-process scale-out; see OPERATIONS.md):
//!   --chunks <N>       sim-chunk jobs after pretrain (default 4)
//!   --steps <S>        sim steps per job (default 256)
//!   --seed <U64>       sim seed (default 17)
//!   --addr <A>         control-socket bind address (default 127.0.0.1:0)
//!   --addr-file <f>    write the bound address there (for hand-started
//!                      workers polling it)
//!   --workers-procs <N>  netshare_worker processes to spawn (default 2;
//!                      0 = spawn none, workers are started by hand)
//!   --resume           skip jobs the manifest verifies
//!   --retries <R>      requeues per failed job (default 2)
//!   --max-job-secs <S> watchdog deadline per assignment (default: none)
//!   --keep-generations <K>  verified generations kept per job
//!
//! `gc` sweeps `run-dir/objects/` of every object no manifest generation
//! references (safe while no run is active; quarantine evidence is kept).
//!
//! options:
//!   --n <count>        records/packets to generate (default: input size)
//!   --chunks <M>       time chunks (default 10)
//!   --steps <S>        seed-chunk generator steps (default 300)
//!   --labels           model the benign/attack labels (flow CSV only)
//!   --dp <sigma>       train with DP-SGD at noise multiplier sigma
//!   --private-ips      remap generated IPs into 10.0.0.0/8
//!   --seed <u64>       RNG seed (default 17)
//!   --workers <W>      training-job worker threads (default: one per core)
//!   --ckpt-dir <dir>   persist per-job checkpoints + events.jsonl there
//!   --resume           skip jobs the checkpoint manifest verifies
//!   --retries <R>      retries per failed training job (default 2)
//!   --max-job-secs <S> watchdog deadline per job attempt (default: none)
//!   --keep-generations <K>  verified checkpoint generations kept per job
//!   --rollback-budget <B>   divergence-sentinel rollbacks per job
//!   --metrics-out <f>  write the telemetry metrics snapshot (JSON) there
//! ```
//!
//! Exit codes: `0` success, `1` runtime failure (I/O, parse, a fatal
//! protocol error on `pull`), `2` usage error (bad flags or a malformed
//! injection spec), `3` training failure (a job exhausted its retries —
//! watchdog cancellations, divergence past the rollback budget, panics),
//! `4` pull retries exhausted (every attempt failed with a *retryable*
//! serving fault — the server stayed down, draining, or overloaded —
//! so re-running later may succeed, unlike exit 1).
//!
//! Chaos hooks for CI: `NETSHARE_INJECT_FAULT` takes a comma-separated
//! list of `job:class:count` entries (classes `panic`, `transient`,
//! `hang`, `slow-io`, `corrupt-flip`, `corrupt-truncate`, `corrupt-torn`,
//! `kill-worker`, `kill-coord`; legacy `job:count` means transient), and
//! `NETSHARE_INJECT_DIVERGENCE` takes `job:step` to poison a model
//! mid-training. `NETSHARE_INJECT_NETFAULT` arms deterministic
//! socket-layer faults in *this* process (classes `torn-frame`, `stall`,
//! `reset`, `garbage-bytes`, as `class:count` joined by `;`). Malformed
//! specs are usage errors (exit 2) that cite the grammar.

use netshare::{postprocess, DpOptions, NetShare, NetShareConfig};
use std::process::ExitCode;

struct Options {
    n: Option<usize>,
    cfg: NetShareConfig,
    private_ips: bool,
    metrics_out: Option<std::path::PathBuf>,
}

/// A bad invocation (unknown flag, missing value, wrong arity) — reported
/// with the usage text and exit code 2, unlike runtime failures (exit 1).
struct UsageError(String);

fn usage() -> ExitCode {
    eprintln!(
        "usage: netshare_cli <synth-flows|synth-packets> <input> <output> \
         [--n N] [--chunks M] [--steps S] [--labels] [--dp SIGMA] [--private-ips] [--seed U64] \
         [--workers W] [--ckpt-dir DIR] [--resume] [--retries R] [--max-job-secs S] \
         [--keep-generations K] [--rollback-budget B] [--metrics-out FILE]\n\
         \x20      netshare_cli pull <host:port> <artifact> \
         [--count N] [--credit C] [--retries R] [--backoff-ms B] \
         [--out FILE] [--metrics-out FILE]\n\
         \x20      netshare_cli coord <run-dir> [--chunks N] [--steps S] [--seed U64] \
         [--addr A] [--addr-file FILE] [--workers-procs N] [--resume] [--retries R] \
         [--max-job-secs S] [--keep-generations K]\n\
         \x20      netshare_cli gc <run-dir>"
    );
    ExitCode::from(2)
}

/// Validates the chaos/divergence environment hooks before any input is
/// read: a typo'd spec must be exit-code-2 loud, not silently ignored.
/// Split out from [`parse_options`] so tests can exercise the grammar
/// checks without mutating the process environment.
fn validate_injection_env(
    fault: Option<&str>,
    divergence: Option<&str>,
    netfault: Option<&str>,
) -> Result<(), String> {
    if let Some(spec) = fault {
        orchestrator::ChaosPlan::parse(spec)
            .map_err(|e| format!("NETSHARE_INJECT_FAULT: {e}"))?;
    }
    if let Some(spec) = divergence {
        netshare::parse_divergence_spec(spec)
            .map_err(|e| format!("NETSHARE_INJECT_DIVERGENCE: {e}"))?;
    }
    if let Some(spec) = netfault {
        orchestrator::NetFaultPlan::parse(spec)
            .map_err(|e| format!("NETSHARE_INJECT_NETFAULT: {e}"))?;
    }
    Ok(())
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut cfg = NetShareConfig::default_config();
    let mut n = None;
    let mut private_ips = false;
    let mut metrics_out = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--n" => n = Some(value("--n")?.parse().map_err(|e| format!("--n: {e}"))?),
            "--chunks" => {
                cfg.n_chunks = value("--chunks")?.parse().map_err(|e| format!("--chunks: {e}"))?
            }
            "--steps" => {
                cfg.seed_steps = value("--steps")?.parse().map_err(|e| format!("--steps: {e}"))?;
                cfg.finetune_steps = (cfg.seed_steps / 5).max(10);
            }
            "--labels" => cfg.with_labels = true,
            "--dp" => {
                let sigma: f32 = value("--dp")?.parse().map_err(|e| format!("--dp: {e}"))?;
                cfg.dp = Some(DpOptions {
                    noise_multiplier: sigma,
                    clip_norm: 1.0,
                    delta: 1e-5,
                    public_pretrain_steps: cfg.seed_steps / 2,
                    pretrain_source: Default::default(),
                });
            }
            "--private-ips" => private_ips = true,
            "--seed" => cfg.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--workers" => {
                cfg.orchestrator.workers =
                    value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--ckpt-dir" => cfg.orchestrator.checkpoint_dir = Some(value("--ckpt-dir")?.into()),
            "--resume" => cfg.orchestrator.resume = true,
            "--retries" => {
                cfg.orchestrator.max_retries =
                    Some(value("--retries")?.parse().map_err(|e| format!("--retries: {e}"))?)
            }
            "--max-job-secs" => {
                cfg.orchestrator.max_job_secs = Some(
                    value("--max-job-secs")?
                        .parse()
                        .map_err(|e| format!("--max-job-secs: {e}"))?,
                )
            }
            "--keep-generations" => {
                cfg.orchestrator.keep_generations = Some(
                    value("--keep-generations")?
                        .parse()
                        .map_err(|e| format!("--keep-generations: {e}"))?,
                )
            }
            "--rollback-budget" => {
                cfg.orchestrator.rollback_budget = Some(
                    value("--rollback-budget")?
                        .parse()
                        .map_err(|e| format!("--rollback-budget: {e}"))?,
                )
            }
            "--metrics-out" => metrics_out = Some(value("--metrics-out")?.into()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if cfg.orchestrator.resume && cfg.orchestrator.checkpoint_dir.is_none() {
        return Err("--resume requires --ckpt-dir".into());
    }
    // CI chaos hooks; the config fields are the programmatic path. Both
    // specs are grammar-checked here so a typo exits 2 before training.
    let fault = std::env::var("NETSHARE_INJECT_FAULT").ok();
    let divergence = std::env::var("NETSHARE_INJECT_DIVERGENCE").ok();
    let netfault = std::env::var("NETSHARE_INJECT_NETFAULT").ok();
    validate_injection_env(fault.as_deref(), divergence.as_deref(), netfault.as_deref())?;
    cfg.orchestrator.fault_spec = fault;
    cfg.orchestrator.divergence_spec = divergence;
    Ok(Options { n, cfg, private_ips, metrics_out })
}

/// A `pull` invocation: stream samples from a running `netshared` daemon.
struct PullArgs {
    addr: String,
    artifact: String,
    count: u64,
    credit: u32,
    retries: u32,
    backoff_ms: u64,
    out: Option<std::path::PathBuf>,
    metrics_out: Option<std::path::PathBuf>,
}

fn parse_pull_options(addr: &str, artifact: &str, args: &[String]) -> Result<PullArgs, String> {
    let mut pull = PullArgs {
        addr: addr.to_string(),
        artifact: artifact.to_string(),
        count: 100,
        credit: 4,
        retries: 0,
        backoff_ms: 100,
        out: None,
        metrics_out: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--count" => {
                pull.count = value("--count")?.parse().map_err(|e| format!("--count: {e}"))?
            }
            "--credit" => {
                pull.credit = value("--credit")?.parse().map_err(|e| format!("--credit: {e}"))?
            }
            "--retries" => {
                pull.retries = value("--retries")?.parse().map_err(|e| format!("--retries: {e}"))?
            }
            "--backoff-ms" => {
                pull.backoff_ms =
                    value("--backoff-ms")?.parse().map_err(|e| format!("--backoff-ms: {e}"))?
            }
            "--out" => pull.out = Some(value("--out")?.into()),
            "--metrics-out" => pull.metrics_out = Some(value("--metrics-out")?.into()),
            other => return Err(format!("unknown pull option {other}")),
        }
    }
    if pull.credit == 0 {
        return Err("--credit must be at least 1".into());
    }
    if pull.backoff_ms == 0 {
        return Err("--backoff-ms must be at least 1".into());
    }
    // The netfault hook arms in `main`; grammar-check it here so a typo
    // is a loud usage error before the daemon is dialled.
    validate_injection_env(None, None, std::env::var("NETSHARE_INJECT_NETFAULT").ok().as_deref())?;
    Ok(pull)
}

/// A `coord <run-dir>` invocation: serve a simulated chunk plan to
/// external `netshare_worker` processes through the content store.
struct CoordArgs {
    dir: String,
    chunks: usize,
    steps: u64,
    seed: u64,
    addr: String,
    addr_file: Option<std::path::PathBuf>,
    worker_procs: usize,
    resume: bool,
    retries: u32,
    max_job_secs: Option<f64>,
    keep_generations: usize,
}

fn parse_coord_options(dir: &str, args: &[String]) -> Result<CoordArgs, String> {
    let mut coord = CoordArgs {
        dir: dir.to_string(),
        chunks: 4,
        steps: 256,
        seed: 17,
        addr: "127.0.0.1:0".to_string(),
        addr_file: None,
        worker_procs: 2,
        resume: false,
        retries: 2,
        max_job_secs: None,
        keep_generations: 3,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--chunks" => {
                coord.chunks = value("--chunks")?.parse().map_err(|e| format!("--chunks: {e}"))?
            }
            "--steps" => {
                coord.steps = value("--steps")?.parse().map_err(|e| format!("--steps: {e}"))?
            }
            "--seed" => coord.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--addr" => coord.addr = value("--addr")?,
            "--addr-file" => coord.addr_file = Some(value("--addr-file")?.into()),
            "--workers-procs" => {
                coord.worker_procs = value("--workers-procs")?
                    .parse()
                    .map_err(|e| format!("--workers-procs: {e}"))?
            }
            "--resume" => coord.resume = true,
            "--retries" => {
                coord.retries = value("--retries")?.parse().map_err(|e| format!("--retries: {e}"))?
            }
            "--max-job-secs" => {
                coord.max_job_secs = Some(
                    value("--max-job-secs")?
                        .parse()
                        .map_err(|e| format!("--max-job-secs: {e}"))?,
                )
            }
            "--keep-generations" => {
                coord.keep_generations = value("--keep-generations")?
                    .parse()
                    .map_err(|e| format!("--keep-generations: {e}"))?
            }
            other => return Err(format!("unknown coord option {other}")),
        }
    }
    if coord.chunks == 0 {
        return Err("--chunks must be at least 1".into());
    }
    // The chaos hook rides the same env var as synth runs; grammar-check
    // it here so a typo is a loud usage error before anything binds.
    validate_injection_env(
        std::env::var("NETSHARE_INJECT_FAULT").ok().as_deref(),
        None,
        std::env::var("NETSHARE_INJECT_NETFAULT").ok().as_deref(),
    )?;
    Ok(coord)
}

/// One validated invocation: local synthesis, a daemon pull, a
/// multi-process coordinator run, or a store sweep.
enum Command {
    Synth { mode: String, input: String, output: String, opts: Box<Options> },
    Pull(PullArgs),
    Coord(Box<CoordArgs>),
    Gc { dir: String },
}

/// Full command-line validation: arity, mode, and options. Everything
/// wrong here is the *caller's* invocation, not a runtime failure.
fn parse_args(args: &[String]) -> Result<Command, UsageError> {
    match args.first().map(String::as_str) {
        Some("gc") => {
            return match args {
                [_, dir] => Ok(Command::Gc { dir: dir.clone() }),
                _ => Err(UsageError("gc takes exactly one run directory".into())),
            };
        }
        Some("coord") => {
            let dir = args.get(1).ok_or_else(|| UsageError("coord needs a run directory".into()))?;
            let coord = parse_coord_options(dir, &args[2..]).map_err(UsageError)?;
            return Ok(Command::Coord(Box::new(coord)));
        }
        _ => {}
    }
    if args.len() < 3 {
        return Err(UsageError("missing arguments".into()));
    }
    let mode = args[0].clone();
    if mode == "pull" {
        let pull = parse_pull_options(&args[1], &args[2], &args[3..]).map_err(UsageError)?;
        return Ok(Command::Pull(pull));
    }
    if mode != "synth-flows" && mode != "synth-packets" {
        return Err(UsageError(format!("unknown mode {mode}")));
    }
    let opts = parse_options(&args[3..]).map_err(UsageError)?;
    Ok(Command::Synth { mode, input: args[1].clone(), output: args[2].clone(), opts: Box::new(opts) })
}

/// How a valid invocation failed, mapped onto the exit-code taxonomy:
/// `Runtime` → 1, `Training` → 3, `Exhausted` → 4 (a `pull` whose every
/// attempt failed retryably — re-running later may succeed). A late
/// `Config` error — reachable only through the programmatic API —
/// counts as runtime.
enum RunError {
    Runtime(String),
    Training(String),
    Exhausted(String),
}

fn classify(e: netshare::PipelineError) -> RunError {
    match e {
        netshare::PipelineError::Training { .. } => RunError::Training(e.to_string()),
        other => RunError::Runtime(other.to_string()),
    }
}

fn run(mode: &str, input: &str, output: &str, opts: &Options) -> Result<(), RunError> {
    match mode {
        "synth-flows" => {
            let csv = std::fs::read_to_string(input).map_err(|e| RunError::Runtime(format!("read {input}: {e}")))?;
            let real = nettrace::netflow::read_netflow_csv(&csv)
                .map_err(|e| RunError::Runtime(format!("parse {input}: {e}")))?;
            eprintln!("read {} flow records from {input}", real.len());
            let mut model =
                NetShare::fit_flows(&real, &opts.cfg).map_err(classify)?;
            if let Some(eps) = model.epsilon() {
                eprintln!("DP guarantee: (ε = {eps:.2}, δ = 1e-5)");
            }
            let mut synth = model.generate_flows(opts.n.unwrap_or(real.len()));
            if opts.private_ips {
                postprocess::transform_ips_flow(
                    &mut synth,
                    postprocess::DEFAULT_PRIVATE_BASE,
                    postprocess::DEFAULT_PRIVATE_PREFIX,
                    opts.cfg.seed,
                );
            }
            std::fs::write(output, postprocess::to_netflow_csv(&synth))
                .map_err(|e| RunError::Runtime(format!("write {output}: {e}")))?;
            eprintln!("wrote {} synthetic records to {output}", synth.len());
        }
        "synth-packets" => {
            let bytes = std::fs::read(input).map_err(|e| RunError::Runtime(format!("read {input}: {e}")))?;
            let real =
                nettrace::pcap::read_pcap(&bytes).map_err(|e| RunError::Runtime(format!("parse {input}: {e}")))?;
            eprintln!("read {} packets from {input}", real.len());
            let mut model =
                NetShare::fit_packets(&real, &opts.cfg).map_err(classify)?;
            if let Some(eps) = model.epsilon() {
                eprintln!("DP guarantee: (ε = {eps:.2}, δ = 1e-5)");
            }
            let mut synth = model.generate_packets(opts.n.unwrap_or(real.len()));
            if opts.private_ips {
                postprocess::transform_ips_packet(
                    &mut synth,
                    postprocess::DEFAULT_PRIVATE_BASE,
                    postprocess::DEFAULT_PRIVATE_PREFIX,
                    opts.cfg.seed,
                );
            }
            std::fs::write(output, postprocess::to_pcap_bytes(&synth))
                .map_err(|e| RunError::Runtime(format!("write {output}: {e}")))?;
            eprintln!("wrote {} synthetic packets to {output}", synth.len());
        }
        other => return Err(RunError::Runtime(format!("unknown mode {other}"))),
    }
    // Dump the telemetry snapshot last so it covers fit + generate. The
    // binary always ships with telemetry on (crates/core default feature);
    // were it built with default-features off, this writes the
    // empty-registry document rather than failing.
    if let Some(path) = &opts.metrics_out {
        std::fs::write(path, telemetry::metrics::snapshot_json())
            .map_err(|e| RunError::Runtime(format!("write {}: {e}", path.display())))?;
        eprintln!("wrote telemetry metrics snapshot to {}", path.display());
    }
    Ok(())
}

/// Streams `count` samples from a `netshared` daemon and writes them as
/// JSONL (one [`doppelganger::GeneratedSample`] per line).
fn run_pull(args: &PullArgs) -> Result<(), RunError> {
    let cfg = netshared::PullConfig {
        addr: args.addr.clone(),
        artifact: args.artifact.clone(),
        count: args.count,
        credit: args.credit,
        peer: "netshare_cli".to_string(),
        retries: args.retries,
        backoff: std::time::Duration::from_millis(args.backoff_ms),
    };
    let token = orchestrator::CancelToken::new();
    let result = netshared::pull(&cfg, &token).map_err(|e| match e {
        netshared::PullError::Retryable(m) => RunError::Exhausted(m),
        netshared::PullError::Fatal(m) => RunError::Runtime(m),
    })?;
    let mut lines = String::new();
    for sample in &result.samples {
        let line = serde_json::to_string(sample)
            .map_err(|e| RunError::Runtime(format!("encode sample: {e}")))?;
        lines.push_str(&line);
        lines.push('\n');
    }
    match &args.out {
        Some(path) => {
            std::fs::write(path, lines)
                .map_err(|e| RunError::Runtime(format!("write {}: {e}", path.display())))?;
            eprintln!(
                "pulled {} samples ({} frames, {} reconnects) of {:?} from {} to {}",
                result.samples.len(),
                result.frames,
                result.reconnects,
                args.artifact,
                args.addr,
                path.display(),
            );
        }
        None => {
            print!("{lines}");
            eprintln!(
                "pulled {} samples ({} frames, {} reconnects) of {:?} from {}",
                result.samples.len(),
                result.frames,
                result.reconnects,
                args.artifact,
                args.addr,
            );
        }
    }
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, telemetry::metrics::snapshot_json())
            .map_err(|e| RunError::Runtime(format!("write {}: {e}", path.display())))?;
    }
    Ok(())
}

/// Sweeps a run directory's content store of every object no manifest
/// generation references (quarantine evidence is never touched).
fn run_gc(dir: &str) -> Result<(), RunError> {
    use orchestrator::ObjectStore;
    let dir = std::path::Path::new(dir);
    let live: std::collections::BTreeSet<u64> = orchestrator::Manifest::load(dir)
        .map(|m| m.jobs.iter().map(|e| e.digest).collect())
        .unwrap_or_default();
    let store = orchestrator::FsStore::open(dir)
        .map_err(|e| RunError::Runtime(format!("open store in {}: {e}", dir.display())))?;
    let report = store
        .sweep(&live)
        .map_err(|e| RunError::Runtime(format!("sweep {}: {e}", dir.display())))?;
    for digest in &report.removed {
        println!("removed {digest:#018x}");
    }
    eprintln!(
        "gc: removed {} unreferenced object(s), kept {} live, quarantined {} torn fragment(s)",
        report.removed.len(),
        report.kept,
        report.quarantined_fragments,
    );
    Ok(())
}

/// Binds a coordinator, spawns `netshare_worker` processes against it,
/// and serves a deterministic sim plan from the run directory's store.
fn run_coord(args: &CoordArgs) -> Result<(), RunError> {
    let dir = std::path::PathBuf::from(&args.dir);
    std::fs::create_dir_all(&dir)
        .map_err(|e| RunError::Runtime(format!("create {}: {e}", dir.display())))?;
    let plan = orchestrator::sim_plan(args.chunks, args.steps, args.seed);
    let opts = orchestrator::CoordOptions {
        run_key: format!("coord-sim-c{}-s{}-r{}", args.chunks, args.steps, args.seed),
        resume: args.resume,
        max_retries: args.retries,
        keep_generations: args.keep_generations,
        fault_spec: std::env::var("NETSHARE_INJECT_FAULT").ok(),
        watchdog: orchestrator::WatchdogOptions {
            max_job_secs: args.max_job_secs,
            // Always armed for multi-process runs: stale heartbeats are
            // how a worker SIGKILLed mid-execution is detected.
            heartbeat_timeout_secs: Some(10.0),
            poll: std::time::Duration::from_millis(100),
        },
        ..Default::default()
    };
    let coord = orchestrator::Coordinator::bind(&args.addr)
        .map_err(|e| RunError::Runtime(e.to_string()))?;
    let addr = coord.local_addr().to_string();
    eprintln!("coordinator listening on {addr}");
    if let Some(path) = &args.addr_file {
        std::fs::write(path, &addr)
            .map_err(|e| RunError::Runtime(format!("write {}: {e}", path.display())))?;
    }

    // Workers are siblings of this binary (Cargo puts every workspace bin
    // in one directory); hand-started workers can join via --addr-file.
    let mut children = Vec::new();
    if args.worker_procs > 0 {
        let worker_bin = std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(|d| d.join("netshare_worker")))
            .ok_or_else(|| RunError::Runtime("cannot locate netshare_worker".into()))?;
        for w in 0..args.worker_procs {
            let child = std::process::Command::new(&worker_bin)
                .arg(&addr)
                .arg("--worker-id")
                .arg(format!("w{w}"))
                .spawn()
                .map_err(|e| {
                    RunError::Runtime(format!("spawn {}: {e}", worker_bin.display()))
                })?;
            children.push(child);
        }
    }

    let events = orchestrator::EventLog::new()
        .with_file(&dir.join("events.jsonl"))
        .map_err(|e| RunError::Runtime(format!("open events.jsonl: {e}")))?;
    let result = coord.serve(&dir, &plan, &opts, &events);

    // Reap workers but never fail on their exit codes: a kill-worker
    // chaos run aborts one by design, and the run's own success already
    // proves recovery.
    for (w, child) in children.iter_mut().enumerate() {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => eprintln!("worker w{w} exited with {status}"),
            Err(e) => eprintln!("worker w{w} unreapable: {e}"),
        }
    }

    match result {
        Ok(report) => {
            eprintln!(
                "coordinated run complete: {} executed, {} resumed, {} requeue(s), \
                 {} worker connection(s), {:.2}s",
                report.completed,
                report.skipped,
                report.requeues,
                report.workers_seen,
                report.wall_seconds,
            );
            for (job, digest) in &report.digests {
                println!("{job} {digest:#018x}");
            }
            Ok(())
        }
        Err(e @ orchestrator::OrchestratorError::JobFailed { .. }) => {
            Err(RunError::Training(e.to_string()))
        }
        Err(e) => Err(RunError::Runtime(e.to_string())),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Bad invocations get the usage text and exit 2; failures of a valid
    // invocation (unreadable input, training error) exit 1 without the
    // usage noise — scripts can tell "fix the command" from "fix the run".
    let command = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(UsageError(e)) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    // Parsing already grammar-checked the spec; arming is per-process, so
    // a coord run's spawned workers re-arm from their inherited env.
    if let Err(e) = orchestrator::netfault::init_from_env() {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    let result = match command {
        Command::Pull(pull) => run_pull(&pull),
        Command::Coord(coord) => run_coord(&coord),
        Command::Gc { dir } => run_gc(&dir),
        Command::Synth { mode, input, output, opts } => run(&mode, &input, &output, &opts),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(RunError::Runtime(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Err(RunError::Training(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(3)
        }
        Err(RunError::Exhausted(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(4)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Options, String> {
        parse_options(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_when_no_options() {
        let o = opts(&[]).unwrap();
        assert_eq!(o.n, None);
        assert!(!o.private_ips);
        assert!(o.cfg.dp.is_none());
    }

    #[test]
    fn parses_all_options() {
        let o = opts(&[
            "--n", "500", "--chunks", "3", "--steps", "100", "--labels",
            "--dp", "1.5", "--private-ips", "--seed", "99",
        ])
        .unwrap();
        assert_eq!(o.n, Some(500));
        assert_eq!(o.cfg.n_chunks, 3);
        assert_eq!(o.cfg.seed_steps, 100);
        assert!(o.cfg.with_labels);
        assert!(o.private_ips);
        assert_eq!(o.cfg.seed, 99);
        let dp = o.cfg.dp.unwrap();
        assert_eq!(dp.noise_multiplier, 1.5);
    }

    #[test]
    fn rejects_unknown_and_missing_values() {
        assert!(opts(&["--bogus"]).is_err());
        assert!(opts(&["--n"]).is_err());
        assert!(opts(&["--dp", "not-a-number"]).is_err());
    }

    #[test]
    fn parses_orchestrator_options() {
        let o = opts(&["--workers", "2", "--ckpt-dir", "/tmp/ck", "--resume", "--retries", "5"])
            .unwrap();
        assert_eq!(o.cfg.orchestrator.workers, 2);
        assert_eq!(
            o.cfg.orchestrator.checkpoint_dir.as_deref(),
            Some(std::path::Path::new("/tmp/ck"))
        );
        assert!(o.cfg.orchestrator.resume);
        assert_eq!(o.cfg.orchestrator.max_retries, Some(5));
    }

    #[test]
    fn resume_without_ckpt_dir_is_rejected() {
        assert!(opts(&["--resume"]).is_err());
    }

    #[test]
    fn parses_failure_domain_options() {
        let o = opts(&[
            "--max-job-secs", "120.5", "--keep-generations", "5", "--rollback-budget", "1",
        ])
        .unwrap();
        assert_eq!(o.cfg.orchestrator.max_job_secs, Some(120.5));
        assert_eq!(o.cfg.orchestrator.keep_generations, Some(5));
        assert_eq!(o.cfg.orchestrator.rollback_budget, Some(1));
        let d = opts(&[]).unwrap();
        assert_eq!(d.cfg.orchestrator.max_job_secs, None);
        assert_eq!(d.cfg.orchestrator.keep_generations, None);
        assert_eq!(d.cfg.orchestrator.rollback_budget, None);
        assert!(opts(&["--max-job-secs", "soon"]).is_err());
        assert!(opts(&["--keep-generations"]).is_err(), "value required");
    }

    #[test]
    fn injection_env_grammar_is_validated() {
        assert!(validate_injection_env(None, None, None).is_ok());
        assert!(validate_injection_env(Some("chunk-1:1"), None, None).is_ok(), "legacy grammar");
        assert!(validate_injection_env(Some("chunk-1:hang:2"), Some("chunk-1:40"), None).is_ok());
        let err = validate_injection_env(Some("chunk-1:bogus"), None, None).unwrap_err();
        assert!(
            err.contains("NETSHARE_INJECT_FAULT") && err.contains("expected"),
            "names the variable and the grammar: {err}"
        );
        let err = validate_injection_env(None, Some("no-step"), None).unwrap_err();
        assert!(
            err.contains("NETSHARE_INJECT_DIVERGENCE") && err.contains("expected `job:step`"),
            "{err}"
        );
    }

    #[test]
    fn netfault_env_grammar_is_validated() {
        assert!(validate_injection_env(None, None, Some("torn-frame:1")).is_ok());
        assert!(validate_injection_env(None, None, Some("stall:2;garbage-bytes:1;seed=9")).is_ok());
        let err = validate_injection_env(None, None, Some("melt:1")).unwrap_err();
        assert!(
            err.contains("NETSHARE_INJECT_NETFAULT") && err.contains("torn-frame"),
            "names the variable and cites the grammar: {err}"
        );
    }

    #[test]
    fn parses_metrics_out() {
        let o = opts(&["--metrics-out", "/tmp/metrics.json"]).unwrap();
        assert_eq!(
            o.metrics_out.as_deref(),
            Some(std::path::Path::new("/tmp/metrics.json"))
        );
        assert!(opts(&[]).unwrap().metrics_out.is_none());
        assert!(opts(&["--metrics-out"]).is_err(), "value required");
    }

    #[test]
    fn parse_args_validates_arity_and_mode() {
        let a = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(parse_args(&a(&[])).is_err());
        assert!(parse_args(&a(&["synth-flows", "in"])).is_err());
        assert!(parse_args(&a(&["bogus-mode", "in", "out"])).is_err());
        assert!(parse_args(&a(&["synth-flows", "in", "out"])).is_ok());
        assert!(parse_args(&a(&["synth-packets", "in", "out", "--seed", "1"])).is_ok());
    }

    fn pull(args: &[&str]) -> Result<PullArgs, String> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        match parse_args(&argv) {
            Ok(Command::Pull(p)) => Ok(p),
            Ok(_) => Err("parsed as synth".into()),
            Err(UsageError(e)) => Err(e),
        }
    }

    #[test]
    fn pull_mode_parses_defaults_and_flags() {
        let p = pull(&["pull", "127.0.0.1:7464", "ugr16"]).unwrap();
        assert_eq!(p.addr, "127.0.0.1:7464");
        assert_eq!(p.artifact, "ugr16");
        assert_eq!(p.count, 100);
        assert_eq!(p.credit, 4);
        assert_eq!((p.retries, p.backoff_ms), (0, 100), "no retries by default");
        assert!(p.out.is_none() && p.metrics_out.is_none());

        let p = pull(&[
            "pull", "localhost:9", "caida",
            "--count", "250", "--credit", "8",
            "--retries", "5", "--backoff-ms", "50",
            "--out", "/tmp/s.jsonl", "--metrics-out", "/tmp/m.json",
        ])
        .unwrap();
        assert_eq!(p.count, 250);
        assert_eq!(p.credit, 8);
        assert_eq!((p.retries, p.backoff_ms), (5, 50));
        assert_eq!(p.out.as_deref(), Some(std::path::Path::new("/tmp/s.jsonl")));
        assert_eq!(p.metrics_out.as_deref(), Some(std::path::Path::new("/tmp/m.json")));
    }

    fn coord(args: &[&str]) -> Result<CoordArgs, String> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        match parse_args(&argv) {
            Ok(Command::Coord(c)) => Ok(*c),
            Ok(_) => Err("parsed as another command".into()),
            Err(UsageError(e)) => Err(e),
        }
    }

    #[test]
    fn coord_mode_parses_defaults_and_flags() {
        let c = coord(&["coord", "/tmp/run"]).unwrap();
        assert_eq!(c.dir, "/tmp/run");
        assert_eq!((c.chunks, c.steps, c.seed), (4, 256, 17));
        assert_eq!(c.addr, "127.0.0.1:0");
        assert_eq!(c.worker_procs, 2);
        assert!(!c.resume && c.addr_file.is_none() && c.max_job_secs.is_none());
        assert_eq!((c.retries, c.keep_generations), (2, 3));

        let c = coord(&[
            "coord", "/tmp/run",
            "--chunks", "6", "--steps", "64", "--seed", "9",
            "--addr", "127.0.0.1:7500", "--addr-file", "/tmp/a",
            "--workers-procs", "0", "--resume", "--retries", "1",
            "--max-job-secs", "30", "--keep-generations", "2",
        ])
        .unwrap();
        assert_eq!((c.chunks, c.steps, c.seed), (6, 64, 9));
        assert_eq!(c.addr, "127.0.0.1:7500");
        assert_eq!(c.addr_file.as_deref(), Some(std::path::Path::new("/tmp/a")));
        assert_eq!(c.worker_procs, 0, "0 means workers join by hand");
        assert!(c.resume);
        assert_eq!((c.retries, c.keep_generations), (1, 2));
        assert_eq!(c.max_job_secs, Some(30.0));
    }

    #[test]
    fn coord_mode_rejects_bad_invocations() {
        assert!(coord(&["coord"]).is_err(), "run dir required");
        assert!(coord(&["coord", "/tmp/run", "--chunks", "0"]).is_err(), "zero chunks");
        assert!(coord(&["coord", "/tmp/run", "--workers-procs"]).is_err(), "value required");
        assert!(coord(&["coord", "/tmp/run", "--credit", "4"]).is_err(), "pull-only flag");
    }

    #[test]
    fn gc_mode_takes_exactly_one_directory() {
        let a = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(matches!(parse_args(&a(&["gc", "/tmp/run"])), Ok(Command::Gc { dir }) if dir == "/tmp/run"));
        assert!(parse_args(&a(&["gc"])).is_err());
        assert!(parse_args(&a(&["gc", "/a", "/b"])).is_err());
    }

    #[test]
    fn pull_mode_rejects_bad_invocations() {
        assert!(pull(&["pull", "addr"]).is_err(), "artifact is required");
        assert!(pull(&["pull", "addr", "a", "--count"]).is_err(), "value required");
        assert!(pull(&["pull", "addr", "a", "--count", "many"]).is_err());
        assert!(pull(&["pull", "addr", "a", "--credit", "0"]).is_err(), "zero window");
        assert!(pull(&["pull", "addr", "a", "--retries", "soon"]).is_err());
        assert!(pull(&["pull", "addr", "a", "--backoff-ms", "0"]).is_err(), "zero backoff");
        assert!(pull(&["pull", "addr", "a", "--seed", "1"]).is_err(), "synth-only flag");
    }
}
