//! Orchestrated-training guarantees, end to end:
//!
//! * worker count changes scheduling only — generated traces are bitwise
//!   identical at any pool size;
//! * a run killed mid-training resumes from the checkpoint manifest,
//!   retrains only unfinished chunks, and produces the same trace an
//!   uninterrupted run would;
//! * an injected job fault is retried, logged to `events.jsonl`, and does
//!   not change the output;
//! * a changed configuration fingerprint invalidates old checkpoints.

use netshare::config::NetShareConfig;
use netshare::pipeline::NetShare;
use netshare::OrchestratorEvent as Event;
use std::path::PathBuf;
use nettrace::FlowTrace;
use trace_synth::{generate_flows as synth_flows, DatasetKind};

fn tiny_cfg(seed: u64) -> NetShareConfig {
    let mut cfg = NetShareConfig::fast();
    cfg.n_chunks = 2;
    cfg.seed_steps = 8;
    cfg.finetune_steps = 3;
    cfg.ip2vec_public_packets = 800;
    cfg.max_seq_len = 4;
    cfg.seed = seed;
    cfg
}

fn real_trace() -> FlowTrace {
    synth_flows(DatasetKind::Ugr16, 400, 17)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netshare-orch-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fit_and_generate(real: &FlowTrace, cfg: &NetShareConfig) -> (FlowTrace, Vec<Event>) {
    let mut model = NetShare::fit_flows(real, cfg).unwrap();
    let trace = model.generate_flows(150);
    (trace, model.events().to_vec())
}

#[test]
fn worker_count_does_not_change_the_trace() {
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let real = real_trace();
    let mut traces = Vec::new();
    for workers in [1usize, 4] {
        let mut cfg = tiny_cfg(42);
        cfg.orchestrator.workers = workers;
        traces.push(fit_and_generate(&real, &cfg).0);
    }
    assert_eq!(
        traces[0], traces[1],
        "1-worker and 4-worker runs must generate identical traces"
    );
}

#[test]
fn killed_run_resumes_from_manifest_and_matches_uninterrupted() {
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let real = real_trace();

    // The reference: one uninterrupted fit, no checkpointing involved.
    let (reference, _) = fit_and_generate(&real, &tiny_cfg(23));

    // The "killed" run: chunk-1 faults on every attempt with no retries,
    // so the fit dies after the pretrain (and possibly chunk-0) jobs have
    // already persisted their checkpoints.
    let dir = tmp_dir("resume");
    let mut cfg = tiny_cfg(23);
    cfg.orchestrator.checkpoint_dir = Some(dir.clone());
    cfg.orchestrator.resume = true;
    cfg.orchestrator.max_retries = Some(0);
    cfg.orchestrator.fault_spec = Some("chunk-1:99".into());
    assert!(
        NetShare::fit_flows(&real, &cfg).is_err(),
        "the faulted run must fail"
    );
    assert!(
        dir.join("manifest.json").exists(),
        "the failed run must leave a manifest behind"
    );

    // Resume: same config, fault removed. Finished jobs are skipped.
    cfg.orchestrator.fault_spec = None;
    cfg.orchestrator.max_retries = None;
    let (resumed, events) = fit_and_generate(&real, &cfg);
    assert_eq!(
        resumed, reference,
        "resumed run must produce the same trace as an uninterrupted one"
    );
    let skipped: Vec<String> = events
        .iter()
        .filter_map(|e| match e {
            Event::JobSkipped { job } => Some(job.clone()),
            _ => None,
        })
        .collect();
    assert!(
        skipped.iter().any(|j| j == "pretrain"),
        "pretrain must be resumed from the manifest, not retrained; skipped = {skipped:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_fault_is_retried_and_logged() {
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let real = real_trace();

    let (reference, _) = fit_and_generate(&real, &tiny_cfg(31));

    let dir = tmp_dir("fault");
    let mut cfg = tiny_cfg(31);
    cfg.orchestrator.checkpoint_dir = Some(dir.clone());
    cfg.orchestrator.fault_spec = Some("chunk-1:1".into());
    let (trace, events) = fit_and_generate(&real, &cfg);
    assert_eq!(
        trace, reference,
        "a retried fault must not change the generated trace"
    );
    let retried = events.iter().any(|e| {
        matches!(e, Event::JobRetried { job, error, .. }
                 if job == "chunk-1" && error.contains("injected fault"))
    });
    assert!(retried, "the injected fault must surface as a JobRetried event");

    // The same event must be on disk in the JSONL stream.
    let text = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
    let on_disk = text
        .lines()
        .filter_map(|l| orchestrator::events::parse_event(l).ok())
        .any(|e| matches!(e, Event::JobRetried { ref job, .. } if job == "chunk-1"));
    assert!(on_disk, "JobRetried must be recorded in events.jsonl");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_divergence_is_rolled_back_and_the_fit_completes() {
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let real = real_trace();
    let mut cfg = tiny_cfg(53);
    // Poison chunk-1's model at generator step 2: the sentinel must see
    // the non-finite losses, roll back, and still deliver the fit.
    cfg.orchestrator.divergence_spec = Some("chunk-1:2".into());
    let (trace, events) = fit_and_generate(&real, &cfg);
    assert!(!trace.is_empty(), "the recovered fit still generates");
    let rollback = events.iter().find_map(|e| match e {
        Event::SentinelRollback { job, reason, rollback, .. } if job == "chunk-1" => {
            Some((reason.clone(), *rollback))
        }
        _ => None,
    });
    let (reason, number) = rollback.expect("the forced divergence must be announced");
    assert!(reason.contains("non-finite"), "{reason}");
    assert_eq!(number, 1, "rollback numbers are 1-based");
    let failed = events.iter().any(|e| matches!(e, Event::JobFailed { .. }));
    assert!(!failed, "recovery happened inside the job, not via retries");
}

#[test]
fn hung_job_is_cancelled_by_the_watchdog_and_retried() {
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let real = real_trace();

    let (reference, _) = fit_and_generate(&real, &tiny_cfg(37));

    let mut cfg = tiny_cfg(37);
    cfg.orchestrator.fault_spec = Some("chunk-1:hang:1".into());
    cfg.orchestrator.max_job_secs = Some(3.0);
    let (trace, events) = fit_and_generate(&real, &cfg);
    assert_eq!(
        trace, reference,
        "the retried attempt after the cancelled hang trains identically"
    );
    let cancelled = events.iter().any(|e| {
        matches!(e, Event::WatchdogCancelled { job, reason, .. }
                 if job == "chunk-1" && reason.contains("deadline exceeded"))
    });
    assert!(cancelled, "the watchdog must announce the cancellation: {events:?}");
    let retried = events.iter().any(|e| {
        matches!(e, Event::JobRetried { job, error, .. }
                 if job == "chunk-1" && error.contains("injected hang"))
    });
    assert!(retried, "the cancelled hang re-entered the retry path");
}

#[test]
fn changed_config_invalidates_old_checkpoints() {
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let real = real_trace();
    let dir = tmp_dir("runkey");

    let mut cfg = tiny_cfg(7);
    cfg.orchestrator.checkpoint_dir = Some(dir.clone());
    cfg.orchestrator.resume = true;
    let _ = fit_and_generate(&real, &cfg);

    // Same directory, different seed: nothing may be reused.
    let mut cfg2 = tiny_cfg(8);
    cfg2.orchestrator.checkpoint_dir = Some(dir.clone());
    cfg2.orchestrator.resume = true;
    let (_, events) = fit_and_generate(&real, &cfg2);
    let resumed = events.iter().find_map(|e| match e {
        Event::RunStarted { resumed, .. } => Some(*resumed),
        _ => None,
    });
    assert_eq!(
        resumed,
        Some(0),
        "a different config fingerprint must start fresh"
    );
    std::fs::remove_dir_all(&dir).ok();
}
