//! End-to-end determinism: the same `cfg.seed` must produce the same
//! synthetic trace, run to run, even with the chunk models trained on
//! multiple rayon threads.
//!
//! This holds by construction and this test keeps it that way:
//! * every per-chunk RNG is seeded from `cfg.seed` and the chunk index,
//!   never from thread identity or global state;
//! * `par_iter().collect()` preserves chunk order;
//! * the tensor kernels compute each output row in a fixed accumulation
//!   order, so tiled-serial and banded-parallel results are bitwise
//!   identical at any thread count;
//! * codec vocabularies are built in first-seen or sorted order, never
//!   by `HashMap` iteration order.

use netshare::config::NetShareConfig;
use netshare::pipeline::{NetShare, SamplePath};
use trace_synth::{generate_flows as synth_flows, DatasetKind};

fn tiny_cfg(seed: u64) -> NetShareConfig {
    let mut cfg = NetShareConfig::fast();
    cfg.n_chunks = 2;
    cfg.seed_steps = 8;
    cfg.finetune_steps = 3;
    cfg.ip2vec_public_packets = 800;
    cfg.max_seq_len = 4;
    cfg.seed = seed;
    cfg
}

#[test]
fn same_seed_same_trace_across_fits_under_rayon() {
    // Force a multi-threaded rayon pool even on a single-core host so
    // the parallel chunk-training and banded-kernel paths really run.
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let real = synth_flows(DatasetKind::Ugr16, 400, 17);

    let run = |seed: u64| {
        let mut model = NetShare::fit_flows(&real, &tiny_cfg(seed)).unwrap();
        model.generate_flows(150)
    };

    let a = run(42);
    let b = run(42);
    assert_eq!(
        a, b,
        "two fits with the same cfg.seed must generate identical traces"
    );

    let c = run(43);
    assert_ne!(a, c, "a different seed must change the output");
}

#[test]
fn fast_sample_path_is_byte_identical_under_rayon() {
    // The default generation path routes through the frozen arena-backed
    // sampler. Golden gate: with rayon threads forced on, the fast path
    // must produce the exact trace the reference path produces — and the
    // same bytes a single-threaded pool produces, since thread count must
    // never leak into sampling.
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let real = synth_flows(DatasetKind::Ugr16, 400, 17);

    let run_via = |path: SamplePath| {
        let mut model = NetShare::fit_flows(&real, &tiny_cfg(42)).unwrap();
        model.generate_flows_via(150, path)
    };

    let reference = run_via(SamplePath::Reference);
    let fast = run_via(SamplePath::Fast);
    assert_eq!(
        reference, fast,
        "sample_fast must be byte-identical to the reference sampler"
    );

    // Re-running the fast path in the same (multi-threaded) process must
    // reproduce itself exactly — the arena holds no cross-run state.
    let fast_again = run_via(SamplePath::Fast);
    assert_eq!(fast, fast_again, "fast path must be self-reproducible");
}
