//! Multinomial logistic regression trained with mini-batch SGD.

use crate::dataset::Dataset;
use crate::Classifier;
use rand::prelude::*;

/// Softmax-regression classifier with per-feature standardization.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Learning rate.
    pub lr: f64,
    /// Training epochs.
    pub epochs: usize,
    /// L2 regularization strength.
    pub l2: f64,
    weights: Vec<f64>, // (n_features + 1) × n_classes, bias last row
    n_features: usize,
    n_classes: usize,
    mean: Vec<f64>,
    std: Vec<f64>,
    seed: u64,
}

impl LogisticRegression {
    /// Default configuration.
    pub fn new() -> Self {
        LogisticRegression {
            lr: 0.1,
            epochs: 60,
            l2: 1e-4,
            weights: Vec::new(),
            n_features: 0,
            n_classes: 0,
            mean: Vec::new(),
            std: Vec::new(),
            seed: 3,
        }
    }

    fn standardize(&self, row: &[f64], out: &mut [f64]) {
        for (j, &x) in row.iter().enumerate() {
            out[j] = (x - self.mean[j]) / self.std[j];
        }
    }

    fn logits(&self, z: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_classes];
        for (k, o) in out.iter_mut().enumerate() {
            let mut acc = self.weights[self.n_features * self.n_classes + k]; // bias
            for (j, &x) in z.iter().enumerate() {
                acc += self.weights[j * self.n_classes + k] * x;
            }
            *o = acc;
        }
        out
    }
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, data: &Dataset) {
        self.n_features = data.n_features;
        self.n_classes = data.n_classes().max(2);
        // Standardization statistics.
        self.mean = vec![0.0; self.n_features];
        self.std = vec![0.0; self.n_features];
        for row in data.rows() {
            for (j, &x) in row.iter().enumerate() {
                self.mean[j] += x;
            }
        }
        for m in &mut self.mean {
            *m /= data.len().max(1) as f64;
        }
        for row in data.rows() {
            for (j, &x) in row.iter().enumerate() {
                self.std[j] += (x - self.mean[j]).powi(2);
            }
        }
        for s in &mut self.std {
            *s = (*s / data.len().max(1) as f64).sqrt().max(1e-9);
        }

        self.weights = vec![0.0; (self.n_features + 1) * self.n_classes];
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut z = vec![0.0; self.n_features];
        let batch = 32.min(data.len().max(1));
        for _ in 0..self.epochs {
            for _ in 0..(data.len() / batch).max(1) {
                // Accumulate the gradient over a minibatch.
                let mut grad = vec![0.0; self.weights.len()];
                for _ in 0..batch {
                    let i = rng.gen_range(0..data.len());
                    self.standardize(data.row(i), &mut z);
                    let mut logits = self.logits(&z);
                    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    let mut sum = 0.0;
                    for l in &mut logits {
                        *l = (*l - max).exp();
                        sum += *l;
                    }
                    for (k, l) in logits.iter().enumerate() {
                        let p = l / sum;
                        let err = p - f64::from(data.labels[i] == k);
                        for (j, &x) in z.iter().enumerate() {
                            grad[j * self.n_classes + k] += err * x;
                        }
                        grad[self.n_features * self.n_classes + k] += err;
                    }
                }
                let scale = self.lr / batch as f64;
                for (w, g) in self.weights.iter_mut().zip(&grad) {
                    *w -= scale * (g + self.l2 * *w);
                }
            }
        }
    }

    fn predict(&self, row: &[f64]) -> usize {
        if self.weights.is_empty() {
            return 0;
        }
        let mut z = vec![0.0; self.n_features];
        self.standardize(row, &mut z);
        self.logits(&z)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "LR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linearly_separable_classes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..300 {
            let c = rng.gen_range(0..3usize);
            let center = [(0.0, 0.0), (5.0, 0.0), (0.0, 5.0)][c];
            rows.push(vec![
                center.0 + rng.gen_range(-1.0..1.0),
                center.1 + rng.gen_range(-1.0..1.0),
            ]);
            labels.push(c);
        }
        let data = Dataset::new(rows, labels);
        let mut lr = LogisticRegression::new();
        lr.fit(&data);
        assert!(lr.accuracy(&data) > 0.95, "accuracy {}", lr.accuracy(&data));
    }

    #[test]
    fn standardization_handles_scaled_features() {
        // One feature in [0,1], one in [0, 1e6]: without standardization
        // SGD would diverge or ignore the small one.
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![i as f64 / 200.0, (i % 2) as f64 * 1e6])
            .collect();
        let labels: Vec<usize> = (0..200).map(|i| i % 2).collect();
        let data = Dataset::new(rows, labels);
        let mut lr = LogisticRegression::new();
        lr.fit(&data);
        assert!(lr.accuracy(&data) > 0.95);
    }
}
