//! Random forest: bootstrap-aggregated gini trees with feature
//! subsampling.

use crate::dataset::Dataset;
use crate::tree::DecisionTree;
use crate::Classifier;
use rand::prelude::*;

/// A random-forest classifier.
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree depth limit.
    pub max_depth: usize,
    /// RNG seed.
    pub seed: u64,
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Builds a forest configuration.
    pub fn new(n_trees: usize, max_depth: usize) -> Self {
        RandomForest {
            n_trees,
            max_depth,
            seed: 11,
            trees: Vec::new(),
            n_classes: 0,
        }
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, data: &Dataset) {
        self.n_classes = data.n_classes().max(1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = data.len();
        let n_sub_features = ((data.n_features as f64).sqrt().ceil() as usize)
            .clamp(1, data.n_features);
        self.trees = (0..self.n_trees)
            .map(|_| {
                // Bootstrap sample.
                let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                // Random feature subset.
                let mut feats: Vec<usize> = (0..data.n_features).collect();
                feats.shuffle(&mut rng);
                feats.truncate(n_sub_features);
                let mut t = DecisionTree::new(self.max_depth);
                t.fit_subset(data, &idx, Some(&feats));
                t
            })
            .collect();
    }

    fn predict(&self, row: &[f64]) -> usize {
        let mut votes = vec![0usize; self.n_classes.max(1)];
        for t in &self.trees {
            votes[t.predict(row)] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(k, _)| k)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "RF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forest_beats_or_matches_a_stump_on_noisy_data() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..400 {
            let c = rng.gen_range(0..2usize);
            // Signal in feature 0, noise in features 1-3.
            rows.push(vec![
                c as f64 + rng.gen_range(-0.6..0.6),
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
            ]);
            labels.push(c);
        }
        let data = Dataset::new(rows, labels);
        let mut rf = RandomForest::new(15, 5);
        rf.fit(&data);
        assert!(rf.accuracy(&data) > 0.80, "accuracy {}", rf.accuracy(&data));
    }

    #[test]
    fn forest_is_deterministic_given_seed() {
        let data = Dataset::new(
            (0..50).map(|i| vec![i as f64, (i * 3 % 7) as f64]).collect(),
            (0..50).map(|i| i % 2).collect(),
        );
        let mut a = RandomForest::new(5, 3);
        let mut b = RandomForest::new(5, 3);
        a.fit(&data);
        b.fit(&data);
        for i in 0..50 {
            assert_eq!(a.predict(data.row(i)), b.predict(data.row(i)));
        }
    }
}
