//! Downstream-task protocols from the paper's Finding 2.
//!
//! * [`flow_prediction_dataset`]: the Fig. 11/12 traffic-type prediction
//!   features — "port number, protocol, bytes/flow, packets/flow, and flow
//!   duration" — with the time-sorted 80/20 split.
//! * [`classifier_suite`]: the five model families of Fig. 12 in paper
//!   order.
//! * [`accuracy_train_a_test_b`]: train on one trace, test on another
//!   (train-synthetic/test-real and its variants).

use crate::boosting::GradientBoosting;
use crate::dataset::Dataset;
use crate::forest::RandomForest;
use crate::logistic::LogisticRegression;
use crate::mlp::MlpClassifier;
use crate::tree::DecisionTree;
use crate::Classifier;
use nettrace::FlowTrace;

/// Builds the prediction dataset from a labeled flow trace, sorted by
/// start time (unlabeled records are treated as benign).
pub fn flow_prediction_dataset(trace: &FlowTrace) -> Dataset {
    let mut flows = trace.flows.clone();
    flows.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));
    let rows: Vec<Vec<f64>> = flows
        .iter()
        .map(|f| {
            vec![
                f.five_tuple.src_port as f64,
                f.five_tuple.dst_port as f64,
                f.five_tuple.proto.number() as f64,
                (1.0 + f.bytes as f64).ln(),
                (1.0 + f.packets as f64).ln(),
                (1.0 + f.duration_ms).ln(),
            ]
        })
        .collect();
    let labels = flows
        .iter()
        .map(|f| f.label.map(|l| l.class_index()).unwrap_or(0))
        .collect();
    Dataset::new(rows, labels)
}

/// The five classifiers of Fig. 12, in paper order, with CPU-scale
/// hyper-parameters.
pub fn classifier_suite() -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(DecisionTree::new(8)),
        Box::new(LogisticRegression::new()),
        Box::new(RandomForest::new(12, 8)),
        Box::new(GradientBoosting::new(12, 3)),
        Box::new(MlpClassifier::new(vec![32, 32], 30)),
    ]
}

/// Trains a classifier on `train` (time-ordered 80%) and evaluates on
/// `test` (later 20%) — both datasets pre-split by the caller via
/// [`Dataset::split_ordered`].
pub fn accuracy_train_a_test_b(
    clf: &mut dyn Classifier,
    train: &Dataset,
    test: &Dataset,
) -> f64 {
    clf.fit(train);
    clf.accuracy(test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::TrafficLabel;
    use trace_synth::{generate_flows, DatasetKind};

    #[test]
    fn dataset_extraction_keeps_labels_and_order() {
        let t = generate_flows(DatasetKind::Ton, 800, 1);
        let d = flow_prediction_dataset(&t);
        assert_eq!(d.len(), t.len());
        assert_eq!(d.n_features, 6);
        assert!(d.n_classes() > 1, "TON must have multiple classes");
        let benign = t
            .flows
            .iter()
            .filter(|f| f.label == Some(TrafficLabel::Benign))
            .count();
        let zero_labels = d.labels.iter().filter(|&&y| y == 0).count();
        assert_eq!(benign, zero_labels);
    }

    #[test]
    fn suite_has_the_five_paper_classifiers() {
        let suite = classifier_suite();
        let names: Vec<&str> = suite.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["DT", "LR", "RF", "GB", "MLP"]);
    }

    #[test]
    fn classifiers_beat_majority_on_ton_features() {
        let t = generate_flows(DatasetKind::Ton, 1_200, 2);
        let d = flow_prediction_dataset(&t);
        let (train, test) = d.split_ordered(0.8);
        let majority = {
            let mut counts = std::collections::HashMap::new();
            for &y in &test.labels {
                *counts.entry(y).or_insert(0usize) += 1;
            }
            *counts.values().max().unwrap() as f64 / test.len() as f64
        };
        let mut dt = DecisionTree::new(8);
        let acc = accuracy_train_a_test_b(&mut dt, &train, &test);
        assert!(
            acc > majority + 0.05,
            "DT accuracy {acc} vs majority {majority}"
        );
    }
}
