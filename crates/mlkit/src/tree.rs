//! CART decision trees: gini classification and variance-reduction
//! regression (the latter feeds gradient boosting).

use crate::dataset::Dataset;
use crate::Classifier;

/// A tree node (classification or regression share the structure).
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Majority class (classification) — unused by regression.
        class: usize,
        /// Mean target (regression) — class frequency for classification.
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn descend(&self, row: &[f64]) -> (&usize, &f64) {
        match self {
            Node::Leaf { class, value } => (class, value),
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if row[*feature] <= *threshold {
                    left.descend(row)
                } else {
                    right.descend(row)
                }
            }
        }
    }
}

/// Gini impurity of a label multiset given class counts.
fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let mut g = 1.0;
    for &c in counts {
        let p = c as f64 / total as f64;
        g -= p * p;
    }
    g
}

/// Candidate thresholds for a feature: midpoints of up to `max` evenly
/// spaced sorted values.
fn thresholds(values: &mut Vec<f64>, max: usize) -> Vec<f64> {
    values.sort_by(|a, b| a.total_cmp(b));
    values.dedup();
    if values.len() < 2 {
        return Vec::new();
    }
    let step = ((values.len() - 1) as f64 / max as f64).max(1.0);
    let mut out = Vec::new();
    let mut i = 0.0;
    while (i as usize) + 1 < values.len() {
        let a = values[i as usize];
        let b = values[i as usize + 1];
        out.push((a + b) / 2.0);
        i += step;
    }
    out.dedup();
    out
}

/// CART classification tree (gini criterion).
#[derive(Debug, Clone)]
pub struct DecisionTree {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    root: Option<Node>,
    n_classes: usize,
}

impl DecisionTree {
    /// A tree with the given depth limit.
    pub fn new(max_depth: usize) -> Self {
        DecisionTree {
            max_depth,
            min_samples_split: 4,
            root: None,
            n_classes: 0,
        }
    }

    fn build(
        data: &Dataset,
        idx: &[usize],
        depth: usize,
        max_depth: usize,
        min_split: usize,
        n_classes: usize,
        feature_subset: Option<&[usize]>,
    ) -> Node {
        let mut counts = vec![0usize; n_classes];
        for &i in idx {
            counts[data.labels[i]] += 1;
        }
        let (majority, _) = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .unwrap_or((0, &0));
        let leaf = Node::Leaf {
            class: majority,
            value: counts[majority] as f64 / idx.len().max(1) as f64,
        };
        if depth >= max_depth || idx.len() < min_split || gini(&counts, idx.len()) == 0.0 { // lint: allow(float-eq) gini of a pure node is exactly 0.0 (sum of exact squares of 0/1 fractions)
            return leaf;
        }

        let parent_gini = gini(&counts, idx.len());
        let features: Vec<usize> = match feature_subset {
            Some(fs) => fs.to_vec(),
            None => (0..data.n_features).collect(),
        };
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, thr)
        for &f in &features {
            let mut vals: Vec<f64> = idx.iter().map(|&i| data.row(i)[f]).collect();
            for thr in thresholds(&mut vals, 16) {
                let mut lc = vec![0usize; n_classes];
                let mut rc = vec![0usize; n_classes];
                let mut ln = 0;
                let mut rn = 0;
                for &i in idx {
                    if data.row(i)[f] <= thr {
                        lc[data.labels[i]] += 1;
                        ln += 1;
                    } else {
                        rc[data.labels[i]] += 1;
                        rn += 1;
                    }
                }
                if ln == 0 || rn == 0 {
                    continue;
                }
                let child = (ln as f64 * gini(&lc, ln) + rn as f64 * gini(&rc, rn))
                    / idx.len() as f64;
                let gain = parent_gini - child;
                if best.map(|(g, _, _)| gain > g).unwrap_or(gain > 1e-12) {
                    best = Some((gain, f, thr));
                }
            }
        }
        let Some((_, feature, threshold)) = best else {
            return leaf;
        };
        let (li, ri): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| data.row(i)[feature] <= threshold);
        Node::Split {
            feature,
            threshold,
            left: Box::new(Self::build(
                data, &li, depth + 1, max_depth, min_split, n_classes, feature_subset,
            )),
            right: Box::new(Self::build(
                data, &ri, depth + 1, max_depth, min_split, n_classes, feature_subset,
            )),
        }
    }

    /// Fits on explicit row indices with an optional feature subset (used
    /// by the random forest).
    pub fn fit_subset(&mut self, data: &Dataset, idx: &[usize], features: Option<&[usize]>) {
        self.n_classes = data.n_classes().max(1);
        self.root = Some(Self::build(
            data,
            idx,
            0,
            self.max_depth,
            self.min_samples_split,
            self.n_classes,
            features,
        ));
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, data: &Dataset) {
        let idx: Vec<usize> = (0..data.len()).collect();
        self.fit_subset(data, &idx, None);
    }

    fn predict(&self, row: &[f64]) -> usize {
        match &self.root {
            Some(n) => *n.descend(row).0,
            None => 0,
        }
    }

    fn name(&self) -> &'static str {
        "DT"
    }
}

/// CART regression tree (variance reduction) for gradient boosting.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    /// Maximum depth.
    pub max_depth: usize,
    root: Option<Node>,
}

impl RegressionTree {
    /// A regression tree with the given depth limit.
    pub fn new(max_depth: usize) -> Self {
        RegressionTree {
            max_depth,
            root: None,
        }
    }

    fn build_reg(
        data: &Dataset,
        targets: &[f64],
        idx: &[usize],
        depth: usize,
        max_depth: usize,
    ) -> Node {
        let mean = idx.iter().map(|&i| targets[i]).sum::<f64>() / idx.len().max(1) as f64;
        let leaf = Node::Leaf {
            class: 0,
            value: mean,
        };
        if depth >= max_depth || idx.len() < 4 {
            return leaf;
        }
        let sse = |is: &[usize]| -> f64 {
            let m = is.iter().map(|&i| targets[i]).sum::<f64>() / is.len().max(1) as f64;
            is.iter().map(|&i| (targets[i] - m).powi(2)).sum()
        };
        let parent_sse = sse(idx);
        let mut best: Option<(f64, usize, f64)> = None;
        for f in 0..data.n_features {
            let mut vals: Vec<f64> = idx.iter().map(|&i| data.row(i)[f]).collect();
            for thr in thresholds(&mut vals, 16) {
                let (li, ri): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| data.row(i)[f] <= thr);
                if li.is_empty() || ri.is_empty() {
                    continue;
                }
                let gain = parent_sse - sse(&li) - sse(&ri);
                if best.map(|(g, _, _)| gain > g).unwrap_or(gain > 1e-12) {
                    best = Some((gain, f, thr));
                }
            }
        }
        let Some((_, feature, threshold)) = best else {
            return leaf;
        };
        let (li, ri): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| data.row(i)[feature] <= threshold);
        Node::Split {
            feature,
            threshold,
            left: Box::new(Self::build_reg(data, targets, &li, depth + 1, max_depth)),
            right: Box::new(Self::build_reg(data, targets, &ri, depth + 1, max_depth)),
        }
    }

    /// Fits on all rows against real-valued targets.
    pub fn fit(&mut self, data: &Dataset, targets: &[f64]) {
        assert_eq!(targets.len(), data.len(), "target length mismatch");
        let idx: Vec<usize> = (0..data.len()).collect();
        self.root = Some(Self::build_reg(data, targets, &idx, 0, self.max_depth));
    }

    /// Predicted value for a row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        match &self.root {
            Some(n) => *n.descend(row).1,
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_ish() -> Dataset {
        // Axis-aligned separable problem: class = (x > 0.5) as usize.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64 / 100.0, (i * 7 % 13) as f64])
            .collect();
        let labels = rows.iter().map(|r| usize::from(r[0] > 0.5)).collect();
        Dataset::new(rows, labels)
    }

    #[test]
    fn learns_threshold_rule_perfectly() {
        let data = xor_ish();
        let mut t = DecisionTree::new(4);
        t.fit(&data);
        assert!(t.accuracy(&data) > 0.98, "accuracy {}", t.accuracy(&data));
    }

    #[test]
    fn depth_zero_is_majority_class() {
        let data = Dataset::new(
            vec![vec![0.0], vec![1.0], vec![2.0]],
            vec![1, 1, 0],
        );
        let mut t = DecisionTree::new(0);
        t.fit(&data);
        assert_eq!(t.predict(&[9.0]), 1);
    }

    #[test]
    fn learns_two_level_structure() {
        // Unbalanced quadrant problem: class 1 only in the top-right
        // quadrant. Needs depth 2 but (unlike balanced XOR, which greedy
        // CART provably cannot split) gives positive gain at every level.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for xi in 0..10 {
            for yi in 0..10 {
                let (x, y) = (xi as f64 / 10.0, yi as f64 / 10.0);
                rows.push(vec![x, y]);
                labels.push(usize::from(x > 0.45 && y > 0.45));
            }
        }
        let data = Dataset::new(rows, labels);
        let mut t = DecisionTree::new(3);
        t.fit(&data);
        assert!(t.accuracy(&data) > 0.95, "accuracy {}", t.accuracy(&data));
    }

    #[test]
    fn regression_tree_fits_step_function() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..50).map(|i| if i < 25 { 1.0 } else { 5.0 }).collect();
        let data = Dataset::new(rows, vec![0; 50]);
        let mut t = RegressionTree::new(3);
        t.fit(&data, &targets);
        assert!((t.predict(&[10.0]) - 1.0).abs() < 0.1);
        assert!((t.predict(&[40.0]) - 5.0).abs() < 0.1);
    }
}
