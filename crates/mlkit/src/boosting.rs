//! Gradient boosting: one-vs-rest logistic boosting with regression trees
//! on the negative gradient (Friedman, 2001).

use crate::dataset::Dataset;
use crate::tree::RegressionTree;
use crate::Classifier;

/// A gradient-boosted classifier.
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    /// Boosting rounds per class.
    pub n_rounds: usize,
    /// Tree depth.
    pub max_depth: usize,
    /// Shrinkage.
    pub learning_rate: f64,
    /// One boosted ensemble per class (one-vs-rest).
    ensembles: Vec<Vec<RegressionTree>>,
    base: Vec<f64>,
}

impl GradientBoosting {
    /// Builds a boosting configuration.
    pub fn new(n_rounds: usize, max_depth: usize) -> Self {
        GradientBoosting {
            n_rounds,
            max_depth,
            learning_rate: 0.3,
            ensembles: Vec::new(),
            base: Vec::new(),
        }
    }

    fn score(&self, row: &[f64], class: usize) -> f64 {
        let mut f = self.base[class];
        for tree in &self.ensembles[class] {
            f += self.learning_rate * tree.predict(row);
        }
        f
    }
}

impl Classifier for GradientBoosting {
    fn fit(&mut self, data: &Dataset) {
        let n_classes = data.n_classes().max(2);
        let n = data.len();
        self.ensembles = vec![Vec::new(); n_classes];
        self.base = vec![0.0; n_classes];
        for k in 0..n_classes {
            // Base score: log-odds of the class prior.
            let pos = data.labels.iter().filter(|&&y| y == k).count();
            let p = (pos as f64 / n as f64).clamp(1e-6, 1.0 - 1e-6);
            self.base[k] = (p / (1.0 - p)).ln();

            let mut f: Vec<f64> = vec![self.base[k]; n];
            for _ in 0..self.n_rounds {
                // Negative gradient of logistic loss: y − σ(f).
                let residuals: Vec<f64> = (0..n)
                    .map(|i| {
                        let y = f64::from(data.labels[i] == k);
                        let sigma = 1.0 / (1.0 + (-f[i]).exp());
                        y - sigma
                    })
                    .collect();
                let mut tree = RegressionTree::new(self.max_depth);
                tree.fit(data, &residuals);
                for (i, fi) in f.iter_mut().enumerate() {
                    *fi += self.learning_rate * tree.predict(data.row(i));
                }
                self.ensembles[k].push(tree);
            }
        }
    }

    fn predict(&self, row: &[f64]) -> usize {
        if self.ensembles.is_empty() {
            return 0;
        }
        (0..self.ensembles.len())
            .map(|k| (k, self.score(row, k)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(k, _)| k)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "GB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn learns_nonlinear_boundary() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..300 {
            let x = rng.gen_range(-1.0..1.0f64);
            let y = rng.gen_range(-1.0..1.0f64);
            rows.push(vec![x, y]);
            labels.push(usize::from(x * x + y * y < 0.5)); // disc vs ring
        }
        let data = Dataset::new(rows, labels);
        let mut gb = GradientBoosting::new(20, 3);
        gb.fit(&data);
        assert!(gb.accuracy(&data) > 0.90, "accuracy {}", gb.accuracy(&data));
    }

    #[test]
    fn handles_three_classes() {
        let rows: Vec<Vec<f64>> = (0..120).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..120).map(|i| i / 40).collect();
        let data = Dataset::new(rows, labels);
        let mut gb = GradientBoosting::new(10, 2);
        gb.fit(&data);
        assert!(gb.accuracy(&data) > 0.95);
        assert_eq!(gb.predict(&[5.0]), 0);
        assert_eq!(gb.predict(&[115.0]), 2);
    }
}
