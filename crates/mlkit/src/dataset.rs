//! Dense labeled datasets.

/// A dense feature matrix with integer class labels.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Row-major features, `len × n_features`.
    pub features: Vec<f64>,
    /// Class label per row.
    pub labels: Vec<usize>,
    /// Feature count per row.
    pub n_features: usize,
}

impl Dataset {
    /// Builds a dataset from rows.
    ///
    /// # Panics
    /// Panics on ragged rows or a rows/labels length mismatch.
    pub fn new(rows: Vec<Vec<f64>>, labels: Vec<usize>) -> Self {
        assert_eq!(rows.len(), labels.len(), "rows/labels mismatch");
        let n_features = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut features = Vec::with_capacity(rows.len() * n_features);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), n_features, "ragged row {i}");
            features.extend_from_slice(r);
        }
        Dataset {
            features,
            labels,
            n_features,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The feature row at `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.features[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Iterator over feature rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.features.chunks(self.n_features.max(1)).take(self.len())
    }

    /// Number of distinct classes (max label + 1).
    pub fn n_classes(&self) -> usize {
        self.labels.iter().max().map(|&m| m + 1).unwrap_or(0)
    }

    /// A new dataset with the selected row indices.
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        let rows = idx.iter().map(|&i| self.row(i).to_vec()).collect();
        let labels = idx.iter().map(|&i| self.labels[i]).collect();
        Dataset::new(rows, labels)
    }

    /// Splits into `(first_frac, rest)` by row order (the paper's
    /// time-sorted 80/20 protocol, Fig. 11).
    pub fn split_ordered(&self, first_frac: f64) -> (Dataset, Dataset) {
        let cut = ((self.len() as f64) * first_frac).round() as usize;
        let cut = cut.min(self.len());
        let head: Vec<usize> = (0..cut).collect();
        let tail: Vec<usize> = (cut..self.len()).collect();
        (self.subset(&head), self.subset(&tail))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        Dataset::new(
            vec![vec![0.0, 1.0], vec![2.0, 3.0], vec![4.0, 5.0], vec![6.0, 7.0]],
            vec![0, 1, 1, 2],
        )
    }

    #[test]
    fn accessors() {
        let d = data();
        assert_eq!(d.len(), 4);
        assert_eq!(d.n_features, 2);
        assert_eq!(d.row(2), &[4.0, 5.0]);
        assert_eq!(d.n_classes(), 3);
        assert_eq!(d.rows().count(), 4);
    }

    #[test]
    fn subset_and_split() {
        let d = data();
        let s = d.subset(&[3, 0]);
        assert_eq!(s.labels, vec![2, 0]);
        assert_eq!(s.row(0), &[6.0, 7.0]);
        let (train, test) = d.split_ordered(0.75);
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 1);
        assert_eq!(test.labels, vec![2]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1]);
    }
}
