//! MLP classifier built on the `nnet` training framework.

use crate::dataset::Dataset;
use crate::Classifier;
use nnet::loss::softmax_cross_entropy;
use nnet::optim::{Adam, Optimizer};
use nnet::{Activation, Layer, Parameterized, Sequential, Tensor};
use rand::prelude::*;

/// A feed-forward classifier with standardized inputs.
pub struct MlpClassifier {
    /// Hidden layer sizes.
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    net: Option<Sequential>,
    mean: Vec<f64>,
    std: Vec<f64>,
    n_classes: usize,
    seed: u64,
}

impl MlpClassifier {
    /// Builds an MLP configuration.
    pub fn new(hidden: Vec<usize>, epochs: usize) -> Self {
        MlpClassifier {
            hidden,
            epochs,
            lr: 1e-3,
            net: None,
            mean: Vec::new(),
            std: Vec::new(),
            n_classes: 0,
            seed: 5,
        }
    }

    fn encode_row(&self, row: &[f64]) -> Vec<f32> {
        row.iter()
            .enumerate()
            .map(|(j, &x)| ((x - self.mean[j]) / self.std[j]) as f32)
            .collect()
    }
}

impl Classifier for MlpClassifier {
    fn fit(&mut self, data: &Dataset) {
        self.n_classes = data.n_classes().max(2);
        let nf = data.n_features;
        self.mean = vec![0.0; nf];
        self.std = vec![0.0; nf];
        for row in data.rows() {
            for (j, &x) in row.iter().enumerate() {
                self.mean[j] += x;
            }
        }
        for m in &mut self.mean {
            *m /= data.len().max(1) as f64;
        }
        for row in data.rows() {
            for (j, &x) in row.iter().enumerate() {
                self.std[j] += (x - self.mean[j]).powi(2);
            }
        }
        for s in &mut self.std {
            *s = (*s / data.len().max(1) as f64).sqrt().max(1e-9);
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut net = Sequential::mlp(nf, &self.hidden, self.n_classes, Activation::Relu, &mut rng);
        let mut opt = Adam::with_betas(self.lr, 0.9, 0.999);
        let batch = 32.min(data.len().max(1));
        for _ in 0..self.epochs {
            for _ in 0..(data.len() / batch).max(1) {
                let idx: Vec<usize> = (0..batch).map(|_| rng.gen_range(0..data.len())).collect();
                let mut x = Tensor::zeros(batch, nf);
                let mut y = Vec::with_capacity(batch);
                for (bi, &i) in idx.iter().enumerate() {
                    x.row_mut(bi).copy_from_slice(&self.encode_row(data.row(i)));
                    y.push(data.labels[i]);
                }
                let logits = net.forward(&x);
                let (_, grad) = softmax_cross_entropy(&logits, &y);
                net.zero_grad();
                let _ = net.backward(&grad);
                opt.step(&mut net);
            }
        }
        self.net = Some(net);
    }

    fn predict(&self, row: &[f64]) -> usize {
        let Some(net) = &self.net else {
            return 0;
        };
        // Forward needs &mut for caching; clone the cheap layer stack.
        let mut net = net.clone();
        let x = Tensor::row_vector(&self.encode_row(row));
        let logits = net.forward(&x);
        logits
            .row(0)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "MLP"
    }

    fn accuracy(&self, data: &Dataset) -> f64 {
        // Batched override: one network clone and one forward pass for the
        // whole dataset instead of per-row clones.
        let Some(net) = &self.net else {
            return 0.0;
        };
        if data.is_empty() {
            return 0.0;
        }
        let mut net = net.clone();
        let mut x = Tensor::zeros(data.len(), data.n_features);
        for (i, row) in data.rows().enumerate() {
            x.row_mut(i).copy_from_slice(&self.encode_row(row));
        }
        let logits = net.forward(&x);
        let mut correct = 0usize;
        for i in 0..data.len() {
            let pred = logits
                .row(i)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(k, _)| k)
                .unwrap_or(0);
            correct += usize::from(pred == data.labels[i]);
        }
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_circular_boundary() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..400 {
            let x = rng.gen_range(-1.0..1.0f64);
            let y = rng.gen_range(-1.0..1.0f64);
            rows.push(vec![x, y]);
            labels.push(usize::from(x * x + y * y < 0.5));
        }
        let data = Dataset::new(rows, labels);
        let mut mlp = MlpClassifier::new(vec![24, 24], 60);
        mlp.fit(&data);
        assert!(mlp.accuracy(&data) > 0.88, "accuracy {}", mlp.accuracy(&data));
    }

    #[test]
    fn predict_before_fit_is_safe() {
        let mlp = MlpClassifier::new(vec![8], 1);
        assert_eq!(mlp.predict(&[]), 0);
    }
}
