//! One-class SVM (Schölkopf et al., 2001) with an RBF kernel — the
//! default detector of the NetML library the paper uses for App #3.
//!
//! The RBF kernel is approximated with random Fourier features (Rahimi &
//! Recht, 2007): `φ(x) = √(2/D)·cos(Wx + b)` with `W ~ N(0, 1/σ²)`,
//! `b ~ U[0, 2π)`, so the model stays a linear SVM trained by SGD while
//! behaving like the kernelized original: points far from the training
//! region have features uncorrelated with the learned weight vector,
//! score near zero, and fall below the calibrated offset ρ.
//!
//! Objective: `min ½‖w‖² − ρ + 1/(νn) Σ max(0, ρ − w·φ(xᵢ))`; a point is
//! an anomaly when `w·φ(x) < ρ`. Inputs are standardized on the training
//! (assumed mostly-normal) data.

use rand::prelude::*;
use rand_distr::{Distribution, Normal};

/// Random-Fourier-feature dimensionality.
const D: usize = 64;

/// A fitted one-class SVM.
#[derive(Debug, Clone)]
pub struct OneClassSvm {
    /// Fraction of training points allowed outside the boundary.
    pub nu: f64,
    /// SGD epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    w: Vec<f64>,
    rho: f64,
    mean: Vec<f64>,
    std: Vec<f64>,
    /// RFF projection, `D × n_features` row-major.
    proj: Vec<f64>,
    /// RFF phases, length `D`.
    phase: Vec<f64>,
    seed: u64,
}

impl OneClassSvm {
    /// Builds a detector with the given ν (typical: 0.05–0.2).
    pub fn new(nu: f64) -> Self {
        assert!(nu > 0.0 && nu < 1.0, "nu in (0,1)");
        OneClassSvm {
            nu,
            epochs: 40,
            lr: 0.05,
            w: Vec::new(),
            rho: 0.0,
            mean: Vec::new(),
            std: Vec::new(),
            proj: Vec::new(),
            phase: Vec::new(),
            seed: 13,
        }
    }

    /// Overrides the RFF/SGD seed (varies the randomized parts across
    /// independent runs).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Maps a raw row through standardization + random Fourier features.
    fn encode(&self, row: &[f64], out: &mut [f64]) {
        let nf = row.len();
        let scale = (2.0 / D as f64).sqrt();
        for (d, o) in out.iter_mut().enumerate() {
            let mut acc = self.phase[d];
            for (j, &x) in row.iter().enumerate() {
                let z = (x - self.mean[j]) / self.std[j];
                acc += self.proj[d * nf + j] * z;
            }
            *o = scale * acc.cos();
        }
    }

    /// Fits on feature rows (treated as mostly-normal data).
    pub fn fit(&mut self, rows: &[Vec<f64>]) {
        assert!(!rows.is_empty(), "need training data");
        let nf = rows[0].len();
        self.mean = vec![0.0; nf];
        self.std = vec![0.0; nf];
        for r in rows {
            for (j, &x) in r.iter().enumerate() {
                self.mean[j] += x;
            }
        }
        for m in &mut self.mean {
            *m /= rows.len() as f64;
        }
        for r in rows {
            for (j, &x) in r.iter().enumerate() {
                self.std[j] += (x - self.mean[j]).powi(2);
            }
        }
        for s in &mut self.std {
            *s = (*s / rows.len() as f64).sqrt().max(1e-9);
        }

        // RFF parameters: bandwidth σ = √nf (median-heuristic-shaped for
        // standardized inputs).
        let mut rng = StdRng::seed_from_u64(self.seed);
        let sigma = (nf as f64).sqrt();
        let normal = Normal::new(0.0, 1.0 / sigma).unwrap(); // lint: allow(panic-in-lib) sigma = sqrt(nf) > 0, parameters valid (lint: allow(panic-in-lib) sigma = sqrt(nf) > 0, parameters valid)
        self.proj = (0..D * nf).map(|_| normal.sample(&mut rng)).collect();
        self.phase = (0..D)
            .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
            .collect();

        self.w = vec![0.0; D];
        self.rho = 0.0;
        let mut z = vec![0.0; D];
        let n = rows.len();
        let inv_nu_n = 1.0 / (self.nu * n as f64);
        for epoch in 0..self.epochs {
            let lr = self.lr / (1.0 + epoch as f64 * 0.1);
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                self.encode(&rows[i], &mut z);
                let score: f64 = self.w.iter().zip(&z).map(|(w, x)| w * x).sum();
                // Subgradients of the per-point objective
                // (1/n)(½‖w‖² − ρ) + (1/νn)(ρ − w·φ)₊ :
                // on a violation ∂ρ = (1/ν − 1)/n > 0 (ρ shrinks);
                // otherwise ∂ρ = −1/n (ρ grows toward the margin).
                if score < self.rho {
                    for (w, &x) in self.w.iter_mut().zip(&z) {
                        *w -= lr * (*w / n as f64 - inv_nu_n * x);
                    }
                    self.rho -= lr * ((1.0 / self.nu - 1.0) / n as f64);
                } else {
                    for w in self.w.iter_mut() {
                        *w -= lr * *w / n as f64;
                    }
                    self.rho += lr / n as f64;
                }
            }
        }
        // Calibrate ρ so exactly ν of training points fall outside —
        // the standard post-hoc quantile adjustment.
        let mut scores: Vec<f64> = rows
            .iter()
            .map(|r| {
                self.encode(r, &mut z);
                self.w.iter().zip(&z).map(|(w, x)| w * x).sum()
            })
            .collect();
        scores.sort_by(|a, b| a.total_cmp(b));
        let q = ((self.nu * n as f64) as usize).min(n - 1);
        self.rho = scores[q];
    }

    /// Decision score (`< 0` ⇒ anomaly).
    pub fn score(&self, row: &[f64]) -> f64 {
        let mut z = vec![0.0; D];
        self.encode(row, &mut z);
        self.w.iter().zip(&z).map(|(w, x)| w * x).sum::<f64>() - self.rho
    }

    /// Whether the row is flagged anomalous.
    pub fn is_anomaly(&self, row: &[f64]) -> bool {
        self.score(row) < 0.0
    }

    /// Fraction of rows flagged anomalous — the "anomaly ratio" the
    /// paper's App #3 compares between real and synthetic traces.
    pub fn anomaly_ratio(&self, rows: &[Vec<f64>]) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().filter(|r| self.is_anomaly(r)).count() as f64 / rows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize, center: f64, spread: f64, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                vec![
                    center + rng.gen_range(-spread..spread),
                    center + rng.gen_range(-spread..spread),
                ]
            })
            .collect()
    }

    #[test]
    fn training_ratio_close_to_nu() {
        let data = cluster(500, 0.0, 1.0, 1);
        let mut svm = OneClassSvm::new(0.1);
        svm.fit(&data);
        let ratio = svm.anomaly_ratio(&data);
        assert!((ratio - 0.1).abs() < 0.05, "training anomaly ratio {ratio}");
    }

    #[test]
    fn outliers_score_lower_than_inliers() {
        let data = cluster(500, 0.0, 1.0, 2);
        let mut svm = OneClassSvm::new(0.1);
        svm.fit(&data);
        let inlier_score = svm.score(&[0.0, 0.0]);
        let outlier_score = svm.score(&[30.0, -40.0]);
        assert!(
            outlier_score < inlier_score,
            "outlier {outlier_score} vs inlier {inlier_score}"
        );
        assert!(svm.is_anomaly(&[30.0, -40.0]), "far point is anomalous");
    }

    #[test]
    fn shifted_population_has_higher_anomaly_ratio() {
        let normal = cluster(400, 0.0, 1.0, 3);
        let mut svm = OneClassSvm::new(0.1);
        svm.fit(&normal);
        let shifted = cluster(200, 8.0, 1.0, 4);
        assert!(
            svm.anomaly_ratio(&shifted) > svm.anomaly_ratio(&normal),
            "shifted data must look more anomalous"
        );
    }
}
