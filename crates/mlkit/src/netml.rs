//! NetML flow representations (Yang, Kpotufe & Feamster, 2020).
//!
//! The paper's App #3 runs a one-class SVM over six flow "modes". NetML
//! "only processes flows with packet count greater than one", which is
//! why baselines that emit only single-packet flows drop out of Fig. 14.

use nettrace::PacketTrace;

/// The six NetML feature modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetmlMode {
    /// First-k inter-arrival times.
    Iat,
    /// First-k packet sizes.
    Size,
    /// IAT ‖ SIZE.
    IatSize,
    /// Aggregate statistics (duration, counts, moments, rates).
    Stats,
    /// Packet counts in q time bins (SAMP-NUM).
    SampNum,
    /// Byte counts in q time bins (SAMP-SIZE).
    SampSize,
}

impl NetmlMode {
    /// All modes, in the paper's Fig. 14 order.
    pub const ALL: [NetmlMode; 6] = [
        NetmlMode::Iat,
        NetmlMode::Size,
        NetmlMode::IatSize,
        NetmlMode::Stats,
        NetmlMode::SampNum,
        NetmlMode::SampSize,
    ];

    /// Paper-style short label.
    pub fn name(self) -> &'static str {
        match self {
            NetmlMode::Iat => "IAT",
            NetmlMode::Size => "SIZE",
            NetmlMode::IatSize => "IAT_SIZE",
            NetmlMode::Stats => "STATS",
            NetmlMode::SampNum => "SAMP-NUM",
            NetmlMode::SampSize => "SAMP-SIZE",
        }
    }
}

/// Packets kept for the per-packet modes.
const K: usize = 10;
/// Time bins for the sampling modes.
const Q: usize = 10;

/// Extracts the mode's feature vector for one flow (a time-ordered packet
/// list). Returns `None` for flows with fewer than two packets (NetML's
/// filter).
pub fn flow_features(
    packets: &[(f64, u16)], // (arrival ms, size)
    mode: NetmlMode,
) -> Option<Vec<f64>> {
    if packets.len() < 2 {
        return None;
    }
    let iats: Vec<f64> = packets.windows(2).map(|w| (w[1].0 - w[0].0).max(0.0)).collect();
    let sizes: Vec<f64> = packets.iter().map(|&(_, s)| s as f64).collect();
    let pad = |v: &[f64], k: usize| -> Vec<f64> {
        let mut out = v.to_vec();
        out.truncate(k);
        out.resize(k, 0.0);
        out
    };
    let duration = (packets.last().unwrap().0 - packets[0].0).max(1e-9); // lint: allow(panic-in-lib) len >= 2 checked at function entry (lint: allow(panic-in-lib) len >= 2 checked at function entry)
    Some(match mode {
        NetmlMode::Iat => pad(&iats, K),
        NetmlMode::Size => pad(&sizes, K),
        NetmlMode::IatSize => {
            let mut v = pad(&iats, K);
            v.extend(pad(&sizes, K));
            v
        }
        NetmlMode::Stats => {
            let n = packets.len() as f64;
            let bytes: f64 = sizes.iter().sum();
            let mean_size = bytes / n;
            let std_size =
                (sizes.iter().map(|s| (s - mean_size).powi(2)).sum::<f64>() / n).sqrt();
            let mean_iat = iats.iter().sum::<f64>() / iats.len() as f64;
            let std_iat = (iats.iter().map(|t| (t - mean_iat).powi(2)).sum::<f64>()
                / iats.len() as f64)
                .sqrt();
            vec![
                duration,
                n,
                bytes,
                mean_size,
                std_size,
                mean_iat,
                std_iat,
                n / duration * 1000.0,     // pkts/sec
                bytes / duration * 1000.0, // bytes/sec
            ]
        }
        NetmlMode::SampNum | NetmlMode::SampSize => {
            let mut bins = vec![0.0; Q];
            let t0 = packets[0].0;
            for &(t, s) in packets {
                let b = (((t - t0) / duration * Q as f64) as usize).min(Q - 1);
                bins[b] += match mode {
                    NetmlMode::SampNum => 1.0,
                    _ => s as f64,
                };
            }
            bins
        }
    })
}

/// Extracts the feature rows of every ≥2-packet flow in a trace.
pub fn trace_features(trace: &PacketTrace, mode: NetmlMode) -> Vec<Vec<f64>> {
    let mut out = Vec::new();
    for pkts in trace.group_by_five_tuple().values() {
        let mut series: Vec<(f64, u16)> =
            pkts.iter().map(|p| (p.ts_millis(), p.packet_len)).collect();
        series.sort_by(|a, b| a.0.total_cmp(&b.0));
        if let Some(f) = flow_features(&series, mode) {
            out.push(f);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::{FiveTuple, PacketRecord, Protocol};

    fn flow() -> Vec<(f64, u16)> {
        vec![(0.0, 100), (10.0, 200), (30.0, 100), (60.0, 1400)]
    }

    #[test]
    fn single_packet_flows_rejected() {
        assert!(flow_features(&[(0.0, 100)], NetmlMode::Iat).is_none());
    }

    #[test]
    fn iat_and_size_have_fixed_width() {
        let f = flow();
        assert_eq!(flow_features(&f, NetmlMode::Iat).unwrap().len(), K);
        assert_eq!(flow_features(&f, NetmlMode::Size).unwrap().len(), K);
        assert_eq!(flow_features(&f, NetmlMode::IatSize).unwrap().len(), 2 * K);
        let iat = flow_features(&f, NetmlMode::Iat).unwrap();
        assert_eq!(&iat[..3], &[10.0, 20.0, 30.0]);
        assert_eq!(iat[3], 0.0, "padding");
    }

    #[test]
    fn stats_are_correct() {
        let f = flow();
        let s = flow_features(&f, NetmlMode::Stats).unwrap();
        assert_eq!(s[0], 60.0, "duration");
        assert_eq!(s[1], 4.0, "packet count");
        assert_eq!(s[2], 1800.0, "bytes");
        assert!((s[3] - 450.0).abs() < 1e-9, "mean size");
    }

    #[test]
    fn samp_bins_conserve_totals() {
        let f = flow();
        let num = flow_features(&f, NetmlMode::SampNum).unwrap();
        assert_eq!(num.iter().sum::<f64>(), 4.0);
        let size = flow_features(&f, NetmlMode::SampSize).unwrap();
        assert_eq!(size.iter().sum::<f64>(), 1800.0);
    }

    #[test]
    fn trace_extraction_filters_singletons() {
        let ft = FiveTuple::new(1, 2, 3, 4, Protocol::Tcp);
        let lone = FiveTuple::new(9, 9, 9, 9, Protocol::Udp);
        let t = PacketTrace::from_records(vec![
            PacketRecord::new(0, ft, 100),
            PacketRecord::new(1_000, ft, 100),
            PacketRecord::new(2_000, lone, 50),
        ]);
        let rows = trace_features(&t, NetmlMode::Stats);
        assert_eq!(rows.len(), 1, "only the two-packet flow survives");
    }
}
