//! # mlkit
//!
//! From-scratch machine-learning models for the paper's downstream-task
//! evaluation (Finding 2):
//!
//! * **App #1, traffic-type prediction** (Fig. 12, Table 3): the five
//!   classifier families — Decision Tree, Logistic Regression, Random
//!   Forest, Gradient Boosting, MLP — over the flow features the paper
//!   names ("port number, protocol, bytes/flow, packets/flow, and flow
//!   duration"), with the time-sorted 80/20 train/test protocol of
//!   Fig. 11 ([`taskharness`]).
//! * **App #3, header-based anomaly detection** (Fig. 14, Table 4): a
//!   one-class SVM ([`ocsvm`]) over the six NetML flow representations
//!   (IAT, SIZE, IAT_SIZE, STATS, SAMP-NUM, SAMP-SIZE) ([`netml`]).

pub mod boosting;
pub mod dataset;
pub mod forest;
pub mod logistic;
pub mod mlp;
pub mod netml;
pub mod ocsvm;
pub mod taskharness;
pub mod tree;

pub use boosting::GradientBoosting;
pub use dataset::Dataset;
pub use forest::RandomForest;
pub use logistic::LogisticRegression;
pub use mlp::MlpClassifier;
pub use ocsvm::OneClassSvm;
pub use tree::DecisionTree;

/// A multi-class classifier over dense feature rows.
pub trait Classifier {
    /// Fits on the dataset.
    fn fit(&mut self, data: &Dataset);
    /// Predicts the class of one feature row.
    fn predict(&self, row: &[f64]) -> usize;
    /// Display name (matches the paper's Fig. 12 x-axis).
    fn name(&self) -> &'static str;

    /// Accuracy over a dataset.
    fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .rows()
            .zip(&data.labels)
            .filter(|(row, &y)| self.predict(row) == y)
            .count();
        correct as f64 / data.len() as f64
    }
}
