//! Zero-dependency observability layer for the NetShare workspace.
//!
//! Three surfaces, one feature flag:
//!
//! * [`clock`] — the process-wide monotonic clock anchor. This module is
//!   **always compiled** and is the single sanctioned ambient-clock read
//!   site in the workspace besides `orchestrator::timing` (which delegates
//!   here). The `telemetry-clock` lint rule in `netshare-lint` keeps every
//!   other crate from reading it directly.
//! * [`mod@span`] — a thread-local span stack. `span!("chunk[3]/fine_tune")`
//!   pushes a named frame; dropping the returned guard pops it and emits a
//!   [`span::SpanEvent`] (slash-joined path, start + duration in
//!   nanoseconds, nesting depth) to the process-global sink installed with
//!   [`span::set_span_sink`]. The pipeline bridges that sink into the
//!   orchestrator's JSONL event stream as `Event::Span` lines.
//! * [`metrics`] — a process-global registry of counters, gauges, and
//!   fixed-bucket histograms, snapshotted on demand as deterministic
//!   (key-sorted) JSON via [`metrics::snapshot_json`]. The CLI dumps it
//!   with `--metrics-out`.
//!
//! With the `telemetry` feature **off** (the default), [`mod@span`] and
//! [`metrics`] compile to the same zero-cost no-op pattern as
//! `nnet::sanitize`: every entry point is an empty `#[inline(always)]`
//! function, and the name-formatting closure handed to [`span!`] is never
//! evaluated. Instrumented crates therefore carry no runtime cost and no
//! extra dependencies for library consumers. Only [`clock`] stays live,
//! because `orchestrator::timing` needs it unconditionally.
//!
//! Determinism story: telemetry never feeds data *back* into training —
//! timestamps and metric values flow out to event streams and snapshots
//! only, so instrumented runs remain bit-identical to uninstrumented ones
//! (pinned by `crates/core/tests/determinism.rs`).

#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod span;

/// Open a timed span: `let _g = span!("chunk[{ci}]/fine_tune");`.
///
/// The format arguments are evaluated lazily — with the `telemetry`
/// feature off the closure is constructed but never called, so the
/// `format!` never runs. The span closes (and its event is emitted) when
/// the returned guard is dropped, including during panic unwinding, which
/// keeps the stack balanced across the orchestrator's `catch_unwind`
/// retry boundary.
#[macro_export]
macro_rules! span {
    ($($arg:tt)*) => {
        $crate::span::enter_with(|| format!($($arg)*))
    };
}
