//! Thread-local span stack with a process-global event sink.
//!
//! A span is opened with the [`span!`](crate::span!) macro (or
//! [`enter_with`]) and closed when its guard drops. Frames nest per
//! thread; the emitted [`SpanEvent`] carries the slash-joined path of
//! every frame open on that thread, so a fine-tune step inside a worker
//! shows up as e.g. `job[chunk-1]/attempt[1]/chunk[1]/fine_tune`.
//!
//! Events are delivered to the sink installed with [`set_span_sink`]
//! (last writer wins, same contract as `nnet::sanitize::set_hook`); with
//! no sink installed, spans still maintain the stack (so nested paths
//! stay correct) but emit nothing. Guards emit on drop even during panic
//! unwinding, which keeps the stack balanced across the orchestrator's
//! `catch_unwind` retry boundary.
//!
//! Child spans close before their parents, so a JSONL stream shows leaf
//! events first; readers reconstruct the tree from `path` + `depth`.

#[cfg(feature = "telemetry")]
mod imp {
    use crate::clock;
    use std::cell::RefCell;
    use std::sync::{Arc, Mutex};

    /// One closed span, delivered to the sink when the guard drops.
    #[derive(Debug, Clone, PartialEq)]
    pub struct SpanEvent {
        /// Slash-joined names of every frame open on this thread at exit,
        /// outermost first (e.g. `pretrain/dpsgd/sanitize_batch[16]`).
        pub path: String,
        /// [`clock::monotonic_nanos`] reading at span entry.
        pub start_ns: u64,
        /// Nanoseconds between entry and guard drop.
        pub duration_ns: u64,
        /// Nesting depth on this thread, 1-based (a root span has depth 1).
        pub depth: u32,
    }

    struct Frame {
        name: String,
        start_ns: u64,
    }

    thread_local! {
        static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    }

    type Sink = Arc<dyn Fn(&SpanEvent) + Send + Sync>;

    static SINK: Mutex<Option<Sink>> = Mutex::new(None);

    /// Install the process-global span sink, replacing any previous one.
    /// The sink must not itself open spans (it would see a stack mid-pop).
    pub fn set_span_sink<F>(sink: F)
    where
        F: Fn(&SpanEvent) + Send + Sync + 'static,
    {
        // lint: allow(panic-in-lib) poisoned sink lock is unrecoverable
        *SINK.lock().expect("span sink lock poisoned") = Some(Arc::new(sink));
    }

    /// Remove the process-global span sink (spans become stack-only).
    pub fn clear_span_sink() {
        // lint: allow(panic-in-lib) poisoned sink lock is unrecoverable
        *SINK.lock().expect("span sink lock poisoned") = None;
    }

    fn current_sink() -> Option<Sink> {
        // Clone the Arc out of the lock so the sink runs without holding it
        // (the sink may take its own locks, e.g. the event log's).
        // lint: allow(panic-in-lib) poisoned sink lock is unrecoverable
        SINK.lock().expect("span sink lock poisoned").clone()
    }

    /// RAII guard for one span frame; pops and emits on drop.
    #[must_use = "dropping the guard immediately closes the span"]
    pub struct SpanGuard {
        /// Stack length immediately after our frame was pushed; doubles as
        /// the 1-based nesting depth.
        len_after_push: usize,
    }

    /// Open a span. The name closure runs eagerly here (the laziness only
    /// matters for the feature-off no-op twin, which never calls it).
    pub fn enter_with(name: impl FnOnce() -> String) -> SpanGuard {
        let start_ns = clock::monotonic_nanos();
        let len_after_push = STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(Frame { name: name(), start_ns });
            s.len()
        });
        SpanGuard { len_after_push }
    }

    /// Slash-joined path of the frames currently open on this thread, or
    /// an empty string outside any span. Primarily for tests.
    pub fn current_path() -> String {
        STACK.with(|s| {
            s.borrow()
                .iter()
                .map(|f| f.name.as_str())
                .collect::<Vec<_>>()
                .join("/")
        })
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let event = STACK.with(|s| {
                let mut s = s.borrow_mut();
                if s.len() < self.len_after_push {
                    // Our frame is already gone (a mis-nested guard outlived
                    // its parent's pop). Emit nothing rather than popping a
                    // frame that isn't ours.
                    return None;
                }
                let path = s[..self.len_after_push]
                    .iter()
                    .map(|f| f.name.as_str())
                    .collect::<Vec<_>>()
                    .join("/");
                let start_ns = s[self.len_after_push - 1].start_ns;
                // Drop our frame and any child frames leaked above it.
                s.truncate(self.len_after_push - 1);
                Some(SpanEvent {
                    path,
                    start_ns,
                    duration_ns: clock::nanos_since(start_ns),
                    depth: self.len_after_push as u32,
                })
            });
            if let Some(event) = event {
                if let Some(sink) = current_sink() {
                    sink(&event);
                }
            }
        }
    }
}

#[cfg(feature = "telemetry")]
pub use imp::*;

/// No-op twins compiled when the `telemetry` feature is off: the guard is
/// a zero-sized type, `enter_with` never evaluates its name closure, and
/// everything inlines to nothing (same discipline as `nnet::sanitize`).
#[cfg(not(feature = "telemetry"))]
mod noop {
    /// Feature-off stand-in; never instantiated, fields exist only so
    /// sink closures written against the real type still typecheck.
    #[derive(Debug, Clone, PartialEq)]
    pub struct SpanEvent {
        /// See the feature-on twin.
        pub path: String,
        /// See the feature-on twin.
        pub start_ns: u64,
        /// See the feature-on twin.
        pub duration_ns: u64,
        /// See the feature-on twin.
        pub depth: u32,
    }

    /// Zero-sized guard; dropping it does nothing.
    #[must_use = "dropping the guard immediately closes the span"]
    pub struct SpanGuard(());

    /// Feature-off: returns a zero-sized guard without calling `name`.
    #[inline(always)]
    pub fn enter_with(name: impl FnOnce() -> String) -> SpanGuard {
        let _ = &name;
        SpanGuard(())
    }

    /// Feature-off: the sink is dropped, never installed.
    #[inline(always)]
    pub fn set_span_sink<F>(sink: F)
    where
        F: Fn(&SpanEvent) + Send + Sync + 'static,
    {
        let _ = sink;
    }

    /// Feature-off: nothing to clear.
    #[inline(always)]
    pub fn clear_span_sink() {}

    /// Feature-off: always the empty path.
    #[inline(always)]
    pub fn current_path() -> String {
        String::new()
    }
}

#[cfg(not(feature = "telemetry"))]
pub use noop::*;
