//! Process-wide monotonic clock anchor.
//!
//! This is the **only** sanctioned `Instant::now()` site in the workspace
//! outside `orchestrator::timing` (which delegates here) and the bench
//! harnesses. Everything else must read time through
//! `orchestrator::timing::Stopwatch`/`measure` or through spans/metrics,
//! so the ambient-clock surface stays auditable: the `ambient-entropy`
//! and `telemetry-clock` rules in `netshare-lint` enforce the boundary.
//!
//! The module is compiled unconditionally (not gated on the `telemetry`
//! feature) because `orchestrator::timing` needs it even when span/metric
//! collection is off.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process epoch (the first call to any clock
/// function in this process). Monotonic and thread-safe; wraps after
/// ~584 years of uptime, which we accept.
///
/// The epoch is process-local and intentionally unrelated to wall-clock
/// time: span events and stopwatch readings are only meaningful as
/// durations or orderings within one run, never as absolute timestamps,
/// which keeps event streams free of host-clock state.
pub fn monotonic_nanos() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

/// Nanoseconds elapsed since an earlier [`monotonic_nanos`] reading.
/// Saturates at zero if `start_ns` is from the future (cross-thread
/// reads may observe the epoch initialization racing).
pub fn nanos_since(start_ns: u64) -> u64 {
    monotonic_nanos().saturating_sub(start_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_nanos_never_decreases() {
        let a = monotonic_nanos();
        let b = monotonic_nanos();
        let c = monotonic_nanos();
        assert!(a <= b && b <= c, "clock went backwards: {a} {b} {c}");
    }

    #[test]
    fn nanos_since_saturates_instead_of_underflowing() {
        assert_eq!(nanos_since(u64::MAX), 0);
    }

    #[test]
    fn nanos_since_measures_forward_progress() {
        let start = monotonic_nanos();
        let mut spin = 0u64;
        for i in 0..10_000u64 {
            spin = spin.wrapping_add(i);
        }
        assert!(spin > 0);
        // Elapsed time is nonnegative by construction; equality with zero
        // is possible on coarse clocks, so only assert it moved from the
        // saturation case.
        let _ = nanos_since(start);
    }
}
