//! Process-global metrics registry: counters, gauges, fixed-bucket
//! histograms, and a deterministic JSON snapshot.
//!
//! Handles are created on first use and live for the process:
//! `metrics::counter("gemm.calls").inc()`. All mutation is atomic and
//! lock-free after registration, so hot paths (GEMM dispatch, GRU steps)
//! pay one registry lock on first touch and plain atomic ops after.
//!
//! Snapshots ([`snapshot`] / [`snapshot_json`]) iterate `BTreeMap`s, so
//! output ordering is key-sorted and stable across runs and thread
//! interleavings. Histogram sums use compare-exchange f64 accumulation;
//! when recorded values are integers below 2^53 (as every duration-in-µs
//! and byte-count here is), f64 addition is exact and therefore
//! order-independent, keeping snapshots deterministic under the rayon
//! pool. Non-finite recorded values are counted but excluded from `sum`
//! so a single NaN cannot poison a snapshot.
//!
//! With the `telemetry` feature off, every function is an empty
//! `#[inline(always)]` no-op and the handle types are zero-sized.

/// Bucket upper edges (inclusive) for microsecond-scale durations:
/// roughly 1–2.5–10 per decade from 1 µs to 1 s.
pub const DURATION_US_EDGES: [f64; 13] = [
    1.0, 2.5, 10.0, 25.0, 100.0, 250.0, 1_000.0, 2_500.0, 10_000.0, 25_000.0, 100_000.0,
    250_000.0, 1_000_000.0,
];

/// Bucket upper edges (inclusive) for byte counts (checkpoint payloads):
/// powers of four from 256 B to 64 MiB.
pub const BYTES_EDGES: [f64; 10] = [
    256.0, 1_024.0, 4_096.0, 16_384.0, 65_536.0, 262_144.0, 1_048_576.0, 4_194_304.0,
    16_777_216.0, 67_108_864.0,
];

/// Bucket upper edges (inclusive) for gradient L2 norms.
pub const NORM_EDGES: [f64; 10] = [0.001, 0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 100.0, 10_000.0];

/// Bucket upper edges (inclusive) for GAN losses (signed, roughly
/// symmetric around zero).
pub const LOSS_EDGES: [f64; 11] = [
    -10.0, -5.0, -2.0, -1.0, -0.25, 0.0, 0.25, 1.0, 2.0, 5.0, 10.0,
];

#[cfg(feature = "telemetry")]
mod imp {
    use crate::clock;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    /// Monotonically increasing `u64`.
    #[derive(Debug, Default)]
    pub struct Counter {
        value: AtomicU64,
    }

    impl Counter {
        /// Add one.
        pub fn inc(&self) {
            self.add(1);
        }

        /// Add `n`.
        pub fn add(&self, n: u64) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }

        /// Current value.
        pub fn get(&self) -> u64 {
            self.value.load(Ordering::Relaxed)
        }
    }

    /// Last-write-wins `f64` (stored as bits in an atomic).
    #[derive(Debug)]
    pub struct Gauge {
        bits: AtomicU64,
    }

    impl Default for Gauge {
        fn default() -> Self {
            Gauge { bits: AtomicU64::new(0f64.to_bits()) }
        }
    }

    impl Gauge {
        /// Replace the value.
        pub fn set(&self, v: f64) {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }

        /// Add `delta` (negative to subtract) with a CAS loop, so
        /// concurrent up/down movements (e.g. `netshared.streams.open`
        /// from many sessions) never lose updates the way a
        /// read-modify-`set` would.
        pub fn add(&self, delta: f64) {
            let mut cur = self.bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + delta).to_bits();
                match self.bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(seen) => cur = seen,
                }
            }
        }

        /// Current value.
        pub fn get(&self) -> f64 {
            f64::from_bits(self.bits.load(Ordering::Relaxed))
        }
    }

    /// Fixed-bucket histogram: `edges.len() + 1` buckets, where bucket
    /// `i` counts values `v <= edges[i]` (first matching edge) and the
    /// final bucket is the overflow. Tracks total count and the sum of
    /// finite recorded values.
    #[derive(Debug)]
    pub struct Histogram {
        edges: Vec<f64>,
        buckets: Vec<AtomicU64>,
        count: AtomicU64,
        sum_bits: AtomicU64,
    }

    impl Histogram {
        fn new(edges: &[f64]) -> Self {
            let buckets = (0..=edges.len()).map(|_| AtomicU64::new(0)).collect();
            Histogram {
                edges: edges.to_vec(),
                buckets,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }
        }

        /// Record one observation. NaN and infinities land in the
        /// overflow bucket and are excluded from `sum`.
        pub fn record(&self, v: f64) {
            let idx = if v.is_finite() {
                self.edges.partition_point(|e| v > *e)
            } else {
                self.edges.len()
            };
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            if v.is_finite() {
                let mut cur = self.sum_bits.load(Ordering::Relaxed);
                loop {
                    let next = (f64::from_bits(cur) + v).to_bits();
                    match self.sum_bits.compare_exchange_weak(
                        cur,
                        next,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(observed) => cur = observed,
                    }
                }
            }
        }

        /// Total number of observations.
        pub fn count(&self) -> u64 {
            self.count.load(Ordering::Relaxed)
        }

        /// Sum of finite observations.
        pub fn sum(&self) -> f64 {
            f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
        }

        fn snapshot(&self) -> HistogramSnapshot {
            HistogramSnapshot {
                edges: self.edges.clone(),
                buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                count: self.count(),
                sum: self.sum(),
            }
        }
    }

    /// Point-in-time copy of one histogram.
    #[derive(Debug, Clone, PartialEq)]
    pub struct HistogramSnapshot {
        /// Bucket upper edges (inclusive).
        pub edges: Vec<f64>,
        /// Per-bucket counts; one longer than `edges` (overflow last).
        pub buckets: Vec<u64>,
        /// Total observations.
        pub count: u64,
        /// Sum of finite observations.
        pub sum: f64,
    }

    /// Point-in-time, key-sorted copy of the whole registry.
    #[derive(Debug, Clone, PartialEq, Default)]
    pub struct Snapshot {
        /// Counter values by name.
        pub counters: BTreeMap<String, u64>,
        /// Gauge values by name.
        pub gauges: BTreeMap<String, f64>,
        /// Histogram snapshots by name.
        pub histograms: BTreeMap<String, HistogramSnapshot>,
    }

    impl Snapshot {
        /// Serialize as deterministic JSON: keys sorted (BTreeMap order),
        /// non-finite floats emitted as `null` so output is always valid.
        pub fn to_json(&self) -> String {
            let mut out = String::with_capacity(256);
            out.push_str("{\"counters\":{");
            push_entries(&mut out, self.counters.iter(), |out, v| {
                out.push_str(&v.to_string());
            });
            out.push_str("},\"gauges\":{");
            push_entries(&mut out, self.gauges.iter(), |out, v| push_f64(out, *v));
            out.push_str("},\"histograms\":{");
            push_entries(&mut out, self.histograms.iter(), |out, h| {
                out.push_str("{\"edges\":[");
                for (i, e) in h.edges.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_f64(out, *e);
                }
                out.push_str("],\"buckets\":[");
                for (i, b) in h.buckets.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&b.to_string());
                }
                out.push_str("],\"count\":");
                out.push_str(&h.count.to_string());
                out.push_str(",\"sum\":");
                push_f64(out, h.sum);
                out.push('}');
            });
            out.push_str("}}");
            out
        }
    }

    fn push_entries<'a, V: 'a>(
        out: &mut String,
        entries: impl Iterator<Item = (&'a String, V)>,
        mut push_value: impl FnMut(&mut String, V),
    ) {
        for (i, (k, v)) in entries.enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(out, k);
            out.push(':');
            push_value(out, v);
        }
    }

    fn push_json_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn push_f64(out: &mut String, v: f64) {
        if v.is_finite() {
            // Rust's shortest-round-trip Display for finite f64 is valid
            // JSON except for bare exponents it never produces.
            out.push_str(&v.to_string());
        } else {
            out.push_str("null");
        }
    }

    /// Registry of named metrics. Usually accessed through the module
    /// functions operating on the [`global`] instance; a private registry
    /// is still useful in tests.
    #[derive(Default)]
    pub struct Registry {
        counters: Mutex<BTreeMap<String, Arc<Counter>>>,
        gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
        histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    }

    impl Registry {
        /// Empty registry.
        pub fn new() -> Self {
            Registry::default()
        }

        /// Counter handle for `name`, created on first use.
        pub fn counter(&self, name: &str) -> Arc<Counter> {
            // lint: allow(panic-in-lib) poisoned registry lock is unrecoverable
            let mut map = self.counters.lock().expect("counter registry lock poisoned"); // lint: lock-order(telemetry.metrics_counters)
            Arc::clone(map.entry(name.to_string()).or_default())
        }

        /// Gauge handle for `name`, created on first use.
        pub fn gauge(&self, name: &str) -> Arc<Gauge> {
            // lint: allow(panic-in-lib) poisoned registry lock is unrecoverable
            let mut map = self.gauges.lock().expect("gauge registry lock poisoned"); // lint: lock-order(telemetry.metrics_gauges)
            Arc::clone(map.entry(name.to_string()).or_default())
        }

        /// Histogram handle for `name`. The first registration fixes the
        /// bucket edges; later calls with different edges get the
        /// existing histogram unchanged.
        pub fn histogram(&self, name: &str, edges: &[f64]) -> Arc<Histogram> {
            // lint: allow(panic-in-lib) poisoned registry lock is unrecoverable
            let mut map = self.histograms.lock().expect("histogram registry lock poisoned"); // lint: lock-order(telemetry.metrics_histograms)
            Arc::clone(
                map.entry(name.to_string())
                    .or_insert_with(|| Arc::new(Histogram::new(edges))),
            )
        }

        /// Point-in-time, key-sorted copy of every metric.
        pub fn snapshot(&self) -> Snapshot {
            // lint: allow(panic-in-lib) poisoned registry lock is unrecoverable
            let counters = self.counters.lock().expect("counter registry lock poisoned"); // lint: lock-order(telemetry.metrics_counters)
            // lint: allow(panic-in-lib) poisoned registry lock is unrecoverable
            let gauges = self.gauges.lock().expect("gauge registry lock poisoned"); // lint: lock-order(telemetry.metrics_gauges)
            // lint: allow(panic-in-lib) poisoned registry lock is unrecoverable
            let histograms = self.histograms.lock().expect("histogram registry lock poisoned"); // lint: lock-order(telemetry.metrics_histograms)
            Snapshot {
                counters: counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
                gauges: gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
                histograms: histograms.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect(),
            }
        }

        /// Drop every registered metric (handles held elsewhere keep
        /// working but are no longer visible in snapshots). For tests.
        pub fn reset(&self) {
            // lint: allow(panic-in-lib) poisoned registry lock is unrecoverable
            self.counters.lock().expect("counter registry lock poisoned").clear(); // lint: lock-order(telemetry.metrics_counters)
            // lint: allow(panic-in-lib) poisoned registry lock is unrecoverable
            self.gauges.lock().expect("gauge registry lock poisoned").clear(); // lint: lock-order(telemetry.metrics_gauges)
            // lint: allow(panic-in-lib) poisoned registry lock is unrecoverable
            self.histograms.lock().expect("histogram registry lock poisoned").clear(); // lint: lock-order(telemetry.metrics_histograms)
        }
    }

    /// The process-global registry used by the module-level functions.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Global counter handle (`metrics::counter("gemm.calls").inc()`).
    pub fn counter(name: &str) -> Arc<Counter> {
        global().counter(name)
    }

    /// Global gauge handle.
    pub fn gauge(name: &str) -> Arc<Gauge> {
        global().gauge(name)
    }

    /// Global histogram handle (first registration fixes the edges).
    pub fn histogram(name: &str, edges: &[f64]) -> Arc<Histogram> {
        global().histogram(name, edges)
    }

    /// Snapshot of the global registry.
    pub fn snapshot() -> Snapshot {
        global().snapshot()
    }

    /// Deterministic JSON snapshot of the global registry.
    pub fn snapshot_json() -> String {
        snapshot().to_json()
    }

    /// Clear the global registry (tests only; concurrent recorders keep
    /// their handles).
    pub fn reset() {
        global().reset()
    }

    /// RAII timer: records elapsed microseconds into the named global
    /// histogram (with [`super::DURATION_US_EDGES`] buckets) on drop.
    #[must_use = "dropping the timer immediately records zero elapsed time"]
    pub struct ScopedTimer {
        name: &'static str,
        start_ns: u64,
    }

    /// Start a scoped duration timer for histogram `name`.
    pub fn scoped_timer_us(name: &'static str) -> ScopedTimer {
        ScopedTimer { name, start_ns: clock::monotonic_nanos() }
    }

    impl Drop for ScopedTimer {
        fn drop(&mut self) {
            let us = clock::nanos_since(self.start_ns) as f64 / 1_000.0;
            histogram(self.name, &super::DURATION_US_EDGES).record(us);
        }
    }
}

#[cfg(feature = "telemetry")]
pub use imp::*;

/// No-op twins compiled when the `telemetry` feature is off: zero-sized
/// handles, empty `#[inline(always)]` bodies, `snapshot_json` returns the
/// empty-registry document so consumers (the CLI's `--metrics-out`)
/// always write valid JSON.
#[cfg(not(feature = "telemetry"))]
mod noop {
    /// Zero-sized feature-off counter handle.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Counter;

    impl Counter {
        /// Feature-off: does nothing.
        #[inline(always)]
        pub fn inc(&self) {}
        /// Feature-off: does nothing.
        #[inline(always)]
        pub fn add(&self, _n: u64) {}
        /// Feature-off: always zero.
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// Zero-sized feature-off gauge handle.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Gauge;

    impl Gauge {
        /// Feature-off: does nothing.
        #[inline(always)]
        pub fn set(&self, _v: f64) {}
        /// Feature-off: does nothing.
        #[inline(always)]
        pub fn add(&self, _delta: f64) {}
        /// Feature-off: always zero.
        #[inline(always)]
        pub fn get(&self) -> f64 {
            0.0
        }
    }

    /// Zero-sized feature-off histogram handle.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Histogram;

    impl Histogram {
        /// Feature-off: does nothing.
        #[inline(always)]
        pub fn record(&self, _v: f64) {}
        /// Feature-off: always zero.
        #[inline(always)]
        pub fn count(&self) -> u64 {
            0
        }
        /// Feature-off: always zero.
        #[inline(always)]
        pub fn sum(&self) -> f64 {
            0.0
        }
    }

    /// Feature-off: zero-sized counter.
    #[inline(always)]
    pub fn counter(_name: &str) -> Counter {
        Counter
    }

    /// Feature-off: zero-sized gauge.
    #[inline(always)]
    pub fn gauge(_name: &str) -> Gauge {
        Gauge
    }

    /// Feature-off: zero-sized histogram.
    #[inline(always)]
    pub fn histogram(_name: &str, _edges: &[f64]) -> Histogram {
        Histogram
    }

    /// Feature-off: the empty-registry JSON document.
    #[inline(always)]
    pub fn snapshot_json() -> String {
        "{\"counters\":{},\"gauges\":{},\"histograms\":{}}".to_string()
    }

    /// Feature-off: nothing to reset.
    #[inline(always)]
    pub fn reset() {}

    /// Zero-sized feature-off timer.
    #[must_use = "dropping the timer immediately records zero elapsed time"]
    pub struct ScopedTimer(());

    /// Feature-off: zero-sized timer, records nothing.
    #[inline(always)]
    pub fn scoped_timer_us(_name: &'static str) -> ScopedTimer {
        ScopedTimer(())
    }
}

#[cfg(not(feature = "telemetry"))]
pub use noop::*;
