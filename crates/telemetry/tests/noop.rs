//! Feature-off behavior: every handle is zero-sized, span names are never
//! formatted, and the snapshot is the empty-registry document. This is the
//! binary `scripts/ci.sh` runs via `cargo test -p telemetry` (building the
//! crate in isolation keeps the workspace-default `telemetry` feature out
//! of the graph).
#![cfg(not(feature = "telemetry"))]

#[test]
fn feature_off_spans_are_zero_sized_and_never_format_names() {
    let mut evaluated = false;
    let guard = telemetry::span::enter_with(|| {
        evaluated = true;
        "never".to_string()
    });
    assert_eq!(std::mem::size_of_val(&guard), 0, "guard must be a ZST");
    drop(guard);
    assert!(!evaluated, "feature-off spans must not evaluate their names");
    assert_eq!(telemetry::span::current_path(), "");
    telemetry::span::set_span_sink(|_ev: &telemetry::span::SpanEvent| {});
    telemetry::span::clear_span_sink();
}

#[test]
fn span_macro_compiles_to_a_noop_guard() {
    let _span = telemetry::span!("noop[{}]", 1);
}

#[test]
fn feature_off_metrics_are_zero_sized_noops() {
    let c = telemetry::metrics::counter("x.calls");
    c.inc();
    c.add(5);
    assert_eq!(c.get(), 0);
    assert_eq!(std::mem::size_of_val(&c), 0, "counter must be a ZST");

    let g = telemetry::metrics::gauge("x.loss");
    g.set(3.0);
    g.add(2.0);
    assert_eq!(g.get(), 0.0);

    let h = telemetry::metrics::histogram("x.us", &[1.0]);
    h.record(1.0);
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0.0);

    let t = telemetry::metrics::scoped_timer_us("x.us");
    assert_eq!(std::mem::size_of_val(&t), 0, "timer must be a ZST");
    drop(t);

    assert_eq!(
        telemetry::metrics::snapshot_json(),
        "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
    );
    telemetry::metrics::reset();
}

#[test]
fn feature_off_clock_still_ticks() {
    // The clock module is compiled unconditionally — it is the process
    // epoch anchor `orchestrator::timing` delegates to in either state.
    let t0 = telemetry::clock::monotonic_nanos();
    let t1 = telemetry::clock::monotonic_nanos();
    assert!(t1 >= t0);
    assert_eq!(telemetry::clock::nanos_since(t1 + 1_000_000_000), 0, "saturates");
}
