//! Metrics registry behavior with the feature on: bucket-edge semantics,
//! non-finite handling, concurrent-recording determinism, and the pinned
//! snapshot JSON schema.
//!
//! Tests that need isolation build a private [`Registry`]; tests of the
//! module-level functions use the process-global one with unique names.
#![cfg(feature = "telemetry")]

use std::sync::Arc;
use telemetry::metrics::{self, Registry, DURATION_US_EDGES};

#[test]
fn histogram_bucket_edges_are_inclusive_upper_bounds() {
    let reg = Registry::new();
    let h = reg.histogram("edges.us", &[1.0, 10.0, 100.0]);
    for v in [0.5, 1.0, 1.5, 10.0, 99.9, 100.0, 1000.0] {
        h.record(v);
    }
    let snap = reg.snapshot();
    let hs = &snap.histograms["edges.us"];
    assert_eq!(hs.edges, vec![1.0, 10.0, 100.0]);
    // `v <= edge` lands at the first matching edge: {0.5, 1.0} | {1.5, 10.0}
    // | {99.9, 100.0} | overflow {1000.0}.
    assert_eq!(hs.buckets, vec![2, 2, 2, 1]);
    assert_eq!(hs.count, 7);
    let expected: f64 = [0.5, 1.0, 1.5, 10.0, 99.9, 100.0, 1000.0].iter().sum();
    assert!((hs.sum - expected).abs() < 1e-9);
}

#[test]
fn non_finite_samples_land_in_overflow_and_skip_the_sum() {
    let reg = Registry::new();
    let h = reg.histogram("nan.proof", &[1.0]);
    h.record(f64::NAN);
    h.record(f64::INFINITY);
    h.record(0.5);
    assert_eq!(h.count(), 3, "non-finite samples still count");
    assert_eq!(h.sum(), 0.5, "but are excluded from the sum");
    let hs = reg.snapshot().histograms["nan.proof"].clone();
    assert_eq!(hs.buckets, vec![1, 2]);
}

#[test]
fn first_registration_fixes_histogram_edges() {
    let reg = Registry::new();
    let a = reg.histogram("fixed", &[1.0, 2.0]);
    let b = reg.histogram("fixed", &[99.0]);
    b.record(1.5);
    assert_eq!(a.count(), 1, "both handles share one histogram");
    assert_eq!(reg.snapshot().histograms["fixed"].edges, vec![1.0, 2.0]);
}

#[test]
fn gauge_add_moves_both_ways_and_survives_contention() {
    let reg = Registry::new();
    let g = reg.gauge("sessions.open");
    g.add(3.0);
    g.add(-1.0);
    assert_eq!(g.get(), 2.0);
    g.set(0.0);

    // 4 threads × 1000 balanced up/down movements: a lossy
    // read-modify-set would drift; the CAS loop must land on 0.
    let reg = Arc::new(reg);
    let handles: Vec<_> = (0..4u64)
        .map(|_| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                for _ in 0..1000 {
                    reg.gauge("sessions.open").add(1.0);
                    reg.gauge("sessions.open").add(-1.0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(reg.gauge("sessions.open").get(), 0.0);
}

#[test]
fn snapshots_are_deterministic_under_concurrent_recording() {
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                for i in 0..1000u64 {
                    reg.counter("conc.calls").inc();
                    reg.histogram("conc.us", &DURATION_US_EDGES)
                        .record(((t * 1000 + i) % 512) as f64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = reg.snapshot();
    assert_eq!(snap.counters["conc.calls"], 4000);
    let hs = &snap.histograms["conc.us"];
    assert_eq!(hs.count, 4000);
    // Integer-valued f64 samples below 2^53 add exactly, so the CAS-loop
    // sum is independent of thread interleaving.
    let expected: f64 = (0..4u64)
        .flat_map(|t| (0..1000u64).map(move |i| ((t * 1000 + i) % 512) as f64))
        .sum();
    assert_eq!(hs.sum, expected);
}

#[test]
fn snapshot_json_schema_is_pinned() {
    let reg = Registry::new();
    reg.counter("a.calls").add(3);
    reg.gauge("b.loss").set(-1.5);
    reg.gauge("g.nan").set(f64::NAN);
    reg.histogram("c.us", &[1.0, 10.0]).record(5.0);
    assert_eq!(
        reg.snapshot().to_json(),
        "{\"counters\":{\"a.calls\":3},\
         \"gauges\":{\"b.loss\":-1.5,\"g.nan\":null},\
         \"histograms\":{\"c.us\":{\"edges\":[1,10],\"buckets\":[0,1,0],\"count\":1,\"sum\":5}}}"
    );
}

#[test]
fn global_module_functions_share_one_registry() {
    metrics::counter("global.test.calls").add(2);
    metrics::counter("global.test.calls").inc();
    let snap = metrics::snapshot();
    assert_eq!(snap.counters["global.test.calls"], 3);
    assert!(metrics::snapshot_json().contains("\"global.test.calls\":3"));
}

#[test]
fn scoped_timer_records_into_the_global_duration_histogram() {
    {
        let _t = metrics::scoped_timer_us("timer.test.us");
        std::hint::black_box(0u64);
    }
    let hs = metrics::snapshot().histograms["timer.test.us"].clone();
    assert_eq!(hs.count, 1);
    assert_eq!(hs.edges, DURATION_US_EDGES.to_vec());
    assert_eq!(hs.buckets.iter().sum::<u64>(), 1);
}
