//! Span stack behavior with the feature on: nesting, unwind safety
//! across `catch_unwind` (the orchestrator's retry boundary), mis-nesting
//! recovery, and the last-writer-wins sink contract.
//!
//! The sink is process-global, so every test that installs one serializes
//! on `SINK_LOCK`; spans themselves are thread-local and need no lock.
#![cfg(feature = "telemetry")]

use std::sync::{Arc, Mutex, MutexGuard};
use telemetry::span::{clear_span_sink, current_path, set_span_sink, SpanEvent};

static SINK_LOCK: Mutex<()> = Mutex::new(());

/// Installs a capturing sink and returns the captured events plus the
/// serialization guard keeping other tests off the global sink.
fn capture() -> (Arc<Mutex<Vec<SpanEvent>>>, MutexGuard<'static, ()>) {
    let guard = SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let events = Arc::new(Mutex::new(Vec::new()));
    let captured = Arc::clone(&events);
    set_span_sink(move |ev: &SpanEvent| {
        captured.lock().unwrap().push(ev.clone());
    });
    (events, guard)
}

#[test]
fn nested_spans_build_slash_paths_and_close_children_first() {
    let (events, _guard) = capture();
    {
        let _outer = telemetry::span!("outer[{}]", 1);
        assert_eq!(current_path(), "outer[1]");
        {
            let _inner = telemetry::span!("inner");
            assert_eq!(current_path(), "outer[1]/inner");
        }
        assert_eq!(current_path(), "outer[1]");
    }
    clear_span_sink();
    assert_eq!(current_path(), "");
    let evs = events.lock().unwrap();
    assert_eq!(evs.len(), 2, "one event per closed span: {evs:?}");
    assert_eq!(evs[0].path, "outer[1]/inner");
    assert_eq!(evs[0].depth, 2);
    assert_eq!(evs[1].path, "outer[1]");
    assert_eq!(evs[1].depth, 1);
    assert!(evs[1].start_ns <= evs[0].start_ns, "parent starts first");
    assert!(evs[1].duration_ns >= evs[0].duration_ns, "parent spans the child");
}

#[test]
fn spans_emit_and_the_stack_balances_across_catch_unwind() {
    let (events, _guard) = capture();
    let result = std::panic::catch_unwind(|| {
        let _span = telemetry::span!("doomed_attempt");
        panic!("injected fault");
    });
    assert!(result.is_err(), "the panic must propagate to catch_unwind");
    clear_span_sink();
    assert_eq!(current_path(), "", "stack rebalanced after the unwind");
    let evs = events.lock().unwrap();
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].path, "doomed_attempt");
    assert_eq!(evs[0].depth, 1);
}

#[test]
fn parent_drop_truncates_leaked_children() {
    let (events, _guard) = capture();
    let parent = telemetry::span::enter_with(|| "parent".to_string());
    let child = telemetry::span::enter_with(|| "child".to_string());
    // Mis-nested: the parent guard drops while the child is still open.
    drop(parent);
    assert_eq!(current_path(), "", "parent pop truncates the leaked child");
    // The orphaned child guard must neither emit nor pop a frame that
    // is not its own.
    drop(child);
    clear_span_sink();
    let evs = events.lock().unwrap();
    assert_eq!(evs.len(), 1, "only the parent emits: {evs:?}");
    assert_eq!(evs[0].path, "parent");
    assert_eq!(evs[0].depth, 1);
}

#[test]
fn sink_is_last_writer_wins_and_clearable() {
    let (first, _guard) = capture();
    let second: Arc<Mutex<Vec<SpanEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let captured = Arc::clone(&second);
    set_span_sink(move |ev: &SpanEvent| captured.lock().unwrap().push(ev.clone()));
    drop(telemetry::span!("replaced_sink"));
    clear_span_sink();
    drop(telemetry::span!("after_clear"));
    assert!(first.lock().unwrap().is_empty(), "the first sink was replaced");
    let evs = second.lock().unwrap();
    assert_eq!(evs.len(), 1, "nothing emits after clear: {evs:?}");
    assert_eq!(evs[0].path, "replaced_sink");
}

#[test]
fn span_stacks_are_per_thread() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _outer = telemetry::span!("main_thread");
    let worker_path = std::thread::spawn(|| {
        let _span = telemetry::span!("worker");
        current_path()
    })
    .join()
    .unwrap();
    assert_eq!(worker_path, "worker", "no cross-thread frame leakage");
    assert_eq!(current_path(), "main_thread");
}
