//! Continuous-field transforms: `log(1+x)` range compression and `[0,1]`
//! min-max normalization.
//!
//! Paper Insight 2: "For fields with numerical semantics like
//! packets/bytes per flow with a large support, we use log transformation,
//! i.e., log(1+x) to effectively reduce the range." Appendix C adds "\[0,1\]
//! normalization for the continuous fields". This codec fuses both.

use serde::{Deserialize, Serialize};

/// A fitted continuous-field codec: optional `ln(1+x)`, then min-max to
/// `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContinuousCodec {
    log_transform: bool,
    lo: f64,
    hi: f64,
}

impl ContinuousCodec {
    /// Fits a codec on training samples.
    ///
    /// * `log_transform` — apply `ln(1+x)` before normalizing (use for
    ///   large-support non-negative fields: PKT, BYT, durations).
    ///
    /// Empty input fits a degenerate `[0, 1] → 0.5` codec.
    pub fn fit(samples: &[f64], log_transform: bool) -> Self {
        let mapped = samples.iter().map(|&x| Self::pre(x, log_transform));
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for v in mapped {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if !lo.is_finite() || !hi.is_finite() {
            lo = 0.0;
            hi = 1.0;
        }
        if hi <= lo {
            hi = lo + 1.0;
        }
        ContinuousCodec {
            log_transform,
            lo,
            hi,
        }
    }

    fn pre(x: f64, log: bool) -> f64 {
        if log {
            (1.0 + x.max(0.0)).ln()
        } else {
            x
        }
    }

    /// Encodes a raw value to `[0, 1]` (clamped: generation-time values
    /// beyond the fitted range saturate, like the paper's bounded outputs).
    pub fn encode(&self, x: f64) -> f32 {
        let v = Self::pre(x, self.log_transform);
        (((v - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)) as f32
    }

    /// Decodes a normalized value back to the raw domain.
    pub fn decode(&self, y: f32) -> f64 {
        let v = self.lo + (y.clamp(0.0, 1.0) as f64) * (self.hi - self.lo);
        if self.log_transform {
            (v.exp() - 1.0).max(0.0)
        } else {
            v
        }
    }

    /// The fitted (transformed-domain) range.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_without_log() {
        let c = ContinuousCodec::fit(&[0.0, 50.0, 100.0], false);
        for &x in &[0.0, 25.0, 99.0, 100.0] {
            let y = c.decode(c.encode(x));
            assert!((y - x).abs() < 1e-3, "{x} -> {y}");
        }
    }

    #[test]
    fn round_trip_with_log_over_orders_of_magnitude() {
        let samples: Vec<f64> = vec![1.0, 10.0, 1e3, 1e6, 1e8];
        let c = ContinuousCodec::fit(&samples, true);
        for &x in &samples {
            let y = c.decode(c.encode(x));
            assert!((y - x).abs() / x < 0.01, "{x} -> {y}");
        }
    }

    #[test]
    fn log_compresses_elephants() {
        // Without log, 1e8 forces everything below 1e6 into < 1% of range.
        let samples = vec![1.0, 100.0, 1e8];
        let linear = ContinuousCodec::fit(&samples, false);
        let logged = ContinuousCodec::fit(&samples, true);
        assert!(linear.encode(100.0) < 0.01, "linear squashes the body");
        assert!(logged.encode(100.0) > 0.2, "log spreads the body");
    }

    #[test]
    fn out_of_range_values_saturate() {
        let c = ContinuousCodec::fit(&[0.0, 10.0], false);
        assert_eq!(c.encode(-5.0), 0.0);
        assert_eq!(c.encode(100.0), 1.0);
        assert!((c.decode(2.0) - 10.0).abs() < 1e-9, "decode clamps too");
    }

    #[test]
    fn degenerate_fits_do_not_panic() {
        let empty = ContinuousCodec::fit(&[], true);
        assert!(empty.encode(5.0).is_finite());
        let constant = ContinuousCodec::fit(&[7.0, 7.0], false);
        let y = constant.decode(constant.encode(7.0));
        assert!((y - 7.0).abs() < 1.0 + 1e-9);
    }
}
