//! # fieldcodec
//!
//! Header-field encodings — the realization of the paper's Table 2
//! ("Encoding tradeoffs for various fields") and Insight 2.
//!
//! NetShare's choices, reproduced here:
//!
//! * **IP addresses → bit encoding** ([`bits::BitCodec`]): 32 binary
//!   dimensions. Vector embeddings of IPs would be higher-fidelity but the
//!   embedding dictionary is training-data-dependent and therefore not DP.
//! * **Ports & protocol → IP2Vec embeddings** ([`ip2vec::Ip2Vec`]): a
//!   Word2Vec-style skip-gram model with negative sampling, trained on
//!   *public* data so the dictionary never touches the private trace;
//!   decoding is nearest-neighbour search over the dictionary.
//! * **Large-support numeric fields → `log(1+x)` + min-max** to `[0, 1]`
//!   ([`continuous::ContinuousCodec`]), taming the mice-to-elephants range
//!   of packets/bytes per flow (paper Fig. 2).
//!
//! The byte encoding ([`bits::ByteCodec`]) and one-hot encoding
//! ([`onehot::OneHotCodec`]) used by the *baselines* (PAC-GAN,
//! PacketCGAN, Flow-WGAN, STAN) live here too, so the `tab2` encoding
//! ablation can compare all of them under one roof.

pub mod bits;
pub mod continuous;
pub mod ip2vec;
pub mod onehot;

pub use bits::{BitCodec, ByteCodec};
pub use continuous::ContinuousCodec;
pub use ip2vec::{Ip2Vec, Ip2VecConfig, Word};
pub use onehot::OneHotCodec;
