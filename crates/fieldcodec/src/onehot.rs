//! One-hot encoding for small categorical fields (protocol, labels).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A fitted one-hot codec over an explicit category vocabulary, with an
/// optional "other" bucket for unseen values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OneHotCodec<K: Ord + Clone> {
    categories: Vec<K>,
    #[serde(skip)]
    index: BTreeMap<K, usize>,
    with_other: bool,
}

impl<K: Ord + Clone> OneHotCodec<K> {
    /// Builds a codec over the given categories. If `with_other` is true,
    /// one extra dimension absorbs values outside the vocabulary.
    pub fn new(categories: Vec<K>, with_other: bool) -> Self {
        let index = categories
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i))
            .collect();
        OneHotCodec {
            categories,
            index,
            with_other,
        }
    }

    /// Fits the vocabulary from observed values (in first-seen order).
    pub fn fit(values: &[K], with_other: bool) -> Self {
        let mut cats = Vec::new();
        let mut seen = BTreeMap::new();
        for v in values {
            if !seen.contains_key(v) {
                seen.insert(v.clone(), cats.len());
                cats.push(v.clone());
            }
        }
        OneHotCodec {
            categories: cats,
            index: seen,
            with_other,
        }
    }

    /// Rebuilds the lookup index (needed after deserialization, where the
    /// map is skipped).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .categories
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i))
            .collect();
    }

    /// Encoded dimensionality.
    pub fn dim(&self) -> usize {
        self.categories.len() + usize::from(self.with_other)
    }

    /// Number of in-vocabulary categories.
    pub fn vocab_len(&self) -> usize {
        self.categories.len()
    }

    /// Appends the one-hot encoding of `value` to `out`.
    ///
    /// # Panics
    /// Panics on an out-of-vocabulary value when no "other" bucket exists.
    pub fn encode_into(&self, value: &K, out: &mut Vec<f32>) {
        let start = out.len();
        out.resize(start + self.dim(), 0.0);
        match self.index.get(value) {
            Some(&i) => out[start + i] = 1.0,
            // lint: allow(panic-in-lib) out was just resized to dim() >= 1, so last_mut exists
            None if self.with_other => *out.last_mut().unwrap() = 1.0,
            // lint: allow(panic-in-lib) documented contract panic (see doc comment above)
            None => panic!("value outside one-hot vocabulary and no `other` bucket"),
        }
    }

    /// Encodes into a fresh vector.
    pub fn encode(&self, value: &K) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.dim());
        self.encode_into(value, &mut out);
        out
    }

    /// Decodes by arg-max (accepting soft generator outputs). Returns
    /// `None` when the arg-max lands on the "other" bucket.
    pub fn decode(&self, soft: &[f32]) -> Option<&K> {
        assert_eq!(soft.len(), self.dim(), "one-hot width mismatch");
        let (best, _) = soft
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty encoding"); // lint: allow(panic-in-lib) dim() >= 1 and length asserted above

        self.categories.get(best)
    }

    /// Category at index `i`.
    pub fn category(&self, i: usize) -> Option<&K> {
        self.categories.get(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let c = OneHotCodec::new(vec![6u8, 17, 1], false);
        for v in [6u8, 17, 1] {
            assert_eq!(c.decode(&c.encode(&v)), Some(&v));
        }
        assert_eq!(c.dim(), 3);
    }

    #[test]
    fn soft_decode_picks_argmax() {
        let c = OneHotCodec::new(vec!["a", "b", "c"], false);
        assert_eq!(c.decode(&[0.1, 0.7, 0.2]), Some(&"b"));
    }

    #[test]
    fn other_bucket_absorbs_unknowns() {
        let c = OneHotCodec::new(vec![6u8, 17], true);
        assert_eq!(c.dim(), 3);
        let enc = c.encode(&47);
        assert_eq!(enc, vec![0.0, 0.0, 1.0]);
        assert_eq!(c.decode(&enc), None, "other decodes to None");
    }

    #[test]
    #[should_panic(expected = "outside one-hot vocabulary")]
    fn unknown_without_other_panics() {
        let c = OneHotCodec::new(vec![6u8], false);
        let _ = c.encode(&17);
    }

    #[test]
    fn fit_preserves_first_seen_order() {
        let c = OneHotCodec::fit(&["b", "a", "b", "c"], false);
        assert_eq!(c.category(0), Some(&"b"));
        assert_eq!(c.category(1), Some(&"a"));
        assert_eq!(c.category(2), Some(&"c"));
        assert_eq!(c.vocab_len(), 3);
    }
}
