//! Bit and byte encodings for fixed-width integer fields.

/// Encodes a `width`-bit unsigned integer as `width` values in `{0.0, 1.0}`,
/// most-significant bit first; decodes by thresholding at 0.5.
///
/// This is NetShare's IP encoding (Table 2: "IP/bit" — good fidelity,
/// good scalability, DP-compatible because the mapping is data-independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitCodec {
    width: u32,
}

impl BitCodec {
    /// A codec for `width`-bit values (1..=64).
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        BitCodec { width }
    }

    /// Codec for IPv4 addresses.
    pub fn ipv4() -> Self {
        BitCodec::new(32)
    }

    /// Codec for port numbers.
    pub fn port() -> Self {
        BitCodec::new(16)
    }

    /// Encoded dimensionality.
    pub fn dim(&self) -> usize {
        self.width as usize
    }

    /// Appends the encoding of `value` to `out`.
    ///
    /// # Panics
    /// Panics if `value` does not fit in `width` bits.
    pub fn encode_into(&self, value: u64, out: &mut Vec<f32>) {
        if self.width < 64 {
            assert!(value < (1u64 << self.width), "value out of range for width");
        }
        for i in (0..self.width).rev() {
            out.push(((value >> i) & 1) as f32);
        }
    }

    /// Encodes into a fresh vector.
    pub fn encode(&self, value: u64) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.dim());
        self.encode_into(value, &mut out);
        out
    }

    /// Decodes by thresholding each dimension at 0.5 (accepting the soft
    /// outputs a generator produces).
    ///
    /// # Panics
    /// Panics if `bits.len() != self.dim()`.
    pub fn decode(&self, bits: &[f32]) -> u64 {
        assert_eq!(bits.len(), self.dim(), "bit width mismatch");
        let mut v = 0u64;
        for &b in bits {
            v = (v << 1) | u64::from(b >= 0.5);
        }
        v
    }
}

/// Encodes a fixed-width integer as big-endian bytes scaled to `[0, 1]`
/// (each byte / 255) — the encoding used by the byte-level baselines
/// (PAC-GAN, PacketCGAN, Flow-WGAN). Table 2 rates it lower-fidelity than
/// bit encoding: a small real-valued error in one byte moves the decoded
/// integer by a whole byte-step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteCodec {
    bytes: u32,
}

impl ByteCodec {
    /// A codec for `bytes`-byte values (1..=8).
    pub fn new(bytes: u32) -> Self {
        assert!((1..=8).contains(&bytes), "bytes must be 1..=8");
        ByteCodec { bytes }
    }

    /// Codec for IPv4 addresses (4 bytes).
    pub fn ipv4() -> Self {
        ByteCodec::new(4)
    }

    /// Codec for port numbers (2 bytes).
    pub fn port() -> Self {
        ByteCodec::new(2)
    }

    /// Encoded dimensionality.
    pub fn dim(&self) -> usize {
        self.bytes as usize
    }

    /// Appends the encoding of `value` to `out`.
    pub fn encode_into(&self, value: u64, out: &mut Vec<f32>) {
        if self.bytes < 8 {
            assert!(value < (1u64 << (8 * self.bytes)), "value out of range");
        }
        for i in (0..self.bytes).rev() {
            let byte = (value >> (8 * i)) & 0xff;
            out.push(byte as f32 / 255.0);
        }
    }

    /// Encodes into a fresh vector.
    pub fn encode(&self, value: u64) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.dim());
        self.encode_into(value, &mut out);
        out
    }

    /// Decodes by rounding each dimension back to a byte.
    pub fn decode(&self, vals: &[f32]) -> u64 {
        assert_eq!(vals.len(), self.dim(), "byte width mismatch");
        let mut v = 0u64;
        for &x in vals {
            let byte = (x.clamp(0.0, 1.0) * 255.0).round() as u64;
            v = (v << 8) | byte;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_round_trip_exhaustive_small() {
        let c = BitCodec::new(8);
        for v in 0..256u64 {
            assert_eq!(c.decode(&c.encode(v)), v);
        }
    }

    #[test]
    fn bit_round_trip_ipv4_and_port() {
        let ip = BitCodec::ipv4();
        for v in [0u64, 1, 0xc0a80101, 0xffffffff, 0x08080808] {
            assert_eq!(ip.decode(&ip.encode(v)), v);
        }
        let port = BitCodec::port();
        for v in [0u64, 53, 80, 443, 65535] {
            assert_eq!(port.decode(&port.encode(v)), v);
        }
    }

    #[test]
    fn bit_decode_tolerates_soft_values() {
        let c = BitCodec::new(4);
        // 0b1010 encoded softly.
        assert_eq!(c.decode(&[0.9, 0.2, 0.7, 0.1]), 0b1010);
    }

    #[test]
    fn byte_round_trip() {
        let c = ByteCodec::ipv4();
        for v in [0u64, 0xc0a80101, 0xffffffff] {
            assert_eq!(c.decode(&c.encode(v)), v);
        }
    }

    #[test]
    fn byte_encoding_is_sensitive_to_noise() {
        // Documents the Table 2 fidelity weakness: ±0.004 in one dimension
        // flips a whole byte step (≈ 1/255 ≈ 0.0039).
        let c = ByteCodec::new(2);
        let mut enc = c.encode(0x0100);
        enc[0] -= 0.004;
        assert_ne!(c.decode(&enc), 0x0100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_rejects_oversized_values() {
        let _ = BitCodec::new(4).encode(16);
    }

    #[test]
    fn msb_first_layout() {
        let c = BitCodec::new(4);
        assert_eq!(c.encode(0b1000), vec![1.0, 0.0, 0.0, 0.0]);
    }
}
