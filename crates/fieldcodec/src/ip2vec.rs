//! IP2Vec: Word2Vec-style embeddings of header-field "words"
//! (Ring et al., ICDMW 2017), as used by NetShare and E-WGAN-GP.
//!
//! Each five-tuple is a *sentence*; its IPs, ports, and protocol are
//! *words*. A skip-gram model with negative sampling learns a fixed-length
//! vector per word; generated vectors are decoded back to words by
//! nearest-neighbour search over the dictionary.
//!
//! The privacy subtlety the paper leans on (Insight 2): the dictionary is
//! training-data-dependent, so NetShare trains the embedding **only on
//! public data** and uses it **only for ports and protocols**, whose public
//! support ("almost every possible port number and protocol") covers the
//! private data's words. IPs get the data-independent bit encoding instead.

use nettrace::{FlowTrace, PacketTrace};
use rand::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A vocabulary item: one value of one header field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Word {
    /// An IPv4 address.
    Ip(u32),
    /// A port number (source or destination — IP2Vec does not distinguish).
    Port(u16),
    /// A transport protocol number.
    Proto(u8),
}

impl Word {
    /// True for port words (the nearest-neighbour filter NetShare uses).
    pub fn is_port(&self) -> bool {
        matches!(self, Word::Port(_))
    }

    /// True for protocol words.
    pub fn is_proto(&self) -> bool {
        matches!(self, Word::Proto(_))
    }
}

/// IP2Vec training hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Ip2VecConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Passes over the sentence corpus.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Ip2VecConfig {
    fn default() -> Self {
        Ip2VecConfig {
            dim: 16,
            epochs: 3,
            lr: 0.05,
            negatives: 5,
            seed: 0x1926ec,
        }
    }
}

/// A trained IP2Vec model: dictionary plus input/output embeddings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ip2Vec {
    cfg: Ip2VecConfig,
    vocab: Vec<Word>,
    #[serde(skip)]
    index: BTreeMap<Word, usize>,
    /// Input embeddings, `vocab.len() × dim`, row-major.
    emb: Vec<f32>,
    /// Output (context) embeddings, same layout.
    ctx: Vec<f32>,
}

impl Ip2Vec {
    /// Trains on explicit sentences (each a slice of words).
    pub fn train(sentences: &[Vec<Word>], cfg: Ip2VecConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Build vocabulary + unigram counts.
        let mut index: BTreeMap<Word, usize> = BTreeMap::new();
        let mut vocab: Vec<Word> = Vec::new();
        let mut counts: Vec<u64> = Vec::new();
        for s in sentences {
            for w in s {
                match index.get(w) {
                    Some(&i) => counts[i] += 1,
                    None => {
                        index.insert(*w, vocab.len());
                        vocab.push(*w);
                        counts.push(1);
                    }
                }
            }
        }
        let v = vocab.len().max(1);
        let dim = cfg.dim;
        let mut emb: Vec<f32> = (0..v * dim)
            .map(|_| (rng.gen::<f32>() - 0.5) / dim as f32)
            .collect();
        let mut ctx: Vec<f32> = vec![0.0; v * dim];

        // Negative-sampling distribution: unigram^0.75 CDF.
        let weights: Vec<f64> = counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(v);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total.max(f64::MIN_POSITIVE);
            cdf.push(acc);
        }
        let sample_negative = |rng: &mut StdRng| -> usize {
            let u = rng.gen::<f64>();
            cdf.partition_point(|&c| c < u).min(v - 1)
        };

        let sigmoid = |x: f32| 1.0 / (1.0 + (-x).exp());

        for _ in 0..cfg.epochs {
            for s in sentences {
                for (ci, c) in s.iter().enumerate() {
                    let c_idx = index[c];
                    for (oi, o) in s.iter().enumerate() {
                        if ci == oi {
                            continue;
                        }
                        let o_idx = index[o];
                        // Positive update + negatives, accumulating the
                        // center-gradient before applying it.
                        let mut grad_c = vec![0.0f32; dim];
                        {
                            let (vc, uo) = (c_idx * dim, o_idx * dim);
                            let dot: f32 = (0..dim).map(|d| emb[vc + d] * ctx[uo + d]).sum();
                            let g = (sigmoid(dot) - 1.0) * cfg.lr;
                            for d in 0..dim {
                                grad_c[d] += g * ctx[uo + d];
                                ctx[uo + d] -= g * emb[vc + d];
                            }
                        }
                        for _ in 0..cfg.negatives {
                            let n_idx = sample_negative(&mut rng);
                            if n_idx == o_idx {
                                continue;
                            }
                            let (vc, un) = (c_idx * dim, n_idx * dim);
                            let dot: f32 = (0..dim).map(|d| emb[vc + d] * ctx[un + d]).sum();
                            let g = sigmoid(dot) * cfg.lr;
                            for d in 0..dim {
                                grad_c[d] += g * ctx[un + d];
                                ctx[un + d] -= g * emb[vc + d];
                            }
                        }
                        let vc = c_idx * dim;
                        for d in 0..dim {
                            emb[vc + d] -= grad_c[d];
                        }
                    }
                }
            }
        }

        Ip2Vec {
            cfg,
            vocab,
            index,
            emb,
            ctx,
        }
    }

    /// Trains from a packet trace: one sentence per packet,
    /// `[src_ip, src_port, dst_ip, dst_port, proto]` (port words only for
    /// TCP/UDP).
    pub fn train_on_packets(trace: &PacketTrace, cfg: Ip2VecConfig) -> Self {
        let sentences: Vec<Vec<Word>> = trace
            .packets
            .iter()
            .map(|p| sentence(p.five_tuple))
            .collect();
        Self::train(&sentences, cfg)
    }

    /// Trains from a flow trace (one sentence per record).
    pub fn train_on_flows(trace: &FlowTrace, cfg: Ip2VecConfig) -> Self {
        let sentences: Vec<Vec<Word>> = trace
            .flows
            .iter()
            .map(|f| sentence(f.five_tuple))
            .collect();
        Self::train(&sentences, cfg)
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.cfg.dim
    }

    /// Dictionary size.
    pub fn vocab_len(&self) -> usize {
        self.vocab.len()
    }

    /// Rebuilds the word index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .vocab
            .iter()
            .enumerate()
            .map(|(i, w)| (*w, i))
            .collect();
    }

    /// The embedding of a word, if in the dictionary.
    pub fn embedding(&self, w: &Word) -> Option<&[f32]> {
        self.index
            .get(w)
            .map(|&i| &self.emb[i * self.cfg.dim..(i + 1) * self.cfg.dim])
    }

    /// Nearest dictionary word to `vec` (by Euclidean distance) among
    /// words passing `filter`. This is the paper's decode step: "upon
    /// generating a new embedding, it is mapped to a word via
    /// nearest-neighbor search over the dictionary." Euclidean (rather
    /// than cosine) distance makes decoding *exact* for vectors that are
    /// themselves dictionary embeddings, regardless of embedding quality.
    pub fn nearest(&self, vec: &[f32], filter: impl Fn(&Word) -> bool) -> Option<Word> {
        assert_eq!(vec.len(), self.cfg.dim, "query dimension mismatch");
        let mut best: Option<(Word, f32)> = None;
        for (i, w) in self.vocab.iter().enumerate() {
            if !filter(w) {
                continue;
            }
            let e = &self.emb[i * self.cfg.dim..(i + 1) * self.cfg.dim];
            let d2: f32 = e.iter().zip(vec).map(|(a, b)| (a - b) * (a - b)).sum();
            if best.map(|(_, b)| d2 < b).unwrap_or(true) {
                best = Some((*w, d2));
            }
        }
        best.map(|(w, _)| w)
    }

    /// Decodes a generated vector to the nearest port word.
    pub fn nearest_port(&self, vec: &[f32]) -> Option<u16> {
        match self.nearest(vec, Word::is_port) {
            Some(Word::Port(p)) => Some(p),
            _ => None,
        }
    }

    /// Decodes a generated vector to the nearest protocol word.
    pub fn nearest_proto(&self, vec: &[f32]) -> Option<u8> {
        match self.nearest(vec, Word::is_proto) {
            Some(Word::Proto(p)) => Some(p),
            _ => None,
        }
    }
}

/// The IP2Vec sentence for a five-tuple.
pub fn sentence(ft: nettrace::FiveTuple) -> Vec<Word> {
    let mut s = vec![Word::Ip(ft.src_ip)];
    if ft.proto.has_ports() {
        s.push(Word::Port(ft.src_port));
    }
    s.push(Word::Ip(ft.dst_ip));
    if ft.proto.has_ports() {
        s.push(Word::Port(ft.dst_port));
    }
    s.push(Word::Proto(ft.proto.number()));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::{FiveTuple, Protocol};

    /// A toy corpus with two strongly-separated "services": port 53 always
    /// appears with UDP and subnet A; port 80 with TCP and subnet B.
    fn toy_corpus() -> Vec<Vec<Word>> {
        let mut sentences = Vec::new();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..400 {
            if rng.gen::<bool>() {
                let ft = FiveTuple::new(
                    0x0a000000 + rng.gen_range(0..4u32),
                    0x0a0000ff,
                    rng.gen_range(1024..2048),
                    53,
                    Protocol::Udp,
                );
                sentences.push(sentence(ft));
            } else {
                let ft = FiveTuple::new(
                    0x14000000 + rng.gen_range(0..4u32),
                    0x140000ff,
                    rng.gen_range(1024..2048),
                    80,
                    Protocol::Tcp,
                );
                sentences.push(sentence(ft));
            }
        }
        sentences
    }

    fn cos(a: &[f32], b: &[f32]) -> f32 {
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        a.iter().zip(b).map(|(x, y)| x * y).sum::<f32>() / (na * nb)
    }

    fn small_cfg() -> Ip2VecConfig {
        Ip2VecConfig {
            dim: 12,
            epochs: 6,
            lr: 0.05,
            negatives: 4,
            seed: 1,
        }
    }

    #[test]
    fn cooccurring_words_embed_close() {
        let model = Ip2Vec::train(&toy_corpus(), small_cfg());
        let p53 = model.embedding(&Word::Port(53)).unwrap().to_vec();
        let udp = model.embedding(&Word::Proto(17)).unwrap().to_vec();
        let p80 = model.embedding(&Word::Port(80)).unwrap().to_vec();
        let tcp = model.embedding(&Word::Proto(6)).unwrap().to_vec();
        assert!(
            cos(&p53, &udp) > cos(&p53, &tcp),
            "53 is closer to UDP than TCP: {} vs {}",
            cos(&p53, &udp),
            cos(&p53, &tcp)
        );
        assert!(cos(&p80, &tcp) > cos(&p80, &udp), "80 closer to TCP");
    }

    #[test]
    fn embeddings_decode_to_themselves() {
        let model = Ip2Vec::train(&toy_corpus(), small_cfg());
        let e53 = model.embedding(&Word::Port(53)).unwrap().to_vec();
        assert_eq!(model.nearest_port(&e53), Some(53));
        let etcp = model.embedding(&Word::Proto(6)).unwrap().to_vec();
        assert_eq!(model.nearest_proto(&etcp), Some(6));
    }

    #[test]
    fn nearest_respects_filter() {
        let model = Ip2Vec::train(&toy_corpus(), small_cfg());
        let e = model.embedding(&Word::Proto(6)).unwrap().to_vec();
        // Even querying with a protocol vector, a port filter returns a port.
        let w = model.nearest(&e, Word::is_port).unwrap();
        assert!(w.is_port());
    }

    #[test]
    fn unknown_word_has_no_embedding() {
        let model = Ip2Vec::train(&toy_corpus(), small_cfg());
        assert!(model.embedding(&Word::Port(9999)).is_none());
    }

    #[test]
    fn sentence_omits_ports_for_icmp() {
        let ft = FiveTuple::new(1, 2, 0, 0, Protocol::Icmp);
        let s = sentence(ft);
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|w| !w.is_port()));
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = toy_corpus();
        let a = Ip2Vec::train(&corpus, small_cfg());
        let b = Ip2Vec::train(&corpus, small_cfg());
        assert_eq!(a.emb, b.emb);
    }
}
