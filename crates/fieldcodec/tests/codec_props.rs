//! Property tests for the field codecs.

use fieldcodec::{BitCodec, ByteCodec, ContinuousCodec, OneHotCodec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bit_codec_round_trips_any_width(value in any::<u64>(), width in 1u32..=64) {
        let c = BitCodec::new(width);
        let masked = if width == 64 { value } else { value & ((1u64 << width) - 1) };
        prop_assert_eq!(c.decode(&c.encode(masked)), masked);
    }

    #[test]
    fn bit_codec_survives_sub_half_noise(value in any::<u32>(), noise in 0.0f32..0.49) {
        // Any per-dimension perturbation below 0.5 cannot flip a bit.
        let c = BitCodec::ipv4();
        let mut enc = c.encode(value as u64);
        for (i, v) in enc.iter_mut().enumerate() {
            *v += if i % 2 == 0 { noise } else { -noise };
        }
        prop_assert_eq!(c.decode(&enc), value as u64);
    }

    #[test]
    fn byte_codec_round_trips(value in any::<u32>()) {
        let c = ByteCodec::ipv4();
        prop_assert_eq!(c.decode(&c.encode(value as u64)), value as u64);
    }

    #[test]
    fn continuous_codec_is_monotone(
        samples in prop::collection::vec(0.0f64..1e7, 2..40),
        log in any::<bool>(),
        a in 0.0f64..1e7,
        b in 0.0f64..1e7,
    ) {
        let c = ContinuousCodec::fit(&samples, log);
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(c.encode(lo) <= c.encode(hi), "encoding must preserve order");
    }

    #[test]
    fn one_hot_round_trips_vocab(vocab in prop::collection::hash_set(0u16..500, 1..20)) {
        let vocab: Vec<u16> = vocab.into_iter().collect();
        let c = OneHotCodec::new(vocab.clone(), false);
        for v in &vocab {
            prop_assert_eq!(c.decode(&c.encode(v)), Some(v));
        }
    }
}
