//! TON_IoT-like flow dataset: telemetry from IoT/IIoT sensors (Moustafa,
//! 2021). The paper uses the "Train_Test" sub-dataset: 461,013 records of
//! which 65.07 % are normal and the rest split *evenly* across nine attack
//! types (backdoor, DDoS, DoS, injection, MITM, password/brute-force,
//! ransomware, scanning, XSS).
//!
//! Structure reproduced: many low-rate sensors talking to a few gateways
//! over IoT-ish services (MQTT, Modbus, HTTP, DNS), the exact 65/35
//! benign/attack split, and the even nine-way attack mixture the Fig. 12
//! classifiers must separate.

use nettrace::{AttackType, FlowTrace, Protocol, TrafficLabel};
use rand::prelude::*;
use std::net::Ipv4Addr;

use crate::attacks::generate_attack_burst;
use crate::samplers::{CategoricalSampler, HeavyTailSampler, ZipfPool};
use crate::session::{generate_flow_trace, TrafficProfile};

/// NetFlow active timeout used by the simulated collector (ms).
pub const EXPORT_INTERVAL_MS: f64 = 60_000.0;

/// Fraction of benign records (matches the dataset's 65.07 %).
pub const BENIGN_FRACTION: f64 = 0.6507;

/// The nine TON_IoT attack classes, in the order used for the even split.
pub const TON_ATTACKS: [AttackType; 9] = [
    AttackType::Backdoor,
    AttackType::Ddos,
    AttackType::Dos,
    AttackType::Injection,
    AttackType::Mitm,
    AttackType::BruteForce, // "password" in TON_IoT
    AttackType::Ransomware,
    AttackType::Scanning,
    AttackType::Xss,
];

fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
    u32::from(Ipv4Addr::new(a, b, c, d))
}

fn profile(rng: &mut impl Rng) -> TrafficProfile {
    // Sensors on 192.168.1.x / 192.168.2.x; gateways and cloud endpoints.
    let mut clients: Vec<u32> = (10..250u8).map(|h| ip(192, 168, 1, h)).collect();
    clients.extend((10..120u8).map(|h| ip(192, 168, 2, h)));
    let mut servers: Vec<u32> = vec![
        ip(192, 168, 1, 1),  // gateway
        ip(192, 168, 1, 2),  // MQTT broker
        ip(192, 168, 2, 1),  // SCADA head
    ];
    servers.extend((0..30).map(|_| {
        let net = rng.gen_range(2u32..223) << 24;
        net | rng.gen_range(0..0x0100_0000u32) & 0x00ff_ffff
    }));
    TrafficProfile {
        clients: ZipfPool::new(clients, 0.7), // sensors are near-uniform
        servers: ZipfPool::new(servers, 1.5), // brokers dominate
        services: CategoricalSampler::new(vec![
            ((1883, Protocol::Tcp), 0.30), // MQTT
            ((502, Protocol::Tcp), 0.12),  // Modbus
            ((80, Protocol::Tcp), 0.18),
            ((443, Protocol::Tcp), 0.14),
            ((53, Protocol::Udp), 0.14),
            ((123, Protocol::Udp), 0.06),
            ((5683, Protocol::Udp), 0.06), // CoAP
        ]),
        session_gap_ms: 15.0,
        // Telemetry flows are small and regular; occasional firmware pulls.
        packets_per_session: HeavyTailSampler::new(0.8, 0.9, 50.0, 1.2, 0.02, 5e4),
        mean_pkt_size: CategoricalSampler::new(vec![(60, 0.45), (128, 0.25), (576, 0.15), (1460, 0.15)]),
        ms_per_packet: 100.0,
        tuple_repeat_p: 0.45, // sensors report periodically on the same tuple
        icmp_p: 0.02,
    }
}

/// Generates approximately `n` TON_IoT-like labeled flow records.
pub fn generate(n: usize, seed: u64) -> FlowTrace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x746f_6e00_0000_0000); // "ton"
    let prof = profile(&mut rng);
    let benign_n = ((n as f64) * BENIGN_FRACTION) as usize;

    let mut trace = generate_flow_trace(&prof, EXPORT_INTERVAL_MS, benign_n, &mut rng, |_, rec| {
        rec.label = Some(TrafficLabel::Benign);
    });

    let span = trace.span_ms().max(1.0);
    // Attack bursts start where benign activity actually is: drawing from
    // the empirical benign start-time distribution keeps the label mix
    // stationary over time even when a few elephant sessions stretch the
    // nominal span (the paper's time-sorted train/test split needs this).
    let benign_starts: Vec<f64> = trace.flows.iter().map(|f| f.start_ms).collect();
    let attack_total = n - benign_n;
    let per_type = attack_total / TON_ATTACKS.len();
    let mut injected = Vec::new();
    for (i, &attack) in TON_ATTACKS.iter().enumerate() {
        // Last type absorbs rounding so the total is exact.
        let want = if i == TON_ATTACKS.len() - 1 {
            attack_total - injected.len()
        } else {
            per_type
        };
        let mut got = 0usize;
        while got < want {
            let attacker = prof.clients.sample(&mut rng);
            let victim = prof.servers.sample(&mut rng);
            let start = benign_starts[rng.gen_range(0..benign_starts.len())];
            let burst = rng.gen_range(20..100).min(want - got);
            let recs = generate_attack_burst(&mut rng, attack, attacker, victim, start, span, burst);
            got += recs.len();
            injected.extend(recs);
        }
    }
    trace.flows.extend(injected);
    trace.sort_by_time();
    trace.truncate(n);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_fraction_matches_dataset() {
        let t = generate(9_000, 1);
        let benign = t
            .flows
            .iter()
            .filter(|f| f.label == Some(TrafficLabel::Benign))
            .count();
        let frac = benign as f64 / t.len() as f64;
        assert!((frac - BENIGN_FRACTION).abs() < 0.05, "benign fraction {frac}");
    }

    #[test]
    fn nine_attack_types_roughly_even() {
        let t = generate(18_000, 2);
        let mut counts = std::collections::HashMap::new();
        for f in &t.flows {
            if let Some(TrafficLabel::Attack(a)) = f.label {
                *counts.entry(a).or_insert(0usize) += 1;
            }
        }
        assert_eq!(counts.len(), 9, "all nine classes present: {counts:?}");
        let min = *counts.values().min().unwrap() as f64;
        let max = *counts.values().max().unwrap() as f64;
        assert!(max / min < 2.0, "even split expected, min {min} max {max}");
    }

    #[test]
    fn mqtt_is_the_top_service() {
        let t = generate(6_000, 3);
        let benign: Vec<_> = t
            .flows
            .iter()
            .filter(|f| f.label == Some(TrafficLabel::Benign))
            .collect();
        let mqtt = benign.iter().filter(|f| f.five_tuple.dst_port == 1883).count();
        assert!(mqtt as f64 / benign.len() as f64 > 0.15);
    }
}
