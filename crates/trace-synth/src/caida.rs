//! CAIDA-like packet dataset: anonymized IPv4 headers from a high-speed
//! commercial backbone monitor (the paper uses the New York collector,
//! March 2018).
//!
//! Structure reproduced: very large, diverse address population with
//! Zipfian popularity; enormous flow-arrival rate with interleaved flows;
//! bimodal packet sizes (ACK-sized vs MTU-sized); flow sizes from 1 packet
//! to thousands (the Fig. 1b CDF); broad destination-port mix with
//! well-known services on top.

use nettrace::{PacketTrace, Protocol};
use rand::prelude::*;

use crate::samplers::{CategoricalSampler, HeavyTailSampler, ZipfPool};
use crate::session::{generate_packet_trace, TrafficProfile};

fn profile(rng: &mut impl Rng) -> TrafficProfile {
    let random_addr = |rng: &mut dyn RngCore| -> u32 {
        let net = rng.gen_range(2u32..223) << 24;
        net | rng.gen_range(0..0x0100_0000u32) & 0x00ff_ffff
    };
    let clients: Vec<u32> = (0..20_000).map(|_| random_addr(rng)).collect();
    let servers: Vec<u32> = (0..4_000).map(|_| random_addr(rng)).collect();
    TrafficProfile {
        clients: ZipfPool::new(clients, 1.02),
        servers: ZipfPool::new(servers, 1.2),
        services: CategoricalSampler::new(vec![
            ((443, Protocol::Tcp), 0.38),
            ((80, Protocol::Tcp), 0.22),
            ((53, Protocol::Udp), 0.12),
            ((443, Protocol::Udp), 0.08), // QUIC
            ((22, Protocol::Tcp), 0.03),
            ((25, Protocol::Tcp), 0.03),
            ((123, Protocol::Udp), 0.02),
            ((8080, Protocol::Tcp), 0.03),
            ((3478, Protocol::Udp), 0.03), // STUN
            ((993, Protocol::Tcp), 0.02),
            ((5222, Protocol::Tcp), 0.02),
            ((1194, Protocol::Udp), 0.02),
        ]),
        session_gap_ms: 0.8, // backbone: flows arrive constantly
        packets_per_session: HeavyTailSampler::new(1.0, 1.4, 100.0, 1.1, 0.04, 1e4),
        mean_pkt_size: CategoricalSampler::new(vec![(60, 0.42), (576, 0.12), (1000, 0.08), (1460, 0.38)]),
        ms_per_packet: 8.0,
        tuple_repeat_p: 0.10,
        icmp_p: 0.01,
    }
}

/// Generates approximately `n` CAIDA-like packets.
pub fn generate(n: usize, seed: u64) -> PacketTrace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6361_6964_6100_0000); // "caida"
    let prof = profile(&mut rng);
    generate_packet_trace(&prof, n, 10_000, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::{aggregate_flows, AggregationConfig};

    #[test]
    fn flows_span_one_to_thousands_of_packets() {
        let t = generate(30_000, 1);
        let groups = t.group_by_five_tuple();
        let sizes: Vec<usize> = groups.values().map(|v| v.len()).collect();
        let ones = sizes.iter().filter(|&&s| s == 1).count();
        let max = *sizes.iter().max().unwrap();
        assert!(ones > 0, "singleton flows exist");
        assert!(max > 100, "elephant flows exist, max {max}");
    }

    #[test]
    fn packet_sizes_are_bimodal() {
        let t = generate(10_000, 2);
        let small = t.packets.iter().filter(|p| p.packet_len <= 100).count();
        let large = t.packets.iter().filter(|p| p.packet_len >= 1000).count();
        assert!(small > t.len() / 8, "ACK-sized packets present");
        assert!(large > t.len() / 8, "MTU-sized packets present");
    }

    #[test]
    fn timestamps_are_monotone() {
        let t = generate(5_000, 3);
        assert!(t.packets.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
    }

    #[test]
    fn aggregates_into_valid_flows() {
        let t = generate(10_000, 4);
        let flows = aggregate_flows(&t, AggregationConfig::default());
        let r = nettrace::validity::check_packet_trace(&t, &flows);
        assert!(r.test1 > 0.95, "test1 {}", r.test1);
        assert!(r.test4.unwrap() > 0.99, "test4 {:?}", r.test4);
    }
}
