//! Shared session machinery for the dataset simulators.
//!
//! Both flow and packet simulators generate *sessions* (a five-tuple plus a
//! size/duration envelope), then render them either as NetFlow export
//! records (splitting long sessions at the collector's export interval,
//! which produces the multi-record five-tuples of Fig. 1a) or as individual
//! packets (producing the multi-packet flows of Fig. 1b).

use nettrace::{FiveTuple, FlowRecord, PacketRecord, Protocol};
use rand::prelude::*;
use rand_distr::{Distribution, LogNormal};

use crate::samplers::{exp_gap, CategoricalSampler, HeavyTailSampler, ZipfPool};

/// A generated conversation before rendering.
#[derive(Debug, Clone, Copy)]
pub struct SessionSpec {
    /// Flow key.
    pub tuple: FiveTuple,
    /// Session start time (ms from trace start).
    pub start_ms: f64,
    /// Session duration (ms).
    pub duration_ms: f64,
    /// Total packets in the session.
    pub packets: u64,
    /// Total bytes in the session.
    pub bytes: u64,
}

/// Traffic-mix parameters shared by the simulators.
#[derive(Debug, Clone)]
pub struct TrafficProfile {
    /// Client (source) address pool with Zipf popularity.
    pub clients: ZipfPool<u32>,
    /// Server (destination) address pool with Zipf popularity.
    pub servers: ZipfPool<u32>,
    /// Service mix: destination port and its transport protocol.
    pub services: CategoricalSampler<(u16, Protocol)>,
    /// Mean gap between session starts (ms) — Poisson session arrivals.
    pub session_gap_ms: f64,
    /// Packets-per-session distribution.
    pub packets_per_session: HeavyTailSampler,
    /// Mean packet-size mix (bytes per packet averaged over a session).
    pub mean_pkt_size: CategoricalSampler<u16>,
    /// Pacing: mean milliseconds per packet within a session.
    pub ms_per_packet: f64,
    /// Probability that a new session reuses a recently seen five-tuple
    /// (repeated conversations → more records per tuple).
    pub tuple_repeat_p: f64,
    /// Fraction of sessions that are ICMP (no ports).
    pub icmp_p: f64,
}

impl TrafficProfile {
    /// Samples the next session starting at `start_ms`, possibly reusing a
    /// tuple from `recent` (a small pool of live conversations).
    pub fn sample_session<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        start_ms: f64,
        recent: &mut Vec<FiveTuple>,
    ) -> SessionSpec {
        let tuple = if !recent.is_empty() && rng.gen::<f64>() < self.tuple_repeat_p {
            recent[rng.gen_range(0..recent.len())]
        } else {
            let t = self.sample_tuple(rng);
            recent.push(t);
            if recent.len() > 512 {
                let idx = rng.gen_range(0..recent.len());
                recent.swap_remove(idx);
            }
            t
        };
        let packets = self.packets_per_session.sample_count(rng).max(1);
        let mean_size = self.mean_pkt_size.sample(rng) as f64;
        // Per-session size jitter, clamped into the protocol-valid band so
        // Test 2 passes on real data at realistic (~98%) rates.
        let jitter = LogNormal::new(0.0, 0.15).unwrap().sample(rng); // lint: allow(panic-in-lib) constant log-normal parameters are valid
        let min_size = tuple.proto.min_packet_size() as f64;
        let per_pkt = (mean_size * jitter).clamp(min_size, 65500.0);
        let bytes = (packets as f64 * per_pkt).round() as u64;
        // Duration scales with packet count, with heavy jitter; single
        // packets have zero duration like real NetFlow.
        let duration_ms = if packets == 1 {
            0.0
        } else {
            let pace = LogNormal::new(0.0, 0.8).unwrap().sample(rng); // lint: allow(panic-in-lib) constant log-normal parameters are valid
            (packets as f64) * self.ms_per_packet * pace
        };
        SessionSpec {
            tuple,
            start_ms,
            duration_ms,
            packets,
            bytes,
        }
    }

    /// Draws a fresh five-tuple from the pools and service mix.
    pub fn sample_tuple<R: Rng + ?Sized>(&self, rng: &mut R) -> FiveTuple {
        let src_ip = self.clients.sample(rng);
        let dst_ip = self.servers.sample(rng);
        if rng.gen::<f64>() < self.icmp_p {
            return FiveTuple::new(src_ip, dst_ip, 0, 0, Protocol::Icmp);
        }
        let (dst_port, proto) = self.services.sample(rng);
        let src_port = rng.gen_range(1024..=65535);
        FiveTuple::new(src_ip, dst_ip, src_port, dst_port, proto)
    }
}

/// Renders a session as NetFlow export records, splitting at the export
/// interval (active timeout). Packets/bytes are spread proportionally over
/// the splits; every record keeps ≥ 1 packet.
pub fn render_flow_records<R: Rng + ?Sized>(
    spec: &SessionSpec,
    export_interval_ms: f64,
    rng: &mut R,
) -> Vec<FlowRecord> {
    let n_records = if spec.duration_ms <= export_interval_ms {
        1
    } else {
        ((spec.duration_ms / export_interval_ms).ceil() as u64).min(spec.packets).max(1)
    };
    if n_records == 1 {
        return vec![FlowRecord::new(
            spec.tuple,
            spec.start_ms,
            spec.duration_ms,
            spec.packets,
            spec.bytes,
        )];
    }
    let mut records = Vec::with_capacity(n_records as usize);
    let mut pkts_left = spec.packets;
    let mut bytes_left = spec.bytes;
    let seg_ms = spec.duration_ms / n_records as f64;
    for i in 0..n_records {
        let remaining_records = n_records - i;
        let (pkts, bytes) = if remaining_records == 1 {
            (pkts_left, bytes_left)
        } else {
            // Roughly even split with multiplicative noise.
            let share = (pkts_left as f64 / remaining_records as f64
                * rng.gen_range(0.6..1.4))
            .round()
            .clamp(1.0, (pkts_left - (remaining_records - 1)) as f64) as u64;
            let byte_share =
                ((bytes_left as f64) * (share as f64 / pkts_left as f64)).round() as u64;
            (share, byte_share.min(bytes_left))
        };
        records.push(FlowRecord::new(
            spec.tuple,
            spec.start_ms + i as f64 * seg_ms,
            seg_ms.min(spec.duration_ms - i as f64 * seg_ms),
            pkts,
            bytes,
        ));
        pkts_left -= pkts;
        bytes_left -= bytes;
    }
    records
}

/// Renders a session as individual packets with exponential inter-arrival
/// gaps rescaled to the session duration. Sizes sum approximately to the
/// session byte count and respect the protocol minimum.
pub fn render_packets<R: Rng + ?Sized>(spec: &SessionSpec, rng: &mut R) -> Vec<PacketRecord> {
    let n = spec.packets as usize;
    let min_size = spec.tuple.proto.min_packet_size();
    let mean_size = (spec.bytes as f64 / n as f64).max(min_size as f64);
    let mut out = Vec::with_capacity(n);
    // Exponential gaps normalized so the packets span the duration.
    let mut gaps: Vec<f64> = (0..n).map(|_| exp_gap(rng, 1.0)).collect();
    let total: f64 = gaps.iter().sum();
    if total > 0.0 {
        for g in &mut gaps {
            *g *= spec.duration_ms / total;
        }
    }
    let mut t = spec.start_ms;
    for (i, gap) in gaps.iter().enumerate() {
        if i > 0 {
            t += gap;
        }
        let jitter = LogNormal::new(0.0, 0.25).unwrap().sample(rng); // lint: allow(panic-in-lib) constant log-normal parameters are valid
        let size = (mean_size * jitter).clamp(min_size as f64, 65500.0) as u16;
        let mut p = PacketRecord::new((t * 1000.0).max(0.0) as u64, spec.tuple, size);
        p.ip_id = rng.gen();
        out.push(p);
    }
    out
}

/// Runs the session process until approximately `target_records` flow
/// records exist, applying `label` to each produced record.
pub fn generate_flow_trace<R, F>(
    profile: &TrafficProfile,
    export_interval_ms: f64,
    target_records: usize,
    rng: &mut R,
    mut label: F,
) -> nettrace::FlowTrace
where
    R: Rng + ?Sized,
    F: FnMut(&mut R, &mut FlowRecord),
{
    let mut flows = Vec::with_capacity(target_records);
    let mut recent = Vec::new();
    let mut clock = 0.0;
    while flows.len() < target_records {
        clock += exp_gap(rng, profile.session_gap_ms);
        let spec = profile.sample_session(rng, clock, &mut recent);
        for mut rec in render_flow_records(&spec, export_interval_ms, rng) {
            label(rng, &mut rec);
            flows.push(rec);
        }
    }
    flows.truncate(target_records);
    // Steady-state window: long sessions export records far past the last
    // session arrival; wrapping those starts back into the observation
    // window models a collector that was already seeing mid-life flows
    // when the window opened. Without this, a handful of elephants
    // stretch the span and make the record-time distribution (and any
    // even-time chunking of it) degenerate.
    let window = clock.max(1.0);
    for rec in &mut flows {
        if rec.start_ms >= window {
            rec.start_ms %= window;
        }
    }
    nettrace::FlowTrace::from_records(flows)
}

/// Runs the session process until approximately `target_packets` packets
/// exist.
pub fn generate_packet_trace<R: Rng + ?Sized>(
    profile: &TrafficProfile,
    target_packets: usize,
    max_session_packets: u64,
    rng: &mut R,
) -> nettrace::PacketTrace {
    let mut packets = Vec::with_capacity(target_packets);
    let mut recent = Vec::new();
    let mut clock = 0.0;
    while packets.len() < target_packets {
        clock += exp_gap(rng, profile.session_gap_ms);
        let mut spec = profile.sample_session(rng, clock, &mut recent);
        spec.packets = spec.packets.min(max_session_packets);
        packets.extend(render_packets(&spec, rng));
    }
    packets.truncate(target_packets);
    // Steady-state window (see generate_flow_trace): wrap stragglers from
    // long sessions back into the observation window.
    let window_us = ((clock.max(1.0)) * 1000.0) as u64;
    for p in &mut packets {
        if p.ts_micros >= window_us {
            p.ts_micros %= window_us;
        }
    }
    nettrace::PacketTrace::from_records(packets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn profile() -> TrafficProfile {
        TrafficProfile {
            clients: ZipfPool::new((0..64u32).map(|i| 0x0a000000 + i).collect(), 1.1),
            servers: ZipfPool::new((0..16u32).map(|i| 0xc0a80000 + i).collect(), 1.3),
            services: CategoricalSampler::new(vec![
                ((80, Protocol::Tcp), 0.5),
                ((53, Protocol::Udp), 0.3),
                ((443, Protocol::Tcp), 0.2),
            ]),
            session_gap_ms: 5.0,
            packets_per_session: HeavyTailSampler::new(1.0, 1.2, 50.0, 1.0, 0.05, 1e5),
            mean_pkt_size: CategoricalSampler::new(vec![(60, 0.4), (576, 0.3), (1460, 0.3)]),
            ms_per_packet: 20.0,
            tuple_repeat_p: 0.3,
            icmp_p: 0.02,
        }
    }

    #[test]
    fn long_sessions_split_into_multiple_records() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = SessionSpec {
            tuple: FiveTuple::new(1, 2, 3, 80, Protocol::Tcp),
            start_ms: 100.0,
            duration_ms: 10_000.0,
            packets: 100,
            bytes: 50_000,
        };
        let recs = render_flow_records(&spec, 1_000.0, &mut rng);
        assert!(recs.len() >= 5, "10 s session at 1 s export splits many times");
        assert_eq!(recs.iter().map(|r| r.packets).sum::<u64>(), 100, "packets conserved");
        assert_eq!(recs.iter().map(|r| r.bytes).sum::<u64>(), 50_000, "bytes conserved");
        assert!(recs.iter().all(|r| r.packets >= 1));
        assert!(recs.windows(2).all(|w| w[0].start_ms <= w[1].start_ms));
    }

    #[test]
    fn short_sessions_stay_single_record() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = SessionSpec {
            tuple: FiveTuple::new(1, 2, 3, 80, Protocol::Tcp),
            start_ms: 0.0,
            duration_ms: 100.0,
            packets: 3,
            bytes: 300,
        };
        assert_eq!(render_flow_records(&spec, 1_000.0, &mut rng).len(), 1);
    }

    #[test]
    fn rendered_packets_match_session_envelope() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = SessionSpec {
            tuple: FiveTuple::new(1, 2, 3, 80, Protocol::Tcp),
            start_ms: 50.0,
            duration_ms: 500.0,
            packets: 20,
            bytes: 20 * 500,
        };
        let pkts = render_packets(&spec, &mut rng);
        assert_eq!(pkts.len(), 20);
        assert!(pkts.iter().all(|p| p.packet_len >= 40), "TCP min size respected");
        let t_first = pkts.iter().map(|p| p.ts_micros).min().unwrap();
        assert!((49_000..=51_000).contains(&t_first));
    }

    #[test]
    fn flow_trace_reaches_target_and_is_sorted() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = generate_flow_trace(&profile(), 2_000.0, 500, &mut rng, |_, _| {});
        assert_eq!(t.len(), 500);
        assert!(t.flows.windows(2).all(|w| w[0].start_ms <= w[1].start_ms));
    }

    #[test]
    fn packet_trace_reaches_target() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = generate_packet_trace(&profile(), 1_000, 5_000, &mut rng);
        assert_eq!(t.len(), 1_000);
        // The session process must produce multi-packet flows (Fig. 1b).
        let groups = t.group_by_five_tuple();
        assert!(groups.values().any(|v| v.len() > 1), "need multi-packet flows");
    }

    #[test]
    fn repeated_tuples_appear() {
        let mut rng = StdRng::seed_from_u64(6);
        let t = generate_flow_trace(&profile(), 2_000.0, 800, &mut rng, |_, _| {});
        let groups = t.group_by_five_tuple();
        let max_records = groups.values().map(|v| v.len()).max().unwrap();
        assert!(max_records > 1, "tuple reuse must create multi-record tuples");
    }
}
