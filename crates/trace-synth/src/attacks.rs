//! Attack-traffic generators for the labeled flow datasets.
//!
//! Each generator produces flow records whose header statistics carry the
//! attack's signature (the features the paper's downstream traffic-type
//! predictors use: ports, protocol, bytes/flow, packets/flow, duration).
//! Signatures follow the qualitative descriptions in the dataset papers:
//! e.g. port scans are bursts of 1–2-packet flows to many ports, DoS is a
//! flood of small flows at one victim, brute force hammers one service
//! port with short repeated connections.

use nettrace::{AttackType, FiveTuple, FlowRecord, Protocol, TrafficLabel};
use rand::prelude::*;

use crate::samplers::exp_gap;

/// Emits a burst of attack flow records of the given type.
///
/// * `attacker`/`victim` — endpoint addresses for the burst.
/// * `start_ms` — burst start; records get small offsets after it.
/// * `burst` — approximate number of records to emit.
///
/// Record start times wrap modulo `span_ms` so long bursts stay inside
/// the benign trace's time window instead of forming an attack-only tail
/// (which would break the paper's time-ordered train/test split).
pub fn generate_attack_burst<R: Rng + ?Sized>(
    rng: &mut R,
    attack: AttackType,
    attacker: u32,
    victim: u32,
    start_ms: f64,
    span_ms: f64,
    burst: usize,
) -> Vec<FlowRecord> {
    let span_ms = span_ms.max(1.0);
    let mut out = Vec::with_capacity(burst);
    let mut t = start_ms;
    for _ in 0..burst {
        t = (t + exp_gap(rng, attack_gap_ms(attack))) % span_ms;
        let rec = match attack {
            AttackType::Dos | AttackType::Ddos => {
                // SYN-flood-like: many tiny TCP flows at the victim's web port.
                let src = if attack == AttackType::Ddos {
                    // DDoS: spoofed/distributed sources.
                    rng.gen::<u32>() | 0x0100_0000 // keep out of 0.x.x.x
                } else {
                    attacker
                };
                let tuple = FiveTuple::new(src, victim, rng.gen_range(1024..=65535), 80, Protocol::Tcp);
                let pkts = rng.gen_range(1..=3);
                FlowRecord::new(tuple, t, rng.gen_range(0.0..2.0), pkts, pkts * 40)
            }
            AttackType::PortScan | AttackType::Scanning => {
                // Sweep of low ports, 1–2 packets each, minimal bytes.
                let port = if attack == AttackType::PortScan {
                    rng.gen_range(1..=1024)
                } else {
                    rng.gen_range(1..=65535)
                };
                let tuple =
                    FiveTuple::new(attacker, victim, rng.gen_range(40000..=65535), port, Protocol::Tcp);
                let pkts = rng.gen_range(1..=2);
                FlowRecord::new(tuple, t, 0.0, pkts, pkts * 40)
            }
            AttackType::BruteForce => {
                // Repeated short SSH sessions: handful of packets, small bytes.
                let tuple =
                    FiveTuple::new(attacker, victim, rng.gen_range(1024..=65535), 22, Protocol::Tcp);
                let pkts = rng.gen_range(8..=25);
                FlowRecord::new(tuple, t, rng.gen_range(100.0..2_000.0), pkts, pkts * rng.gen_range(60..140))
            }
            AttackType::Backdoor => {
                // Long-lived low-rate C2 channel on a high port.
                let tuple =
                    FiveTuple::new(victim, attacker, rng.gen_range(1024..=65535), 4444, Protocol::Tcp);
                let pkts = rng.gen_range(20..=200);
                FlowRecord::new(tuple, t, rng.gen_range(10_000.0..120_000.0), pkts, pkts * rng.gen_range(80..300))
            }
            AttackType::Injection | AttackType::Xss => {
                // Web requests with bloated request sizes.
                let port = if rng.gen::<f64>() < 0.5 { 80 } else { 443 };
                let tuple =
                    FiveTuple::new(attacker, victim, rng.gen_range(1024..=65535), port, Protocol::Tcp);
                let pkts = rng.gen_range(6..=30);
                let per = if attack == AttackType::Injection {
                    rng.gen_range(700..1400)
                } else {
                    rng.gen_range(400..900)
                };
                FlowRecord::new(tuple, t, rng.gen_range(50.0..800.0), pkts, pkts * per)
            }
            AttackType::Mitm => {
                // Relay-shaped traffic: symmetric mid-size flows, odd ports.
                let tuple = FiveTuple::new(
                    attacker,
                    victim,
                    rng.gen_range(1024..=65535),
                    rng.gen_range(1024..=65535),
                    Protocol::Tcp,
                );
                let pkts = rng.gen_range(30..=300);
                FlowRecord::new(tuple, t, rng.gen_range(1_000.0..30_000.0), pkts, pkts * rng.gen_range(200..600))
            }
            AttackType::Ransomware => {
                // SMB sweeps with heavy byte volume (encryption traffic).
                let tuple =
                    FiveTuple::new(attacker, victim, rng.gen_range(1024..=65535), 445, Protocol::Tcp);
                let pkts = rng.gen_range(200..=5_000);
                FlowRecord::new(tuple, t, rng.gen_range(2_000.0..60_000.0), pkts, pkts * rng.gen_range(800..1460))
            }
        };
        out.push(rec.with_label(TrafficLabel::Attack(attack)));
    }
    out
}

/// Mean gap between records within a burst, per attack type (ms).
fn attack_gap_ms(attack: AttackType) -> f64 {
    match attack {
        AttackType::Dos | AttackType::Ddos => 0.5,
        AttackType::PortScan | AttackType::Scanning => 2.0,
        AttackType::BruteForce => 150.0,
        AttackType::Backdoor => 5_000.0,
        AttackType::Injection | AttackType::Xss => 400.0,
        AttackType::Mitm => 2_000.0,
        AttackType::Ransomware => 1_000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn every_attack_type_generates_labeled_records() {
        let mut rng = StdRng::seed_from_u64(1);
        for attack in AttackType::ALL {
            let recs = generate_attack_burst(&mut rng, attack, 0x0a000001, 0xc0a80001, 100.0, 1e9, 20);
            assert_eq!(recs.len(), 20);
            assert!(recs
                .iter()
                .all(|r| r.label == Some(TrafficLabel::Attack(attack))));
            assert!(recs.iter().all(|r| r.packets >= 1));
            assert!(recs.iter().all(|r| r.start_ms >= 100.0));
        }
    }

    #[test]
    fn port_scans_touch_many_ports() {
        let mut rng = StdRng::seed_from_u64(2);
        let recs =
            generate_attack_burst(&mut rng, AttackType::PortScan, 0x0a000001, 0xc0a80001, 0.0, 1e9, 200);
        let ports: std::collections::HashSet<u16> =
            recs.iter().map(|r| r.five_tuple.dst_port).collect();
        assert!(ports.len() > 50, "scan must sweep ports, saw {}", ports.len());
        assert!(ports.iter().all(|&p| p <= 1024));
    }

    #[test]
    fn dos_concentrates_on_one_victim_port() {
        let mut rng = StdRng::seed_from_u64(3);
        let recs = generate_attack_burst(&mut rng, AttackType::Dos, 0x0a000001, 0xc0a80001, 0.0, 1e9, 100);
        assert!(recs.iter().all(|r| r.five_tuple.dst_port == 80));
        assert!(recs.iter().all(|r| r.five_tuple.dst_ip == 0xc0a80001));
        assert!(recs.iter().all(|r| r.bytes <= 3 * 40));
    }

    #[test]
    fn ransomware_is_heavy_volume() {
        let mut rng = StdRng::seed_from_u64(4);
        let recs =
            generate_attack_burst(&mut rng, AttackType::Ransomware, 1, 2, 0.0, 1e9, 30);
        assert!(recs.iter().all(|r| r.bytes >= 200 * 800));
        assert!(recs.iter().all(|r| r.five_tuple.dst_port == 445));
    }

    #[test]
    fn ddos_uses_distributed_sources() {
        let mut rng = StdRng::seed_from_u64(5);
        let recs = generate_attack_burst(&mut rng, AttackType::Ddos, 1, 2, 0.0, 1e9, 100);
        let srcs: std::collections::HashSet<u32> =
            recs.iter().map(|r| r.five_tuple.src_ip).collect();
        assert!(srcs.len() > 50, "DDoS sources must be distributed");
    }
}
