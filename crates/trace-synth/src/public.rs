//! "Public" datasets used for pre-training.
//!
//! NetShare uses public data in two places (paper Insights 2 and 4):
//!
//! 1. the IP2Vec port/protocol embedding is trained on a *public* trace
//!    (a CAIDA backbone trace from the Chicago collector, 2015) that
//!    "naturally contains almost every possible port number and protocol",
//!    so the embedding dictionary is not private-data-dependent;
//! 2. DP training pre-trains the GAN on a public dataset and fine-tunes
//!    with DP-SGD on the private one — same-domain public data
//!    (`caida_chicago_2015`) helps far more than different-domain data
//!    (Fig. 5's "DP Pretrained-SAME" vs "DP Pretrained-DIFF").

use nettrace::{PacketTrace, Protocol};
use rand::prelude::*;

use crate::samplers::{CategoricalSampler, HeavyTailSampler, ZipfPool};
use crate::session::{generate_packet_trace, TrafficProfile};

/// A CAIDA-Chicago-2015-like public backbone trace: same *domain* as the
/// private CAIDA (New York, 2018) dataset but a different collector, year,
/// address population and service mix — the "SAME-domain" public dataset
/// of Fig. 5.
pub fn caida_chicago_2015(n: usize, seed: u64) -> PacketTrace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6368_6963_6167_6f00); // "chicago"
    let random_addr = |rng: &mut dyn RngCore| -> u32 {
        let net = rng.gen_range(2u32..223) << 24;
        net | rng.gen_range(0..0x0100_0000u32) & 0x00ff_ffff
    };
    let clients: Vec<u32> = (0..15_000).map(|_| random_addr(&mut rng)).collect();
    let servers: Vec<u32> = (0..3_000).map(|_| random_addr(&mut rng)).collect();
    // 2015 mix: more plain HTTP, less QUIC than the 2018 private trace.
    let prof = TrafficProfile {
        clients: ZipfPool::new(clients, 1.0),
        servers: ZipfPool::new(servers, 1.15),
        services: CategoricalSampler::new(vec![
            ((80, Protocol::Tcp), 0.36),
            ((443, Protocol::Tcp), 0.24),
            ((53, Protocol::Udp), 0.14),
            ((25, Protocol::Tcp), 0.04),
            ((22, Protocol::Tcp), 0.03),
            ((123, Protocol::Udp), 0.03),
            ((110, Protocol::Tcp), 0.02),
            ((21, Protocol::Tcp), 0.02),
            ((445, Protocol::Tcp), 0.02),
            ((8080, Protocol::Tcp), 0.02),
            ((1935, Protocol::Tcp), 0.02),
            ((6881, Protocol::Tcp), 0.02),
            ((3478, Protocol::Udp), 0.02),
            ((5060, Protocol::Udp), 0.02),
        ]),
        session_gap_ms: 1.0,
        packets_per_session: HeavyTailSampler::new(1.0, 1.35, 100.0, 1.1, 0.04, 1e4),
        mean_pkt_size: CategoricalSampler::new(vec![(60, 0.45), (576, 0.15), (1460, 0.40)]),
        ms_per_packet: 10.0,
        tuple_repeat_p: 0.10,
        icmp_p: 0.01,
    };
    generate_packet_trace(&prof, n, 10_000, &mut rng)
}

/// Common service ports a real backbone trace exposes with meaningful
/// volume — web, mail, file, database, IoT/IIoT, VPN, VoIP, streaming.
/// The paper's premise is exactly that the public trace "naturally
/// contains almost every possible port number and protocol"; giving these
/// ports real training volume is what makes their IP2Vec embeddings
/// well-separated and decodable.
pub const SERVICE_CATALOGUE: &[(u16, Protocol)] = &[
    (80, Protocol::Tcp), (443, Protocol::Tcp), (8080, Protocol::Tcp),
    (8443, Protocol::Tcp), (53, Protocol::Udp), (123, Protocol::Udp),
    (22, Protocol::Tcp), (21, Protocol::Tcp), (23, Protocol::Tcp),
    (25, Protocol::Tcp), (110, Protocol::Tcp), (143, Protocol::Tcp),
    (587, Protocol::Tcp), (465, Protocol::Tcp), (993, Protocol::Tcp),
    (995, Protocol::Tcp), (445, Protocol::Tcp), (139, Protocol::Tcp),
    (137, Protocol::Udp), (389, Protocol::Tcp), (636, Protocol::Tcp),
    (3389, Protocol::Tcp), (5900, Protocol::Tcp), (3306, Protocol::Tcp),
    (5432, Protocol::Tcp), (6379, Protocol::Tcp), (27017, Protocol::Tcp),
    (11211, Protocol::Tcp), (9092, Protocol::Tcp), (2049, Protocol::Tcp),
    (1883, Protocol::Tcp), (8883, Protocol::Tcp), (502, Protocol::Tcp),
    (5683, Protocol::Udp), (161, Protocol::Udp), (162, Protocol::Udp),
    (514, Protocol::Udp), (1194, Protocol::Udp), (500, Protocol::Udp),
    (4500, Protocol::Udp), (5060, Protocol::Udp), (554, Protocol::Tcp),
    (1935, Protocol::Tcp), (6881, Protocol::Tcp), (3478, Protocol::Udp),
    (67, Protocol::Udp), (69, Protocol::Udp), (179, Protocol::Tcp),
    (4444, Protocol::Tcp), (9200, Protocol::Tcp),
];

/// A port/protocol-rich public corpus for training the IP2Vec embedding:
/// the Chicago backbone trace, a service-catalogue section giving every
/// common service port real training volume, and a uniform sprinkle for
/// long-tail coverage — so "the IP2Vec mapping is expressive enough to
/// capture the words seen in our private data" (paper Insight 2).
pub fn ip2vec_public_corpus(n: usize, seed: u64) -> PacketTrace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6970_3276_6563_0000); // "ip2vec"
    let mut trace = caida_chicago_2015(n / 2, seed);
    // Service-catalogue section: every catalogued service gets enough
    // sentences for a stable, distinctive embedding.
    let span = trace.span_micros().max(1);
    let catalogue_total = n / 4;
    let per_service = (catalogue_total / SERVICE_CATALOGUE.len()).max(8);
    for &(port, proto) in SERVICE_CATALOGUE {
        for _ in 0..per_service {
            let tuple = nettrace::FiveTuple::new(
                rng.gen::<u32>() | 0x0200_0000,
                rng.gen::<u32>() | 0x0200_0000,
                rng.gen_range(1024..=65535),
                port,
                proto,
            );
            let size = proto.min_packet_size() + rng.gen_range(0..1000);
            trace.packets.push(nettrace::PacketRecord::new(
                rng.gen_range(0..span),
                tuple,
                size,
            ));
        }
    }
    // Sprinkle flows over the whole low-port range and both protocols so
    // every (port, protocol) word has support in the dictionary.
    let span = trace.span_micros().max(1);
    let extra = n - trace.len().min(n);
    for i in 0..extra {
        // Every 50th sprinkle is ICMP so the protocol vocabulary is always
        // complete — the paper's premise is that the public corpus covers
        // "almost every possible port number and protocol".
        if i % 50 == 0 {
            let tuple = nettrace::FiveTuple::new(
                rng.gen::<u32>() | 0x0200_0000,
                rng.gen::<u32>() | 0x0200_0000,
                0,
                0,
                Protocol::Icmp,
            );
            trace.packets.push(nettrace::PacketRecord::new(
                rng.gen_range(0..span),
                tuple,
                28 + rng.gen_range(0..100),
            ));
            continue;
        }
        let port = rng.gen_range(1..=49151u16); // registered range
        // Well-known service ports keep their real transport protocol so
        // the corpus never teaches invalid (port, protocol) pairs
        // (Appendix-B Test 3 compatibility).
        let proto = nettrace::validity::SERVICE_PORT_PROTOCOLS
            .iter()
            .find(|(p, _)| *p == port)
            .map(|&(_, pr)| pr)
            .unwrap_or(if rng.gen::<f64>() < 0.5 { Protocol::Tcp } else { Protocol::Udp });
        let tuple = nettrace::FiveTuple::new(
            rng.gen::<u32>() | 0x0200_0000,
            rng.gen::<u32>() | 0x0200_0000,
            rng.gen_range(1024..=65535),
            port,
            proto,
        );
        let size = if proto == Protocol::Tcp { 40 } else { 28 };
        trace.packets.push(nettrace::PacketRecord::new(
            rng.gen_range(0..span),
            tuple,
            size + rng.gen_range(0..1000),
        ));
    }
    trace.sort_by_time();
    trace.truncate(n);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chicago_differs_from_private_caida() {
        let public = caida_chicago_2015(5_000, 1);
        let private = crate::caida::generate(5_000, 1);
        // Different address populations: overlap should be negligible.
        let pub_ips: std::collections::HashSet<u32> =
            public.packets.iter().map(|p| p.five_tuple.src_ip).collect();
        let priv_ips: std::collections::HashSet<u32> =
            private.packets.iter().map(|p| p.five_tuple.src_ip).collect();
        let overlap = pub_ips.intersection(&priv_ips).count();
        assert!(overlap < pub_ips.len() / 50, "address overlap {overlap}");
    }

    #[test]
    fn ip2vec_corpus_covers_many_port_protocol_pairs() {
        let t = ip2vec_public_corpus(20_000, 2);
        let pairs: std::collections::HashSet<(u16, u8)> = t
            .packets
            .iter()
            .map(|p| (p.five_tuple.dst_port, p.five_tuple.proto.number()))
            .collect();
        assert!(pairs.len() > 2_000, "need wide port coverage, got {}", pairs.len());
    }

    #[test]
    fn corpus_length_is_exact() {
        assert_eq!(ip2vec_public_corpus(7_000, 3).len(), 7_000);
    }
}
