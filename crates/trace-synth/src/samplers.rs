//! Statistical sampling primitives shared by the dataset simulators.

use rand::prelude::*;
use rand_distr::{Distribution, LogNormal, Pareto, Zipf};

/// A pool of values drawn with Zipfian (rank-frequency) popularity.
///
/// Network endpoint popularity is famously Zipf-like; this drives the SA/DA
/// rank-frequency distributions the paper measures, and the heavy hitters
/// the sketch experiments (Fig. 13) estimate.
#[derive(Debug, Clone)]
pub struct ZipfPool<T> {
    items: Vec<T>,
    zipf: Zipf<f64>,
}

impl<T: Clone> ZipfPool<T> {
    /// Builds a pool over `items` (rank order = popularity order) with Zipf
    /// exponent `s` (> 0; larger = more skewed).
    ///
    /// # Panics
    /// Panics if `items` is empty or `s` is not positive and finite.
    pub fn new(items: Vec<T>, s: f64) -> Self {
        assert!(!items.is_empty(), "ZipfPool needs at least one item");
        let zipf = Zipf::new(items.len() as u64, s).expect("valid Zipf parameters"); // lint: allow(panic-in-lib) items non-empty asserted on the previous line
        ZipfPool { items, zipf }
    }

    /// Samples an item with rank-frequency popularity.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        let rank = self.zipf.sample(rng) as usize; // 1-based rank
        self.items[rank - 1].clone()
    }

    /// Number of items in the pool.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the pool is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The item at a given 0-based popularity rank.
    pub fn item(&self, rank: usize) -> &T {
        &self.items[rank]
    }
}

/// Heavy-tailed positive sampler: a log-normal body with a Pareto tail.
///
/// Flow sizes/volumes span "tens for mice flows to hundreds of millions for
/// elephant flows" (paper C2). A pure log-normal underweights elephants; a
/// pure Pareto overweights them. Mixing with tail probability `tail_p`
/// reproduces the mice-dominated body plus the elephants that make PKT/BYT
/// "large-support" fields.
#[derive(Debug, Clone, Copy)]
pub struct HeavyTailSampler {
    body: LogNormal<f64>,
    tail: Pareto<f64>,
    tail_p: f64,
    max: f64,
}

impl HeavyTailSampler {
    /// Builds a sampler.
    ///
    /// * `mu`, `sigma` — parameters of the log-normal body (of ln x).
    /// * `tail_scale`, `tail_alpha` — Pareto tail minimum and shape.
    /// * `tail_p` — probability of drawing from the tail.
    /// * `max` — hard cap applied to all draws (keeps fields in-domain).
    pub fn new(mu: f64, sigma: f64, tail_scale: f64, tail_alpha: f64, tail_p: f64, max: f64) -> Self {
        HeavyTailSampler {
            body: LogNormal::new(mu, sigma).expect("valid log-normal parameters"), // lint: allow(panic-in-lib) parameters validated by the callers' asserts
            tail: Pareto::new(tail_scale, tail_alpha).expect("valid Pareto parameters"), // lint: allow(panic-in-lib) parameters validated by the callers' asserts
            tail_p,
            max,
        }
    }

    /// Samples a positive value (≥ 1, ≤ max).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = if rng.gen::<f64>() < self.tail_p {
            self.tail.sample(rng)
        } else {
            self.body.sample(rng)
        };
        x.clamp(1.0, self.max)
    }

    /// Samples and rounds to an integer count.
    pub fn sample_count<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.sample(rng).round() as u64
    }
}

/// Weighted categorical sampler over arbitrary items.
#[derive(Debug, Clone)]
pub struct CategoricalSampler<T> {
    items: Vec<T>,
    cumulative: Vec<f64>,
}

impl<T: Clone> CategoricalSampler<T> {
    /// Builds a sampler from `(item, weight)` pairs. Weights need not sum
    /// to 1; they are normalized.
    ///
    /// # Panics
    /// Panics if `pairs` is empty or the total weight is not positive.
    pub fn new(pairs: Vec<(T, f64)>) -> Self {
        assert!(!pairs.is_empty(), "CategoricalSampler needs at least one item");
        let total: f64 = pairs.iter().map(|(_, w)| *w).sum();
        assert!(total > 0.0, "total weight must be positive");
        let mut items = Vec::with_capacity(pairs.len());
        let mut cumulative = Vec::with_capacity(pairs.len());
        let mut acc = 0.0;
        for (item, w) in pairs {
            assert!(w >= 0.0, "weights must be non-negative");
            acc += w / total;
            items.push(item);
            cumulative.push(acc);
        }
        *cumulative.last_mut().unwrap() = 1.0; // lint: allow(panic-in-lib) loop pushed at least one element (pairs non-empty) (absorb rounding)
        CategoricalSampler { items, cumulative }
    }

    /// Samples an item with its configured probability.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        let u = rng.gen::<f64>();
        let idx = self
            .cumulative
            .partition_point(|&c| c < u)
            .min(self.items.len() - 1);
        self.items[idx].clone()
    }
}

/// Samples an exponential inter-arrival gap with the given mean (a Poisson
/// arrival process when summed).
pub fn exp_gap<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn zipf_pool_is_rank_skewed() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = ZipfPool::new((0..100u32).collect(), 1.2);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[pool.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50],
            "popularity must decay with rank: {} {} {}", counts[0], counts[10], counts[50]);
        // The head must dominate: rank 0 alone should exceed 10% of draws.
        assert!(counts[0] > 2_000);
    }

    #[test]
    fn heavy_tail_spans_orders_of_magnitude() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = HeavyTailSampler::new(1.0, 1.0, 100.0, 0.9, 0.05, 1e8);
        let draws: Vec<f64> = (0..50_000).map(|_| s.sample(&mut rng)).collect();
        let max = draws.iter().cloned().fold(0.0, f64::max);
        let min = draws.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min >= 1.0);
        assert!(max > 1e4, "tail must produce elephants, got max {max}");
        assert!(max <= 1e8, "cap must hold");
        let small = draws.iter().filter(|&&x| x < 50.0).count();
        assert!(small > draws.len() / 2, "mice must dominate");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = CategoricalSampler::new(vec![("a", 0.7), ("b", 0.2), ("c", 0.1)]);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts.entry(s.sample(&mut rng)).or_insert(0usize) += 1;
        }
        assert!((counts["a"] as f64 / 10_000.0 - 0.7).abs() < 0.03);
        assert!((counts["b"] as f64 / 10_000.0 - 0.2).abs() < 0.03);
        assert!((counts["c"] as f64 / 10_000.0 - 0.1).abs() < 0.03);
    }

    #[test]
    fn categorical_zero_weight_item_never_sampled() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = CategoricalSampler::new(vec![("a", 1.0), ("never", 0.0), ("b", 1.0)]);
        for _ in 0..5_000 {
            assert_ne!(s.sample(&mut rng), "never");
        }
    }

    #[test]
    fn exp_gap_has_requested_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let mean: f64 = (0..50_000).map(|_| exp_gap(&mut rng, 10.0)).sum::<f64>() / 50_000.0;
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_zipf_pool_panics() {
        let _ = ZipfPool::<u32>::new(vec![], 1.0);
    }
}
