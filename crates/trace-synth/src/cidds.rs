//! CIDDS-like flow dataset: an emulated small-business network (clients,
//! email/web servers) with injected, labeled malicious traffic (DoS, brute
//! force, port scans) — Ring et al., 2017.
//!
//! Structure reproduced: small internal /24 address plan plus a few
//! external addresses; office-hours service mix (web, mail, file shares);
//! ~20 % labeled attack records, matching the dataset's documented mix of
//! normal operation and attack executions.

use nettrace::{AttackType, FlowTrace, Protocol, TrafficLabel};
use rand::prelude::*;
use std::net::Ipv4Addr;

use crate::attacks::generate_attack_burst;
use crate::samplers::{CategoricalSampler, HeavyTailSampler, ZipfPool};
use crate::session::{generate_flow_trace, TrafficProfile};

/// NetFlow active timeout used by the simulated collector (ms).
pub const EXPORT_INTERVAL_MS: f64 = 120_000.0;

fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
    u32::from(Ipv4Addr::new(a, b, c, d))
}

fn profile(rng: &mut impl Rng) -> TrafficProfile {
    // Internal clients: 192.168.{100,200}.x (office + developer subnets).
    let mut clients: Vec<u32> = (2..120u8).map(|h| ip(192, 168, 100, h)).collect();
    clients.extend((2..60u8).map(|h| ip(192, 168, 200, h)));
    // A few external hosts reach in.
    clients.extend((0..24).map(|_| {
        let net = rng.gen_range(2u32..223) << 24;
        net | rng.gen_range(0..0x0100_0000u32) & 0x00ff_ffff
    }));
    // Servers: handful of internal services plus external web.
    let mut servers: Vec<u32> = vec![
        ip(192, 168, 100, 3), // file server
        ip(192, 168, 100, 4), // mail
        ip(192, 168, 100, 5), // web
        ip(192, 168, 100, 6), // printer/backup
    ];
    servers.extend((0..60).map(|_| {
        let net = rng.gen_range(2u32..223) << 24;
        net | rng.gen_range(0..0x0100_0000u32) & 0x00ff_ffff
    }));
    TrafficProfile {
        clients: ZipfPool::new(clients, 0.9),
        servers: ZipfPool::new(servers, 1.4),
        services: CategoricalSampler::new(vec![
            ((80, Protocol::Tcp), 0.28),
            ((443, Protocol::Tcp), 0.25),
            ((445, Protocol::Tcp), 0.14),
            ((25, Protocol::Tcp), 0.10),
            ((53, Protocol::Udp), 0.12),
            ((993, Protocol::Tcp), 0.05),
            ((22, Protocol::Tcp), 0.03),
            ((137, Protocol::Udp), 0.03),
        ]),
        session_gap_ms: 25.0,
        packets_per_session: HeavyTailSampler::new(1.1, 1.1, 100.0, 1.0, 0.02, 2e5),
        mean_pkt_size: CategoricalSampler::new(vec![(60, 0.35), (300, 0.20), (576, 0.15), (1460, 0.30)]),
        ms_per_packet: 60.0,
        tuple_repeat_p: 0.35,
        icmp_p: 0.02,
    }
}

/// Generates approximately `n` CIDDS-like labeled flow records.
pub fn generate(n: usize, seed: u64) -> FlowTrace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6369_6464_7300_0000); // "cidds"
    let prof = profile(&mut rng);
    let attack_fraction = 0.20;
    let benign_n = ((n as f64) * (1.0 - attack_fraction)) as usize;

    let mut trace = generate_flow_trace(&prof, EXPORT_INTERVAL_MS, benign_n, &mut rng, |_, rec| {
        rec.label = Some(TrafficLabel::Benign);
    });

    let span = trace.span_ms().max(1.0);
    // Attack bursts start where benign activity actually is: drawing from
    // the empirical benign start-time distribution keeps the label mix
    // stationary over time even when a few elephant sessions stretch the
    // nominal span (the paper's time-sorted train/test split needs this).
    let benign_starts: Vec<f64> = trace.flows.iter().map(|f| f.start_ms).collect();
    let attacks = [AttackType::Dos, AttackType::BruteForce, AttackType::PortScan];
    let internal_victims = [ip(192, 168, 100, 3), ip(192, 168, 100, 4), ip(192, 168, 100, 5)];
    let mut injected = Vec::new();
    while injected.len() < n - benign_n {
        let attack = attacks[rng.gen_range(0..attacks.len())];
        let attacker = prof.clients.sample(&mut rng);
        let victim = internal_victims[rng.gen_range(0..internal_victims.len())];
        let start = benign_starts[rng.gen_range(0..benign_starts.len())];
        let burst = rng.gen_range(30..150).min(n - benign_n - injected.len());
        injected.extend(generate_attack_burst(&mut rng, attack, attacker, victim, start, span, burst));
    }
    trace.flows.extend(injected);
    trace.sort_by_time();
    trace.truncate(n);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_mix_near_twenty_percent() {
        let t = generate(5_000, 1);
        let attacks = t
            .flows
            .iter()
            .filter(|f| f.label.map(|l| l.is_attack()).unwrap_or(false))
            .count();
        let frac = attacks as f64 / t.len() as f64;
        assert!(frac > 0.12 && frac < 0.28, "attack fraction {frac}");
    }

    #[test]
    fn all_three_cidds_attack_types_present() {
        let t = generate(5_000, 2);
        let mut seen = std::collections::HashSet::new();
        for f in &t.flows {
            if let Some(TrafficLabel::Attack(a)) = f.label {
                seen.insert(a);
            }
        }
        assert!(seen.contains(&AttackType::Dos));
        assert!(seen.contains(&AttackType::BruteForce));
        assert!(seen.contains(&AttackType::PortScan));
    }

    #[test]
    fn internal_addresses_dominate() {
        let t = generate(3_000, 3);
        let internal = t
            .flows
            .iter()
            .filter(|f| (f.five_tuple.src_ip >> 16) == ((192 << 8) | 168))
            .count();
        assert!(internal > t.len() / 2);
    }

    #[test]
    fn every_record_is_labeled() {
        let t = generate(2_000, 4);
        assert!(t.flows.iter().all(|f| f.label.is_some()));
    }
}
