//! CA-like packet dataset: the U.S. National CyberWatch Mid-Atlantic
//! Collegiate Cyber Defense Competition captures (MACCDC, March 2012).
//!
//! Structure reproduced: a defended enterprise network under sustained
//! offensive activity — a baseline of ordinary enterprise traffic overlaid
//! with dense port-scan sweeps (sequential destination ports, minimum-size
//! TCP probes from a few red-team hosts) and brute-force hammering. This
//! is the dataset where five-tuple heavy hitters matter (Fig. 13 CA uses
//! five-tuple aggregation).

use nettrace::{FiveTuple, PacketRecord, PacketTrace, Protocol};
use rand::prelude::*;
use std::net::Ipv4Addr;

use crate::samplers::{exp_gap, CategoricalSampler, HeavyTailSampler, ZipfPool};
use crate::session::{generate_packet_trace, TrafficProfile};

fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
    u32::from(Ipv4Addr::new(a, b, c, d))
}

fn profile(rng: &mut impl Rng) -> TrafficProfile {
    // Blue-team enterprise: 172.16.x.x hosts.
    let mut clients: Vec<u32> = (0..6u8)
        .flat_map(|s| (2..80u8).map(move |h| ip(172, 16, s, h)))
        .collect();
    clients.extend((0..40).map(|_| {
        let net = rng.gen_range(2u32..223) << 24;
        net | rng.gen_range(0..0x0100_0000u32) & 0x00ff_ffff
    }));
    let servers: Vec<u32> = vec![
        ip(172, 16, 0, 10), // web
        ip(172, 16, 0, 11), // mail
        ip(172, 16, 0, 12), // dns
        ip(172, 16, 1, 10), // db
        ip(172, 16, 1, 11), // file
    ];
    TrafficProfile {
        clients: ZipfPool::new(clients, 0.9),
        servers: ZipfPool::new(servers, 1.1),
        services: CategoricalSampler::new(vec![
            ((80, Protocol::Tcp), 0.30),
            ((443, Protocol::Tcp), 0.18),
            ((53, Protocol::Udp), 0.14),
            ((25, Protocol::Tcp), 0.08),
            ((445, Protocol::Tcp), 0.10),
            ((22, Protocol::Tcp), 0.08),
            ((3389, Protocol::Tcp), 0.06),
            ((21, Protocol::Tcp), 0.06),
        ]),
        session_gap_ms: 4.0,
        packets_per_session: HeavyTailSampler::new(1.0, 1.1, 80.0, 1.1, 0.03, 5e3),
        mean_pkt_size: CategoricalSampler::new(vec![(60, 0.45), (300, 0.15), (576, 0.15), (1460, 0.25)]),
        ms_per_packet: 15.0,
        tuple_repeat_p: 0.25,
        icmp_p: 0.04, // ping sweeps
    }
}

/// Fraction of packets contributed by scan/attack overlays.
const SCAN_FRACTION: f64 = 0.25;

/// Generates approximately `n` CA-like packets.
pub fn generate(n: usize, seed: u64) -> PacketTrace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6d61_6363_6463_0000); // "maccdc"
    let prof = profile(&mut rng);
    let base_n = ((n as f64) * (1.0 - SCAN_FRACTION)) as usize;
    let mut trace = generate_packet_trace(&prof, base_n, 5_000, &mut rng);
    let span_ms = (trace.span_micros() as f64 / 1000.0).max(1.0);

    // Red-team overlays: SYN scans sweeping sequential ports and repeated
    // brute-force bursts against SSH/RDP.
    let red_team: Vec<u32> = (2..8u8).map(|h| ip(10, 99, 99, h)).collect();
    let victims: Vec<u32> = (2..80u8).map(|h| ip(172, 16, 0, h)).collect();
    let mut overlay = Vec::with_capacity(n - base_n);
    while overlay.len() < n - base_n {
        let attacker = red_team[rng.gen_range(0..red_team.len())];
        let victim = victims[rng.gen_range(0..victims.len())];
        let start_ms = rng.gen_range(0.0..span_ms);
        if rng.gen::<f64>() < 0.7 {
            // Sequential port scan: one 40-byte SYN per port.
            let first_port = rng.gen_range(1..1000u16);
            let count = rng.gen_range(50..400).min(n - base_n - overlay.len());
            let mut t = start_ms;
            for i in 0..count {
                t += exp_gap(&mut rng, 1.5);
                let tuple = FiveTuple::new(
                    attacker,
                    victim,
                    rng.gen_range(40000..=65535),
                    first_port.saturating_add(i as u16),
                    Protocol::Tcp,
                );
                overlay.push(PacketRecord::new((t * 1000.0) as u64, tuple, 40));
            }
        } else {
            // Brute force: repeated short exchanges on 22/3389.
            let port = if rng.gen::<bool>() { 22 } else { 3389 };
            let count = rng.gen_range(30..200).min(n - base_n - overlay.len());
            let sport = rng.gen_range(1024..=65535);
            let mut t = start_ms;
            for _ in 0..count {
                t += exp_gap(&mut rng, 40.0);
                let tuple = FiveTuple::new(attacker, victim, sport, port, Protocol::Tcp);
                overlay.push(PacketRecord::new(
                    (t * 1000.0) as u64,
                    tuple,
                    rng.gen_range(40..200),
                ));
            }
        }
    }
    trace.packets.extend(overlay);
    trace.sort_by_time();
    trace.truncate(n);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_overlay_present() {
        let t = generate(20_000, 1);
        let red = t
            .packets
            .iter()
            .filter(|p| (p.five_tuple.src_ip >> 8) == u32::from(Ipv4Addr::new(10, 99, 99, 0)) >> 8)
            .count();
        let frac = red as f64 / t.len() as f64;
        assert!(frac > 0.10 && frac < 0.40, "red-team fraction {frac}");
    }

    #[test]
    fn scans_sweep_sequential_ports() {
        let t = generate(20_000, 2);
        let scan_ports: std::collections::HashSet<u16> = t
            .packets
            .iter()
            .filter(|p| p.packet_len == 40 && (p.five_tuple.src_ip >> 24) == 10)
            .map(|p| p.five_tuple.dst_port)
            .collect();
        assert!(scan_ports.len() > 100, "many scanned ports, got {}", scan_ports.len());
    }

    #[test]
    fn five_tuple_heavy_hitters_exist() {
        let t = generate(20_000, 3);
        let groups = t.group_by_five_tuple();
        let max = groups.values().map(|v| v.len()).max().unwrap();
        assert!(max as f64 > 0.001 * t.len() as f64, "HH above 0.1% threshold");
    }
}
