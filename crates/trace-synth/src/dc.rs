//! DC-like packet dataset: the "UNI1" university data center studied in
//! the IMC 2010 paper (Benson et al., "Network traffic characteristics of
//! data centers in the wild").
//!
//! Structure reproduced: private 10.x rack/host address plan with strong
//! intra-cluster locality; application mix on internal service ports; many
//! tiny query flows plus a few bulk transfers; strongly bimodal packet
//! sizes; bursty ON/OFF packet arrivals (short `ms_per_packet` inside
//! sessions, longer gaps between them).

use nettrace::{PacketTrace, Protocol};
use rand::prelude::*;
use std::net::Ipv4Addr;

use crate::samplers::{CategoricalSampler, HeavyTailSampler, ZipfPool};
use crate::session::{generate_packet_trace, TrafficProfile};

fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
    u32::from(Ipv4Addr::new(a, b, c, d))
}

fn profile(_rng: &mut impl Rng) -> TrafficProfile {
    // 16 racks of 40 hosts: 10.0.rack.host.
    let mut hosts = Vec::with_capacity(16 * 40);
    for rack in 0..16u8 {
        for host in 2..42u8 {
            hosts.push(ip(10, 0, rack, host));
        }
    }
    // Service VIPs concentrate traffic (front-ends, storage heads).
    let servers: Vec<u32> = (0..48u8).map(|i| ip(10, 0, i % 16, 200 + (i / 16))).collect();
    TrafficProfile {
        clients: ZipfPool::new(hosts, 0.95),
        servers: ZipfPool::new(servers, 1.35),
        services: CategoricalSampler::new(vec![
            ((80, Protocol::Tcp), 0.22),
            ((443, Protocol::Tcp), 0.12),
            ((3306, Protocol::Tcp), 0.14),  // MySQL
            ((11211, Protocol::Tcp), 0.16), // memcached
            ((9092, Protocol::Tcp), 0.08),  // broker
            ((2049, Protocol::Tcp), 0.10),  // NFS
            ((53, Protocol::Udp), 0.10),
            ((389, Protocol::Tcp), 0.04),   // LDAP
            ((5432, Protocol::Tcp), 0.04),  // Postgres
        ]),
        session_gap_ms: 0.5,
        // Queries are a handful of packets; bulk jobs reach 1e4.
        packets_per_session: HeavyTailSampler::new(1.2, 1.0, 300.0, 1.0, 0.03, 1e4),
        mean_pkt_size: CategoricalSampler::new(vec![(60, 0.50), (256, 0.10), (1460, 0.40)]),
        ms_per_packet: 0.5, // intra-DC RTTs: packets arrive in tight bursts
        tuple_repeat_p: 0.40, // RPC clients re-query the same services
        icmp_p: 0.005,
    }
}

/// Generates approximately `n` DC-like packets.
pub fn generate(n: usize, seed: u64) -> PacketTrace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6463_0000_0000_0000); // "dc"
    let prof = profile(&mut rng);
    generate_packet_trace(&prof, n, 10_000, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_are_private_10_slash_8() {
        let t = generate(5_000, 1);
        assert!(t.packets.iter().all(|p| (p.five_tuple.src_ip >> 24) == 10));
        assert!(t.packets.iter().all(|p| (p.five_tuple.dst_ip >> 24) == 10));
    }

    #[test]
    fn sizes_are_strongly_bimodal() {
        let t = generate(10_000, 2);
        let mid = t
            .packets
            .iter()
            .filter(|p| p.packet_len > 300 && p.packet_len < 1000)
            .count();
        assert!((mid as f64) < 0.35 * t.len() as f64, "mid-size packets rare, got {mid}");
    }

    #[test]
    fn heavy_hitter_sources_exist() {
        // Fig. 13 DC estimates source-IP heavy hitters at a 0.1% threshold.
        let t = generate(20_000, 3);
        let mut counts = std::collections::HashMap::new();
        for p in &t.packets {
            *counts.entry(p.five_tuple.src_ip).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().unwrap();
        assert!(max as f64 > 0.001 * t.len() as f64, "need HH above threshold");
    }
}
