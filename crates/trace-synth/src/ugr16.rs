//! UGR16-like flow dataset: NetFlow from a Spanish ISP (third week of
//! March 2016), mostly benign wide-area traffic with a small injected
//! attack component.
//!
//! Structure reproduced: large, diverse client population; Zipf-skewed
//! server popularity; web/DNS-dominated service mix; flow sizes/volumes
//! spanning mice to elephants (the Fig. 2 large-support fields); repeated
//! NetFlow export records for long sessions (Fig. 1a); ~3 % labeled attack
//! records (DoS, port scans, network scanning).

use nettrace::{AttackType, FlowTrace, Protocol, TrafficLabel};
use rand::prelude::*;

use crate::attacks::generate_attack_burst;
use crate::samplers::{CategoricalSampler, HeavyTailSampler, ZipfPool};
use crate::session::{generate_flow_trace, TrafficProfile};

/// NetFlow active timeout used by the simulated collector (ms).
pub const EXPORT_INTERVAL_MS: f64 = 60_000.0;

fn profile(rng: &mut impl Rng) -> TrafficProfile {
    // ISP clients: 4096 addresses across many /16s.
    let clients: Vec<u32> = (0..4096)
        .map(|_| {
            let net = rng.gen_range(2u32..223) << 24;
            net | rng.gen_range(0..0x0100_0000u32) & 0x00ff_ffff
        })
        .collect();
    // Servers: 512 addresses, heavily skewed popularity.
    let servers: Vec<u32> = (0..512)
        .map(|_| {
            let net = rng.gen_range(2u32..223) << 24;
            net | rng.gen_range(0..0x0100_0000u32) & 0x00ff_ffff
        })
        .collect();
    TrafficProfile {
        clients: ZipfPool::new(clients, 1.05),
        servers: ZipfPool::new(servers, 1.25),
        services: CategoricalSampler::new(vec![
            ((443, Protocol::Tcp), 0.32),
            ((80, Protocol::Tcp), 0.24),
            ((53, Protocol::Udp), 0.22),
            ((25, Protocol::Tcp), 0.05),
            ((22, Protocol::Tcp), 0.03),
            ((445, Protocol::Tcp), 0.03),
            ((123, Protocol::Udp), 0.03),
            ((993, Protocol::Tcp), 0.02),
            ((8080, Protocol::Tcp), 0.02),
            ((3389, Protocol::Tcp), 0.02),
            ((1194, Protocol::Udp), 0.02),
        ]),
        session_gap_ms: 8.0,
        // Body: small flows of a few packets; tail: elephants up to 1e6 pkts.
        packets_per_session: HeavyTailSampler::new(0.9, 1.3, 200.0, 0.85, 0.03, 1e6),
        mean_pkt_size: CategoricalSampler::new(vec![(60, 0.30), (250, 0.20), (576, 0.18), (1000, 0.12), (1460, 0.20)]),
        ms_per_packet: 40.0,
        tuple_repeat_p: 0.25,
        icmp_p: 0.03,
    }
}

/// Generates approximately `n` UGR16-like flow records.
pub fn generate(n: usize, seed: u64) -> FlowTrace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7567_7231_3600_0000); // "ugr16"
    let prof = profile(&mut rng);
    let attack_fraction = 0.03;
    let benign_n = ((n as f64) * (1.0 - attack_fraction)) as usize;

    let mut trace = generate_flow_trace(&prof, EXPORT_INTERVAL_MS, benign_n, &mut rng, |_, rec| {
        rec.label = Some(TrafficLabel::Benign);
    });

    // Inject attack bursts spread over the trace span.
    let span = trace.span_ms().max(1.0);
    // Attack bursts start where benign activity actually is: drawing from
    // the empirical benign start-time distribution keeps the label mix
    // stationary over time even when a few elephant sessions stretch the
    // nominal span (the paper's time-sorted train/test split needs this).
    let benign_starts: Vec<f64> = trace.flows.iter().map(|f| f.start_ms).collect();
    let attacks = [AttackType::Dos, AttackType::PortScan, AttackType::Scanning];
    let mut injected = Vec::new();
    while injected.len() < n - benign_n {
        let attack = attacks[rng.gen_range(0..attacks.len())];
        let attacker = prof.clients.sample(&mut rng);
        let victim = prof.servers.sample(&mut rng);
        let start = benign_starts[rng.gen_range(0..benign_starts.len())];
        let burst = rng.gen_range(20..120).min(n - benign_n - injected.len());
        injected.extend(generate_attack_burst(&mut rng, attack, attacker, victim, start, span, burst));
    }
    trace.flows.extend(injected);
    trace.sort_by_time();
    trace.truncate(n);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::validity;

    #[test]
    fn has_heavy_tailed_flow_sizes() {
        let t = generate(4_000, 1);
        let max_pkts = t.flows.iter().map(|f| f.packets).max().unwrap();
        let small = t.flows.iter().filter(|f| f.packets <= 10).count();
        assert!(max_pkts > 1_000, "need elephants, max was {max_pkts}");
        assert!(small > t.len() / 2, "mice must dominate");
    }

    #[test]
    fn has_multi_record_tuples() {
        let t = generate(4_000, 2);
        let max_records = t.group_by_five_tuple().values().map(|v| v.len()).max().unwrap();
        assert!(max_records >= 3, "Fig. 1a needs multi-record tuples, max {max_records}");
    }

    #[test]
    fn attack_fraction_is_small_but_present() {
        let t = generate(6_000, 3);
        let attacks = t
            .flows
            .iter()
            .filter(|f| f.label.map(|l| l.is_attack()).unwrap_or(false))
            .count();
        let frac = attacks as f64 / t.len() as f64;
        assert!(frac > 0.005 && frac < 0.10, "attack fraction {frac}");
    }

    #[test]
    fn mostly_protocol_consistent() {
        let t = generate(3_000, 4);
        let r = validity::check_flow_trace(&t);
        assert!(r.test1 > 0.97, "test1 {}", r.test1);
        assert!(r.test2 > 0.90, "test2 {}", r.test2);
        assert!(r.test3 > 0.97, "test3 {}", r.test3);
    }

    #[test]
    fn service_ports_dominate() {
        let t = generate(3_000, 5);
        let service = t.flows.iter().filter(|f| f.five_tuple.dst_port <= 1024).count();
        assert!(service > t.len() / 2);
    }
}
