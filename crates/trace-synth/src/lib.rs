//! # trace-synth
//!
//! Calibrated synthetic stand-ins for the six public traces the NetShare
//! paper evaluates on (§6.1). The real datasets (CAIDA, UGR16, CIDDS,
//! TON_IoT, the IMC-2010 "UNI1" data-center capture, and the MACCDC cyber
//! attack capture) cannot ship with this repository, so each simulator
//! reproduces the *documented statistical structure* the paper's
//! experiments exercise:
//!
//! * Zipfian endpoint popularity (heavy-hitter SA/DA ranks — Fig. 13);
//! * heavy-tailed flow sizes and volumes spanning mice to elephants
//!   (large-support PKT/BYT fields — Fig. 2);
//! * service-port mixtures dominated by well-known ports (Fig. 3);
//! * multi-record five-tuples produced by collector timeouts and
//!   long-lived sessions (Fig. 1);
//! * labeled attack mixtures for the labeled datasets (Fig. 12, Table 3);
//! * protocol-consistent headers (Tables 6–7).
//!
//! Every generator is deterministic given its seed, so "real" data is
//! reproducible ground truth for every experiment.

pub mod attacks;
pub mod ca;
pub mod caida;
pub mod cidds;
pub mod dc;
pub mod public;
pub mod samplers;
pub mod session;
pub mod ton;
pub mod ugr16;

pub use samplers::{CategoricalSampler, HeavyTailSampler, ZipfPool};

use nettrace::{FlowTrace, PacketTrace};

/// The six evaluation datasets, by paper name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// (NetFlow-1) UGR16: Spanish ISP NetFlow with injected attacks.
    Ugr16,
    /// (NetFlow-2) CIDDS: emulated small-business network, labeled attacks.
    Cidds,
    /// (NetFlow-3) TON_IoT: IoT telemetry, 65% benign + 9 attack classes.
    Ton,
    /// (PCAP-1) CAIDA: commercial backbone link (New York, 2018).
    Caida,
    /// (PCAP-2) DC: "UNI1" university data center (IMC 2010).
    Dc,
    /// (PCAP-3) CA: MACCDC cyber-defense competition capture (2012).
    Ca,
}

impl DatasetKind {
    /// All datasets in paper order.
    pub const ALL: [DatasetKind; 6] = [
        DatasetKind::Ugr16,
        DatasetKind::Cidds,
        DatasetKind::Ton,
        DatasetKind::Caida,
        DatasetKind::Dc,
        DatasetKind::Ca,
    ];

    /// The three flow-header datasets.
    pub const FLOW: [DatasetKind; 3] = [DatasetKind::Ugr16, DatasetKind::Cidds, DatasetKind::Ton];

    /// The three packet-header datasets.
    pub const PACKET: [DatasetKind; 3] = [DatasetKind::Caida, DatasetKind::Dc, DatasetKind::Ca];

    /// Whether this is a flow-header (NetFlow) dataset.
    pub fn is_flow(self) -> bool {
        matches!(self, DatasetKind::Ugr16 | DatasetKind::Cidds | DatasetKind::Ton)
    }

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Ugr16 => "UGR16",
            DatasetKind::Cidds => "CIDDS",
            DatasetKind::Ton => "TON",
            DatasetKind::Caida => "CAIDA",
            DatasetKind::Dc => "DC",
            DatasetKind::Ca => "CA",
        }
    }
}

/// Generates a flow-header dataset of (approximately) `n` records.
///
/// # Panics
/// Panics if `kind` is a packet dataset; use [`generate_packets`] for those.
pub fn generate_flows(kind: DatasetKind, n: usize, seed: u64) -> FlowTrace {
    match kind {
        DatasetKind::Ugr16 => ugr16::generate(n, seed),
        DatasetKind::Cidds => cidds::generate(n, seed),
        DatasetKind::Ton => ton::generate(n, seed),
        other => panic!("{} is a packet dataset; call generate_packets", other.name()), // lint: allow(panic-in-lib) documented contract panic: kind mismatch is a caller bug (lint: allow(panic-in-lib) documented contract panic: kind mismatch is a caller bug)
    }
}

/// Generates a packet-header dataset of (approximately) `n` packets.
///
/// # Panics
/// Panics if `kind` is a flow dataset; use [`generate_flows`] for those.
pub fn generate_packets(kind: DatasetKind, n: usize, seed: u64) -> PacketTrace {
    match kind {
        DatasetKind::Caida => caida::generate(n, seed),
        DatasetKind::Dc => dc::generate(n, seed),
        DatasetKind::Ca => ca::generate(n, seed),
        other => panic!("{} is a flow dataset; call generate_flows", other.name()), // lint: allow(panic-in-lib) documented contract panic: kind mismatch is a caller bug (lint: allow(panic-in-lib) documented contract panic: kind mismatch is a caller bug)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_flow_datasets_generate() {
        for kind in DatasetKind::FLOW {
            let t = generate_flows(kind, 500, 7);
            assert!(!t.is_empty(), "{} produced no flows", kind.name());
        }
    }

    #[test]
    fn all_packet_datasets_generate() {
        for kind in DatasetKind::PACKET {
            let t = generate_packets(kind, 500, 7);
            assert!(!t.is_empty(), "{} produced no packets", kind.name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_flows(DatasetKind::Ugr16, 300, 42);
        let b = generate_flows(DatasetKind::Ugr16, 300, 42);
        assert_eq!(a, b);
        let c = generate_flows(DatasetKind::Ugr16, 300, 43);
        assert_ne!(a, c, "different seed must change the trace");
    }

    #[test]
    #[should_panic(expected = "packet dataset")]
    fn flow_api_rejects_packet_dataset() {
        let _ = generate_flows(DatasetKind::Caida, 10, 0);
    }
}
