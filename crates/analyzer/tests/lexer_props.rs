//! Property tests for the hand-rolled lexer.
//!
//! The lexer is the foundation of every lint pass, and the constructs
//! most likely to corrupt a naive scan are exactly the ones exercised
//! here: nested block comments, raw strings whose bodies contain
//! `"#`-shaped pseudo-terminators, and arbitrary hostile byte soup.
//! The shimmed proptest has no string strategies, so inputs are built
//! from `u8` vectors mapped through fragment vocabularies.

use analyzer::lexer::{lex, TokKind};
use proptest::prelude::*;

/// Fragment vocabulary for structured source synthesis: every entry is
/// a self-contained lexeme, so any concatenation (joined by spaces) is
/// a valid token stream.
const FRAGMENTS: &[&str] = &[
    "fn", "let", "x", "self", "HashMap", "0xff", "1_000u64", "2e-3", "1.5", "..", "::", "->",
    "==", "{", "}", "(", ")", ";", ",", "\"plain\"", "'a'", "'static", "r\"raw\"", "b\"bytes\"",
    "r#type", "#", "&&", "unsafe",
];

/// Characters for hostile free-form input (includes every delimiter the
/// lexer special-cases, quote flavors, and multibyte UTF-8).
const HOSTILE: &[char] = &[
    '/', '*', '"', '\'', 'r', 'b', '#', '\\', '\n', ' ', 'a', '0', '.', '_', '{', '}', '(',
    ')', ':', ';', '=', '-', '>', '<', '!', '&', '|', 'é', '∑', '\t',
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any byte soup over the hostile alphabet must lex without
    /// panicking — including inputs ending mid-comment, mid-string,
    /// or mid-escape.
    #[test]
    fn lexer_never_panics_on_hostile_input(picks in prop::collection::vec(any::<u8>(), 0..400)) {
        let src: String = picks
            .iter()
            .map(|&b| HOSTILE[b as usize % HOSTILE.len()])
            .collect();
        let lexed = lex(&src);
        // Line numbers must stay within the source and never decrease.
        let lines = src.lines().count().max(1) as u32;
        let mut prev = 1u32;
        for t in &lexed.toks {
            prop_assert!(t.line >= 1 && t.line <= lines, "line {} of {lines}", t.line);
            prop_assert!(t.line >= prev, "token lines must not decrease");
            prev = t.line;
        }
    }

    /// Block comments nest: `/* /* … */ */` at any depth is ONE
    /// comment, and code resumes after the matching close.
    #[test]
    fn nested_block_comments_lex_as_one_comment(
        depth in 1usize..10,
        body_picks in prop::collection::vec(any::<u8>(), 0..30),
    ) {
        // Body avoids `/*` and `*/` pairs by construction.
        let alphabet = ['a', ' ', '1', '.', '!', '#'];
        let body: String = body_picks
            .iter()
            .map(|&b| alphabet[b as usize % alphabet.len()])
            .collect();
        let src = format!(
            "before {}{body}{} after",
            "/*".repeat(depth),
            "*/".repeat(depth)
        );
        let lexed = lex(&src);
        prop_assert_eq!(lexed.comments.len(), 1, "one nested comment: {:?}", lexed.comments);
        let idents: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(idents, vec!["before", "after"]);
    }

    /// An unbalanced open comment (more opens than closes) swallows the
    /// rest of the file without panicking and without producing tokens
    /// from inside it.
    #[test]
    fn unclosed_nested_comment_swallows_tail(depth in 1usize..8, closes in 0usize..8) {
        let closes = closes.min(depth.saturating_sub(1));
        let src = format!("head {} tail", "/*".repeat(depth).to_string() + &"*/".repeat(closes));
        let lexed = lex(&src);
        let idents: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(idents, vec!["head"], "tail is inside the unclosed comment");
    }

    /// Raw strings with N hashes must NOT terminate on a `"` followed
    /// by fewer than N hashes: the body survives verbatim and trailing
    /// code still lexes.
    #[test]
    fn raw_strings_with_embedded_hash_quotes(
        hashes in 1usize..5,
        fake_terminators in 1usize..5,
    ) {
        // Each fake terminator is `"` + (hashes-1) `#` — one hash short
        // of closing, so it must stay inside the string body.
        let fake = format!("\"{}", "#".repeat(hashes - 1));
        let body = format!("start{}end", fake.repeat(fake_terminators));
        let h = "#".repeat(hashes);
        let src = format!("let s = r{h}\"{body}\"{h}; trailing");
        let lexed = lex(&src);
        let strs: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(strs.len(), 1, "exactly one string: {:?}", lexed.toks);
        prop_assert!(strs[0].contains(&body), "body verbatim: {}", strs[0]);
        prop_assert!(
            lexed.toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "trailing"),
            "code after the raw string must lex"
        );
    }

    /// Structured round-trip: joining vocabulary fragments with spaces
    /// and newlines, every produced token's text is a verbatim
    /// substring of its reported source line.
    #[test]
    fn token_text_round_trips_to_its_line(
        picks in prop::collection::vec(any::<u8>(), 1..60),
        break_every in 1usize..7,
    ) {
        let mut src = String::new();
        for (i, &b) in picks.iter().enumerate() {
            src.push_str(FRAGMENTS[b as usize % FRAGMENTS.len()]);
            src.push(if i % break_every == 0 { '\n' } else { ' ' });
        }
        let lexed = lex(&src);
        let lines: Vec<&str> = src.lines().collect();
        for t in &lexed.toks {
            let line = lines[(t.line - 1) as usize];
            prop_assert!(
                line.contains(&t.text),
                "token `{}` not on its line {}: {line:?}",
                t.text,
                t.line
            );
        }
        // Re-lexing the same source is deterministic.
        let again = lex(&src);
        prop_assert_eq!(lexed.toks.len(), again.toks.len());
        for (a, b) in lexed.toks.iter().zip(again.toks.iter()) {
            prop_assert_eq!(&a.text, &b.text);
            prop_assert_eq!(a.line, b.line);
        }
    }
}
