//! Drives the real `netshare-lint` binary over the fixture corpus and the
//! live workspace (via `CARGO_BIN_EXE_netshare-lint`).
//!
//! Acceptance gates from the issue: the binary must exit nonzero on a
//! seeded fixture violation for *every* rule, and exit zero on the
//! cleaned workspace.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyzer sits two levels under the workspace root")
        .to_path_buf()
}

/// Runs the binary, returning `(exit_code, stdout, stderr)`.
fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_netshare-lint"))
        .args(args)
        .output()
        .expect("spawn netshare-lint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn lint_fixture_json(name: &str, as_crate: &str) -> (i32, String) {
    let path = fixture(name);
    let (code, stdout, stderr) = run(&[
        "--format",
        "json",
        "--file",
        path.to_str().expect("utf8 path"),
        "--as-crate",
        as_crate,
        "--as-role",
        "lib",
    ]);
    assert!(stderr.is_empty(), "unexpected stderr for {name}: {stderr}");
    (code, stdout)
}

fn count(haystack: &str, needle: &str) -> usize {
    haystack.matches(needle).count()
}

/// Every rule must drive a nonzero exit from its seeded fixture, with the
/// expected number of deny-level and waived findings.
#[test]
fn every_rule_trips_on_its_fixture() {
    let cases: &[(&str, &str, &str, usize, usize)] = &[
        // (fixture, --as-crate, rule name, unwaived deny, waived)
        ("nondet_iteration.rs", "nnet", "nondeterministic-iteration", 3, 2),
        ("ambient_entropy.rs", "orchestrator", "ambient-entropy", 4, 1),
        ("dp_boundary.rs", "doppelganger", "dp-boundary", 3, 1),
        ("float_eq.rs", "nnet", "float-eq", 2, 1),
        ("undocumented_unsafe.rs", "nnet", "undocumented-unsafe", 2, 1),
        ("panic_in_lib.rs", "netshare", "panic-in-lib", 3, 1),
        ("telemetry_clock.rs", "orchestrator", "telemetry-clock", 2, 1),
        ("unbounded_wait.rs", "orchestrator", "unbounded-wait", 4, 2),
        ("alloc_in_step_loop.rs", "nnet", "alloc-in-step-loop", 3, 1),
        ("blocking_accept_loop.rs", "core", "blocking-accept-loop", 3, 1),
    ];
    for &(name, as_crate, rule, deny, waived) in cases {
        let (code, json) = lint_fixture_json(name, as_crate);
        assert_eq!(code, 1, "{name} must exit 1 (deny findings present)");
        assert!(
            json.contains(&format!("\"rule\":\"{rule}\"")),
            "{name} must report {rule}: {json}"
        );
        assert_eq!(
            count(&json, "\"waived\":false"),
            deny,
            "{name} unwaived findings: {json}"
        );
        assert_eq!(
            count(&json, "\"waived\":true"),
            waived,
            "{name} waived findings: {json}"
        );
    }
}

#[test]
fn clean_fixture_passes_as_critical_crate() {
    let (code, json) = lint_fixture_json("clean.rs", "nnet");
    assert_eq!(code, 0, "clean fixture must pass: {json}");
    assert_eq!(count(&json, "\"rule\":"), 0, "no findings expected: {json}");
}

#[test]
fn dp_rule_is_inert_without_the_tag() {
    let (code, json) = lint_fixture_json("dp_boundary_untagged.rs", "doppelganger");
    assert_eq!(code, 0, "untagged file must pass: {json}");
    assert_eq!(count(&json, "\"rule\":"), 0, "no findings expected: {json}");
}

#[test]
fn allow_override_downgrades_to_exit_zero() {
    let path = fixture("nondet_iteration.rs");
    let (code, _, _) = run(&[
        "--allow",
        "nondeterministic-iteration",
        "--file",
        path.to_str().expect("utf8 path"),
        "--as-crate",
        "nnet",
        "--as-role",
        "lib",
    ]);
    assert_eq!(code, 0, "--allow must drop the findings");
}

#[test]
fn warn_override_reports_but_passes() {
    let path = fixture("nondet_iteration.rs");
    let (code, stdout, _) = run(&[
        "--warn",
        "nondeterministic-iteration",
        "--file",
        path.to_str().expect("utf8 path"),
        "--as-crate",
        "nnet",
        "--as-role",
        "lib",
    ]);
    assert_eq!(code, 0, "warnings alone must not fail the run");
    assert!(stdout.contains("nondeterministic-iteration"), "{stdout}");
}

#[test]
fn fix_dry_run_prints_mechanical_rewrites() {
    let path = fixture("nondet_iteration.rs");
    let (code, stdout, _) = run(&[
        "--fix-dry-run",
        "--file",
        path.to_str().expect("utf8 path"),
        "--as-crate",
        "nnet",
        "--as-role",
        "lib",
    ]);
    assert_eq!(code, 1, "dry run keeps the failing exit code");
    assert!(stdout.contains("HashMap"), "{stdout}");
    assert!(stdout.contains("BTreeMap"), "{stdout}");
    let minus = stdout.lines().filter(|l| l.trim_start().starts_with("- ")).count();
    let plus = stdout.lines().filter(|l| l.trim_start().starts_with("+ ")).count();
    assert!(minus >= 1 && minus == plus, "paired -/+ lines: {stdout}");
}

/// The self-check gate: the live workspace (all crates + shims, after the
/// violations fixed in this change series) must lint clean.
#[test]
fn live_workspace_lints_clean() {
    let root = workspace_root();
    let (code, json, stderr) = run(&[
        "--format",
        "json",
        "--root",
        root.to_str().expect("utf8 root"),
    ]);
    assert_eq!(code, 0, "workspace must be deny-clean: {stderr}\n{json}");
    assert!(json.contains("\"deny\":0"), "{json}");
    assert!(json.contains("\"warn\":0"), "{json}");
}

fn fixture_ws(name: &str) -> String {
    fixture(name).to_str().expect("utf8 path").to_string()
}

/// Acceptance gate: the seeded lock inversion (alpha takes A→B, beta
/// takes B→A) must be detected with BOTH acquisition sites named in
/// the JSON report, plus the blocking-call deny and the waived
/// re-entrant acquire.
#[test]
fn ws_lock_cycle_names_both_acquisition_sites() {
    let (code, json, stderr) = run(&[
        "--format",
        "json",
        "--root",
        &fixture_ws("ws_lock"),
        "--workspace-graph",
    ]);
    assert!(stderr.is_empty(), "{stderr}");
    assert_eq!(code, 1, "seeded inversion must deny: {json}");
    assert_eq!(count(&json, "\"rule\":\"lock-order\""), 3, "{json}");
    assert_eq!(count(&json, "\"waived\":true"), 1, "{json}");
    assert!(json.contains("lock-order cycle"), "{json}");
    // Both sides of the inversion appear as related sites.
    assert!(
        json.contains("\"file\":\"crates/alpha/src/lib.rs\",\"line\":8")
            && json.contains("\"file\":\"crates/beta/src/lib.rs\",\"line\":7"),
        "cycle must name both acquisition sites: {json}"
    );
    // The graph summary carries the canonical names and observed edges.
    assert!(json.contains("\"ws.lock_a\"") && json.contains("\"ws.lock_b\""), "{json}");
    assert!(json.contains("\"from\":\"ws.lock_a\",\"to\":\"ws.lock_b\""), "{json}");
    assert!(json.contains("blocking call `.recv(`"), "{json}");
}

/// Capability fixture: a propagated clock reach and a direct raw-socket
/// use deny; the waived audit and the `lint: caps(…)`-declared module
/// do not. The declared module still lands in the manifest.
#[test]
fn ws_caps_propagation_and_sanctioned_boundary() {
    let (code, json, _) = run(&[
        "--format",
        "json",
        "--root",
        &fixture_ws("ws_caps"),
        "--workspace-graph",
    ]);
    assert_eq!(code, 1, "{json}");
    assert_eq!(count(&json, "\"rule\":\"capability-graph\""), 3, "{json}");
    let denied: usize = json
        .split("\"rule\":\"capability-graph\"")
        .skip(1)
        .filter(|rest| rest.starts_with(",\"severity\":\"deny\"") && !rest[..rest.find(']').unwrap_or(rest.len())].contains("\"waived\":true"))
        .count();
    assert_eq!(denied, 2, "two unwaived capability denies: {json}");
    assert!(json.contains("transitively reaches the `clock` capability"), "{json}");
    assert!(json.contains("uses the `net` capability directly"), "{json}");
    // Propagated finding names the carrier definition as a related site.
    assert!(json.contains("`stamp` defined here carries `clock`"), "{json}");
    // The sanctioned module appears in the capability manifest.
    assert!(
        json.contains("\"crates/epsilon/src/lib.rs\":["),
        "declared-caps module must be in the manifest: {json}"
    );
}

/// Taint fixture: emitted norm and serialized gradient deny; the noised
/// path and the waived audit export do not.
#[test]
fn ws_taint_denies_pre_noise_sinks_only() {
    let (code, json, _) = run(&[
        "--format",
        "json",
        "--root",
        &fixture_ws("ws_taint"),
        "--workspace-graph",
    ]);
    assert_eq!(code, 1, "{json}");
    assert_eq!(count(&json, "\"rule\":\"dp-taint-flow\""), 3, "{json}");
    assert_eq!(count(&json, "\"waived\":true"), 1, "{json}");
    assert!(json.contains("reaches sink `emit`"), "{json}");
    assert!(json.contains("reaches sink `serialize`"), "{json}");
    // `noised_ok` (line 25 emit) must NOT be reported.
    assert!(!json.contains("\"line\":25"), "noised path must be clean: {json}");
}

/// Baseline ratchet: writing a baseline from a dirty run makes the same
/// run pass (findings demoted to `baselined`), while a stale entry is
/// surfaced for deletion. New findings still deny.
#[test]
fn baseline_ratchets_and_reports_stale_entries() {
    let dir = std::env::temp_dir().join("netshare_lint_baseline_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("baseline.txt");

    // 1. Write the baseline from the dirty taint fixture.
    let (code, stdout, stderr) = run(&[
        "--root",
        &fixture_ws("ws_taint"),
        "--workspace-graph",
        "--write-baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stdout}{stderr}");
    assert!(stdout.contains("wrote 2 baseline entries"), "{stdout}");

    // 2. The same run under the baseline passes, reporting the debt.
    let (code, json, _) = run(&[
        "--format",
        "json",
        "--root",
        &fixture_ws("ws_taint"),
        "--workspace-graph",
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "baselined run must pass: {json}");
    assert!(json.contains("\"deny\":0"), "{json}");
    assert!(json.contains("\"baselined\":2"), "{json}");
    assert!(json.contains("\"applied\":2"), "{json}");

    // 3. A stale entry (nothing matches it) is reported for removal,
    //    and a finding NOT in the baseline still denies.
    let mut text = std::fs::read_to_string(&baseline).unwrap();
    text = text
        .lines()
        .filter(|l| l.starts_with('#') || !l.contains("emit"))
        .collect::<Vec<_>>()
        .join("\n")
        + "\ndp-taint-flow|crates/nnet/src/gone.rs|vanished_line();\n";
    std::fs::write(&baseline, text).unwrap();
    let (code, json, _) = run(&[
        "--format",
        "json",
        "--root",
        &fixture_ws("ws_taint"),
        "--workspace-graph",
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(code, 1, "un-baselined finding must still deny: {json}");
    assert!(json.contains("\"stale\":[\"dp-taint-flow|crates/nnet/src/gone.rs"), "{json}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--diff` analyzes only the reverse-dependency cone of the changed
/// files: changing the `gamma` helper re-reports its `delta` caller
/// (reverse dependency), without needing `delta` in the change set.
#[test]
fn diff_mode_reports_the_reverse_dependency_cone() {
    let (code, json, _) = run(&[
        "--format",
        "json",
        "--root",
        &fixture_ws("ws_caps"),
        "--workspace-graph",
        "--diff",
        "crates/gamma/src/lib.rs",
    ]);
    assert_eq!(code, 1, "{json}");
    assert!(json.contains("\"mode\":\"diff\""), "{json}");
    assert!(json.contains("\"diff\":{\"changed\":1,"), "{json}");
    // The propagated finding sits in delta — inside the cone.
    assert!(json.contains("crates/delta/src/lib.rs"), "{json}");
}

/// Applying the dry-run rewrites twice is idempotent: the second
/// application changes nothing and the file is byte-identical.
#[test]
fn fix_dry_run_rewrites_are_idempotent() {
    let dir = std::env::temp_dir().join("netshare_lint_fix_idempotent");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let target = dir.join("nondet.rs");
    std::fs::copy(fixture("nondet_iteration.rs"), &target).unwrap();

    // Parses `  - old` / `  + new` pairs and rewrites matching lines.
    fn apply(path: &Path) -> usize {
        let (_, stdout, _) = run(&[
            "--fix-dry-run",
            "--file",
            path.to_str().unwrap(),
            "--as-crate",
            "nnet",
            "--as-role",
            "lib",
        ]);
        let mut src = std::fs::read_to_string(path).unwrap();
        let mut applied = 0;
        let lines: Vec<&str> = stdout.lines().collect();
        for w in lines.windows(2) {
            let (Some(old), Some(new)) = (
                w[0].trim_start().strip_prefix("- "),
                w[1].trim_start().strip_prefix("+ "),
            ) else {
                continue;
            };
            if src.contains(old) {
                src = src.replacen(old, new, 1);
                applied += 1;
            }
        }
        std::fs::write(path, &src).unwrap();
        applied
    }

    let first = apply(&target);
    assert!(first >= 1, "the fixture must offer rewrites");
    let after_first = std::fs::read_to_string(&target).unwrap();
    let second = apply(&target);
    assert_eq!(second, 0, "second application must be a no-op");
    let after_second = std::fs::read_to_string(&target).unwrap();
    assert_eq!(after_first, after_second, "byte-identical after re-apply");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The live workspace must be deny-clean in workspace-graph mode under
/// the committed baseline (the CI gate, exercised from the test suite).
#[test]
fn live_workspace_graph_lints_clean_under_committed_baseline() {
    let root = workspace_root();
    let baseline = root.join("lint-baseline.txt");
    let (code, json, stderr) = run(&[
        "--format",
        "json",
        "--root",
        root.to_str().expect("utf8 root"),
        "--workspace-graph",
        "--baseline",
        baseline.to_str().expect("utf8 baseline"),
    ]);
    assert_eq!(code, 0, "workspace must be deny-clean: {stderr}\n{json}");
    assert!(json.contains("\"mode\":\"workspace-graph\""), "{json}");
    assert!(json.contains("\"deny\":0"), "{json}");
    assert!(json.contains("\"stale\":[]"), "no stale baseline debt: {json}");
    // The canonical ranks are live: annotated locks appear in the graph.
    assert!(json.contains("\"orchestrator.sched_state\""), "{json}");
    assert!(json.contains("\"netshared.session_registry\""), "{json}");
}

#[test]
fn usage_error_exits_two() {
    let (code, _, stderr) = run(&["--definitely-not-a-flag"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn list_rules_names_every_rule() {
    let (code, stdout, _) = run(&["--list-rules"]);
    assert_eq!(code, 0);
    for rule in [
        "nondeterministic-iteration",
        "ambient-entropy",
        "dp-boundary",
        "float-eq",
        "undocumented-unsafe",
        "panic-in-lib",
        "telemetry-clock",
        "unbounded-wait",
        "alloc-in-step-loop",
        "blocking-accept-loop",
    ] {
        assert!(stdout.contains(rule), "missing {rule}: {stdout}");
    }
}
