//! Drives the real `netshare-lint` binary over the fixture corpus and the
//! live workspace (via `CARGO_BIN_EXE_netshare-lint`).
//!
//! Acceptance gates from the issue: the binary must exit nonzero on a
//! seeded fixture violation for *every* rule, and exit zero on the
//! cleaned workspace.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyzer sits two levels under the workspace root")
        .to_path_buf()
}

/// Runs the binary, returning `(exit_code, stdout, stderr)`.
fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_netshare-lint"))
        .args(args)
        .output()
        .expect("spawn netshare-lint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn lint_fixture_json(name: &str, as_crate: &str) -> (i32, String) {
    let path = fixture(name);
    let (code, stdout, stderr) = run(&[
        "--format",
        "json",
        "--file",
        path.to_str().expect("utf8 path"),
        "--as-crate",
        as_crate,
        "--as-role",
        "lib",
    ]);
    assert!(stderr.is_empty(), "unexpected stderr for {name}: {stderr}");
    (code, stdout)
}

fn count(haystack: &str, needle: &str) -> usize {
    haystack.matches(needle).count()
}

/// Every rule must drive a nonzero exit from its seeded fixture, with the
/// expected number of deny-level and waived findings.
#[test]
fn every_rule_trips_on_its_fixture() {
    let cases: &[(&str, &str, &str, usize, usize)] = &[
        // (fixture, --as-crate, rule name, unwaived deny, waived)
        ("nondet_iteration.rs", "nnet", "nondeterministic-iteration", 3, 2),
        ("ambient_entropy.rs", "orchestrator", "ambient-entropy", 4, 1),
        ("dp_boundary.rs", "doppelganger", "dp-boundary", 3, 1),
        ("float_eq.rs", "nnet", "float-eq", 2, 1),
        ("undocumented_unsafe.rs", "nnet", "undocumented-unsafe", 2, 1),
        ("panic_in_lib.rs", "netshare", "panic-in-lib", 3, 1),
        ("telemetry_clock.rs", "orchestrator", "telemetry-clock", 2, 1),
        ("unbounded_wait.rs", "orchestrator", "unbounded-wait", 3, 1),
        ("alloc_in_step_loop.rs", "nnet", "alloc-in-step-loop", 3, 1),
        ("blocking_accept_loop.rs", "core", "blocking-accept-loop", 3, 1),
    ];
    for &(name, as_crate, rule, deny, waived) in cases {
        let (code, json) = lint_fixture_json(name, as_crate);
        assert_eq!(code, 1, "{name} must exit 1 (deny findings present)");
        assert!(
            json.contains(&format!("\"rule\":\"{rule}\"")),
            "{name} must report {rule}: {json}"
        );
        assert_eq!(
            count(&json, "\"waived\":false"),
            deny,
            "{name} unwaived findings: {json}"
        );
        assert_eq!(
            count(&json, "\"waived\":true"),
            waived,
            "{name} waived findings: {json}"
        );
    }
}

#[test]
fn clean_fixture_passes_as_critical_crate() {
    let (code, json) = lint_fixture_json("clean.rs", "nnet");
    assert_eq!(code, 0, "clean fixture must pass: {json}");
    assert_eq!(count(&json, "\"rule\":"), 0, "no findings expected: {json}");
}

#[test]
fn dp_rule_is_inert_without_the_tag() {
    let (code, json) = lint_fixture_json("dp_boundary_untagged.rs", "doppelganger");
    assert_eq!(code, 0, "untagged file must pass: {json}");
    assert_eq!(count(&json, "\"rule\":"), 0, "no findings expected: {json}");
}

#[test]
fn allow_override_downgrades_to_exit_zero() {
    let path = fixture("nondet_iteration.rs");
    let (code, _, _) = run(&[
        "--allow",
        "nondeterministic-iteration",
        "--file",
        path.to_str().expect("utf8 path"),
        "--as-crate",
        "nnet",
        "--as-role",
        "lib",
    ]);
    assert_eq!(code, 0, "--allow must drop the findings");
}

#[test]
fn warn_override_reports_but_passes() {
    let path = fixture("nondet_iteration.rs");
    let (code, stdout, _) = run(&[
        "--warn",
        "nondeterministic-iteration",
        "--file",
        path.to_str().expect("utf8 path"),
        "--as-crate",
        "nnet",
        "--as-role",
        "lib",
    ]);
    assert_eq!(code, 0, "warnings alone must not fail the run");
    assert!(stdout.contains("nondeterministic-iteration"), "{stdout}");
}

#[test]
fn fix_dry_run_prints_mechanical_rewrites() {
    let path = fixture("nondet_iteration.rs");
    let (code, stdout, _) = run(&[
        "--fix-dry-run",
        "--file",
        path.to_str().expect("utf8 path"),
        "--as-crate",
        "nnet",
        "--as-role",
        "lib",
    ]);
    assert_eq!(code, 1, "dry run keeps the failing exit code");
    assert!(stdout.contains("HashMap"), "{stdout}");
    assert!(stdout.contains("BTreeMap"), "{stdout}");
    let minus = stdout.lines().filter(|l| l.trim_start().starts_with("- ")).count();
    let plus = stdout.lines().filter(|l| l.trim_start().starts_with("+ ")).count();
    assert!(minus >= 1 && minus == plus, "paired -/+ lines: {stdout}");
}

/// The self-check gate: the live workspace (all crates + shims, after the
/// violations fixed in this change series) must lint clean.
#[test]
fn live_workspace_lints_clean() {
    let root = workspace_root();
    let (code, json, stderr) = run(&[
        "--format",
        "json",
        "--root",
        root.to_str().expect("utf8 root"),
    ]);
    assert_eq!(code, 0, "workspace must be deny-clean: {stderr}\n{json}");
    assert!(json.contains("\"deny\":0"), "{json}");
    assert!(json.contains("\"warn\":0"), "{json}");
}

#[test]
fn usage_error_exits_two() {
    let (code, _, stderr) = run(&["--definitely-not-a-flag"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn list_rules_names_every_rule() {
    let (code, stdout, _) = run(&["--list-rules"]);
    assert_eq!(code, 0);
    for rule in [
        "nondeterministic-iteration",
        "ambient-entropy",
        "dp-boundary",
        "float-eq",
        "undocumented-unsafe",
        "panic-in-lib",
        "telemetry-clock",
        "unbounded-wait",
        "alloc-in-step-loop",
        "blocking-accept-loop",
    ] {
        assert!(stdout.contains(rule), "missing {rule}: {stdout}");
    }
}
