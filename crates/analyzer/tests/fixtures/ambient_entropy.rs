//! Fixture: `ambient-entropy` positive / negative / waiver cases.
//! Linted via `--file … --as-crate orchestrator --as-role lib`.
//! Expected: 4 deny findings, 1 waived.

use std::time::{Instant, SystemTime};

pub fn positive_wall_clock() -> SystemTime {
    SystemTime::now()
}

pub fn positive_monotonic_clock() {
    let _ = Instant::now();
}

pub fn positive_os_rng() {
    let _ = thread_rng();
}

pub fn positive_rand_random() {
    let _: u64 = rand::random();
}

pub fn waived() {
    let _ = Instant::now(); // lint: allow(ambient-entropy) fixture: demonstrating a waiver
}

pub fn negative_seeded(seed: u64) -> u64 {
    // A plain `random` identifier without the `rand::` path is fine.
    fn random(s: u64) -> u64 {
        s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
    }
    random(seed)
}
