//! Fixture: uninterruptible blocking in library code.
//!
//! Four deny findings (two `thread::sleep` forms, one timeout-less
//! `Condvar::wait`, one fixed-sleep retry loop) and two waived waits.
//! The bounded forms (`wait_timeout` with a variable duration, or a
//! loop that names a backoff) at the bottom must not trip.

use std::sync::{Condvar, Mutex};
use std::thread;
use std::time::Duration;

pub fn naps(d: Duration) {
    std::thread::sleep(d);
    thread::sleep(d);
}

pub fn blocks_forever(m: &Mutex<bool>, cv: &Condvar) {
    let mut guard = match m.lock() {
        Ok(g) => g,
        Err(e) => e.into_inner(),
    };
    while !*guard {
        guard = match cv.wait(guard) {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        };
    }
}

pub fn blocks_with_a_bound(m: &Mutex<bool>, cv: &Condvar) {
    let guard = match m.lock() {
        Ok(g) => g,
        Err(e) => e.into_inner(),
    };
    // lint: allow(unbounded-wait) producer thread is joined two lines below, so this wait is finite
    let _ = cv.wait(guard);
}

pub fn bounded_waits_are_fine(m: &Mutex<bool>, cv: &Condvar, d: Duration) {
    let guard = match m.lock() {
        Ok(g) => g,
        Err(e) => e.into_inner(),
    };
    let _ = cv.wait_timeout(guard, d);
}

/// Deny: interruptible wait, but the loop around it is a retry policy
/// with a hardcoded per-attempt delay — it polls a dead peer forever.
pub fn polls_at_full_cadence(token: &CancelToken) {
    while !token.wait_timeout(Duration::from_millis(50)) {
        // keep polling
    }
}

/// Waived: a deliberate injected hang, released by shutdown.
pub fn injected_hang(token: &CancelToken) {
    // lint: allow(unbounded-wait) deliberate injected fault, released by run shutdown
    while !token.wait_timeout(Duration::from_millis(50)) {}
}

/// Clean: the delay is a caller-tuned variable, not a hardcoded poll.
pub fn tunable_poll(token: &CancelToken, poll_ms: u64) {
    while !token.wait_timeout(Duration::from_millis(poll_ms)) {}
}

/// Clean: the enclosing loop names a backoff, so the delay grows.
pub fn reconnects_with_backoff(token: &CancelToken, backoff: &mut Backoff) {
    loop {
        if token.wait_timeout(Duration::from_millis(5)) {
            return;
        }
        if backoff.sleep(token) {
            return;
        }
    }
}
