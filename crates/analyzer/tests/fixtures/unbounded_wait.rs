//! Fixture: uninterruptible blocking in library code.
//!
//! Three deny findings (two `thread::sleep` forms, one timeout-less
//! `Condvar::wait`) and one waived wait. The bounded forms
//! (`wait_timeout`) at the bottom must not trip.

use std::sync::{Condvar, Mutex};
use std::thread;
use std::time::Duration;

pub fn naps(d: Duration) {
    std::thread::sleep(d);
    thread::sleep(d);
}

pub fn blocks_forever(m: &Mutex<bool>, cv: &Condvar) {
    let mut guard = match m.lock() {
        Ok(g) => g,
        Err(e) => e.into_inner(),
    };
    while !*guard {
        guard = match cv.wait(guard) {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        };
    }
}

pub fn blocks_with_a_bound(m: &Mutex<bool>, cv: &Condvar) {
    let guard = match m.lock() {
        Ok(g) => g,
        Err(e) => e.into_inner(),
    };
    // lint: allow(unbounded-wait) producer thread is joined two lines below, so this wait is finite
    let _ = cv.wait(guard);
}

pub fn bounded_waits_are_fine(m: &Mutex<bool>, cv: &Condvar, d: Duration) {
    let guard = match m.lock() {
        Ok(g) => g,
        Err(e) => e.into_inner(),
    };
    let _ = cv.wait_timeout(guard, d);
}
