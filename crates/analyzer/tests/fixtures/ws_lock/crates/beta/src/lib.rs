//! Fixture (lock-order): module B of the seeded inversion — acquires
//! `ws.lock_b` then `ws.lock_a`, the reverse of `alpha::forward`, plus
//! a blocking channel receive under a held guard. Lint target only.

pub fn backward(s: &Shared) {
    let b = s.b.lock(); // lint: lock-order(ws.lock_b)
    let a = s.a.lock(); // lint: lock-order(ws.lock_a)
    use_both(a, b);
}

pub fn stall(s: &Shared) {
    let g = s.b.lock(); // lint: lock-order(ws.lock_b)
    let msg = s.inbox.recv();
    apply(g, msg);
}
