//! Fixture (lock-order): module A of the seeded inversion — acquires
//! `ws.lock_a` then `ws.lock_b`. Module `beta` takes the opposite
//! order, so the workspace pass must report the cycle naming BOTH
//! acquisition sites. Lint target only; never compiled.

pub fn forward(s: &Shared) {
    let a = s.a.lock(); // lint: lock-order(ws.lock_a)
    let b = s.b.lock(); // lint: lock-order(ws.lock_b)
    use_both(a, b);
}

pub fn reentrant_waived(s: &Shared) {
    let first = s.a.lock(); // lint: lock-order(ws.lock_a)
    // lint: allow(lock-order) fixture: deliberate double-acquire kept as the waived example
    let second = s.a.lock(); // lint: lock-order(ws.lock_a)
    use_both(first, second);
}
