//! Fixture (capability-graph): two denies. `log_stamp` reaches the
//! clock only transitively through `gamma::stamp` (nothing on this
//! line looks like a clock read — exactly the hole the propagation
//! closes), and `dial` opens a raw socket directly. Lint target only.

pub fn log_stamp(rec: &mut Recorder) {
    let when = gamma::stamp();
    rec.note(when);
}

pub fn dial(addr: &str) -> Conn {
    let sock = TcpStream::connect(addr);
    Conn::wrap(sock)
}

pub fn audited_stamp(rec: &mut Recorder) {
    // lint: allow(capability-graph) fixture: audited transitive clock use kept as the waived example
    let when = gamma::stamp();
    rec.seal(when);
}
