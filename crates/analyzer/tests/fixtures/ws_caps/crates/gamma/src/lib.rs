//! Fixture (capability-graph): an untagged helper that reads the
//! ambient clock. The direct use is legacy-covered (telemetry-clock,
//! waived here so only the graph pass speaks), but every caller
//! transitively inherits the `clock` capability. Lint target only.

pub fn stamp() -> u64 {
    // lint: allow(ambient-entropy) fixture: the graph pass, not the legacy rule, is under test
    let t = SystemTime::now();
    to_nanos(t)
}
