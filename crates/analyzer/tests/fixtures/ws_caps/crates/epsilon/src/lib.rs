//! Fixture (capability-graph): the sanctioned counter-example.
//! lint: caps(net, clock) — this module declares its effects; raw
//! socket I/O and clock reads here land in the manifest but do not
//! deny, and callers do not inherit them (the boundary absorbs).
//! Lint target only.

pub fn listen(addr: &str) -> Listener {
    let l = TcpListener::bind(addr);
    Listener::wrap(l)
}

pub fn stamped_dial(addr: &str) -> Conn {
    let sock = TcpStream::connect(addr);
    // lint: allow(ambient-entropy) fixture: declared-caps module may read the clock
    let opened = SystemTime::now();
    Conn::opened_at(sock, opened)
}
