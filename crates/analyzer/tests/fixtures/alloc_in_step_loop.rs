//! Fixture: fresh heap allocation inside `lint: step-loop`-tagged loops.
//!
//! Three deny findings (`Vec::new`, `vec![…]`, `Tensor::zeros`) in the
//! first tagged loop and one waived `vec!` in the second. The untagged
//! loop at the bottom allocates freely and must not trip — the tag is
//! the opt-in.

pub fn hot_loop(n: usize) -> Vec<Vec<f32>> {
    let mut out = Vec::new();
    // lint: step-loop
    for _t in 0..n {
        let gate = Vec::new();
        let scratch = vec![0.0f32; 16];
        let hidden = Tensor::zeros(4, 16);
        out.push(merge(gate, scratch, hidden));
    }
    out
}

pub fn hot_loop_with_escape(n: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    // lint: step-loop
    for _t in 0..n {
        let row = vec![0u8; 64]; // lint: allow(alloc-in-step-loop) row escapes into `out` each iteration
        out.push(row);
    }
    out
}

pub fn cold_loop(n: usize) -> usize {
    let mut total = 0;
    for _ in 0..n {
        let v = vec![0u8; 8];
        let w = Vec::<u8>::new();
        total += v.len() + w.len();
    }
    total
}
