//! Fixture: a file clean under every rule, even when linted as a
//! determinism-critical lib crate. Expected: 0 findings, exit 0.

use std::collections::BTreeMap;

pub fn deterministic_grouping(keys: &[u32]) -> BTreeMap<u32, usize> {
    let mut counts = BTreeMap::new();
    for &k in keys {
        *counts.entry(k).or_insert(0) += 1;
    }
    counts
}

pub fn tolerant_compare(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-6
}

pub fn typed_error(x: Option<u8>) -> Result<u8, String> {
    x.ok_or_else(|| "missing".to_string())
}

pub fn documented_unsafe(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid for reads (fixture)
    unsafe { *p }
}
