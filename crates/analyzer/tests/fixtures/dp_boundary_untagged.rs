//! Fixture: `dp-boundary` negative case — the same accessors as
//! `dp_boundary.rs` but *without* the `dp-post-noise` tag, so the rule
//! must not fire at all. Expected: 0 findings.

pub fn pre_noise_is_fine(model: &mut impl Parameterized) {
    let _ = model.flat_gradients();
    model.set_flat_gradients(&[]);
    let _ = model.gradients_mut();
}
