//! Fixture: `undocumented-unsafe` positive / negative / waiver cases.
//! Linted via `--file … --as-crate nnet --as-role lib`.
//! Expected: 2 deny findings, 1 waived (the `positive` fn and the
//! stale-comment case), and the documented block is clean.

pub fn positive(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn negative_documented(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid for reads (fixture)
    unsafe { *p }
}

pub fn positive_comment_too_far(p: *const u8) -> u8 {
    // SAFETY: this comment is more than two lines above the block,
    // so it does not count as documentation.
    let q = p;
    let r = q;
    unsafe { *r }
}

pub fn waived(p: *const u8) -> u8 {
    unsafe { *p } // lint: allow(undocumented-unsafe) fixture: demonstrating a waiver
}
