//! Fixture: `nondeterministic-iteration` positive / negative / waiver
//! cases. Linted via `--file … --as-crate nnet --as-role lib`; never
//! compiled. Expected: 3 deny findings, 2 waived.

use std::collections::BTreeMap;
use std::collections::HashMap;

pub fn positive() -> HashMap<u32, u32> {
    HashMap::new()
}

pub fn waived() {
    let _m: HashMap<u8, u8> = HashMap::new(); // lint: allow(nondeterministic-iteration) keys are sorted before every iteration
}

pub fn negative_ordered() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn negative_test_region() {
        let _ = HashMap::<u8, u8>::new();
    }
}
