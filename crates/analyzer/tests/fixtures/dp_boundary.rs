//! Fixture: `dp-boundary` positive / waiver cases. This file is tagged
//! (lint: dp-post-noise) so per-example gradient accessors are banned.
//! Linted via `--file … --as-crate doppelganger --as-role lib`.
//! Expected: 3 deny findings, 1 waived.

pub fn positive_read(model: &mut impl Parameterized) {
    let _ = model.flat_gradients();
}

pub fn positive_write(model: &mut impl Parameterized) {
    model.set_flat_gradients(&[]);
}

pub fn positive_raw(model: &mut impl Parameterized) {
    let _ = model.gradients_mut();
}

pub fn waived(model: &mut impl Parameterized) {
    let _ = model.flat_gradients(); // lint: allow(dp-boundary) fixture: reading a *noised* copy captured earlier
}

pub fn negative_sanctioned(dp: &mut DpSgdTrainer, model: &mut M, batch: &[usize]) {
    dp.sanitize_batch(model, batch, |_, _| {});
}
