//! Fixture: raw socket accept/read calls outside the sanctioned
//! io-boundary modules.
//!
//! Three deny findings (two `.accept(` calls, one `.read_exact(`) and
//! one waived accept. This header mentions the marker name only in
//! prose, which must NOT tag the file: `lint: io-boundary` sanctions a
//! file only when it opens a comment.

use std::io::Read;
use std::net::{TcpListener, TcpStream};

pub fn accept_loop(listener: &TcpListener) {
    while let Ok((sock, _)) = listener.accept() {
        drop(sock);
    }
}

pub fn accept_once(listener: &TcpListener) -> std::io::Result<TcpStream> {
    let (sock, _) = listener.accept()?;
    Ok(sock)
}

pub fn read_header(sock: &mut TcpStream) -> std::io::Result<[u8; 4]> {
    let mut buf = [0u8; 4];
    sock.read_exact(&mut buf)?;
    Ok(buf)
}

pub fn migration_shim(listener: &TcpListener) -> std::io::Result<TcpStream> {
    // lint: allow(blocking-accept-loop) legacy path, removed once callers move to netshared::Server
    let (sock, _) = listener.accept()?;
    Ok(sock)
}
