//! Fixture: `telemetry-clock` positive / negative / waiver cases.
//! Linted via `--file … --as-crate orchestrator --as-role lib`.
//! Expected: 2 deny findings, 1 waived.

pub fn positive_raw_timestamp() -> u64 {
    telemetry::clock::monotonic_nanos()
}

pub fn positive_microsecond_read() -> u64 {
    telemetry::clock::monotonic_nanos() / 1_000
}

pub fn waived_epoch_probe() -> u64 {
    // lint: allow(telemetry-clock) fixture: demonstrating a waiver
    telemetry::clock::monotonic_nanos()
}

pub fn negative_guarded_timing() -> f64 {
    // Sanctioned paths: the Stopwatch (which reads the epoch clock on
    // the caller's behalf) and telemetry's own span/timer guards.
    let sw = orchestrator::timing::Stopwatch::start();
    let _timer = telemetry::metrics::scoped_timer_us("fixture.us");
    sw.elapsed_seconds()
}
