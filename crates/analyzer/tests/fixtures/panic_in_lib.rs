//! Fixture: `panic-in-lib` positive / negative / waiver cases.
//! Linted via `--file … --as-crate netshare --as-role lib`.
//! Expected: 3 deny findings, 1 waived.

pub fn positive_unwrap(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn positive_expect(x: Option<u8>) -> u8 {
    x.expect("present")
}

pub fn positive_panic() {
    panic!("boom");
}

pub fn waived(x: Option<u8>) -> u8 {
    x.unwrap() // lint: allow(panic-in-lib) fixture: x verified Some by the caller
}

pub fn negative_result(x: Option<u8>) -> Result<u8, String> {
    x.ok_or_else(|| "missing".to_string())
}

pub fn negative_assert(n: usize) {
    assert!(n > 0, "asserts state invariants and are allowed");
}

#[cfg(test)]
mod tests {
    #[test]
    fn negative_test_region() {
        Some(1u8).unwrap();
    }
}
