//! Fixture: `float-eq` positive / negative / waiver cases.
//! Linted via `--file … --as-crate nnet --as-role lib`.
//! Expected: 2 deny findings, 1 waived.

pub fn positive_eq(x: f32) -> bool {
    x == 0.0
}

pub fn positive_ne(y: f32) -> bool {
    1.5 != y
}

pub fn waived(x: f32) -> bool {
    x == 0.0 // lint: allow(float-eq) zero-skip fast path: only exact 0.0 may skip
}

pub fn negative_tolerance(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-6
}

pub fn negative_integer(n: u32) -> bool {
    n == 0
}
