//! Fixture (dp-taint-flow): per-example gradient data reaching sinks.
//! Two denies (an emitted norm and a serialized gradient vector), one
//! sanctioned noise path that clears taint, and one waived audit
//! export. Lint target only; never compiled.

pub fn leak_norm(model: &mut Model, events: &EventLog) {
    let g = model.flat_gradients();
    let norm = l2(&g);
    events.emit(norm);
}

pub fn leak_serialized(model: &mut Model, out: &mut Sink) {
    let g = model.flat_gradients();
    let line = serialize(&g);
    out.consume(line);
}

pub fn noised_ok(model: &mut Model, events: &EventLog, rng: &mut Rng) {
    let g = model.flat_gradients();
    let mut sum = accumulate(&g);
    for s in sum.iter_mut() {
        *s += noise.sample(rng);
    }
    events.emit(&sum);
}

pub fn audited(model: &mut Model, metrics: &Hist) {
    let g = model.flat_gradients();
    let norm = l2(&g);
    // lint: allow(dp-taint-flow) fixture: audited pre-noise export kept as the waived example
    metrics.record(norm);
}
