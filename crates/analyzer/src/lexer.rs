//! A hand-rolled Rust lexer — just enough of the language to lint with.
//!
//! The workspace builds offline, so `syn`/`proc-macro2` are not available;
//! the lint rules only need a token stream with line numbers plus the
//! comment text that full parsers throw away (waivers and `// SAFETY:`
//! annotations live in comments). The lexer therefore handles exactly the
//! constructs that would otherwise corrupt a naive scan: nested block
//! comments, raw/byte strings, char literals vs. lifetimes, and float
//! literals vs. ranges/method calls on integers.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `unsafe`, `r#fn`).
    Ident,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `4f32`).
    Float,
    /// String literal of any flavor (escaped, raw, byte).
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'static`).
    Lifetime,
    /// Punctuation; multi-char operators the rules care about are fused
    /// (`==`, `!=`, `::`, `->`, `=>`, `..`).
    Punct,
}

/// One token with its source position (1-based line).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Verbatim text (identifiers/operators; literals keep their spelling).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// One comment (line or block), with its span and placement.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line where the comment starts.
    pub line: u32,
    /// 1-based line where the comment ends (block comments may span).
    pub end_line: u32,
    /// Comment text without the `//`/`/*` framing, trimmed.
    pub text: String,
    /// True when code precedes the comment on its starting line.
    pub trailing: bool,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in order; comments excluded.
    pub toks: Vec<Tok>,
    /// All comments in order.
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Unterminated constructs consume
/// to end of input rather than erroring: a linter must survive any file.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let line = cur.line;
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => {
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if c == '\n' {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                push_comment(&mut out, line, line, text.trim_start_matches('/'));
            }
            '/' if cur.peek(1) == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                let mut text = String::new();
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            text.push_str("/*");
                            cur.bump();
                            cur.bump();
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                            if depth > 0 {
                                text.push_str("*/");
                            }
                        }
                        (Some(c), _) => {
                            text.push(c);
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                push_comment(&mut out, line, cur.line, text.trim_start_matches('*'));
            }
            '"' => {
                let text = lex_quoted(&mut cur);
                out.toks.push(Tok { kind: TokKind::Str, text, line });
            }
            '\'' => lex_tick(&mut cur, &mut out, line),
            _ if c.is_ascii_digit() => {
                let (text, kind) = lex_number(&mut cur);
                out.toks.push(Tok { kind, text, line });
            }
            _ if is_ident_start(c) => {
                if let Some(text) = try_raw_or_byte_string(&mut cur) {
                    out.toks.push(Tok { kind: TokKind::Str, text, line });
                    continue;
                }
                if (c == 'b') && cur.peek(1) == Some('\'') {
                    cur.bump(); // the `b`
                    lex_tick(&mut cur, &mut out, line);
                    continue;
                }
                let mut text = String::new();
                if c == 'r' && cur.peek(1) == Some('#') && cur.peek(2).is_some_and(is_ident_start) {
                    cur.bump();
                    cur.bump(); // raw identifier `r#type`
                }
                while let Some(c) = cur.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                out.toks.push(Tok { kind: TokKind::Ident, text, line });
            }
            _ => {
                let text = lex_punct(&mut cur);
                out.toks.push(Tok { kind: TokKind::Punct, text, line });
            }
        }
    }

    mark_trailing(&mut out);
    out
}

fn push_comment(out: &mut Lexed, line: u32, end_line: u32, text: &str) {
    out.comments.push(Comment {
        line,
        end_line,
        text: text.trim().to_string(),
        trailing: false, // fixed up in mark_trailing
    });
}

/// A comment is trailing when a token starts on the same line before it.
fn mark_trailing(out: &mut Lexed) {
    for c in &mut out.comments {
        c.trailing = out.toks.iter().any(|t| t.line == c.line);
    }
}

/// Lexes a `"…"` string starting at the opening quote.
fn lex_quoted(cur: &mut Cursor) -> String {
    let mut text = String::new();
    text.push('"');
    cur.bump();
    while let Some(c) = cur.bump() {
        text.push(c);
        match c {
            '\\' => {
                if let Some(e) = cur.bump() {
                    text.push(e);
                }
            }
            '"' => break,
            _ => {}
        }
    }
    text
}

/// Lexes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` when present; `None` when the
/// cursor sits on an ordinary identifier.
fn try_raw_or_byte_string(cur: &mut Cursor) -> Option<String> {
    let c0 = cur.peek(0)?;
    let mut idx = 1;
    if c0 == 'b' && cur.peek(1) == Some('r') {
        idx = 2;
    } else if c0 != 'r' && c0 != 'b' {
        return None;
    }
    let raw = c0 == 'r' || (c0 == 'b' && idx == 2);
    let mut hashes = 0usize;
    while cur.peek(idx + hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek(idx + hashes) != Some('"') || (!raw && hashes > 0) {
        return None;
    }
    if !raw && hashes == 0 && c0 == 'b' {
        // b"…" — plain byte string; escape rules match `lex_quoted`.
        cur.bump();
        return Some(lex_quoted(cur));
    }
    if !raw {
        return None;
    }
    // Raw string: consume prefix, hashes, quote; read until `"` + hashes.
    let mut text = String::new();
    for _ in 0..(idx + hashes + 1) {
        if let Some(c) = cur.bump() {
            text.push(c);
        }
    }
    loop {
        match cur.bump() {
            None => break,
            Some('"') => {
                text.push('"');
                let mut seen = 0usize;
                while seen < hashes && cur.peek(0) == Some('#') {
                    text.push('#');
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
            }
            Some(c) => text.push(c),
        }
    }
    Some(text)
}

/// Disambiguates `'a'` (char) from `'a` (lifetime) at a `'`.
fn lex_tick(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    let next = cur.peek(1);
    let is_char = match next {
        Some('\\') => true,
        Some(c) if is_ident_continue(c) => cur.peek(2) == Some('\''),
        Some(_) => true, // `'('`, `' '` etc. — punctuation chars
        None => false,
    };
    if is_char {
        let mut text = String::new();
        text.push('\'');
        cur.bump();
        while let Some(c) = cur.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(e) = cur.bump() {
                        text.push(e);
                    }
                }
                '\'' => break,
                _ => {}
            }
        }
        out.toks.push(Tok { kind: TokKind::Char, text, line });
    } else {
        let mut text = String::from("'");
        cur.bump();
        while let Some(c) = cur.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            cur.bump();
        }
        out.toks.push(Tok { kind: TokKind::Lifetime, text, line });
    }
}

/// Lexes a numeric literal, classifying int vs. float. `1..5` stays an
/// int followed by a range; `1.max(2)` stays an int then a method call.
fn lex_number(cur: &mut Cursor) -> (String, TokKind) {
    let mut text = String::new();
    let mut kind = TokKind::Int;
    if cur.peek(0) == Some('0')
        && matches!(cur.peek(1), Some('x') | Some('o') | Some('b') | Some('X'))
    {
        text.push(cur.bump().unwrap_or('0'));
        text.push(cur.bump().unwrap_or('x'));
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_hexdigit() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        // Type suffix (`0xffu32`).
        while let Some(c) = cur.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        return (text, TokKind::Int);
    }
    while let Some(c) = cur.peek(0) {
        if c.is_ascii_digit() || c == '_' {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    if cur.peek(0) == Some('.') {
        match cur.peek(1) {
            Some(c) if c.is_ascii_digit() => {
                kind = TokKind::Float;
                text.push('.');
                cur.bump();
                while let Some(c) = cur.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
            }
            Some('.') => {}                              // range `1..`
            Some(c) if is_ident_start(c) => {}           // method `1.max(..)`
            _ => {
                // Trailing-dot float (`1.`).
                kind = TokKind::Float;
                text.push('.');
                cur.bump();
            }
        }
    }
    if matches!(cur.peek(0), Some('e') | Some('E')) {
        let sign = matches!(cur.peek(1), Some('+') | Some('-'));
        let digit_at = if sign { 2 } else { 1 };
        if cur.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
            kind = TokKind::Float;
            text.push(cur.bump().unwrap_or('e'));
            if sign {
                text.push(cur.bump().unwrap_or('+'));
            }
            while let Some(c) = cur.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Type suffix: `f32`/`f64` force float; integer suffixes keep int.
    let mut suffix = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            suffix.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    if suffix == "f32" || suffix == "f64" {
        kind = TokKind::Float;
    }
    text.push_str(&suffix);
    (text, kind)
}

/// Fuses the multi-char operators the rules inspect; everything else is a
/// single punctuation char.
fn lex_punct(cur: &mut Cursor) -> String {
    const TWO: [&str; 12] = [
        "==", "!=", "::", "->", "=>", "<=", ">=", "&&", "||", "..", "+=", "-=",
    ];
    let a = cur.peek(0).unwrap_or(' ');
    let b = cur.peek(1).unwrap_or(' ');
    let pair: String = [a, b].iter().collect();
    if TWO.contains(&pair.as_str()) {
        cur.bump();
        cur.bump();
        if pair == ".." && cur.peek(0) == Some('=') {
            cur.bump();
            return "..=".to_string();
        }
        return pair;
    }
    cur.bump();
    a.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).toks.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("let x == y != z::w;");
        assert_eq!(t[0], (TokKind::Ident, "let".into()));
        assert_eq!(t[2], (TokKind::Punct, "==".into()));
        assert_eq!(t[4], (TokKind::Punct, "!=".into()));
        assert_eq!(t[6], (TokKind::Punct, "::".into()));
    }

    #[test]
    fn float_vs_int_vs_range_vs_method() {
        assert_eq!(kinds("1.0")[0].0, TokKind::Float);
        assert_eq!(kinds("2e-3")[0].0, TokKind::Float);
        assert_eq!(kinds("4f32")[0].0, TokKind::Float);
        assert_eq!(kinds("42")[0].0, TokKind::Int);
        assert_eq!(kinds("0x1e3")[0].0, TokKind::Int);
        let range = kinds("1..5");
        assert_eq!(range[0].0, TokKind::Int);
        assert_eq!(range[1], (TokKind::Punct, "..".into()));
        let method = kinds("1.max(2)");
        assert_eq!(method[0].0, TokKind::Int);
        assert_eq!(method[2], (TokKind::Ident, "max".into()));
    }

    #[test]
    fn comments_are_captured_with_placement() {
        let l = lex("let a = 1; // trailing note\n// standalone\nlet b = 2;");
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].trailing);
        assert_eq!(l.comments[0].text, "trailing note");
        assert!(!l.comments[1].trailing);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments_and_spans() {
        let l = lex("/* a /* b */ c\nstill comment */ fn x() {}");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[0].end_line, 2);
        assert_eq!(l.toks[0].text, "fn");
        assert_eq!(l.toks[0].line, 2);
    }

    #[test]
    fn strings_hide_their_content() {
        let l = lex(r#"let s = "HashMap /* not a comment"; x"#);
        assert!(l.comments.is_empty());
        assert!(l.toks.iter().all(|t| t.kind != TokKind::Ident || t.text != "HashMap"));
        assert_eq!(l.toks.last().map(|t| t.text.as_str()), Some("x"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r##"let s = r#"quote " inside"#; y"##);
        assert_eq!(l.toks.last().map(|t| t.text.as_str()), Some("y"));
        assert_eq!(
            l.toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        let t = kinds("'a 'x' '\\n' 'static");
        assert_eq!(t[0].0, TokKind::Lifetime);
        assert_eq!(t[1].0, TokKind::Char);
        assert_eq!(t[2].0, TokKind::Char);
        assert_eq!(t[3], (TokKind::Lifetime, "'static".into()));
    }

    #[test]
    fn line_numbers_advance() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
