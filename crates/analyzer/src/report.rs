//! Report rendering: human text and machine-readable JSON, plus the
//! baseline ratchet.
//!
//! The JSON writer is hand-rolled (the analyzer has zero dependencies so
//! it can never be broken by the crates it checks). The shape below is
//! frozen — CI and external tooling parse it; fields are only ever
//! appended, never renamed or removed:
//!
//! ```json
//! {
//!   "tool": "netshare-lint",
//!   "mode": "files",
//!   "files_checked": 123,
//!   "counts": { "deny": 0, "warn": 0, "waived": 4, "baselined": 0 },
//!   "diagnostics": [ { "rule": "...", "severity": "...", "file": "...",
//!                      "line": 1, "message": "...", "snippet": "...",
//!                      "waived": false, "waiver_reason": null,
//!                      "suggestion": null, "baselined": false,
//!                      "related": [ { "file": "...", "line": 1,
//!                                     "note": "..." } ] } ]
//! }
//! ```
//!
//! Under `--workspace-graph` two fields are appended: `"graph"` (the
//! lock-order graph and per-module capability manifests) and, when a
//! baseline is in play, `"baseline"` (`applied` entry count plus `stale`
//! keys — entries no finding matched, which warn so debt only ratchets
//! down). Under `--diff`, `"diff"` records the changed-file and cone
//! sizes. Graph diagnostics carry their secondary sites in `related`:
//! a lock-order cycle names *both* acquisition sites there.

use crate::config::Severity;
use crate::engine::Diagnostic;

/// One observed lock-acquisition-order edge, for the JSON graph dump.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Canonical name of the lock already held.
    pub from: String,
    /// Canonical name of the lock acquired under it.
    pub to: String,
    /// Workspace-relative file of the inner acquisition.
    pub file: String,
    /// 1-based line of the inner acquisition.
    pub line: u32,
}

/// Workspace-graph summary attached to the report in graph mode.
#[derive(Debug, Clone, Default)]
pub struct GraphSummary {
    /// Canonical lock names observed, sorted.
    pub lock_names: Vec<String>,
    /// Acquisition-order edges observed.
    pub lock_edges: Vec<LockEdge>,
    /// `(module rel_path, capability names)` — deny-capabilities each
    /// module carries (directly or transitively), sanctioned or not.
    pub capabilities: Vec<(String, Vec<String>)>,
}

/// Baseline application outcome.
#[derive(Debug, Clone, Default)]
pub struct BaselineOutcome {
    /// Findings demoted because a baseline entry covered them.
    pub applied: usize,
    /// Baseline keys no current finding matched — stale debt that
    /// should be removed from the committed file.
    pub stale: Vec<String>,
}

/// `--diff` cone statistics.
#[derive(Debug, Clone, Default)]
pub struct DiffInfo {
    /// Files named as changed.
    pub changed: usize,
    /// Files analyzed after reverse-dependency expansion.
    pub cone: usize,
}

/// Aggregated run result.
#[derive(Debug)]
pub struct Report {
    /// Every finding, waived ones included.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files visited.
    pub files_checked: usize,
    /// `"files"`, `"workspace-graph"`, or `"diff"`.
    pub mode: &'static str,
    /// Graph-mode summary.
    pub graph: Option<GraphSummary>,
    /// Baseline outcome, when `--baseline` was supplied.
    pub baseline: Option<BaselineOutcome>,
    /// Diff-mode statistics.
    pub diff: Option<DiffInfo>,
}

impl Report {
    /// A plain per-file-mode report.
    pub fn new(diagnostics: Vec<Diagnostic>, files_checked: usize) -> Report {
        Report {
            diagnostics,
            files_checked,
            mode: "files",
            graph: None,
            baseline: None,
            diff: None,
        }
    }

    /// Unwaived, unbaselined findings at `Deny` — these fail the run.
    pub fn deny_count(&self) -> usize {
        self.count(Severity::Deny)
    }

    /// Unwaived findings at `Warn`.
    pub fn warn_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// Waived findings (reported for audit, never fatal).
    pub fn waived_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.waived).count()
    }

    /// Baselined findings (pre-existing debt, reported but not fatal).
    pub fn baselined_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| !d.waived && d.baselined).count()
    }

    fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| !d.waived && !d.baselined && d.severity == sev)
            .count()
    }

    /// Process exit code: 0 clean, 1 deny findings, (2 is CLI usage).
    pub fn exit_code(&self) -> i32 {
        if self.deny_count() > 0 {
            1
        } else {
            0
        }
    }

    /// Human-readable rendering.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for d in &self.diagnostics {
            let tag = if d.waived {
                "waived"
            } else if d.baselined {
                "baselined"
            } else {
                d.severity.name()
            };
            s.push_str(&format!(
                "{}:{}: [{}/{}] {}\n    {}\n",
                d.file,
                d.line,
                tag,
                d.rule.name(),
                d.message,
                d.snippet
            ));
            if let Some(r) = &d.waiver_reason {
                s.push_str(&format!("    waiver: {r}\n"));
            }
            for site in &d.related {
                s.push_str(&format!("    see {}:{} — {}\n", site.file, site.line, site.note));
            }
        }
        if let Some(b) = &self.baseline {
            for key in &b.stale {
                s.push_str(&format!("stale baseline entry (remove it): {key}\n"));
            }
        }
        s.push_str(&format!(
            "netshare-lint[{}]: {} files checked, {} deny, {} warn, {} waived, {} baselined\n",
            self.mode,
            self.files_checked,
            self.deny_count(),
            self.warn_count(),
            self.waived_count(),
            self.baselined_count()
        ));
        s
    }

    /// `--fix-dry-run` rendering: `file:line` with the current and
    /// suggested line for every finding that has a mechanical rewrite.
    pub fn to_fix_dry_run(&self) -> String {
        let mut s = String::new();
        let mut n = 0usize;
        for d in self.diagnostics.iter().filter(|d| !d.waived) {
            let Some(fix) = &d.suggestion else { continue };
            n += 1;
            s.push_str(&format!(
                "{}:{} [{}]\n  - {}\n  + {}\n",
                d.file,
                d.line,
                d.rule.name(),
                d.snippet,
                fix
            ));
        }
        s.push_str(&format!("netshare-lint --fix-dry-run: {n} suggested rewrites (no files edited)\n"));
        s
    }

    /// Machine-readable rendering.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str("\"tool\":\"netshare-lint\",");
        s.push_str(&format!("\"mode\":{},", json_str(self.mode)));
        s.push_str(&format!("\"files_checked\":{},", self.files_checked));
        s.push_str(&format!(
            "\"counts\":{{\"deny\":{},\"warn\":{},\"waived\":{},\"baselined\":{}}},",
            self.deny_count(),
            self.warn_count(),
            self.waived_count(),
            self.baselined_count()
        ));
        s.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            s.push_str(&format!("\"rule\":{},", json_str(d.rule.name())));
            s.push_str(&format!("\"severity\":{},", json_str(d.severity.name())));
            s.push_str(&format!("\"file\":{},", json_str(&d.file)));
            s.push_str(&format!("\"line\":{},", d.line));
            s.push_str(&format!("\"message\":{},", json_str(&d.message)));
            s.push_str(&format!("\"snippet\":{},", json_str(&d.snippet)));
            s.push_str(&format!("\"waived\":{},", d.waived));
            s.push_str(&format!(
                "\"waiver_reason\":{},",
                json_opt(d.waiver_reason.as_deref())
            ));
            s.push_str(&format!(
                "\"suggestion\":{},",
                json_opt(d.suggestion.as_deref())
            ));
            s.push_str(&format!("\"baselined\":{},", d.baselined));
            s.push_str("\"related\":[");
            for (k, site) in d.related.iter().enumerate() {
                if k > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"file\":{},\"line\":{},\"note\":{}}}",
                    json_str(&site.file),
                    site.line,
                    json_str(&site.note)
                ));
            }
            s.push_str("]}");
        }
        s.push(']');
        if let Some(g) = &self.graph {
            s.push_str(",\"graph\":{\"lock_names\":[");
            for (i, n) in g.lock_names.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&json_str(n));
            }
            s.push_str("],\"lock_edges\":[");
            for (i, e) in g.lock_edges.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"from\":{},\"to\":{},\"file\":{},\"line\":{}}}",
                    json_str(&e.from),
                    json_str(&e.to),
                    json_str(&e.file),
                    e.line
                ));
            }
            s.push_str("],\"capabilities\":{");
            for (i, (module, caps)) in g.capabilities.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("{}:[", json_str(module)));
                for (k, c) in caps.iter().enumerate() {
                    if k > 0 {
                        s.push(',');
                    }
                    s.push_str(&json_str(c));
                }
                s.push(']');
            }
            s.push_str("}}");
        }
        if let Some(b) = &self.baseline {
            s.push_str(&format!(",\"baseline\":{{\"applied\":{},\"stale\":[", b.applied));
            for (i, k) in b.stale.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&json_str(k));
            }
            s.push_str("]}");
        }
        if let Some(d) = &self.diff {
            s.push_str(&format!(
                ",\"diff\":{{\"changed\":{},\"cone\":{}}}",
                d.changed, d.cone
            ));
        }
        s.push('}');
        s
    }
}

/// The ratcheting baseline: a committed set of known findings.
///
/// Keys are line-number-free — `rule|file|fingerprint` where the
/// fingerprint is the offending snippet with whitespace collapsed — so
/// unrelated edits moving a finding up or down a file do not invalidate
/// the baseline, while any change to the offending line itself does.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Keys, sorted and deduplicated.
    pub keys: Vec<String>,
}

/// The baseline key of one diagnostic.
pub fn baseline_key(d: &Diagnostic) -> String {
    let fp: String = d.snippet.split_whitespace().collect::<Vec<_>>().join(" ");
    format!("{}|{}|{}", d.rule.name(), d.file, fp)
}

impl Baseline {
    /// Parses the committed format: one key per line, `#` comments and
    /// blank lines ignored.
    pub fn parse(text: &str) -> Baseline {
        let mut keys: Vec<String> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(String::from)
            .collect();
        keys.sort();
        keys.dedup();
        Baseline { keys }
    }

    /// Renders the committed format from a report's unwaived deny
    /// findings (`--write-baseline`).
    pub fn render(report: &Report) -> String {
        let mut keys: Vec<String> = report
            .diagnostics
            .iter()
            .filter(|d| !d.waived && d.severity == Severity::Deny)
            .map(baseline_key)
            .collect();
        keys.sort();
        keys.dedup();
        let mut s = String::from(
            "# netshare-lint baseline — known findings that do not fail CI.\n\
             # One `rule|file|fingerprint` key per line. The ratchet: new\n\
             # findings still deny; entries nothing matches are reported as\n\
             # stale and must be deleted. Regenerate with --write-baseline.\n",
        );
        for k in &keys {
            s.push_str(k);
            s.push('\n');
        }
        s
    }

    /// Applies the ratchet to `report`: findings covered by a key are
    /// demoted to `baselined` (reported, not fatal); keys matching no
    /// finding are recorded as stale.
    pub fn apply(&self, report: &mut Report) {
        let mut matched: Vec<bool> = vec![false; self.keys.len()];
        let mut applied = 0usize;
        for d in &mut report.diagnostics {
            if d.waived {
                continue;
            }
            let key = baseline_key(d);
            if let Ok(i) = self.keys.binary_search(&key) {
                matched[i] = true;
                d.baselined = true;
                applied += 1;
            }
        }
        let stale: Vec<String> = self
            .keys
            .iter()
            .zip(&matched)
            .filter(|(_, m)| !**m)
            .map(|(k, _)| k.clone())
            .collect();
        report.baseline = Some(BaselineOutcome { applied, stale });
    }
}

/// JSON string literal with the escapes that can occur in source snippets.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_opt(s: Option<&str>) -> String {
    match s {
        Some(s) => json_str(s),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuleId;
    use crate::engine::RelatedSite;

    fn diag(rule: RuleId, waived: bool, severity: Severity) -> Diagnostic {
        Diagnostic {
            rule,
            severity,
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            message: "msg with \"quotes\"".into(),
            snippet: "let m = HashMap::new();".into(),
            suggestion: Some("let m = BTreeMap::new();".into()),
            waived,
            waiver_reason: waived.then(|| "reason".to_string()),
            related: Vec::new(),
            baselined: false,
        }
    }

    #[test]
    fn exit_code_tracks_unwaived_denies() {
        let clean = Report::new(vec![], 1);
        assert_eq!(clean.exit_code(), 0);

        let waived = Report::new(vec![diag(RuleId::FloatEq, true, Severity::Deny)], 1);
        assert_eq!(waived.exit_code(), 0);
        assert_eq!(waived.waived_count(), 1);

        let dirty = Report::new(vec![diag(RuleId::FloatEq, false, Severity::Deny)], 1);
        assert_eq!(dirty.exit_code(), 1);

        let warn_only = Report::new(vec![diag(RuleId::FloatEq, false, Severity::Warn)], 1);
        assert_eq!(warn_only.exit_code(), 0);
        assert_eq!(warn_only.warn_count(), 1);
    }

    #[test]
    fn json_escapes_and_structure() {
        let r = Report::new(
            vec![diag(RuleId::NondeterministicIteration, false, Severity::Deny)],
            7,
        );
        let j = r.to_json();
        assert!(j.starts_with("{\"tool\":\"netshare-lint\",\"mode\":\"files\""));
        assert!(j.contains("\"files_checked\":7"));
        assert!(j.contains("\"rule\":\"nondeterministic-iteration\""));
        assert!(j.contains("msg with \\\"quotes\\\""));
        assert!(j.contains("\"counts\":{\"deny\":1,\"warn\":0,\"waived\":0,\"baselined\":0}"));
        assert!(j.contains("\"related\":[]"));
    }

    #[test]
    fn fix_dry_run_lists_rewrites() {
        let r = Report::new(
            vec![diag(RuleId::NondeterministicIteration, false, Severity::Deny)],
            1,
        );
        let t = r.to_fix_dry_run();
        assert!(t.contains("- let m = HashMap::new();"));
        assert!(t.contains("+ let m = BTreeMap::new();"));
        assert!(t.contains("1 suggested rewrites"));
    }

    #[test]
    fn related_sites_render_in_text_and_json() {
        let mut d = diag(RuleId::LockOrder, false, Severity::Deny);
        d.related.push(RelatedSite {
            file: "crates/y/src/lib.rs".into(),
            line: 9,
            note: "acquires b while holding a".into(),
        });
        let r = Report::new(vec![d], 2);
        assert!(r.to_text().contains("see crates/y/src/lib.rs:9 — acquires b while holding a"));
        assert!(r
            .to_json()
            .contains("\"related\":[{\"file\":\"crates/y/src/lib.rs\",\"line\":9,\"note\":\"acquires b while holding a\"}]"));
    }

    #[test]
    fn baseline_ratchets_known_findings_and_reports_stale() {
        let known = diag(RuleId::FloatEq, false, Severity::Deny);
        let mut report = Report::new(vec![known.clone()], 1);
        let text = format!(
            "# comment\n{}\nfloat-eq|crates/x/src/lib.rs|gone line\n",
            baseline_key(&known)
        );
        let baseline = Baseline::parse(&text);
        baseline.apply(&mut report);

        assert_eq!(report.deny_count(), 0, "baselined finding must not deny");
        assert_eq!(report.baselined_count(), 1);
        let outcome = report.baseline.as_ref().unwrap();
        assert_eq!(outcome.applied, 1);
        assert_eq!(outcome.stale, vec!["float-eq|crates/x/src/lib.rs|gone line"]);

        // A new finding in another file still denies.
        let mut new_diag = diag(RuleId::FloatEq, false, Severity::Deny);
        new_diag.file = "crates/z/src/lib.rs".into();
        let mut report2 = Report::new(vec![new_diag], 1);
        baseline.apply(&mut report2);
        assert_eq!(report2.deny_count(), 1);
    }

    #[test]
    fn baseline_round_trips_through_render() {
        let r = Report::new(vec![diag(RuleId::FloatEq, false, Severity::Deny)], 1);
        let rendered = Baseline::render(&r);
        let parsed = Baseline::parse(&rendered);
        assert_eq!(parsed.keys.len(), 1);
        let mut r2 = Report::new(vec![diag(RuleId::FloatEq, false, Severity::Deny)], 1);
        parsed.apply(&mut r2);
        assert_eq!(r2.deny_count(), 0);
        assert!(r2.baseline.unwrap().stale.is_empty());
    }
}
