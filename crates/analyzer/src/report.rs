//! Report rendering: human text and machine-readable JSON.
//!
//! The JSON writer is hand-rolled (the analyzer has zero dependencies so
//! it can never be broken by the crates it checks). Output shape:
//!
//! ```json
//! {
//!   "tool": "netshare-lint",
//!   "files_checked": 123,
//!   "counts": { "deny": 0, "warn": 0, "waived": 4 },
//!   "diagnostics": [ { "rule": "...", "severity": "...", "file": "...",
//!                      "line": 1, "message": "...", "snippet": "...",
//!                      "waived": false, "waiver_reason": null,
//!                      "suggestion": null } ]
//! }
//! ```

use crate::config::Severity;
use crate::engine::Diagnostic;

/// Aggregated run result.
#[derive(Debug)]
pub struct Report {
    /// Every finding, waived ones included.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files visited.
    pub files_checked: usize,
}

impl Report {
    /// Unwaived findings at `Deny` — these fail the run.
    pub fn deny_count(&self) -> usize {
        self.count(Severity::Deny)
    }

    /// Unwaived findings at `Warn`.
    pub fn warn_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// Waived findings (reported for audit, never fatal).
    pub fn waived_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.waived).count()
    }

    fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| !d.waived && d.severity == sev)
            .count()
    }

    /// Process exit code: 0 clean, 1 deny findings, (2 is CLI usage).
    pub fn exit_code(&self) -> i32 {
        if self.deny_count() > 0 {
            1
        } else {
            0
        }
    }

    /// Human-readable rendering.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for d in &self.diagnostics {
            let tag = if d.waived {
                "waived"
            } else {
                d.severity.name()
            };
            s.push_str(&format!(
                "{}:{}: [{}/{}] {}\n    {}\n",
                d.file,
                d.line,
                tag,
                d.rule.name(),
                d.message,
                d.snippet
            ));
            if let Some(r) = &d.waiver_reason {
                s.push_str(&format!("    waiver: {r}\n"));
            }
        }
        s.push_str(&format!(
            "netshare-lint: {} files checked, {} deny, {} warn, {} waived\n",
            self.files_checked,
            self.deny_count(),
            self.warn_count(),
            self.waived_count()
        ));
        s
    }

    /// `--fix-dry-run` rendering: `file:line` with the current and
    /// suggested line for every finding that has a mechanical rewrite.
    pub fn to_fix_dry_run(&self) -> String {
        let mut s = String::new();
        let mut n = 0usize;
        for d in self.diagnostics.iter().filter(|d| !d.waived) {
            let Some(fix) = &d.suggestion else { continue };
            n += 1;
            s.push_str(&format!(
                "{}:{} [{}]\n  - {}\n  + {}\n",
                d.file,
                d.line,
                d.rule.name(),
                d.snippet,
                fix
            ));
        }
        s.push_str(&format!("netshare-lint --fix-dry-run: {n} suggested rewrites (no files edited)\n"));
        s
    }

    /// Machine-readable rendering.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str("\"tool\":\"netshare-lint\",");
        s.push_str(&format!("\"files_checked\":{},", self.files_checked));
        s.push_str(&format!(
            "\"counts\":{{\"deny\":{},\"warn\":{},\"waived\":{}}},",
            self.deny_count(),
            self.warn_count(),
            self.waived_count()
        ));
        s.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            s.push_str(&format!("\"rule\":{},", json_str(d.rule.name())));
            s.push_str(&format!("\"severity\":{},", json_str(d.severity.name())));
            s.push_str(&format!("\"file\":{},", json_str(&d.file)));
            s.push_str(&format!("\"line\":{},", d.line));
            s.push_str(&format!("\"message\":{},", json_str(&d.message)));
            s.push_str(&format!("\"snippet\":{},", json_str(&d.snippet)));
            s.push_str(&format!("\"waived\":{},", d.waived));
            s.push_str(&format!(
                "\"waiver_reason\":{},",
                json_opt(d.waiver_reason.as_deref())
            ));
            s.push_str(&format!(
                "\"suggestion\":{}",
                json_opt(d.suggestion.as_deref())
            ));
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

/// JSON string literal with the escapes that can occur in source snippets.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_opt(s: Option<&str>) -> String {
    match s {
        Some(s) => json_str(s),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuleId;

    fn diag(rule: RuleId, waived: bool, severity: Severity) -> Diagnostic {
        Diagnostic {
            rule,
            severity,
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            message: "msg with \"quotes\"".into(),
            snippet: "let m = HashMap::new();".into(),
            suggestion: Some("let m = BTreeMap::new();".into()),
            waived,
            waiver_reason: waived.then(|| "reason".to_string()),
        }
    }

    #[test]
    fn exit_code_tracks_unwaived_denies() {
        let clean = Report { diagnostics: vec![], files_checked: 1 };
        assert_eq!(clean.exit_code(), 0);

        let waived = Report {
            diagnostics: vec![diag(RuleId::FloatEq, true, Severity::Deny)],
            files_checked: 1,
        };
        assert_eq!(waived.exit_code(), 0);
        assert_eq!(waived.waived_count(), 1);

        let dirty = Report {
            diagnostics: vec![diag(RuleId::FloatEq, false, Severity::Deny)],
            files_checked: 1,
        };
        assert_eq!(dirty.exit_code(), 1);

        let warn_only = Report {
            diagnostics: vec![diag(RuleId::FloatEq, false, Severity::Warn)],
            files_checked: 1,
        };
        assert_eq!(warn_only.exit_code(), 0);
        assert_eq!(warn_only.warn_count(), 1);
    }

    #[test]
    fn json_escapes_and_structure() {
        let r = Report {
            diagnostics: vec![diag(RuleId::NondeterministicIteration, false, Severity::Deny)],
            files_checked: 7,
        };
        let j = r.to_json();
        assert!(j.starts_with("{\"tool\":\"netshare-lint\""));
        assert!(j.contains("\"files_checked\":7"));
        assert!(j.contains("\"rule\":\"nondeterministic-iteration\""));
        assert!(j.contains("msg with \\\"quotes\\\""));
        assert!(j.contains("\"counts\":{\"deny\":1,\"warn\":0,\"waived\":0}"));
    }

    #[test]
    fn fix_dry_run_lists_rewrites() {
        let r = Report {
            diagnostics: vec![diag(RuleId::NondeterministicIteration, false, Severity::Deny)],
            files_checked: 1,
        };
        let t = r.to_fix_dry_run();
        assert!(t.contains("- let m = HashMap::new();"));
        assert!(t.contains("+ let m = BTreeMap::new();"));
        assert!(t.contains("1 suggested rewrites"));
    }
}
