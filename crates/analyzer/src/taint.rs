//! DP taint dataflow (`dp-taint-flow`).
//!
//! Makes `dp-post-noise` a checked flow property instead of a file tag:
//! per-example gradient data must not reach an externalizing sink
//! (events, metrics, serialization, wire frames) before the sanctioned
//! noise path clears it. NetDPSyn-style failures — an un-noised
//! intermediate quietly escaping into a log — are exactly this flow.
//!
//! The analysis is intraprocedural and forward, over each `fn` body in
//! the configured crates ([`Config::taint_crates`], library roles only):
//!
//! - **Sources** ([`Config::taint_sources`]): a call to a per-example
//!   gradient accessor (`flat_gradients`, `gradients_mut`) taints the
//!   bound variable — and is tainted as an expression when passed
//!   directly to a sink.
//! - **Flow**: `let x = <rhs>` taints `x` when the right-hand side
//!   mentions a tainted variable; `for (a, b) in <expr>` taints the
//!   pattern when the iterated expression is tainted and records that
//!   the bindings *alias* the iterated collections; `x = rhs` /
//!   `x += rhs` taint `x` (and everything `x` aliases — writes through
//!   an `iter_mut` binding re-taint the collection).
//! - **Clearing** ([`Config::taint_sanitizers`]): an assignment whose
//!   right-hand side calls the sanctioned noise path (`sample` on a
//!   noise distribution, `add_noise`, `sanitize_batch`) clears its
//!   target and the target's aliases. Nothing else clears taint.
//! - **Sinks** ([`Config::taint_sinks`]): calling `emit`, `record`,
//!   `serialize`, `to_string`, `write_frame`, or `write_all` with a
//!   tainted argument (or tainted method receiver) denies.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::{Config, Role, RuleId, Severity};
use crate::engine::Diagnostic;
use crate::graph::WorkspaceModel;
use crate::lexer::{Tok, TokKind};
use crate::syntax::FileModel;

/// Runs the pass over the model; returns diagnostics (waivers applied).
pub fn analyze(model: &WorkspaceModel, cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &model.files {
        if file.meta.is_shim
            || cfg.is_exempt(&file.meta.rel_path)
            || file.meta.role != Role::Lib
            || !cfg.taint_crates.iter().any(|c| c == &file.meta.crate_name)
        {
            continue;
        }
        for item in &file.fns {
            scan_fn(file, item.body, cfg, &mut out);
        }
    }
    for d in out.iter_mut() {
        if let Some(file) = model.files.iter().find(|f| f.meta.rel_path == d.file) {
            if let Some(w) = file
                .waivers
                .iter()
                .find(|w| w.rule == d.rule && w.covers == d.line)
            {
                d.waived = true;
                d.waiver_reason = Some(w.reason.clone());
            }
        }
    }
    out
}

/// Expression classification for a token span.
#[derive(Debug, PartialEq)]
enum Rhs {
    Sanitized,
    Tainted,
    Clean,
}

fn scan_fn(file: &FileModel, body: (usize, usize), cfg: &Config, out: &mut Vec<Diagnostic>) {
    let toks = &file.lexed.toks;
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    let mut aliases: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut i = body.0;
    while i <= body.1 && i < toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || file.in_test_region(t.line) {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "let" => {
                let (pat, eq) = pattern_until_eq(toks, i + 1, body.1);
                if let Some(eq) = eq {
                    let end = stmt_end(toks, eq + 1, body.1);
                    match classify_rhs(toks, eq + 1, end, cfg, &tainted) {
                        Rhs::Tainted => {
                            let srcs = tainted_idents(toks, eq + 1, end, cfg, &tainted);
                            for p in &pat {
                                tainted.insert(p.clone());
                                aliases.entry(p.clone()).or_default().extend(srcs.clone());
                            }
                        }
                        Rhs::Sanitized => {
                            for p in &pat {
                                tainted.remove(p);
                            }
                        }
                        Rhs::Clean => {
                            for p in &pat {
                                tainted.remove(p);
                                aliases.remove(p);
                            }
                        }
                    }
                    check_sinks(file, toks, eq + 1, end, cfg, &tainted, out);
                    i = end;
                    continue;
                }
            }
            "for" => {
                // `for <pat> in <expr> {` — bindings alias the iterated
                // collections and inherit their taint.
                let mut k = i + 1;
                let mut pat = Vec::new();
                while k <= body.1 && toks[k].text != "in" {
                    if toks[k].kind == TokKind::Ident {
                        pat.push(toks[k].text.clone());
                    }
                    k += 1;
                }
                let expr_start = k + 1;
                let mut depth = 0i64;
                let mut e = expr_start;
                while e <= body.1 {
                    match toks[e].text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => break,
                        _ => {}
                    }
                    e += 1;
                }
                let srcs = tainted_idents(toks, expr_start, e, cfg, &tainted);
                if !srcs.is_empty()
                    || classify_rhs(toks, expr_start, e, cfg, &tainted) == Rhs::Tainted
                {
                    for p in &pat {
                        tainted.insert(p.clone());
                        aliases.entry(p.clone()).or_default().extend(srcs.clone());
                    }
                }
                i = e;
                continue;
            }
            _ => {}
        }
        // Assignment / compound assignment to an existing binding
        // (optionally through a deref: `*s += …`).
        if let Some(op) = toks.get(i + 1).map(|n| n.text.as_str()) {
            if (op == "=" || op == "+=" || op == "-=")
                && i.checked_sub(1)
                    .map(|p| toks[p].text != "." && toks[p].text != "let")
                    .unwrap_or(true)
            {
                let end = stmt_end(toks, i + 2, body.1);
                let target = t.text.clone();
                match classify_rhs(toks, i + 2, end, cfg, &tainted) {
                    Rhs::Sanitized => {
                        // The noise write-back: clears the target and the
                        // collections it aliases.
                        tainted.remove(&target);
                        if let Some(srcs) = aliases.get(&target) {
                            for s in srcs.clone() {
                                tainted.remove(&s);
                            }
                        }
                    }
                    Rhs::Tainted => {
                        tainted.insert(target.clone());
                        if let Some(srcs) = aliases.get(&target) {
                            for s in srcs.clone() {
                                tainted.insert(s);
                            }
                        }
                    }
                    Rhs::Clean => {
                        if op == "=" {
                            tainted.remove(&target);
                        }
                    }
                }
                check_sinks(file, toks, i + 2, end, cfg, &tainted, out);
                i = end;
                continue;
            }
        }
        // Bare sink calls in expression statements.
        if cfg.taint_sinks.iter().any(|s| s == &t.text)
            && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(")
        {
            check_sinks(file, toks, i, stmt_end(toks, i, body.1), cfg, &tainted, out);
            i = stmt_end(toks, i, body.1);
            continue;
        }
        i += 1;
    }
}

/// Pattern identifiers up to `=` (returns its index) or statement end.
fn pattern_until_eq(toks: &[Tok], from: usize, limit: usize) -> (Vec<String>, Option<usize>) {
    let mut pat = Vec::new();
    let mut k = from;
    while k <= limit && k < toks.len() {
        match toks[k].text.as_str() {
            "=" => return (pat, Some(k)),
            ";" => return (pat, None),
            "mut" => {}
            _ => {
                if toks[k].kind == TokKind::Ident {
                    pat.push(toks[k].text.clone());
                }
            }
        }
        k += 1;
    }
    (pat, None)
}

/// Index of the `;` ending the statement starting at `from` (same brace
/// depth), or `limit`.
fn stmt_end(toks: &[Tok], from: usize, limit: usize) -> usize {
    let mut depth = 0i64;
    let mut k = from;
    while k <= limit && k < toks.len() {
        match toks[k].text.as_str() {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                if depth == 0 {
                    return k;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return k,
            _ => {}
        }
        k += 1;
    }
    limit
}

/// Classifies a token span: sanitizer call > tainted mention > clean.
fn classify_rhs(
    toks: &[Tok],
    from: usize,
    to: usize,
    cfg: &Config,
    tainted: &BTreeSet<String>,
) -> Rhs {
    for k in from..to.min(toks.len()) {
        let t = &toks[k];
        if t.kind != TokKind::Ident {
            continue;
        }
        if cfg.taint_sanitizers.iter().any(|s| s == &t.text)
            && toks.get(k + 1).map(|n| n.text.as_str()) == Some("(")
        {
            return Rhs::Sanitized;
        }
    }
    if tainted_idents(toks, from, to, cfg, tainted).is_empty() {
        Rhs::Clean
    } else {
        Rhs::Tainted
    }
}

/// Tainted variables (and source accessors) mentioned in a token span.
fn tainted_idents(
    toks: &[Tok],
    from: usize,
    to: usize,
    cfg: &Config,
    tainted: &BTreeSet<String>,
) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for k in from..to.min(toks.len()) {
        let t = &toks[k];
        if t.kind != TokKind::Ident {
            continue;
        }
        if tainted.contains(&t.text) {
            out.insert(t.text.clone());
        }
        if cfg.taint_sources.iter().any(|s| s == &t.text)
            && toks.get(k + 1).map(|n| n.text.as_str()) == Some("(")
        {
            out.insert(t.text.clone());
        }
    }
    out
}

/// Reports every sink call in the span that receives tainted data.
#[allow(clippy::too_many_arguments)]
fn check_sinks(
    file: &FileModel,
    toks: &[Tok],
    from: usize,
    to: usize,
    cfg: &Config,
    tainted: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    for k in from..to.min(toks.len()) {
        let t = &toks[k];
        if t.kind != TokKind::Ident
            || !cfg.taint_sinks.iter().any(|s| s == &t.text)
            || toks.get(k + 1).map(|n| n.text.as_str()) != Some("(")
        {
            continue;
        }
        // Arguments, plus the receiver for method-form sinks
        // (`tainted.to_string()`).
        let close = stmt_end(toks, k + 2, to);
        let mut data = tainted_idents(toks, k + 2, close, cfg, tainted);
        if k >= 2 && toks[k - 1].text == "." {
            let recv_start = k.saturating_sub(8);
            data.extend(tainted_idents(toks, recv_start, k, cfg, tainted));
        }
        if data.is_empty() {
            continue;
        }
        let names: Vec<String> = data.into_iter().collect();
        out.push(Diagnostic {
            rule: RuleId::DpTaintFlow,
            severity: cfg.severity(RuleId::DpTaintFlow),
            file: file.meta.rel_path.clone(),
            line: t.line,
            message: format!(
                "pre-noise gradient data ({}) reaches sink `{}`: per-example \
                 gradients must pass the sanctioned noise path before being \
                 emitted, recorded, or serialized (DP guarantee)",
                names.join(", "),
                t.text
            ),
            snippet: file.snippet(t.line),
            suggestion: None,
            waived: false,
            waiver_reason: None,
            related: Vec::new(),
            baselined: false,
        });
    }
}

/// True when nothing denies (used by tests).
pub fn clean(diags: &[Diagnostic]) -> bool {
    !diags.iter().any(|d| !d.waived && d.severity == Severity::Deny)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::classify;
    use crate::graph::WorkspaceModel;
    use crate::syntax::FileModel;

    fn run(src: &str) -> Vec<Diagnostic> {
        let cfg = Config::default();
        let model = WorkspaceModel::build(vec![FileModel::build(
            classify("crates/nnet/src/train_hooks.rs"),
            &cfg,
            src.to_string(),
        )]);
        analyze(&model, &cfg)
    }

    #[test]
    fn direct_source_to_sink_denies() {
        let out = run(
            "fn leak(&mut self) {\n\
             let g = self.model.flat_gradients();\n\
             self.events.emit(&g);\n\
             }\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("reaches sink `emit`"));
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn derived_value_stays_tainted_through_let_chain() {
        let out = run(
            "fn leak(&mut self) {\n\
             let g = self.model.flat_gradients();\n\
             let norm = l2(&g);\n\
             self.metrics.record(norm as f64);\n\
             }\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("norm"));
    }

    #[test]
    fn noise_path_clears_taint_including_aliased_collection() {
        let out = run(
            "fn sanitize(&mut self) {\n\
             let g = self.model.flat_gradients();\n\
             let mut sum = vec![0.0; g.len()];\n\
             for (s, gi) in sum.iter_mut().zip(&g) { *s += gi; }\n\
             for s in sum.iter_mut() { *s += self.normal.sample(&mut self.rng); }\n\
             self.events.emit(&sum);\n\
             }\n",
        );
        assert!(clean(&out), "{out:?}");
    }

    #[test]
    fn sink_before_noise_still_denies() {
        let out = run(
            "fn sanitize(&mut self) {\n\
             let g = self.model.flat_gradients();\n\
             let mut sum = vec![0.0; g.len()];\n\
             for (s, gi) in sum.iter_mut().zip(&g) { *s += gi; }\n\
             self.events.emit(&sum);\n\
             for s in sum.iter_mut() { *s += self.normal.sample(&mut self.rng); }\n\
             }\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 5);
    }

    #[test]
    fn source_passed_directly_to_sink_denies() {
        let out = run("fn leak(&mut self) { self.events.emit(self.model.flat_gradients()); }\n");
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn clean_reassignment_clears() {
        let out = run(
            "fn ok(&mut self) {\n\
             let mut g = self.model.flat_gradients();\n\
             g = self.noise_free_summary();\n\
             self.events.emit(&g);\n\
             }\n",
        );
        assert!(clean(&out), "{out:?}");
    }

    #[test]
    fn untainted_sinks_are_fine_and_other_crates_skipped() {
        let out = run(
            "fn ok(&self) { self.events.emit(\"loss\"); self.metrics.record(self.step as f64); }\n",
        );
        assert!(out.is_empty(), "{out:?}");

        // Same leak outside taint_crates: skipped.
        let cfg = Config::default();
        let model = WorkspaceModel::build(vec![FileModel::build(
            classify("crates/sketch/src/lib.rs"),
            &cfg,
            "fn leak(&mut self) { let g = self.m.flat_gradients(); self.e.emit(&g); }\n".into(),
        )]);
        assert!(analyze(&model, &cfg).is_empty());
    }

    #[test]
    fn waiver_covers_taint_finding() {
        let out = run(
            "fn audit(&mut self) {\n\
             let g = self.model.flat_gradients();\n\
             let norm = l2(&g);\n\
             // lint: allow(dp-taint-flow) pre-noise norm histogram is outside the DP claim; documented in OPERATIONS.md\n\
             self.metrics.record(norm as f64);\n\
             }\n",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].waived, "{out:?}");
        assert!(clean(&out));
    }
}
