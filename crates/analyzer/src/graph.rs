//! The workspace model: every file's syntactic model plus name-based
//! call resolution and the reverse-dependency cone used by `--diff`.
//!
//! Call resolution is deliberately conservative and purely nominal — no
//! types exist at this layer. A call resolves to *every* function the
//! name could plausibly mean under the narrowest scope that matches
//! (same file, then same crate, then the crate named by the qualifier or
//! an import). Over-approximating targets makes the capability pass
//! over-taint, never under-taint, which is the right failure mode for a
//! deny gate; precision is recovered with `lint: caps(...)` declarations.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Role;
use crate::syntax::{CallSite, FileModel};

/// Reference to one `fn` item: (file index, fn index).
pub type FnRef = (usize, usize);

/// The whole workspace, syntactically.
pub struct WorkspaceModel {
    /// Every file's model, in deterministic (sorted-path) order.
    pub files: Vec<FileModel>,
    /// `crate dir name -> file indices`.
    pub by_crate: BTreeMap<String, Vec<usize>>,
    /// `import root segment -> crate dir name` (package-name aliases:
    /// `netshare` -> `core`, `trace_synth` -> `trace-synth`).
    pub crate_alias: BTreeMap<String, String>,
    /// `(crate, fn name) -> fn refs` — the resolution index.
    fn_index: BTreeMap<(String, String), Vec<FnRef>>,
}

impl WorkspaceModel {
    /// Builds the model from per-file models.
    pub fn build(files: Vec<FileModel>) -> WorkspaceModel {
        let mut by_crate: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut fn_index: BTreeMap<(String, String), Vec<FnRef>> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            by_crate.entry(f.meta.crate_name.clone()).or_default().push(fi);
            for (ii, item) in f.fns.iter().enumerate() {
                fn_index
                    .entry((f.meta.crate_name.clone(), item.name.clone()))
                    .or_default()
                    .push((fi, ii));
            }
        }
        let mut crate_alias: BTreeMap<String, String> = BTreeMap::new();
        for name in by_crate.keys() {
            crate_alias.insert(name.replace('-', "_"), name.clone());
        }
        // Package names that differ from their crate directory.
        crate_alias.insert("netshare".to_string(), "core".to_string());
        WorkspaceModel { files, by_crate, crate_alias, fn_index }
    }

    /// File stem (`buffer` for `.../buffer.rs`) of file `fi`.
    pub fn stem(&self, fi: usize) -> String {
        let rel = &self.files[fi].meta.rel_path;
        let base = rel.rsplit('/').next().unwrap_or(rel);
        base.trim_end_matches(".rs").to_string()
    }

    /// All fns named `name` inside crate `krate`.
    fn in_crate(&self, krate: &str, name: &str) -> Vec<FnRef> {
        self.fn_index
            .get(&(krate.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    /// Resolves a call site in file `fi` to candidate targets. Empty when
    /// the name is unknown everywhere reachable (std, shim-internal, …).
    pub fn resolve_call(&self, fi: usize, call: &CallSite) -> Vec<FnRef> {
        let file = &self.files[fi];
        let krate = &file.meta.crate_name;

        if call.method {
            // Methods carry no path: resolve within the caller's crate
            // only (cross-crate method calls need a capability
            // declaration on the caller instead).
            return self.in_crate(krate, &call.name);
        }
        if let Some(root) = &call.root_qualifier {
            // `seg::…::name(…)` — root may be a crate, a sibling module
            // file, `crate`/`self`, or a type brought in by `use`.
            if root == "crate" || root == "self" || root == "super" {
                return self.in_crate(krate, &call.name);
            }
            if let Some(target) = self.crate_alias.get(root) {
                return self.in_crate(target, &call.name);
            }
            // Type or module name: find which crate exported it.
            if let Some(imported_from) = file
                .uses
                .iter()
                .find(|u| u.names.contains(root) && u.root != *root)
                .map(|u| u.root.clone())
            {
                if let Some(target) = self.crate_alias.get(&imported_from) {
                    return self.in_crate(target, &call.name);
                }
            }
            // Fall through: same-crate module path (`module::helper()`).
            return self.in_crate(krate, &call.name);
        }
        // Bare `name(…)`: innermost scope first — same file, else an
        // import that names it, else same crate.
        let here: Vec<FnRef> = self
            .in_crate(krate, &call.name)
            .into_iter()
            .filter(|&(f, _)| f == fi)
            .collect();
        if !here.is_empty() {
            return here;
        }
        if let Some(imported_from) = file
            .uses
            .iter()
            .find(|u| u.names.iter().skip(1).any(|n| n == &call.name))
            .map(|u| u.root.clone())
        {
            if let Some(target) = self.crate_alias.get(&imported_from) {
                return self.in_crate(target, &call.name);
            }
        }
        self.in_crate(krate, &call.name)
    }

    /// File-level dependency edges `caller file -> callee file`, from
    /// resolved calls. Used (reversed) by the `--diff` cone.
    pub fn file_deps(&self) -> Vec<BTreeSet<usize>> {
        let mut deps: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); self.files.len()];
        for (fi, file) in self.files.iter().enumerate() {
            for call in &file.calls {
                for (tf, _) in self.resolve_call(fi, call) {
                    if tf != fi {
                        deps[fi].insert(tf);
                    }
                }
            }
        }
        deps
    }

    /// The reverse-dependency cone of `changed` (workspace-relative
    /// paths): the changed files, every file in their crates, and —
    /// transitively — every file with a resolved call into a cone file.
    /// Returns file indices, sorted.
    pub fn reverse_cone(&self, changed: &[String]) -> Vec<usize> {
        let mut cone: BTreeSet<usize> = BTreeSet::new();
        for (fi, f) in self.files.iter().enumerate() {
            if changed.iter().any(|c| c == &f.meta.rel_path) {
                cone.insert(fi);
                // Intra-crate coupling is not tracked edge-by-edge;
                // include crate siblings wholesale.
                if f.meta.role == Role::Lib {
                    for &sib in &self.by_crate[&f.meta.crate_name] {
                        cone.insert(sib);
                    }
                }
            }
        }
        let deps = self.file_deps();
        loop {
            let before = cone.len();
            for (fi, d) in deps.iter().enumerate() {
                if !cone.contains(&fi) && d.iter().any(|t| cone.contains(t)) {
                    cone.insert(fi);
                }
            }
            if cone.len() == before {
                break;
            }
        }
        cone.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{classify, Config};
    use crate::syntax::FileModel;

    fn ws(files: &[(&str, &str)]) -> WorkspaceModel {
        let cfg = Config::default();
        WorkspaceModel::build(
            files
                .iter()
                .map(|(path, src)| FileModel::build(classify(path), &cfg, src.to_string()))
                .collect(),
        )
    }

    #[test]
    fn resolution_prefers_same_file_then_crate_then_import() {
        let m = ws(&[
            (
                "crates/alpha/src/lib.rs",
                "use beta::helper;\nfn local() {}\nfn caller() { local(); helper(); beta::remote(); }\n",
            ),
            ("crates/alpha/src/other.rs", "fn local() {}\n"),
            ("crates/beta/src/lib.rs", "pub fn helper() {}\npub fn remote() {}\n"),
        ]);
        let calls = &m.files[0].calls;
        let local = calls.iter().find(|c| c.name == "local").unwrap();
        assert_eq!(m.resolve_call(0, local), vec![(0, 0)]);
        let helper = calls.iter().find(|c| c.name == "helper").unwrap();
        assert_eq!(m.resolve_call(0, helper), vec![(2, 0)]);
        let remote = calls.iter().find(|c| c.name == "remote").unwrap();
        assert_eq!(m.resolve_call(0, remote), vec![(2, 1)]);
    }

    #[test]
    fn reverse_cone_pulls_in_callers_transitively() {
        let m = ws(&[
            ("crates/alpha/src/lib.rs", "pub fn base() {}\n"),
            ("crates/beta/src/lib.rs", "fn mid() { alpha::base(); }\n"),
            ("crates/gamma/src/lib.rs", "fn top() { beta::mid(); }\n"),
            ("crates/delta/src/lib.rs", "fn unrelated() {}\n"),
        ]);
        let cone = m.reverse_cone(&["crates/alpha/src/lib.rs".to_string()]);
        assert_eq!(cone, vec![0, 1, 2]);
    }
}
