//! Workspace capability analysis (`capability-graph`).
//!
//! Every `fn` gets an effect manifest over six capabilities — `entropy`,
//! `clock`, `net`, `fs`, `unsafe`, `panic` — from direct lexical
//! evidence, then capabilities propagate caller-ward over the resolved
//! call graph. Propagation is *absorbed* at sanctioned boundaries: a
//! call into a file that is allowed to hold a capability (the entropy /
//! clock whitelists, `lint: io-boundary` modules for `net`, shims,
//! non-library roles, and `lint: caps(...)` declarations) does not taint
//! the caller — that is the point of a sanctioned boundary. What remains
//! is exactly the tag-at-the-leaf blindspot of the per-file rules: an
//! untagged library helper that transitively reaches `.accept(` or
//! `SystemTime::now` through other *unsanctioned* helpers.
//!
//! Only `entropy`, `clock`, and `net` deny ([`Config::deny_caps`]);
//! `fs`, `unsafe`, and `panic` are manifest-only and appear in the JSON
//! graph dump for auditing. Direct evidence already covered by the
//! legacy leaf rules (`ambient-entropy`, `telemetry-clock`,
//! `blocking-accept-loop`) is not re-reported; direct evidence those
//! rules miss (`from_entropy`, `TcpListener::bind`, `TcpStream::connect`)
//! fires here.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::{Config, Role, RuleId, Severity};
use crate::engine::{Diagnostic, RelatedSite};
use crate::graph::WorkspaceModel;
use crate::lexer::TokKind;
use crate::syntax::FileModel;

/// Capability index space.
pub const CAPS: [&str; 6] = ["entropy", "clock", "net", "fs", "unsafe", "panic"];

/// One piece of direct evidence.
#[derive(Debug, Clone)]
struct Evidence {
    line: u32,
    what: String,
    /// True when no legacy per-file rule covers this evidence kind.
    novel: bool,
}

/// Pass output.
pub struct CapAnalysis {
    /// Deny findings (propagated or novel-direct deny-caps).
    pub diagnostics: Vec<Diagnostic>,
    /// `(module rel_path, capability names)` for every module that
    /// carries any capability, sanctioned or not.
    pub manifest: Vec<(String, Vec<String>)>,
}

/// Runs the pass.
/// `(call line, callee file, callee fn line, callee name)` — the call
/// through which a propagated capability was inherited.
type Witness = (u32, usize, u32, String);

pub fn analyze(model: &WorkspaceModel, cfg: &Config) -> CapAnalysis {
    // Direct evidence per (file, fn, cap) — first witness wins.
    let mut direct: Vec<Vec<BTreeMap<usize, Evidence>>> = Vec::new();
    for file in &model.files {
        let mut per_fn = vec![BTreeMap::new(); file.fns.len()];
        if !file.meta.is_shim && !cfg.is_exempt(&file.meta.rel_path) {
            collect_direct(file, &mut per_fn);
        }
        direct.push(per_fn);
    }

    // Propagated caps per (file, fn): start from direct, iterate to a
    // fixpoint over resolved calls; record the witness call per cap.
    let mut caps: Vec<Vec<BTreeSet<usize>>> = direct
        .iter()
        .map(|f| f.iter().map(|m| m.keys().copied().collect()).collect())
        .collect();
    // (file, fn, cap) -> the witness call the capability arrived through
    let mut via: BTreeMap<(usize, usize, usize), Witness> = BTreeMap::new();
    loop {
        let mut changed = false;
        for fi in 0..model.files.len() {
            let file = &model.files[fi];
            if file.meta.is_shim || cfg.is_exempt(&file.meta.rel_path) {
                continue;
            }
            for call in &file.calls {
                if file.in_test_region(call.line) {
                    continue;
                }
                let Some(caller) = file.enclosing_fn(call.tok) else {
                    continue;
                };
                for (tf, ti) in model.resolve_call(fi, call) {
                    if tf == fi && ti == caller {
                        continue;
                    }
                    let callee_file = &model.files[tf];
                    let gained: Vec<usize> = caps[tf][ti]
                        .iter()
                        .copied()
                        .filter(|&c| !sanctioned(callee_file, cfg, c))
                        .filter(|c| !caps[fi][caller].contains(c))
                        .collect();
                    for c in gained {
                        caps[fi][caller].insert(c);
                        via.entry((fi, caller, c)).or_insert((
                            call.line,
                            tf,
                            model.files[tf].fns[ti].line,
                            call.name.clone(),
                        ));
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Module manifests: union over fns.
    let mut manifest = Vec::new();
    for (fi, file) in model.files.iter().enumerate() {
        let mut all: BTreeSet<usize> = BTreeSet::new();
        for f in &caps[fi] {
            all.extend(f.iter().copied());
        }
        if !all.is_empty() {
            manifest.push((
                file.meta.rel_path.clone(),
                all.iter().map(|&c| CAPS[c].to_string()).collect(),
            ));
        }
    }

    // Findings: deny-caps in unsanctioned library files.
    let deny: BTreeSet<usize> = CAPS
        .iter()
        .enumerate()
        .filter(|(_, n)| cfg.deny_caps.iter().any(|d| d == **n))
        .map(|(i, _)| i)
        .collect();
    let mut diagnostics = Vec::new();
    let mut seen: BTreeSet<(String, u32, usize)> = BTreeSet::new();
    for (fi, file) in model.files.iter().enumerate() {
        if file.meta.is_shim
            || cfg.is_exempt(&file.meta.rel_path)
            || file.meta.role != Role::Lib
        {
            continue;
        }
        for (ii, fn_caps) in caps[fi].iter().enumerate() {
            for &c in fn_caps.iter().filter(|c| deny.contains(c)) {
                if sanctioned(file, cfg, c) {
                    continue;
                }
                if let Some(ev) = direct[fi][ii].get(&c) {
                    if ev.novel && seen.insert((file.meta.rel_path.clone(), ev.line, c)) {
                        diagnostics.push(direct_diag(file, c, ev, cfg));
                    }
                } else if let Some((line, tf, tline, name)) = via.get(&(fi, ii, c)) {
                    if seen.insert((file.meta.rel_path.clone(), *line, c)) {
                        diagnostics.push(propagated_diag(
                            file,
                            c,
                            *line,
                            name,
                            (&model.files[*tf].meta.rel_path, *tline),
                            cfg,
                        ));
                    }
                }
            }
        }
    }

    for d in diagnostics.iter_mut() {
        if let Some(file) = model.files.iter().find(|f| f.meta.rel_path == d.file) {
            if let Some(w) = file
                .waivers
                .iter()
                .find(|w| w.rule == d.rule && w.covers == d.line)
            {
                d.waived = true;
                d.waiver_reason = Some(w.reason.clone());
            }
        }
    }
    CapAnalysis { diagnostics, manifest }
}

/// True when `file` may hold capability `c` without findings — and
/// absorbs it instead of passing it to callers.
fn sanctioned(file: &FileModel, cfg: &Config, c: usize) -> bool {
    if file.meta.is_shim || file.meta.role != Role::Lib {
        return true;
    }
    if file.caps_decl.iter().any(|d| d == CAPS[c]) {
        return true;
    }
    let rel = &file.meta.rel_path;
    match CAPS[c] {
        "entropy" => cfg.entropy_whitelist.iter().any(|p| rel.starts_with(p)),
        "clock" => cfg.clock_whitelist.iter().any(|p| rel.starts_with(p)),
        "net" => file.io_tagged,
        // fs/unsafe/panic are manifest-only: sanctioned everywhere.
        _ => true,
    }
}

fn collect_direct(file: &FileModel, per_fn: &mut [BTreeMap<usize, Evidence>]) {
    let toks = &file.lexed.toks;
    // lint: allow(panic-in-lib) every name passed below is a literal from CAPS
    let cap_idx = |name: &str| CAPS.iter().position(|c| *c == name).unwrap();
    let mut add = |file: &FileModel, tok: usize, cap: &str, what: &str, novel: bool| {
        let line = toks[tok].line;
        if file.in_test_region(line) {
            return;
        }
        if let Some(fi) = file.enclosing_fn(tok) {
            per_fn[fi].entry(cap_idx(cap)).or_insert(Evidence {
                line,
                what: what.to_string(),
                novel,
            });
        }
    };
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
        let prev2 = i.checked_sub(2).map(|p| toks[p].text.as_str());
        let next = toks.get(i + 1).map(|n| n.text.as_str());
        let is_method = prev == Some(".");
        let is_call = next == Some("(");
        match t.text.as_str() {
            "thread_rng" if is_call => add(file, i, "entropy", "thread_rng()", false),
            "from_entropy" if is_call && is_method => {
                add(file, i, "entropy", ".from_entropy()", true)
            }
            "random" if is_call && prev == Some("::") && prev2 == Some("rand") => {
                add(file, i, "entropy", "rand::random()", false)
            }
            "now" if is_call && prev == Some("::") => {
                if prev2 == Some("SystemTime") {
                    add(file, i, "clock", "SystemTime::now()", false);
                } else if prev2 == Some("Instant") {
                    add(file, i, "clock", "Instant::now()", false);
                }
            }
            "monotonic_nanos" if is_call => {
                add(file, i, "clock", "telemetry::clock::monotonic_nanos()", false)
            }
            "accept" if is_call && is_method => add(file, i, "net", ".accept(", false),
            "read_exact" if is_call && is_method => add(file, i, "net", ".read_exact(", false),
            "bind" if is_call && prev == Some("::") && prev2 == Some("TcpListener") => {
                add(file, i, "net", "TcpListener::bind(", true)
            }
            "connect" if is_call && prev == Some("::") && prev2 == Some("TcpStream") => {
                add(file, i, "net", "TcpStream::connect(", true)
            }
            "unsafe" => add(file, i, "unsafe", "unsafe", false),
            "panic" if next == Some("!") => add(file, i, "panic", "panic!", false),
            "unwrap" | "expect" if is_call && is_method => add(file, i, "panic", ".unwrap()", false),
            "File" if next == Some("::") => add(file, i, "fs", "File::", false),
            "OpenOptions" => add(file, i, "fs", "OpenOptions", false),
            "read_to_string" | "create_dir_all" | "remove_file" | "rename"
                if prev == Some("::") && prev2 == Some("fs") =>
            {
                add(file, i, "fs", "std::fs op", false)
            }
            _ => {}
        }
    }
}

fn direct_diag(file: &FileModel, c: usize, ev: &Evidence, cfg: &Config) -> Diagnostic {
    Diagnostic {
        rule: RuleId::CapabilityGraph,
        severity: cfg.severity(RuleId::CapabilityGraph),
        file: file.meta.rel_path.clone(),
        line: ev.line,
        message: format!(
            "module uses the `{}` capability directly (`{}`) but is not \
             sanctioned for it; move this behind a sanctioned boundary or \
             declare it with `lint: caps({})`",
            CAPS[c],
            ev.what.trim_end_matches('('),
            CAPS[c]
        ),
        snippet: file.snippet(ev.line),
        suggestion: None,
        waived: false,
        waiver_reason: None,
        related: Vec::new(),
        baselined: false,
    }
}

fn propagated_diag(
    file: &FileModel,
    c: usize,
    line: u32,
    callee: &str,
    callee_site: (&String, u32),
    cfg: &Config,
) -> Diagnostic {
    Diagnostic {
        rule: RuleId::CapabilityGraph,
        severity: cfg.severity(RuleId::CapabilityGraph),
        file: file.meta.rel_path.clone(),
        line,
        message: format!(
            "call to `{callee}` transitively reaches the `{}` capability \
             through unsanctioned helpers; route it through a sanctioned \
             boundary or declare `lint: caps({})` on this module",
            CAPS[c], CAPS[c]
        ),
        snippet: file.snippet(line),
        suggestion: None,
        waived: false,
        waiver_reason: None,
        related: vec![RelatedSite {
            file: callee_site.0.clone(),
            line: callee_site.1,
            note: format!("`{callee}` defined here carries `{}`", CAPS[c]),
        }],
        baselined: false,
    }
}

/// True when nothing denies (used by tests).
pub fn clean(a: &CapAnalysis) -> bool {
    !a.diagnostics
        .iter()
        .any(|d| !d.waived && d.severity == Severity::Deny)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::classify;
    use crate::graph::WorkspaceModel;
    use crate::syntax::FileModel;

    fn run(files: &[(&str, &str)]) -> CapAnalysis {
        let cfg = Config::default();
        let model = WorkspaceModel::build(
            files
                .iter()
                .map(|(p, s)| FileModel::build(classify(p), &cfg, s.to_string()))
                .collect(),
        );
        analyze(&model, &cfg)
    }

    #[test]
    fn transitive_net_capability_trips_untagged_caller() {
        let helper = "pub fn raw_read(sock: &mut TcpStream, buf: &mut [u8]) {\n\
                      sock.read_exact(buf).unwrap();\n\
                      }\n";
        let caller = "use beta::raw_read;\n\
                      pub fn pull(sock: &mut TcpStream) { let mut b = [0u8; 4]; raw_read(sock, &mut b); }\n";
        let out = run(&[
            ("crates/beta/src/lib.rs", helper),
            ("crates/alpha/src/lib.rs", caller),
        ]);
        // Two findings: beta's direct evidence is covered by the legacy
        // rule (not re-reported here), alpha's propagated use fires.
        let prop: Vec<_> = out
            .diagnostics
            .iter()
            .filter(|d| d.file == "crates/alpha/src/lib.rs")
            .collect();
        assert_eq!(prop.len(), 1, "{:?}", out.diagnostics);
        assert!(prop[0].message.contains("`raw_read` transitively reaches the `net`"));
        assert_eq!(prop[0].related[0].file, "crates/beta/src/lib.rs");
    }

    #[test]
    fn io_tagged_callee_absorbs_net() {
        let helper = "//! lint: io-boundary — sanctioned socket module\n\
                      pub fn raw_read(sock: &mut TcpStream, buf: &mut [u8]) {\n\
                      sock.read_exact(buf).unwrap();\n\
                      }\n";
        let caller = "use beta::raw_read;\n\
                      pub fn pull(sock: &mut TcpStream) { let mut b = [0u8; 4]; raw_read(sock, &mut b); }\n";
        let out = run(&[
            ("crates/beta/src/lib.rs", helper),
            ("crates/alpha/src/lib.rs", caller),
        ]);
        assert!(clean(&out), "{:?}", out.diagnostics);
    }

    #[test]
    fn caps_declaration_sanctions_and_absorbs() {
        let helper = "//! lint: caps(clock) — owns wall-clock reads for this crate\n\
                      pub fn stamp() -> u64 { let t = SystemTime::now(); 0 }\n";
        let caller = "pub fn log_stamp() { beta::stamp(); }\n";
        let out = run(&[
            ("crates/beta/src/lib.rs", helper),
            ("crates/alpha/src/lib.rs", caller),
        ]);
        assert!(clean(&out), "{:?}", out.diagnostics);
    }

    #[test]
    fn novel_direct_evidence_fires_without_legacy_overlap() {
        let src = "pub fn dial() { let s = TcpStream::connect(\"127.0.0.1:1\"); }\n";
        let out = run(&[("crates/alpha/src/lib.rs", src)]);
        assert_eq!(out.diagnostics.len(), 1, "{:?}", out.diagnostics);
        assert!(out.diagnostics[0].message.contains("`net` capability directly"));
    }

    #[test]
    fn clock_propagates_through_unsanctioned_chain() {
        let low = "pub fn raw_now() -> u64 { let t = SystemTime::now(); 0 }\n";
        let mid = "pub fn helper() -> u64 { beta::raw_now() }\n";
        let top = "pub fn timestamped() { gamma::helper(); }\n";
        let out = run(&[
            ("crates/beta/src/lib.rs", low),
            ("crates/gamma/src/lib.rs", mid),
            ("crates/alpha/src/lib.rs", top),
        ]);
        assert!(
            out.diagnostics
                .iter()
                .any(|d| d.file == "crates/alpha/src/lib.rs"
                    && d.message.contains("`helper` transitively reaches the `clock`")),
            "{:?}",
            out.diagnostics
        );
    }

    #[test]
    fn manifest_lists_all_six_capabilities() {
        let src = "pub fn f() { unsafe { x(); } panic!(\"no\"); }\n";
        let out = run(&[("crates/alpha/src/lib.rs", src)]);
        let m = out
            .manifest
            .iter()
            .find(|(p, _)| p == "crates/alpha/src/lib.rs")
            .unwrap();
        assert!(m.1.contains(&"unsafe".to_string()));
        assert!(m.1.contains(&"panic".to_string()));
        // Manifest-only caps never deny.
        assert!(clean(&out));
    }

    #[test]
    fn waiver_covers_capability_finding() {
        let helper = "pub fn raw_now() -> u64 { let t = SystemTime::now(); 0 }\n";
        let caller = "pub fn stamp() -> u64 {\n\
                      // lint: allow(capability-graph) startup banner only, not on any data path\n\
                      beta::raw_now()\n\
                      }\n";
        let out = run(&[
            ("crates/beta/src/lib.rs", helper),
            ("crates/alpha/src/lib.rs", caller),
        ]);
        let alpha: Vec<_> = out
            .diagnostics
            .iter()
            .filter(|d| d.file == "crates/alpha/src/lib.rs")
            .collect();
        assert_eq!(alpha.len(), 1);
        assert!(alpha[0].waived, "{:?}", alpha);
    }
}
