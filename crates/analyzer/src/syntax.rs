//! The syntactic layer: a per-file item model on top of the lexer.
//!
//! Still no type information — this layer extracts exactly what the
//! workspace-graph passes need from the token stream: `fn` items with
//! brace-matched body spans, `use` declarations, call sites with their
//! qualifier/receiver shape, file tags (`lint: dp-post-noise`,
//! `lint: io-boundary`, `lint: caps(...)`), inline waivers, and
//! positional annotations (`lint: lock-order(<name>)`). Everything is
//! conservative: a construct the extractor cannot parse is skipped, not
//! guessed at, so graph passes under-approximate rather than panic.

use crate::config::{Config, FileMeta};
use crate::engine::{parse_waivers, test_regions, Waiver};
use crate::lexer::{lex, Lexed, Tok, TokKind};

/// Keywords that look like calls when followed by `(`.
const CALLISH_KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "loop", "return", "fn", "in", "as", "move", "let", "else",
    "unsafe", "use",
];

/// One `fn` item (free function, method, or nested fn — closures are not
/// items). Trait-method declarations without bodies are skipped.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, inclusive of both braces.
    pub body: (usize, usize),
}

/// One call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called identifier (method or function name).
    pub name: String,
    /// Immediate path qualifier for `seg::name(...)` calls.
    pub qualifier: Option<String>,
    /// Root of the path qualifier chain (`a` in `a::b::name(...)`).
    pub root_qualifier: Option<String>,
    /// True for `.name(...)` method calls.
    pub method: bool,
    /// Token index of the name.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
}

/// One `use` declaration, flattened: the crate-root segment plus every
/// identifier the declaration brings into scope (group members included).
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// First path segment (`std`, `crate`, a workspace crate, …).
    pub root: String,
    /// All identifiers appearing in the path/group.
    pub names: Vec<String>,
    /// 1-based line.
    pub line: u32,
}

/// A positional `lint: <marker>(<payload>)` annotation: trailing form
/// covers its own line, standalone form covers the next code line —
/// identical placement semantics to waivers.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// The text between the parentheses, trimmed.
    pub payload: String,
    /// The code line this annotation covers.
    pub covers: u32,
}

/// The syntactic model of one file.
#[derive(Debug)]
pub struct FileModel {
    /// Classification (path, crate, role, shim).
    pub meta: FileMeta,
    /// Raw source, kept for snippets.
    pub src: String,
    /// Token/comment stream.
    pub lexed: Lexed,
    /// `fn` items in order of appearance.
    pub fns: Vec<FnItem>,
    /// `use` declarations.
    pub uses: Vec<UseDecl>,
    /// Call sites in token order.
    pub calls: Vec<CallSite>,
    /// Inline `lint: allow(...)` waivers.
    pub waivers: Vec<Waiver>,
    /// `(start_line, end_line)` spans of test items.
    pub test_lines: Vec<(u32, u32)>,
    /// True when tagged `lint: dp-post-noise`.
    pub dp_tagged: bool,
    /// True when tagged `lint: io-boundary` (tag must open its comment).
    pub io_tagged: bool,
    /// Capabilities declared via `lint: caps(...)` (tag must open its
    /// comment), lowercased.
    pub caps_decl: Vec<String>,
    /// `lint: lock-order(<name>)` annotations, by covered line.
    pub lock_names: Vec<Annotation>,
}

impl FileModel {
    /// Builds the model for one file.
    pub fn build(meta: FileMeta, cfg: &Config, src: String) -> FileModel {
        let lexed = lex(&src);
        let fns = extract_fns(&lexed.toks);
        let uses = extract_uses(&lexed.toks);
        let calls = extract_calls(&lexed.toks);
        let waivers = parse_waivers(&lexed);
        let test_lines = test_regions(&lexed.toks);
        let dp_tagged = lexed.comments.iter().any(|c| c.text.contains(&cfg.dp_marker));
        let io_tagged = lexed
            .comments
            .iter()
            .any(|c| comment_opens_with(&c.text, &cfg.io_marker));
        let caps_decl = lexed
            .comments
            .iter()
            .filter(|c| comment_opens_with(&c.text, &cfg.caps_marker))
            .flat_map(|c| {
                let body = c.text.trim_start_matches('!').trim_start();
                let after = &body[cfg.caps_marker.len()..];
                let inner = after.split(')').next().unwrap_or("");
                inner
                    .split(',')
                    .map(|s| s.trim().to_ascii_lowercase())
                    .filter(|s| !s.is_empty())
                    .collect::<Vec<_>>()
            })
            .collect();
        let lock_names = annotations(&lexed, "lint: lock-order(");
        FileModel {
            meta,
            src,
            lexed,
            fns,
            uses,
            calls,
            waivers,
            test_lines,
            dp_tagged,
            io_tagged,
            caps_decl,
            lock_names,
        }
    }

    /// The innermost `fn` item whose body contains token `tok`, if any.
    pub fn enclosing_fn(&self, tok: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.body.0 < tok && tok < f.body.1)
            .min_by_key(|(_, f)| f.body.1 - f.body.0)
            .map(|(i, _)| i)
    }

    /// True when `line` sits inside a test item.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_lines.iter().any(|&(a, b)| line >= a && line <= b)
    }

    /// The trimmed source line (1-based).
    pub fn snippet(&self, line: u32) -> String {
        self.src
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// The `lint: lock-order(<name>)` annotation covering `line`, if any.
    pub fn lock_name_for(&self, line: u32) -> Option<&str> {
        self.lock_names
            .iter()
            .find(|a| a.covers == line)
            .map(|a| a.payload.as_str())
    }
}

/// True when the comment body (doc-`!` stripped) starts with `marker`.
fn comment_opens_with(text: &str, marker: &str) -> bool {
    text.trim_start_matches('!').trim_start().starts_with(marker)
}

/// Extracts positional `marker…)` annotations from comments with
/// waiver-style placement. The marker must include its opening paren.
pub fn annotations(lexed: &Lexed, marker: &str) -> Vec<Annotation> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let Some(idx) = c.text.find(marker) else {
            continue;
        };
        let rest = &c.text[idx + marker.len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let payload = rest[..close].trim().to_string();
        if payload.is_empty() {
            continue;
        }
        let covers = if c.trailing {
            c.line
        } else {
            next_code_line(lexed, c.end_line).unwrap_or(c.end_line + 1)
        };
        out.push(Annotation { payload, covers });
    }
    out
}

fn next_code_line(lexed: &Lexed, after: u32) -> Option<u32> {
    lexed.toks.iter().map(|t| t.line).find(|&l| l > after)
}

/// Finds every `fn name … { body }` by walking from the `fn` keyword to
/// the body's opening brace at paren-depth 0 (signatures cannot contain
/// braces at depth 0), then brace-matching. `fn name(…);` declarations
/// are skipped.
fn extract_fns(toks: &[Tok]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "fn" {
            let Some(name_tok) = toks.get(i + 1) else {
                break;
            };
            if name_tok.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let mut paren = 0i64;
            let mut j = i + 2;
            let mut body = None;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    ";" if paren == 0 => break,
                    "{" if paren == 0 => {
                        body = brace_match(toks, j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(close) = body {
                out.push(FnItem {
                    name: name_tok.text.clone(),
                    line: toks[i].line,
                    body: (j, close),
                });
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

/// Index of the `}` matching the `{` at `open`; EOF-tolerant (unclosed
/// braces match the last token).
pub fn brace_match(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    Some(toks.len().saturating_sub(1))
}

/// Collects `use` declarations; groups (`use a::{b, c as d};`) are
/// flattened into one declaration carrying every identifier.
fn extract_uses(toks: &[Tok]) -> Vec<UseDecl> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "use" {
            let line = toks[i].line;
            let mut names = Vec::new();
            let mut j = i + 1;
            while j < toks.len() && toks[j].text != ";" {
                if toks[j].kind == TokKind::Ident && toks[j].text != "as" {
                    names.push(toks[j].text.clone());
                }
                j += 1;
            }
            if let Some(root) = names.first().cloned() {
                out.push(UseDecl { root, names, line });
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// Collects call sites: `name(`, `seg::name(`, `.name(`. Macro
/// invocations (`name!(`) and call-like keywords are excluded.
fn extract_calls(toks: &[Tok]) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        if CALLISH_KEYWORDS.contains(&name) {
            continue;
        }
        match toks.get(i + 1).map(|t| t.text.as_str()) {
            Some("(") => {}
            _ => continue,
        }
        let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
        if prev == Some("fn") {
            continue; // a declaration, not a call
        }
        let method = prev == Some(".");
        let (qualifier, root_qualifier) = if prev == Some("::") {
            let mut segs = Vec::new();
            let mut k = i - 1;
            // Walk back over `ident ::` pairs.
            while k >= 1 && toks[k].text == "::" && toks[k - 1].kind == TokKind::Ident {
                segs.push(toks[k - 1].text.clone());
                if k < 2 {
                    break;
                }
                k -= 2;
            }
            (segs.first().cloned(), segs.last().cloned())
        } else {
            (None, None)
        };
        out.push(CallSite {
            name: name.to_string(),
            qualifier,
            root_qualifier,
            method,
            tok: i,
            line: toks[i].line,
        });
    }
    out
}

/// The dotted receiver path of a method call at token `tok` (the called
/// name): for `self.state.lock()` returns `"self.state"`. Walks back over
/// `ident . ident` links; anything else (chained calls, indexing) stops
/// the walk.
pub fn receiver_path(toks: &[Tok], tok: usize) -> Option<String> {
    if tok < 2 || toks[tok - 1].text != "." {
        return None;
    }
    let mut segs: Vec<String> = Vec::new();
    let mut k = tok - 1; // the `.`
    while k >= 1 && toks[k].text == "." && toks[k - 1].kind == TokKind::Ident {
        segs.push(toks[k - 1].text.clone());
        if k < 2 {
            break;
        }
        k -= 2;
    }
    if segs.is_empty() {
        return None;
    }
    segs.reverse();
    Some(segs.join("."))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::classify;

    fn model(src: &str) -> FileModel {
        FileModel::build(
            classify("crates/demo/src/lib.rs"),
            &Config::default(),
            src.to_string(),
        )
    }

    #[test]
    fn fns_uses_calls_extracted() {
        let m = model(
            "use std::collections::{BTreeMap, BTreeSet};\n\
             use orchestrator::CancelToken;\n\
             fn alpha() { beta(); telemetry::metrics::counter(\"x\"); }\n\
             fn beta() { self.state.lock(); }\n\
             trait T { fn decl(&self); }\n",
        );
        assert_eq!(
            m.fns.iter().map(|f| f.name.as_str()).collect::<Vec<_>>(),
            vec!["alpha", "beta"]
        );
        assert_eq!(m.uses.len(), 2);
        assert_eq!(m.uses[0].root, "std");
        assert!(m.uses[0].names.contains(&"BTreeSet".to_string()));
        assert_eq!(m.uses[1].root, "orchestrator");

        let beta_call = m.calls.iter().find(|c| c.name == "beta").unwrap();
        assert!(!beta_call.method);
        assert_eq!(m.enclosing_fn(beta_call.tok), Some(0));

        let counter = m.calls.iter().find(|c| c.name == "counter").unwrap();
        assert_eq!(counter.qualifier.as_deref(), Some("metrics"));
        assert_eq!(counter.root_qualifier.as_deref(), Some("telemetry"));

        let lock = m.calls.iter().find(|c| c.name == "lock").unwrap();
        assert!(lock.method);
        assert_eq!(receiver_path(&m.lexed.toks, lock.tok).as_deref(), Some("self.state"));
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let m = model("fn f() { if (x) { vec!(1); } }\n");
        assert!(m.calls.is_empty());
    }

    #[test]
    fn caps_and_lock_annotations_parse() {
        let m = model(
            "//! lint: caps(net, clock) — intentional\n\
             fn f() {\n\
                 let g = self.state.lock(); // lint: lock-order(demo.state)\n\
                 // lint: lock-order(demo.other)\n\
                 let h = self.other.lock();\n\
             }\n",
        );
        assert_eq!(m.caps_decl, vec!["net", "clock"]);
        assert_eq!(m.lock_name_for(3), Some("demo.state"));
        assert_eq!(m.lock_name_for(5), Some("demo.other"));
        assert_eq!(m.lock_name_for(2), None);
    }

    #[test]
    fn fn_bodies_nest_and_enclosing_picks_innermost() {
        let m = model("fn outer() { fn inner() { leaf(); } inner(); }\n");
        assert_eq!(m.fns.len(), 2);
        let leaf = m.calls.iter().find(|c| c.name == "leaf").unwrap();
        let inner_idx = m.enclosing_fn(leaf.tok).unwrap();
        assert_eq!(m.fns[inner_idx].name, "inner");
    }
}
