//! Workspace lock-order analysis (`lock-order`).
//!
//! Purely syntactic, per-fn guard tracking over the token stream:
//!
//! - An **acquisition** is `recv.lock()`, `recv.read()`/`recv.write()`
//!   (only in files that mention `RwLock`), or a configured guard-helper
//!   free function (`lock(&shared.state, ...)`). The lock's identity is
//!   its canonical name: a `lint: lock-order(<name>)` annotation on the
//!   acquisition line when present, else the module-local default
//!   `<crate>/<file-stem>.<receiver>`. Only annotated names are shared
//!   across modules — two files both locking `self.state` are *not*
//!   assumed to mean the same lock.
//! - A **guard scope** runs from a `let g = …lock()…;` binding to
//!   `drop(g)` or the end of the enclosing brace block; an acquisition
//!   not bound by `let` is live to the end of its statement.
//! - While a guard is live, acquiring a *different* lock adds the edge
//!   `held -> acquired` to the workspace order graph; re-acquiring the
//!   *same* canonical name denies immediately (std mutexes self-deadlock).
//! - A blocking call (configured: `wait`, `recv`, `accept`, `read_exact`,
//!   `push_blocking`) inside a live guard scope denies — unless the guard
//!   itself is an argument (condvar waits atomically release their
//!   guard). `wait_timeout` is a different identifier and never flagged.
//!
//! Workspace-wide, the pass denies every cycle in the order graph (both
//! acquisition sites are named in `related`) and every edge that inverts
//! the canonical rank list in [`Config::lock_ranks`].

use std::collections::{BTreeMap, BTreeSet};

use crate::config::{Config, RuleId, Severity};
use crate::engine::{Diagnostic, RelatedSite};
use crate::graph::WorkspaceModel;
use crate::lexer::{Tok, TokKind};
use crate::report::{GraphSummary, LockEdge};
use crate::syntax::{receiver_path, FileModel};

/// One live guard.
#[derive(Debug, Clone)]
struct Guard {
    /// Canonical lock name.
    lock: String,
    /// Binding name (`g` in `let g = …`), when bound.
    var: Option<String>,
    /// Brace depth at which the scope dies (binding: its block;
    /// unbound: statement end tracked via `stmt`).
    depth: i64,
    /// True for unbound statement-temporaries.
    stmt: bool,
    /// Acquisition site.
    line: u32,
}

/// One observed order edge with its acquisition sites.
#[derive(Debug, Clone)]
pub struct ObservedEdge {
    /// Lock already held.
    pub from: String,
    /// Acquisition site of `from` (file, line).
    pub from_site: (String, u32),
    /// Lock acquired under `from`.
    pub to: String,
    /// Acquisition site of `to` (file, line).
    pub to_site: (String, u32),
}

/// Full pass output: diagnostics plus the graph dump for the report.
pub struct LockAnalysis {
    /// Deny/warn findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Observed edges (for `GraphSummary`).
    pub edges: Vec<ObservedEdge>,
    /// All canonical lock names seen.
    pub names: BTreeSet<String>,
}

/// Runs the pass over every non-test, non-shim, non-exempt file.
pub fn analyze(model: &WorkspaceModel, cfg: &Config) -> LockAnalysis {
    let mut edges: Vec<ObservedEdge> = Vec::new();
    let mut names: BTreeSet<String> = BTreeSet::new();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();

    for (fi, file) in model.files.iter().enumerate() {
        if file.meta.is_shim || cfg.is_exempt(&file.meta.rel_path) {
            continue;
        }
        let default_prefix = format!("{}/{}", file.meta.crate_name, model.stem(fi));
        for item in &file.fns {
            scan_fn(
                file,
                &default_prefix,
                item.body,
                cfg,
                &mut edges,
                &mut names,
                &mut diagnostics,
            );
        }
    }

    // Cycle + rank checks over the merged edge set.
    let mut adj: BTreeMap<&str, Vec<&ObservedEdge>> = BTreeMap::new();
    for e in &edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for e in &edges {
        // An inversion exists when `to` can reach `from` through other
        // observed edges (direct two-edge cycles included).
        if let Some(path) = reach(&adj, &e.to, &e.from) {
            let mut cycle: Vec<&ObservedEdge> = vec![e];
            cycle.extend(path);
            let key = canonical_cycle_key(&cycle);
            if reported.insert(key) {
                diagnostics.push(cycle_diag(&cycle, cfg));
            }
        }
        // Rank inversion against the declared canonical order.
        let (fa, fb) = (rank_of(cfg, &e.from), rank_of(cfg, &e.to));
        if let (Some(a), Some(b)) = (fa, fb) {
            if a > b {
                let key = (format!("rank:{}", e.from), e.to.clone());
                if reported.insert(key) {
                    diagnostics.push(rank_diag(e, cfg));
                }
            }
        }
    }

    apply_waivers(model, &mut diagnostics);
    LockAnalysis { diagnostics, edges, names }
}

/// The graph dump for the JSON report.
pub fn summary(analysis: &LockAnalysis) -> (Vec<String>, Vec<LockEdge>) {
    let names = analysis.names.iter().cloned().collect();
    let edges = analysis
        .edges
        .iter()
        .map(|e| LockEdge {
            from: e.from.clone(),
            to: e.to.clone(),
            file: e.to_site.0.clone(),
            line: e.to_site.1,
        })
        .collect();
    (names, edges)
}

fn rank_of(cfg: &Config, name: &str) -> Option<usize> {
    cfg.lock_ranks.iter().position(|r| r == name)
}

/// BFS from `from` to `to` over observed edges; returns the edge path.
fn reach<'a>(
    adj: &BTreeMap<&str, Vec<&'a ObservedEdge>>,
    from: &str,
    to: &str,
) -> Option<Vec<&'a ObservedEdge>> {
    let mut queue: Vec<(String, Vec<&'a ObservedEdge>)> = vec![(from.to_string(), Vec::new())];
    let mut seen: BTreeSet<String> = BTreeSet::new();
    seen.insert(from.to_string());
    while let Some((node, path)) = queue.pop() {
        if node == to {
            return Some(path);
        }
        if let Some(outs) = adj.get(node.as_str()) {
            for e in outs {
                if seen.insert(e.to.clone()) || e.to == to {
                    let mut p = path.clone();
                    p.push(e);
                    if e.to == to {
                        return Some(p);
                    }
                    queue.push((e.to.clone(), p));
                }
            }
        }
    }
    None
}

/// Rotation-independent cycle identity, so each cycle reports once.
fn canonical_cycle_key(cycle: &[&ObservedEdge]) -> (String, String) {
    let mut names: Vec<String> = cycle.iter().map(|e| e.from.clone()).collect();
    names.sort();
    (names.join("->"), String::new())
}

fn cycle_diag(cycle: &[&ObservedEdge], cfg: &Config) -> Diagnostic {
    let order: Vec<&str> = cycle
        .iter()
        .map(|e| e.from.as_str())
        .chain(std::iter::once(cycle[0].from.as_str()))
        .collect();
    let first = cycle[0];
    Diagnostic {
        rule: RuleId::LockOrder,
        severity: cfg.severity(RuleId::LockOrder),
        file: first.to_site.0.clone(),
        line: first.to_site.1,
        message: format!(
            "lock-order cycle {}: concurrent threads taking these locks in \
             opposite orders deadlock; pick one order and annotate it with \
             `lint: lock-order(<name>)` ranks",
            order.join(" -> ")
        ),
        snippet: String::new(),
        suggestion: None,
        waived: false,
        waiver_reason: None,
        related: cycle
            .iter()
            .map(|e| RelatedSite {
                file: e.to_site.0.clone(),
                line: e.to_site.1,
                note: format!("acquires `{}` while holding `{}`", e.to, e.from),
            })
            .collect(),
        baselined: false,
    }
}

fn rank_diag(e: &ObservedEdge, cfg: &Config) -> Diagnostic {
    Diagnostic {
        rule: RuleId::LockOrder,
        severity: cfg.severity(RuleId::LockOrder),
        file: e.to_site.0.clone(),
        line: e.to_site.1,
        message: format!(
            "rank inversion: `{}` acquired while holding `{}`, but the \
             canonical order (Config::lock_ranks) puts `{}` first",
            e.to, e.from, e.to
        ),
        snippet: String::new(),
        suggestion: None,
        waived: false,
        waiver_reason: None,
        related: vec![RelatedSite {
            file: e.from_site.0.clone(),
            line: e.from_site.1,
            note: format!("`{}` acquired here", e.from),
        }],
        baselined: false,
    }
}

/// Scans one fn body for acquisitions, scope ends, and blocking calls.
#[allow(clippy::too_many_arguments)]
fn scan_fn(
    file: &FileModel,
    default_prefix: &str,
    body: (usize, usize),
    cfg: &Config,
    edges: &mut Vec<ObservedEdge>,
    names: &mut BTreeSet<String>,
    diagnostics: &mut Vec<Diagnostic>,
) {
    let toks = &file.lexed.toks;
    let has_rwlock = toks.iter().any(|t| t.text == "RwLock");
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i64 = 0;
    let mut i = body.0;
    while i <= body.1 && i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            ";" => {
                guards.retain(|g| !(g.stmt && g.depth == depth));
            }
            _ => {}
        }
        if t.kind == TokKind::Ident {
            if file.in_test_region(t.line) {
                i += 1;
                continue;
            }
            // `drop(g)` ends g's scope.
            if t.text == "drop" && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(") {
                if let Some(arg) = toks.get(i + 2) {
                    guards.retain(|g| g.var.as_deref() != Some(arg.text.as_str()));
                }
            }
            if let Some(acq) = acquisition_at(file, toks, i, cfg, has_rwlock, default_prefix) {
                names.insert(acq.clone());
                // Edges from every live guard; same name = re-entrant deny.
                for g in &guards {
                    if g.lock == acq {
                        diagnostics.push(plain_diag(
                            file,
                            t.line,
                            format!(
                                "re-entrant acquisition of `{acq}`: already held \
                                 since line {}; std mutexes self-deadlock",
                                g.line
                            ),
                            vec![RelatedSite {
                                file: file.meta.rel_path.clone(),
                                line: g.line,
                                note: format!("`{acq}` first acquired here"),
                            }],
                            cfg,
                        ));
                    } else {
                        edges.push(ObservedEdge {
                            from: g.lock.clone(),
                            from_site: (file.meta.rel_path.clone(), g.line),
                            to: acq.clone(),
                            to_site: (file.meta.rel_path.clone(), t.line),
                        });
                    }
                }
                guards.push(make_guard(toks, i, acq, depth, t.line));
            } else if cfg.blocking_calls.iter().any(|b| b == &t.text)
                && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(")
                && toks.get(i.wrapping_sub(1)).map(|p| p.text.as_str()) == Some(".")
            {
                // A guard passed as an argument is released by the call.
                let args = call_arg_idents(toks, i + 1, body.1);
                for g in guards.iter().filter(|g| {
                    g.var
                        .as_deref()
                        .map(|v| !args.iter().any(|a| a == v))
                        .unwrap_or(true)
                }) {
                    diagnostics.push(plain_diag(
                        file,
                        t.line,
                        format!(
                            "blocking call `.{}(` while holding `{}` (acquired \
                             line {}): the holder cannot be cancelled and every \
                             other thread queueing on the lock stalls; drop the \
                             guard first or use a bounded wait",
                            t.text, g.lock, g.line
                        ),
                        vec![RelatedSite {
                            file: file.meta.rel_path.clone(),
                            line: g.line,
                            note: format!("`{}` acquired here", g.lock),
                        }],
                        cfg,
                    ));
                }
            }
        }
        i += 1;
    }
}

fn plain_diag(
    file: &FileModel,
    line: u32,
    message: String,
    related: Vec<RelatedSite>,
    cfg: &Config,
) -> Diagnostic {
    Diagnostic {
        rule: RuleId::LockOrder,
        severity: cfg.severity(RuleId::LockOrder),
        file: file.meta.rel_path.clone(),
        line,
        message,
        snippet: file.snippet(line),
        suggestion: None,
        waived: false,
        waiver_reason: None,
        related,
        baselined: false,
    }
}

/// Canonical lock name when token `i` is an acquisition, else `None`.
fn acquisition_at(
    file: &FileModel,
    toks: &[Tok],
    i: usize,
    cfg: &Config,
    has_rwlock: bool,
    default_prefix: &str,
) -> Option<String> {
    let t = &toks[i];
    let called = toks.get(i + 1).map(|n| n.text.as_str()) == Some("(");
    if !called {
        return None;
    }
    let is_method = i >= 1 && toks[i - 1].text == ".";
    let lockish = t.text == "lock" || (has_rwlock && (t.text == "read" || t.text == "write"));
    if is_method && lockish {
        let recv = receiver_path(toks, i)?;
        return Some(canonical(file, toks[i].line, default_prefix, &recv));
    }
    // Guard-helper free fn: `lock(&shared.state, "...")`.
    if !is_method
        && cfg.lock_helper_fns.iter().any(|h| h == &t.text)
        && i.checked_sub(1)
            .map(|p| toks[p].text.as_str() != "::")
            .unwrap_or(true)
    {
        let recv = first_arg_path(toks, i + 1)?;
        return Some(canonical(file, toks[i].line, default_prefix, &recv));
    }
    None
}

/// `lint: lock-order(<name>)` on the acquisition line wins; otherwise the
/// module-local default name.
fn canonical(file: &FileModel, line: u32, default_prefix: &str, recv: &str) -> String {
    match file.lock_name_for(line) {
        Some(name) => name.to_string(),
        None => format!("{default_prefix}.{recv}"),
    }
}

/// Dotted path of the first argument: `&shared.state` -> `shared.state`.
fn first_arg_path(toks: &[Tok], open: usize) -> Option<String> {
    let mut segs = Vec::new();
    let mut k = open + 1;
    while let Some(t) = toks.get(k) {
        match (t.kind, t.text.as_str()) {
            (_, "&") | (_, "mut") => {}
            (TokKind::Ident, _) => segs.push(t.text.clone()),
            (_, ".") => {}
            _ => break,
        }
        k += 1;
    }
    if segs.is_empty() {
        None
    } else {
        Some(segs.join("."))
    }
}

/// Index of the `)` matching the `(` at `open` (must point at a `(`).
fn paren_close(toks: &[Tok], open: usize) -> Option<usize> {
    if toks.get(open).map(|t| t.text.as_str()) != Some("(") {
        return None;
    }
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Identifiers in a call's argument list (shallow paren matching).
fn call_arg_idents(toks: &[Tok], open: usize, limit: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    for t in toks.iter().take(limit + 1).skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {
                if t.kind == TokKind::Ident {
                    out.push(t.text.clone());
                }
            }
        }
    }
    out
}

/// Builds the guard for an acquisition at token `i`: bound when the
/// statement opens with `let <var> =` on the same nesting level.
fn make_guard(toks: &[Tok], i: usize, lock: String, depth: i64, line: u32) -> Guard {
    // A guard consumed by a further method call is a temporary dropped
    // at the end of the statement, even under a `let`:
    // `let g = lock(m, "…").next_generation(id);` binds the *result*,
    // not the guard. Skip `.unwrap()`/`.expect(…)` adapters (those
    // still yield the guard), then check for a consuming call.
    if let Some(mut after) = paren_close(toks, i + 1) {
        loop {
            let adapter = toks.get(after + 1).map(|t| t.text.as_str()) == Some(".")
                && matches!(
                    toks.get(after + 2).map(|t| t.text.as_str()),
                    Some("unwrap") | Some("expect")
                );
            if !adapter {
                break;
            }
            match paren_close(toks, after + 3) {
                Some(c) => after = c,
                None => break,
            }
        }
        let consumed = toks.get(after + 1).map(|t| t.text.as_str()) == Some(".")
            && toks.get(after + 2).map(|t| t.kind) == Some(TokKind::Ident)
            && toks.get(after + 3).map(|t| t.text.as_str()) == Some("(");
        if consumed {
            return Guard { lock, var: None, depth, stmt: true, line };
        }
    }
    // Walk back to the statement start (`;`, `{`, or `}`) and look for
    // `let var = …` — tuple patterns and `if let` are treated as unbound.
    let mut k = i;
    while k > 0 {
        let txt = toks[k - 1].text.as_str();
        if txt == ";" || txt == "{" || txt == "}" {
            break;
        }
        k -= 1;
    }
    let var = if toks.get(k).map(|t| t.text.as_str()) == Some("let") {
        match (toks.get(k + 1), toks.get(k + 2).map(|t| t.text.as_str())) {
            (Some(v), Some("=")) if v.kind == TokKind::Ident => Some(v.text.clone()),
            (Some(m), _)
                if m.text == "mut"
                    && toks.get(k + 2).map(|t| t.kind) == Some(TokKind::Ident)
                    && toks.get(k + 3).map(|t| t.text.as_str()) == Some("=") =>
            {
                Some(toks[k + 2].text.clone())
            }
            _ => None,
        }
    } else {
        None
    };
    let stmt = var.is_none();
    Guard { lock, var, depth, stmt, line }
}

/// Applies each file's inline waivers to the pass's diagnostics.
fn apply_waivers(model: &WorkspaceModel, diagnostics: &mut [Diagnostic]) {
    for d in diagnostics.iter_mut() {
        if let Some(file) = model.files.iter().find(|f| f.meta.rel_path == d.file) {
            if let Some(w) = file
                .waivers
                .iter()
                .find(|w| w.rule == d.rule && w.covers == d.line)
            {
                d.waived = true;
                d.waiver_reason = Some(w.reason.clone());
            }
        }
    }
}

/// Attaches lock data to a [`GraphSummary`].
pub fn fill_summary(analysis: &LockAnalysis, g: &mut GraphSummary) {
    let (names, edges) = summary(analysis);
    g.lock_names = names;
    g.lock_edges = edges;
}

/// True when nothing denies (used by tests).
pub fn clean(analysis: &LockAnalysis) -> bool {
    !analysis
        .diagnostics
        .iter()
        .any(|d| !d.waived && d.severity == Severity::Deny)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::classify;
    use crate::syntax::FileModel;

    fn ws(files: &[(&str, &str)]) -> WorkspaceModel {
        let cfg = Config::default();
        WorkspaceModel::build(
            files
                .iter()
                .map(|(p, s)| FileModel::build(classify(p), &cfg, s.to_string()))
                .collect(),
        )
    }

    fn run(files: &[(&str, &str)]) -> LockAnalysis {
        analyze(&ws(files), &Config::default())
    }

    #[test]
    fn consumed_temporary_guard_is_statement_scoped() {
        // `let g = lock(m, "…").next(id);` binds the result, not the
        // guard — re-acquiring later in the fn is NOT re-entrant.
        let a = run(&[(
            "crates/orchestrator/src/pool.rs",
            "fn persist(&self) {\n\
             let generation = lock(self.manifest, \"m\").next_generation(id);\n\
             let mut m = lock(self.manifest, \"m\");\n\
             m.record(generation);\n\
             }\n",
        )]);
        assert!(clean(&a), "{:?}", a.diagnostics);

        // Method-chain form through an `.expect` adapter, same deal.
        let b = run(&[(
            "crates/orchestrator/src/pool.rs",
            "fn bump(&self) {\n\
             let n = self.state.lock().expect(\"state\").bump();\n\
             let mut s = self.state.lock().expect(\"state\");\n\
             s.apply(n);\n\
             }\n",
        )]);
        assert!(clean(&b), "{:?}", b.diagnostics);

        // But a *held* guard (no consuming call) still trips.
        let c = run(&[(
            "crates/orchestrator/src/pool.rs",
            "fn oops(&self) {\n\
             let g = self.state.lock().expect(\"state\");\n\
             let h = self.state.lock().expect(\"state\");\n\
             }\n",
        )]);
        assert_eq!(c.diagnostics.len(), 1, "{:?}", c.diagnostics);
        assert!(c.diagnostics[0].message.contains("re-entrant"));
    }

    #[test]
    fn cross_module_inversion_is_a_cycle_with_both_sites() {
        let a = "fn f(&self) {\n\
                 let g = self.a.lock(); // lint: lock-order(ws.a)\n\
                 let h = self.b.lock(); // lint: lock-order(ws.b)\n\
                 }\n";
        let b = "fn g(&self) {\n\
                 let g = self.b.lock(); // lint: lock-order(ws.b)\n\
                 let h = self.a.lock(); // lint: lock-order(ws.a)\n\
                 }\n";
        let out = run(&[("crates/alpha/src/lib.rs", a), ("crates/beta/src/lib.rs", b)]);
        let cycles: Vec<_> = out
            .diagnostics
            .iter()
            .filter(|d| d.message.contains("lock-order cycle"))
            .collect();
        assert_eq!(cycles.len(), 1, "one rotation-deduped cycle: {:?}", out.diagnostics);
        let files: BTreeSet<&str> =
            cycles[0].related.iter().map(|r| r.file.as_str()).collect();
        assert!(files.contains("crates/alpha/src/lib.rs"));
        assert!(files.contains("crates/beta/src/lib.rs"));
    }

    #[test]
    fn unannotated_same_receiver_does_not_alias_across_modules() {
        let a = "fn f(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n";
        let b = "fn g(&self) { let g = self.b.lock(); let h = self.a.lock(); }\n";
        let out = run(&[("crates/alpha/src/lib.rs", a), ("crates/beta/src/lib.rs", b)]);
        assert!(clean(&out), "{:?}", out.diagnostics);
    }

    #[test]
    fn scopes_end_at_drop_block_and_statement() {
        let src = "fn f(&self) {\n\
                   let g = self.a.lock();\n\
                   drop(g);\n\
                   let h = self.b.lock();\n\
                   { let i = self.c.lock(); }\n\
                   self.d.lock().push(1);\n\
                   let j = self.e.lock();\n\
                   }\n";
        let out = run(&[("crates/alpha/src/lib.rs", src)]);
        // b is held for c, d and e; a (dropped) and c (block) and the d
        // temporary (statement) produce no further edges.
        let pairs: BTreeSet<(String, String)> = out
            .edges
            .iter()
            .map(|e| (e.from.clone(), e.to.clone()))
            .collect();
        let b = "alpha/lib.self.b".to_string();
        assert!(pairs.contains(&(b.clone(), "alpha/lib.self.c".into())));
        assert!(pairs.contains(&(b.clone(), "alpha/lib.self.d".into())));
        assert!(pairs.contains(&(b.clone(), "alpha/lib.self.e".into())));
        assert!(!pairs.iter().any(|(f, _)| f.ends_with(".a")));
        assert!(!pairs.iter().any(|(f, _)| f.ends_with(".c") || f.ends_with(".d")));
    }

    #[test]
    fn reentrant_acquisition_denies() {
        let src = "fn f(&self) { let g = self.a.lock(); let h = self.a.lock(); }\n";
        let out = run(&[("crates/alpha/src/lib.rs", src)]);
        assert!(out.diagnostics.iter().any(|d| d.message.contains("re-entrant")));
    }

    #[test]
    fn blocking_call_under_guard_denies_unless_guard_is_the_argument() {
        let bad = "fn f(&self) { let g = self.a.lock(); self.rx.recv(); }\n";
        let out = run(&[("crates/alpha/src/lib.rs", bad)]);
        assert_eq!(out.diagnostics.len(), 1, "{:?}", out.diagnostics);
        assert!(out.diagnostics[0].message.contains("blocking call"));

        // Condvar wait consuming the guard is sanctioned.
        let ok = "fn f(&self) { let g = self.a.lock(); let g = self.cv.wait(g); }\n";
        let out = run(&[("crates/alpha/src/lib.rs", ok)]);
        assert!(clean(&out), "{:?}", out.diagnostics);
    }

    #[test]
    fn rank_inversion_against_declared_order_denies() {
        let src = "fn f(&self) {\n\
                   let g = self.m.lock(); // lint: lock-order(orchestrator.manifest)\n\
                   let h = self.s.lock(); // lint: lock-order(orchestrator.sched_state)\n\
                   }\n";
        let out = run(&[("crates/orchestrator/src/pool.rs", src)]);
        assert!(
            out.diagnostics.iter().any(|d| d.message.contains("rank inversion")),
            "{:?}",
            out.diagnostics
        );
    }

    #[test]
    fn helper_fn_acquisitions_are_tracked() {
        let src = "fn f() {\n\
                   let st = lock(&shared.state, \"s\"); // lint: lock-order(orchestrator.sched_state)\n\
                   let m = lock(&ctx.manifest, \"m\"); // lint: lock-order(orchestrator.manifest)\n\
                   }\n";
        let out = run(&[("crates/orchestrator/src/pool.rs", src)]);
        assert!(clean(&out), "{:?}", out.diagnostics);
        assert_eq!(out.edges.len(), 1);
        assert_eq!(out.edges[0].from, "orchestrator.sched_state");
        assert_eq!(out.edges[0].to, "orchestrator.manifest");
    }

    #[test]
    fn waiver_covers_lock_order_finding() {
        let src = "fn f(&self) {\n\
                   let g = self.a.lock();\n\
                   // lint: allow(lock-order) holds a across recv: startup only, single-threaded\n\
                   self.rx.recv();\n\
                   }\n";
        let out = run(&[("crates/alpha/src/lib.rs", src)]);
        assert_eq!(out.diagnostics.len(), 1);
        assert!(out.diagnostics[0].waived);
        assert!(clean(&out));
    }
}
