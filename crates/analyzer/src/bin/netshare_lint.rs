//! `netshare-lint` CLI.
//!
//! ```text
//! netshare-lint [--root DIR] [--format text|json] [--fix-dry-run]
//!               [--deny RULE] [--warn RULE] [--allow RULE] [--list-rules]
//!               [--file PATH [--as-crate NAME] [--as-role ROLE]]
//!               [--workspace-graph] [--baseline PATH]
//!               [--write-baseline PATH] [--diff FILE]...
//! ```
//!
//! `--workspace-graph` runs the per-file rules plus the three
//! cross-module passes (lock-order, capability graph, DP taint
//! dataflow). `--diff FILE` (repeatable, implies the graph mode)
//! restricts reporting to the reverse-dependency cone of the named
//! files. `--baseline PATH` demotes findings listed in the committed
//! baseline to non-fatal and warns about stale entries;
//! `--write-baseline PATH` regenerates that file from the current run.
//!
//! Exit codes: 0 clean (or warnings only), 1 deny-level findings,
//! 2 usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use analyzer::config::{Config, Role, RuleId, Severity};
use analyzer::report::{Baseline, Report};

struct Args {
    root: PathBuf,
    format: Format,
    fix_dry_run: bool,
    list_rules: bool,
    file: Option<PathBuf>,
    as_crate: Option<String>,
    as_role: Option<Role>,
    overrides: Vec<(RuleId, Severity)>,
    workspace_graph: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    diff: Vec<String>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn usage() -> String {
    let mut s = String::from(
        "usage: netshare-lint [--root DIR] [--format text|json] [--fix-dry-run]\n\
         \x20                    [--deny RULE] [--warn RULE] [--allow RULE] [--list-rules]\n\
         \x20                    [--file PATH [--as-crate NAME] [--as-role lib|bin|test|bench]]\n\
         \x20                    [--workspace-graph] [--baseline PATH]\n\
         \x20                    [--write-baseline PATH] [--diff FILE]...\n\
         rules:\n",
    );
    for r in RuleId::ALL {
        s.push_str(&format!("  {:28} {}\n", r.name(), r.describe()));
    }
    s
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        format: Format::Text,
        fix_dry_run: false,
        list_rules: false,
        file: None,
        as_crate: None,
        as_role: None,
        overrides: Vec::new(),
        workspace_graph: false,
        baseline: None,
        write_baseline: None,
        diff: Vec::new(),
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match a.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "--fix-dry-run" => args.fix_dry_run = true,
            "--list-rules" => args.list_rules = true,
            "--file" => args.file = Some(PathBuf::from(value("--file")?)),
            "--as-crate" => args.as_crate = Some(value("--as-crate")?),
            "--as-role" => {
                args.as_role = Some(match value("--as-role")?.as_str() {
                    "lib" => Role::Lib,
                    "bin" => Role::Bin,
                    "test" => Role::Test,
                    "bench" => Role::Bench,
                    other => return Err(format!("unknown role `{other}`")),
                })
            }
            "--workspace-graph" => args.workspace_graph = true,
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--write-baseline" => {
                args.write_baseline = Some(PathBuf::from(value("--write-baseline")?))
            }
            "--diff" => args.diff.push(value("--diff")?),
            sev @ ("--deny" | "--warn" | "--allow") => {
                let name = value(sev)?;
                let rule = RuleId::parse(&name)
                    .ok_or_else(|| format!("unknown rule `{name}`"))?;
                let severity = match sev {
                    "--deny" => Severity::Deny,
                    "--warn" => Severity::Warn,
                    _ => Severity::Allow,
                };
                args.overrides.push((rule, severity));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.file.is_some() && (args.workspace_graph || !args.diff.is_empty()) {
        return Err("--file conflicts with --workspace-graph/--diff".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("netshare-lint: {msg}");
            }
            eprint!("{}", usage());
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }

    let mut cfg = Config::default();
    for (rule, sev) in &args.overrides {
        cfg.severities.insert(*rule, *sev);
    }

    let report = if let Some(path) = &args.file {
        analyzer::lint_one_file(&args.root, path, &cfg, args.as_crate.as_deref(), args.as_role)
            .map(|diagnostics| Report::new(diagnostics, 1))
    } else if args.workspace_graph || !args.diff.is_empty() || args.write_baseline.is_some() {
        let changed = if args.diff.is_empty() {
            None
        } else {
            Some(args.diff.as_slice())
        };
        analyzer::run_workspace_graph(&args.root, &cfg, changed)
    } else {
        analyzer::run_workspace(&args.root, &cfg)
    };
    let mut report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("netshare-lint: io error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.write_baseline {
        let text = Baseline::render(&report);
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("netshare-lint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        let entries = text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).count();
        println!("netshare-lint: wrote {entries} baseline entries to {}", path.display());
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &args.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("netshare-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        Baseline::parse(&text).apply(&mut report);
    }

    if args.fix_dry_run {
        print!("{}", report.to_fix_dry_run());
    } else if args.format == Format::Json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    ExitCode::from(report.exit_code() as u8)
}
