//! `netshare-lint` — workspace invariant checker.
//!
//! Walks every `.rs` file in the workspace and enforces the seven source
//! invariants the repo's guarantees rest on (bitwise seed determinism,
//! DP-SGD's noise boundary, the telemetry clock anchor, unsafe hygiene,
//! no-panic library code). See
//! DESIGN.md "Static analysis & sanitizers" for the rule catalogue and
//! waiver syntax.
//!
//! Built dependency-free on a hand-rolled lexer so the checker can never
//! be broken by the crates it checks (and builds in the offline
//! workspace, where `syn` is unavailable).

pub mod capability;
pub mod config;
pub mod engine;
pub mod graph;
pub mod lexer;
pub mod locks;
pub mod report;
pub mod syntax;
pub mod taint;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use config::{classify, relative_to, Config, FileMeta, Role};
use engine::{lint_source, Diagnostic};
use graph::WorkspaceModel;
use report::{DiffInfo, GraphSummary, Report};
use syntax::FileModel;

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", ".claude"];

/// Collects every workspace `.rs` file under `root`, sorted for
/// deterministic report order.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints the whole workspace rooted at `root`.
pub fn run_workspace(root: &Path, cfg: &Config) -> io::Result<Report> {
    let files = collect_rs_files(root)?;
    let mut diagnostics = Vec::new();
    let mut files_checked = 0usize;
    for path in &files {
        let rel = relative_to(root, path);
        if cfg.is_exempt(&rel) {
            continue;
        }
        files_checked += 1;
        let src = fs::read_to_string(path)?;
        let meta = classify(&rel);
        diagnostics.extend(lint_source(&meta, cfg, &src));
    }
    Ok(Report::new(diagnostics, files_checked))
}

/// Workspace-graph mode: the per-file rules plus the three cross-module
/// passes (lock-order, capability graph, DP taint dataflow) over a
/// resolved call graph of every `.rs` file under `root`.
///
/// With `changed = Some(files)` the run is a `--diff` run: the full
/// graph is still built (cross-module passes need every edge), but only
/// findings inside the reverse-dependency cone of the changed files are
/// reported, and [`Report::diff`] records the cone size.
pub fn run_workspace_graph(
    root: &Path,
    cfg: &Config,
    changed: Option<&[String]>,
) -> io::Result<Report> {
    let paths = collect_rs_files(root)?;
    let mut diagnostics = Vec::new();
    let mut files = Vec::new();
    let mut files_checked = 0usize;
    for path in &paths {
        let rel = relative_to(root, path);
        if cfg.is_exempt(&rel) {
            continue;
        }
        files_checked += 1;
        let src = fs::read_to_string(path)?;
        let meta = classify(&rel);
        diagnostics.extend(lint_source(&meta, cfg, &src));
        files.push(FileModel::build(meta, cfg, src));
    }

    let model = WorkspaceModel::build(files);
    let lock_analysis = locks::analyze(&model, cfg);
    let cap_analysis = capability::analyze(&model, cfg);
    let mut graph = GraphSummary::default();
    locks::fill_summary(&lock_analysis, &mut graph);
    graph.capabilities = cap_analysis.manifest.clone();
    diagnostics.extend(lock_analysis.diagnostics);
    diagnostics.extend(cap_analysis.diagnostics);
    diagnostics.extend(taint::analyze(&model, cfg));
    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.name()).cmp(&(b.file.as_str(), b.line, b.rule.name()))
    });

    let mut report = Report::new(diagnostics, files_checked);
    report.mode = "workspace-graph";
    report.graph = Some(graph);

    if let Some(changed) = changed {
        let cone = model.reverse_cone(changed);
        let keep: std::collections::BTreeSet<&str> = cone
            .iter()
            .map(|&fi| model.files[fi].meta.rel_path.as_str())
            .collect();
        report
            .diagnostics
            .retain(|d| keep.contains(d.file.as_str()));
        report.mode = "diff";
        report.diff = Some(DiffInfo {
            changed: changed.len(),
            cone: cone.len(),
        });
    }
    Ok(report)
}

/// Lints a single file with optionally forced metadata — used by the
/// fixture tests, where files live under an exempt path but must be
/// linted *as if* they belonged to a given crate/role.
pub fn lint_one_file(
    root: &Path,
    path: &Path,
    cfg: &Config,
    as_crate: Option<&str>,
    as_role: Option<Role>,
) -> io::Result<Vec<Diagnostic>> {
    let rel = relative_to(root, path);
    let mut meta = classify(&rel);
    if let Some(name) = as_crate {
        meta.crate_name = name.to_string();
        meta.is_shim = false;
    }
    if let Some(role) = as_role {
        meta.role = role;
    }
    // Explicitly-named files are always linted, exempt prefixes included.
    let mut cfg = cfg.clone();
    cfg.exempt_paths.clear();
    let src = fs::read_to_string(path)?;
    Ok(lint_source(&meta, &cfg, &src))
}

/// Re-exported for the binary and tests.
pub use config::{RuleId, Severity};

/// Builds a [`FileMeta`] for callers that lint source text directly.
pub fn meta_for(rel_path: &str) -> FileMeta {
    classify(rel_path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_skips_target_and_sorts() {
        let dir = std::env::temp_dir().join("netshare_lint_collect_test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("src")).unwrap();
        fs::create_dir_all(dir.join("target/debug")).unwrap();
        fs::write(dir.join("src/b.rs"), "fn b() {}\n").unwrap();
        fs::write(dir.join("src/a.rs"), "fn a() {}\n").unwrap();
        fs::write(dir.join("target/debug/gen.rs"), "fn g() {}\n").unwrap();
        fs::write(dir.join("notes.txt"), "not rust\n").unwrap();

        let files = collect_rs_files(&dir).unwrap();
        let rels: Vec<String> = files.iter().map(|p| relative_to(&dir, p)).collect();
        assert_eq!(rels, vec!["src/a.rs", "src/b.rs"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn forced_metadata_overrides_classification() {
        let dir = std::env::temp_dir().join("netshare_lint_force_test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let f = dir.join("sample.rs");
        fs::write(&f, "use std::collections::HashMap;\n").unwrap();

        // As an uncritical crate: clean. Forced into `core`: flagged.
        let cfg = Config::default();
        assert!(lint_one_file(&dir, &f, &cfg, None, None).unwrap().is_empty());
        let forced = lint_one_file(&dir, &f, &cfg, Some("core"), Some(Role::Lib)).unwrap();
        assert_eq!(forced.len(), 1);
        assert_eq!(forced[0].rule, RuleId::NondeterministicIteration);
        let _ = fs::remove_dir_all(&dir);
    }
}
