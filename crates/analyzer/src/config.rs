//! Rule catalogue, severities, and file classification.

use std::collections::BTreeMap;
use std::path::Path;

/// The thirteen shipped rules: ten per-file token scans plus three
/// workspace-graph passes (see [`RuleId::GRAPH`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `HashMap`/`HashSet` in determinism-critical crates: unordered
    /// iteration feeding training or serialization breaks bitwise seed
    /// determinism. Use `BTreeMap`/`BTreeSet` or an explicit sort.
    NondeterministicIteration,
    /// Ambient entropy/clocks (`thread_rng`, `rand::random`,
    /// `SystemTime::now`, `Instant::now`) outside `orchestrator::timing`
    /// and benches.
    AmbientEntropy,
    /// Files tagged `lint: dp-post-noise` must not touch per-example
    /// gradient accessors — only DP-SGD's sanitize boundary may.
    DpBoundary,
    /// `==`/`!=` against float literals in metrics/training code.
    FloatEq,
    /// `unsafe` without a preceding `// SAFETY:` comment.
    UndocumentedUnsafe,
    /// `unwrap`/`expect`/`panic!` in library code (tests/bins exempt).
    PanicInLib,
    /// Raw `telemetry::clock::monotonic_nanos` reads outside the
    /// sanctioned timing shims — product code takes timestamps via
    /// `orchestrator::timing::Stopwatch` or telemetry's span/timer
    /// guards so every duration is anchored to one process epoch.
    TelemetryClock,
    /// Uninterruptible blocking (`std::thread::sleep`, `Condvar::wait`
    /// with no timeout) in library code: a worker stuck in one cannot be
    /// cancelled by the watchdog or woken by a failing run. Use
    /// `CancelToken::wait_timeout` / `Condvar::wait_timeout`.
    UnboundedWait,
    /// Fresh heap allocation (`Vec::new`, `vec![]`, `Tensor::zeros`)
    /// inside a loop tagged `lint: step-loop` — the per-timestep hot
    /// loops of training and sampling. Allocating there costs a malloc
    /// per timestep per batch; hoist the buffer before the loop or take
    /// it from a preallocated `nnet::infer::Arena`.
    AllocInStepLoop,
    /// Raw socket accept/read calls (`.accept(`, `.read_exact(`) in
    /// files not tagged with the `lint: io-boundary` marker. Socket I/O
    /// belongs in `netshared`'s sanctioned modules, whose read/write
    /// loops poll the session `CancelToken` and resume across timeouts;
    /// an untagged accept or `read_exact` loop blocks uninterruptibly
    /// and is invisible to drain/eviction.
    BlockingAcceptLoop,
    /// Workspace-graph pass: cycles in the lock-acquisition order graph
    /// (module A takes `a` then `b`, module B takes `b` then `a`),
    /// recursive re-acquisition of a lock already held, inversions
    /// against the canonical rank list, and guards held across blocking
    /// calls (`wait`, `recv`, `accept`, `read_exact`, `push_blocking`).
    /// Cross-module lock identity comes from `lint: lock-order(<name>)`
    /// annotations on acquisition sites.
    LockOrder,
    /// Workspace-graph pass: a module whose functions transitively reach
    /// a restricted capability (entropy, clock, raw socket I/O) through
    /// calls into unsanctioned helpers — the tag-at-the-leaf blindspot
    /// of `ambient-entropy`/`telemetry-clock`/`blocking-accept-loop`.
    /// Modules declare intentional capabilities with `lint: caps(...)`.
    CapabilityGraph,
    /// Workspace-graph pass: intraprocedural taint from per-example
    /// gradient accessors (`flat_gradients`, `gradients_mut`) to
    /// serialization/event/metric sinks, cleared only by the sanctioned
    /// noise path — `dp-post-noise` as a checked flow property.
    DpTaintFlow,
}

impl RuleId {
    /// Every rule, in catalogue order.
    pub const ALL: [RuleId; 13] = [
        RuleId::NondeterministicIteration,
        RuleId::AmbientEntropy,
        RuleId::DpBoundary,
        RuleId::FloatEq,
        RuleId::UndocumentedUnsafe,
        RuleId::PanicInLib,
        RuleId::TelemetryClock,
        RuleId::UnboundedWait,
        RuleId::AllocInStepLoop,
        RuleId::BlockingAcceptLoop,
        RuleId::LockOrder,
        RuleId::CapabilityGraph,
        RuleId::DpTaintFlow,
    ];

    /// The graph passes — only run under `--workspace-graph`.
    pub const GRAPH: [RuleId; 3] = [
        RuleId::LockOrder,
        RuleId::CapabilityGraph,
        RuleId::DpTaintFlow,
    ];

    /// The kebab-case name used in diagnostics, waivers, and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::NondeterministicIteration => "nondeterministic-iteration",
            RuleId::AmbientEntropy => "ambient-entropy",
            RuleId::DpBoundary => "dp-boundary",
            RuleId::FloatEq => "float-eq",
            RuleId::UndocumentedUnsafe => "undocumented-unsafe",
            RuleId::PanicInLib => "panic-in-lib",
            RuleId::TelemetryClock => "telemetry-clock",
            RuleId::UnboundedWait => "unbounded-wait",
            RuleId::AllocInStepLoop => "alloc-in-step-loop",
            RuleId::BlockingAcceptLoop => "blocking-accept-loop",
            RuleId::LockOrder => "lock-order",
            RuleId::CapabilityGraph => "capability-graph",
            RuleId::DpTaintFlow => "dp-taint-flow",
        }
    }

    /// Parses a rule name as written in waivers/CLI flags.
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.name() == s.trim())
    }

    /// One-line description for `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::NondeterministicIteration => {
                "HashMap/HashSet in determinism-critical crates (use BTreeMap/BTreeSet or sort)"
            }
            RuleId::AmbientEntropy => {
                "thread_rng/rand::random/SystemTime::now/Instant::now outside orchestrator::timing and benches"
            }
            RuleId::DpBoundary => {
                "per-example gradient accessors in files tagged `lint: dp-post-noise`"
            }
            RuleId::FloatEq => "== / != against float literals in metrics/training code",
            RuleId::UndocumentedUnsafe => "`unsafe` without a preceding `// SAFETY:` comment",
            RuleId::PanicInLib => "unwrap/expect/panic! in library code (tests/bins exempt)",
            RuleId::TelemetryClock => {
                "raw telemetry::clock::monotonic_nanos reads outside orchestrator::timing and telemetry's own guards"
            }
            RuleId::UnboundedWait => {
                "thread::sleep / timeout-less Condvar::wait in library code (use CancelToken::wait_timeout)"
            }
            RuleId::AllocInStepLoop => {
                "Vec::new / vec![] / Tensor::zeros inside a `lint: step-loop`-tagged hot loop (hoist or use nnet::infer::Arena)"
            }
            RuleId::BlockingAcceptLoop => {
                "raw .accept( / .read_exact( outside `lint: io-boundary`-tagged modules (use netshared::protocol's interruptible I/O)"
            }
            RuleId::LockOrder => {
                "[workspace-graph] lock-order cycles, rank inversions, re-entrant acquisition, and guards held across blocking calls"
            }
            RuleId::CapabilityGraph => {
                "[workspace-graph] untagged module transitively reaching entropy/clock/socket capabilities through calls (declare with `lint: caps(...)`)"
            }
            RuleId::DpTaintFlow => {
                "[workspace-graph] per-example gradient data flowing to an event/metric/serialization sink before the sanctioned noise path clears it"
            }
        }
    }
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Rule disabled.
    Allow,
    /// Reported but does not affect the exit code.
    Warn,
    /// Reported and fails the run.
    Deny,
}

impl Severity {
    /// Name as printed and accepted on the CLI.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// What kind of target a file belongs to. Derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Library code — the full rule set applies.
    Lib,
    /// Binary target (`src/bin/`, `src/main.rs`).
    Bin,
    /// Integration or unit test file (`tests/`).
    Test,
    /// Benchmark (`benches/`).
    Bench,
    /// Example (`examples/`).
    Example,
    /// `build.rs`.
    Build,
}

/// Per-file lint context.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Crate directory name (`core`, `nnet`, `rand` for shims, …).
    pub crate_name: String,
    /// Target role.
    pub role: Role,
    /// True for `shims/*` — vendored stand-ins for external crates, exempt
    /// from product-code rules (but not from unsafe hygiene).
    pub is_shim: bool,
}

/// The lint configuration. Programmatic with CLI overrides; defaults
/// encode this workspace's invariants.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crate dir names where `HashMap`/`HashSet` are banned.
    pub determinism_crates: Vec<String>,
    /// Crate dir names where float `==`/`!=` is checked.
    pub float_eq_crates: Vec<String>,
    /// Path prefixes (workspace-relative) exempt from `ambient-entropy`.
    pub entropy_whitelist: Vec<String>,
    /// Path prefixes (workspace-relative) allowed to call
    /// `telemetry::clock::monotonic_nanos` directly.
    pub clock_whitelist: Vec<String>,
    /// Path prefixes (workspace-relative) exempt from `unbounded-wait`
    /// (vendored shims implement the blocking primitives themselves).
    pub wait_whitelist: Vec<String>,
    /// Identifiers banned in `dp-post-noise`-tagged files.
    pub dp_banned: Vec<String>,
    /// Marker that tags a file as a post-noise consumer.
    pub dp_marker: String,
    /// Marker that tags a file as a sanctioned socket I/O boundary
    /// (exempting it from `blocking-accept-loop`). Must open the
    /// comment, so prose merely mentioning the marker does not tag.
    pub io_marker: String,
    /// Path prefixes skipped entirely (intentionally-violating fixtures).
    pub exempt_paths: Vec<String>,
    /// Per-rule severity.
    pub severities: BTreeMap<RuleId, Severity>,

    // ---- workspace-graph pass configuration ----
    /// Canonical lock rank order, most-outer first. An acquisition edge
    /// from a later-ranked lock to an earlier-ranked one is an inversion
    /// even when the reverse edge has not (yet) been observed. Names are
    /// the `lint: lock-order(<name>)` annotation names.
    pub lock_ranks: Vec<String>,
    /// Method names that block uninterruptibly; a live lock guard in
    /// scope at such a call is denied. (`wait_timeout` is deliberately
    /// absent: bounded condvar waits atomically release their guard.)
    pub blocking_calls: Vec<String>,
    /// Free functions that acquire a lock passed as their first
    /// argument (project-local guard helpers like orchestrator's
    /// `lock(&shared.state, "...")`).
    pub lock_helper_fns: Vec<String>,
    /// Capabilities (by name) that deny when reached transitively by an
    /// unsanctioned module; the rest are manifest-only.
    pub deny_caps: Vec<String>,
    /// Marker declaring a module's intentional capabilities, e.g.
    /// `lint: caps(net, clock)`. Must open the comment.
    pub caps_marker: String,
    /// Crate dir names whose `Lib` files run the DP taint pass.
    pub taint_crates: Vec<String>,
    /// Identifiers whose call result is per-example gradient data.
    pub taint_sources: Vec<String>,
    /// Method/function names that externalize data (events, metrics,
    /// serialization, wire frames).
    pub taint_sinks: Vec<String>,
    /// Identifiers of the sanctioned noise path; an assignment whose
    /// right-hand side calls one clears taint from its target.
    pub taint_sanitizers: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        let mut severities = BTreeMap::new();
        for r in RuleId::ALL {
            severities.insert(r, Severity::Deny);
        }
        Config {
            determinism_crates: [
                "nnet",
                "doppelganger",
                "core",
                "orchestrator",
                "fieldcodec",
                "nettrace",
                "sketch",
                "telemetry",
            ]
            .map(String::from)
            .to_vec(),
            float_eq_crates: [
                "nnet",
                "doppelganger",
                "core",
                "distmetrics",
                "mlkit",
                "baselines",
                "privacy",
                "telemetry",
            ]
            .map(String::from)
            .to_vec(),
            entropy_whitelist: [
                "crates/orchestrator/src/timing.rs",
                "crates/telemetry/src/clock.rs",
                "crates/bench/",
                "shims/",
            ]
            .map(String::from)
            .to_vec(),
            clock_whitelist: [
                "crates/telemetry/src/",
                "crates/orchestrator/src/timing.rs",
                "shims/",
            ]
            .map(String::from)
            .to_vec(),
            wait_whitelist: ["shims/"].map(String::from).to_vec(),
            dp_banned: ["flat_gradients", "set_flat_gradients", "gradients_mut"]
                .map(String::from)
                .to_vec(),
            dp_marker: "lint: dp-post-noise".to_string(),
            io_marker: "lint: io-boundary".to_string(),
            exempt_paths: ["crates/analyzer/tests/fixtures/"].map(String::from).to_vec(),
            severities,
            lock_ranks: [
                "orchestrator.sched_state",
                "orchestrator.coord_state",
                "orchestrator.watchdog_watches",
                "orchestrator.cancel_state",
                "orchestrator.event_sinks",
                "orchestrator.event_memory",
                "orchestrator.manifest",
                "orchestrator.journal",
                "orchestrator.netfault",
                "netshared.session_registry",
                "netshared.credit_budget",
                "netshared.stream_state",
                "netshared.socket_writer",
                "telemetry.metrics_counters",
                "telemetry.metrics_gauges",
                "telemetry.metrics_histograms",
            ]
            .map(String::from)
            .to_vec(),
            blocking_calls: ["wait", "recv", "accept", "read_exact", "push_blocking"]
                .map(String::from)
                .to_vec(),
            lock_helper_fns: ["lock"].map(String::from).to_vec(),
            deny_caps: ["entropy", "clock", "net"].map(String::from).to_vec(),
            caps_marker: "lint: caps(".to_string(),
            taint_crates: ["nnet", "doppelganger", "core"].map(String::from).to_vec(),
            taint_sources: ["flat_gradients", "gradients_mut"].map(String::from).to_vec(),
            taint_sinks: [
                "emit",
                "record",
                "serialize",
                "to_string",
                "write_frame",
                "write_all",
            ]
            .map(String::from)
            .to_vec(),
            taint_sanitizers: ["sample", "add_noise", "sanitize_batch"]
                .map(String::from)
                .to_vec(),
        }
    }
}

impl Config {
    /// Effective severity of a rule.
    pub fn severity(&self, rule: RuleId) -> Severity {
        self.severities.get(&rule).copied().unwrap_or(Severity::Deny)
    }

    /// True when `rel_path` is under a fully-exempt prefix.
    pub fn is_exempt(&self, rel_path: &str) -> bool {
        self.exempt_paths.iter().any(|p| rel_path.starts_with(p))
    }
}

/// Classifies a workspace-relative path into its crate and role.
pub fn classify(rel_path: &str) -> FileMeta {
    let norm = rel_path.replace('\\', "/");
    let parts: Vec<&str> = norm.split('/').collect();
    let (crate_name, is_shim) = match parts.as_slice() {
        ["crates", name, ..] => ((*name).to_string(), false),
        ["shims", name, ..] => ((*name).to_string(), true),
        _ => ("netshare-suite".to_string(), false),
    };
    let file = parts.last().copied().unwrap_or("");
    let role = if file == "build.rs" {
        Role::Build
    } else if parts.contains(&"benches") {
        Role::Bench
    } else if parts.contains(&"examples") {
        Role::Example
    } else if parts.contains(&"tests") {
        Role::Test
    } else if parts.contains(&"bin") || file == "main.rs" {
        Role::Bin
    } else {
        Role::Lib
    };
    FileMeta {
        rel_path: norm,
        crate_name,
        role,
        is_shim,
    }
}

/// Converts a path under `root` to the workspace-relative form used in
/// diagnostics and configuration matching.
pub fn relative_to(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_workspace_layout() {
        let m = classify("crates/nnet/src/kernel.rs");
        assert_eq!(m.crate_name, "nnet");
        assert_eq!(m.role, Role::Lib);
        assert!(!m.is_shim);

        assert_eq!(classify("crates/core/src/bin/netshare_cli.rs").role, Role::Bin);
        assert_eq!(classify("crates/nnet/tests/gradcheck.rs").role, Role::Test);
        assert_eq!(classify("crates/bench/benches/training_cost.rs").role, Role::Bench);
        assert_eq!(classify("examples/quickstart.rs").role, Role::Example);
        assert_eq!(classify("tests/pipeline_integration.rs").role, Role::Test);
        assert_eq!(classify("src/lib.rs").crate_name, "netshare-suite");

        let shim = classify("shims/rand/src/lib.rs");
        assert!(shim.is_shim);
        assert_eq!(shim.crate_name, "rand");
    }

    #[test]
    fn rule_names_round_trip() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(r.name()), Some(r));
        }
        assert_eq!(RuleId::parse("no-such-rule"), None);
    }

    #[test]
    fn default_config_denies_everything() {
        let cfg = Config::default();
        for r in RuleId::ALL {
            assert_eq!(cfg.severity(r), Severity::Deny);
        }
        assert!(cfg.is_exempt("crates/analyzer/tests/fixtures/panic_in_lib.rs"));
        assert!(!cfg.is_exempt("crates/analyzer/src/lib.rs"));
    }
}
