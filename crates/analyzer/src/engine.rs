//! The lint engine: runs the rule set over one lexed file.
//!
//! All rules are token-stream rules — no type information exists at this
//! layer, so each rule is a conservative lexical proxy for the semantic
//! invariant it guards (documented per rule). Waivers exist precisely
//! because a proxy sometimes flags intentional code; every waiver carries
//! a reason that survives into the JSON report.

use crate::config::{Config, FileMeta, Role, RuleId, Severity};
use crate::lexer::{lex, Lexed, Tok, TokKind};

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Effective severity (config defaults + CLI overrides).
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Mechanical rewrite for `--fix-dry-run`, when one exists.
    pub suggestion: Option<String>,
    /// True when an inline waiver covers this line; waived findings are
    /// reported but never fail the run.
    pub waived: bool,
    /// The waiver reason, when waived.
    pub waiver_reason: Option<String>,
    /// Secondary sites participating in a graph finding (both ends of a
    /// lock-order cycle, the call chain of a propagated capability).
    /// Empty for per-file rules.
    pub related: Vec<RelatedSite>,
    /// True when a committed baseline entry covers this finding; like
    /// `waived`, baselined findings are reported but never fail the run
    /// (the ratchet: existing debt warns, new findings deny).
    pub baselined: bool,
}

/// A secondary source location attached to a graph diagnostic.
#[derive(Debug, Clone)]
pub struct RelatedSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What this site contributes (e.g. "acquires a while holding b").
    pub note: String,
}

/// A parsed `// lint: allow(<rule>) reason` waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The waived rule.
    pub rule: RuleId,
    /// The code line this waiver covers.
    pub covers: u32,
    /// The mandatory free-text justification.
    pub reason: String,
}

/// Lints one file's source text.
pub fn lint_source(meta: &FileMeta, cfg: &Config, src: &str) -> Vec<Diagnostic> {
    if cfg.is_exempt(&meta.rel_path) {
        return Vec::new();
    }
    let lexed = lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let waivers = parse_waivers(&lexed);
    let test_regions = test_regions(&lexed.toks);
    let dp_tagged = lexed.comments.iter().any(|c| c.text.contains(&cfg.dp_marker));
    // The io tag must open its comment, like the step-loop tag: prose
    // that merely mentions the marker does not sanction socket I/O. The
    // lexer strips `//` framing but leaves the doc-comment `!`.
    let io_tagged = lexed.comments.iter().any(|c| {
        c.text
            .trim_start_matches('!')
            .trim_start()
            .starts_with(&cfg.io_marker)
    });

    let mut out = Vec::new();
    let ctx = Ctx {
        meta,
        cfg,
        toks: &lexed.toks,
        lines: &lines,
        test_regions: &test_regions,
        dp_tagged,
        io_tagged,
    };
    rule_nondeterministic_iteration(&ctx, &mut out);
    rule_ambient_entropy(&ctx, &mut out);
    rule_dp_boundary(&ctx, &mut out);
    rule_float_eq(&ctx, &mut out);
    rule_undocumented_unsafe(&ctx, &lexed, &mut out);
    rule_panic_in_lib(&ctx, &mut out);
    rule_telemetry_clock(&ctx, &mut out);
    rule_unbounded_wait(&ctx, &mut out);
    rule_alloc_in_step_loop(&ctx, &lexed, &mut out);
    rule_blocking_accept_loop(&ctx, &mut out);

    for d in &mut out {
        if let Some(w) = waivers.iter().find(|w| w.rule == d.rule && w.covers == d.line) {
            d.waived = true;
            d.waiver_reason = Some(w.reason.clone());
        }
    }
    out.retain(|d| d.severity != Severity::Allow);
    out.sort_by_key(|d| (d.line, d.rule));
    out
}

struct Ctx<'a> {
    meta: &'a FileMeta,
    cfg: &'a Config,
    toks: &'a [Tok],
    lines: &'a [&'a str],
    test_regions: &'a [(u32, u32)],
    dp_tagged: bool,
    io_tagged: bool,
}

impl Ctx<'_> {
    fn in_test_region(&self, line: u32) -> bool {
        self.test_regions.iter().any(|&(a, b)| line >= a && line <= b)
    }

    fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    fn emit(
        &self,
        out: &mut Vec<Diagnostic>,
        rule: RuleId,
        line: u32,
        message: String,
        suggestion: Option<String>,
    ) {
        out.push(Diagnostic {
            rule,
            severity: self.cfg.severity(rule),
            file: self.meta.rel_path.clone(),
            line,
            message,
            snippet: self.snippet(line),
            suggestion,
            waived: false,
            waiver_reason: None,
            related: Vec::new(),
            baselined: false,
        });
    }

    /// True when lib-only rules skip this file outright.
    fn is_test_like(&self) -> bool {
        matches!(self.meta.role, Role::Test | Role::Bench | Role::Example)
    }
}

/// Extracts waivers from comments. A trailing waiver covers its own line;
/// a standalone waiver covers the next line that holds a code token.
pub(crate) fn parse_waivers(lexed: &Lexed) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let Some(idx) = c.text.find("lint: allow(") else {
            continue;
        };
        let rest = &c.text[idx + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let Some(rule) = RuleId::parse(&rest[..close]) else {
            continue;
        };
        let reason = rest[close + 1..].trim().to_string();
        let covers = if c.trailing {
            c.line
        } else {
            next_code_line(lexed, c.end_line).unwrap_or(c.end_line + 1)
        };
        out.push(Waiver { rule, covers, reason });
    }
    out
}

fn next_code_line(lexed: &Lexed, after: u32) -> Option<u32> {
    lexed.toks.iter().map(|t| t.line).find(|&l| l > after)
}

/// Computes `(start_line, end_line)` spans of `#[cfg(test)]` items and
/// `#[test]` functions by brace matching from the attribute.
pub(crate) fn test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let span = match_attr(toks, i, &["cfg", "(", "test", ")"])
            .or_else(|| match_attr(toks, i, &["test"]));
        if let Some(after) = span {
            if let Some((start, end)) = brace_span(toks, after) {
                out.push((toks[i].line, end));
                let _ = start;
            }
            i = after;
        } else {
            i += 1;
        }
    }
    out
}

/// Matches `#[ <body…> ]` starting at `i`; returns the index just past `]`.
fn match_attr(toks: &[Tok], i: usize, body: &[&str]) -> Option<usize> {
    if toks.get(i)?.text != "#" || toks.get(i + 1)?.text != "[" {
        return None;
    }
    for (k, want) in body.iter().enumerate() {
        if toks.get(i + 2 + k)?.text != *want {
            return None;
        }
    }
    if toks.get(i + 2 + body.len())?.text != "]" {
        return None;
    }
    Some(i + 3 + body.len())
}

/// From `from`, finds the first `{` and returns `(open_line, close_line)`
/// of its matching brace (EOF-tolerant: unclosed braces span to the last
/// token).
fn brace_span(toks: &[Tok], from: usize) -> Option<(u32, u32)> {
    let open = toks[from..].iter().position(|t| t.text == "{")? + from;
    let mut depth = 0i64;
    for t in &toks[open..] {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((toks[open].line, t.line));
                }
            }
            _ => {}
        }
    }
    Some((toks[open].line, toks.last().map_or(0, |t| t.line)))
}

/// Rule 1 — `nondeterministic-iteration`.
///
/// Lexical proxy: any `HashMap`/`HashSet` identifier in a
/// determinism-critical crate's non-test code. Iteration order of std
/// hash maps is randomized per process, so any use that feeds training,
/// serialization, or output ordering breaks bitwise seed determinism;
/// the conservative stance is that these crates use `BTreeMap`/`BTreeSet`
/// (or sort explicitly and waive).
fn rule_nondeterministic_iteration(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    if ctx.meta.is_shim
        || ctx.is_test_like()
        || !ctx.cfg.determinism_crates.contains(&ctx.meta.crate_name)
    {
        return;
    }
    for t in ctx.toks {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        if ctx.in_test_region(t.line) {
            continue;
        }
        let ordered = if t.text == "HashMap" { "BTreeMap" } else { "BTreeSet" };
        let fixed = ctx
            .snippet(t.line)
            .replace("HashMap", "BTreeMap")
            .replace("HashSet", "BTreeSet");
        ctx.emit(
            out,
            RuleId::NondeterministicIteration,
            t.line,
            format!(
                "`{}` in determinism-critical crate `{}`: iteration order is \
                 process-random; use `{}` or sort before iterating",
                t.text, ctx.meta.crate_name, ordered
            ),
            Some(fixed),
        );
    }
}

/// Rule 2 — `ambient-entropy`.
///
/// Flags `thread_rng`, `rand::random`, `SystemTime::now`, `Instant::now`
/// outside the whitelisted paths. Ambient entropy and wall clocks are the
/// two ways identical seeds diverge across runs/hosts; all randomness must
/// flow from seeded RNGs and all timing through `orchestrator::timing`.
fn rule_ambient_entropy(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    if ctx
        .cfg
        .entropy_whitelist
        .iter()
        .any(|p| ctx.meta.rel_path.starts_with(p))
        || ctx.meta.role == Role::Bench
    {
        return;
    }
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let offense = match t.text.as_str() {
            "thread_rng" => Some("`thread_rng()` seeds from the OS"),
            "random" if path_prefix_is(toks, i, "rand") => {
                Some("`rand::random()` seeds from the OS")
            }
            "SystemTime" if calls_assoc(toks, i, "now") => {
                Some("`SystemTime::now()` reads the wall clock")
            }
            "Instant" if calls_assoc(toks, i, "now") => {
                Some("`Instant::now()` reads the monotonic clock")
            }
            _ => None,
        };
        if let Some(why) = offense {
            ctx.emit(
                out,
                RuleId::AmbientEntropy,
                t.line,
                format!(
                    "{why}; route randomness through seeded RNGs and timing \
                     through `orchestrator::timing`"
                ),
                None,
            );
        }
    }
}

/// True when token `i` is preceded by `<prefix> ::`.
fn path_prefix_is(toks: &[Tok], i: usize, prefix: &str) -> bool {
    i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == prefix
}

/// True when token `i` is followed by `:: <method>`.
fn calls_assoc(toks: &[Tok], i: usize, method: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.text == "::")
        && toks.get(i + 2).is_some_and(|t| t.text == method)
}

/// Rule 3 — `dp-boundary`.
///
/// A file tagged `lint: dp-post-noise` consumes gradients *after*
/// DP-SGD's clip-and-noise step; touching per-example accessors there
/// would read raw (un-noised) gradients and silently void the privacy
/// accounting. Only the sanitize boundary (`dpsgd.rs`, untagged) may.
fn rule_dp_boundary(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    if !ctx.dp_tagged {
        return;
    }
    for t in ctx.toks {
        if t.kind == TokKind::Ident && ctx.cfg.dp_banned.contains(&t.text) {
            if ctx.in_test_region(t.line) {
                continue;
            }
            ctx.emit(
                out,
                RuleId::DpBoundary,
                t.line,
                format!(
                    "`{}` in a `dp-post-noise` file: raw per-example gradients \
                     must not be read past the noise boundary (see \
                     `DpSgdTrainer::sanitize_batch`)",
                    t.text
                ),
                None,
            );
        }
    }
}

/// Rule 4 — `float-eq`.
///
/// Lexical proxy: `==`/`!=` with a float literal on either side, in
/// metrics/training crates. Exact float equality is almost always a
/// rounding-sensitive bug; compare against a tolerance. Intentional
/// bitwise checks (zero-skip fast paths, golden tests) take a waiver.
fn rule_float_eq(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    if ctx.meta.is_shim
        || ctx.is_test_like()
        || !ctx.cfg.float_eq_crates.contains(&ctx.meta.crate_name)
    {
        return;
    }
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let float_adjacent = [i.checked_sub(1), Some(i + 1)]
            .into_iter()
            .flatten()
            .filter_map(|j| toks.get(j))
            .any(|n| n.kind == TokKind::Float);
        if !float_adjacent || ctx.in_test_region(t.line) {
            continue;
        }
        ctx.emit(
            out,
            RuleId::FloatEq,
            t.line,
            format!(
                "`{}` against a float literal: exact float comparison is \
                 rounding-sensitive; compare with a tolerance (or waive for \
                 intentional bitwise checks)",
                t.text
            ),
            Some("(a - b).abs() <= EPS".to_string()),
        );
    }
}

/// Rule 5 — `undocumented-unsafe`.
///
/// Every `unsafe` token needs a `// SAFETY:` comment ending at most two
/// lines above it (or trailing on the same line). Applies everywhere,
/// shims included: unchecked code is unchecked regardless of crate.
fn rule_undocumented_unsafe(ctx: &Ctx, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    for t in ctx.toks {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        let documented = lexed.comments.iter().any(|c| {
            c.text.starts_with("SAFETY:")
                && c.end_line <= t.line
                && c.end_line + 2 >= t.line
        });
        if !documented {
            ctx.emit(
                out,
                RuleId::UndocumentedUnsafe,
                t.line,
                "`unsafe` without a preceding `// SAFETY:` comment stating why \
                 the invariants hold"
                    .to_string(),
                None,
            );
        }
    }
}

/// Rule 6 — `panic-in-lib`.
///
/// `.unwrap()`, `.expect(…)`, and `panic!` abort a worker thread instead
/// of surfacing a typed error the orchestrator can retry; library crates
/// return `Result`. Tests, benches, examples, and binaries are exempt
/// (aborting is their error model). Plain `assert!`s are allowed — they
/// state invariants, not error handling.
fn rule_panic_in_lib(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    if ctx.meta.is_shim || ctx.meta.role != Role::Lib {
        return;
    }
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let offense = match t.text.as_str() {
            "unwrap" | "expect" if i > 0 && toks[i - 1].text == "." => {
                Some(format!("`.{}()` panics on the error path", t.text))
            }
            "panic" if toks.get(i + 1).is_some_and(|n| n.text == "!") => {
                Some("`panic!` aborts the worker thread".to_string())
            }
            _ => None,
        };
        let Some(why) = offense else { continue };
        if ctx.in_test_region(t.line) {
            continue;
        }
        ctx.emit(
            out,
            RuleId::PanicInLib,
            t.line,
            format!("{why}; return a typed error (or waive with the invariant that makes this unreachable)"),
            None,
        );
    }
}

/// Rule 7 — `telemetry-clock`.
///
/// Flags raw `monotonic_nanos` reads outside the sanctioned timing
/// shims (`telemetry` itself, `orchestrator::timing`, shims). The
/// telemetry epoch clock is the *one* ambient-clock anchor the lint
/// budget admits; product code must take timestamps through
/// `orchestrator::timing::Stopwatch` or telemetry's span/timer guards,
/// which pair every read with a duration and keep events on a single
/// process epoch. Test-like targets are exempt — asserting on raw
/// timestamps is their job.
fn rule_telemetry_clock(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    if ctx.is_test_like()
        || ctx
            .cfg
            .clock_whitelist
            .iter()
            .any(|p| ctx.meta.rel_path.starts_with(p))
    {
        return;
    }
    for t in ctx.toks {
        if t.kind != TokKind::Ident || t.text != "monotonic_nanos" {
            continue;
        }
        if ctx.in_test_region(t.line) {
            continue;
        }
        ctx.emit(
            out,
            RuleId::TelemetryClock,
            t.line,
            "raw `telemetry::clock::monotonic_nanos` read outside the sanctioned \
             timing shims; take timestamps via `orchestrator::timing::Stopwatch`, \
             `telemetry::span!`, or `telemetry::metrics::scoped_timer_us`"
                .to_string(),
            None,
        );
    }
}

/// Rule 8 — `unbounded-wait`.
///
/// Flags `thread::sleep` and timeout-less `.wait(` (Condvar) calls in
/// library code. A worker blocked in either cannot be cancelled by the
/// hung-job watchdog or woken when the run fails, so retry backoffs and
/// claim loops would hold a dead run hostage; interruptible waits
/// (`CancelToken::wait_timeout`, `Condvar::wait_timeout` — distinct
/// identifiers, never flagged) are the sanctioned forms. Tests, benches,
/// examples, and binaries may block freely.
///
/// Also flags fixed-sleep retry loops: a `wait_timeout` whose duration
/// is a `Duration::from_*(<integer literal>)` constant, sitting inside a
/// `loop`/`while`/`for` whose body never mentions a backoff. The wait
/// itself is interruptible, but the loop is a retry policy, and a
/// constant per-attempt delay polls a dead peer at full cadence forever;
/// `orchestrator::Backoff` (exponential growth, seeded jitter) is the
/// sanctioned shape, and any identifier containing `backoff` in the
/// enclosing loop passes.
fn rule_unbounded_wait(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    if ctx.meta.is_shim
        || ctx.meta.role != Role::Lib
        || ctx
            .cfg
            .wait_whitelist
            .iter()
            .any(|p| ctx.meta.rel_path.starts_with(p))
    {
        return;
    }
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let offense = match t.text.as_str() {
            "sleep" if path_prefix_is(toks, i, "thread") => {
                Some("`thread::sleep` cannot be interrupted")
            }
            "wait"
                if i > 0
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).is_some_and(|n| n.text == "(") =>
            {
                Some("`.wait()` blocks with no timeout")
            }
            _ => None,
        };
        let Some(why) = offense else { continue };
        if ctx.in_test_region(t.line) {
            continue;
        }
        ctx.emit(
            out,
            RuleId::UnboundedWait,
            t.line,
            format!(
                "{why}: a hung worker here is invisible to the watchdog and \
                 deaf to run cancellation; use `CancelToken::wait_timeout` or \
                 `Condvar::wait_timeout` (or waive with the bound that makes \
                 this finite)"
            ),
            None,
        );
    }

    // Second pass: fixed-sleep retry loops. Collect every loop span up
    // front (keyword index → closing-brace index; condition tokens land
    // inside the span because the open brace follows the keyword), then
    // flag constant-duration `wait_timeout` calls whose innermost
    // enclosing loop never names a backoff.
    let loop_spans: Vec<(usize, usize)> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            t.kind == TokKind::Ident && matches!(t.text.as_str(), "loop" | "while" | "for")
        })
        .filter_map(|(kw, _)| brace_span_idx(toks, kw).map(|(_, close)| (kw, close)))
        .collect();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "wait_timeout" {
            continue;
        }
        // The argument must spell `Duration::from_*(<integer literal>)`
        // within a short lexical window — a named constant or a computed
        // duration is somebody's tuning knob, not a hardcoded poll.
        let window = &toks[i..toks.len().min(i + 12)];
        let fixed = window.iter().enumerate().any(|(k, w)| {
            w.kind == TokKind::Ident
                && w.text.starts_with("from_")
                && window[..k].iter().any(|p| p.text == "Duration")
                && window.get(k + 1).is_some_and(|p| p.text == "(")
                && window.get(k + 2).is_some_and(|p| p.kind == TokKind::Int)
        });
        if !fixed || ctx.in_test_region(t.line) {
            continue;
        }
        let Some(&(kw, close)) = loop_spans
            .iter()
            .filter(|(kw, close)| *kw < i && i <= *close)
            .max_by_key(|(kw, _)| *kw)
        else {
            continue;
        };
        let has_backoff = toks[kw..=close]
            .iter()
            .any(|p| p.kind == TokKind::Ident && p.text.to_ascii_lowercase().contains("backoff"));
        if has_backoff {
            continue;
        }
        ctx.emit(
            out,
            RuleId::UnboundedWait,
            t.line,
            "fixed-sleep retry loop: a constant delay per attempt polls a \
             dead peer at full cadence forever; grow the wait with \
             `orchestrator::Backoff` (exponential, seeded jitter) or waive \
             with the bound that makes this loop finite"
                .to_string(),
            None,
        );
    }
}

/// Rule 9 — `alloc-in-step-loop`.
///
/// A `// lint: step-loop` comment tags the loop that follows it as a
/// per-timestep hot loop (GRU step loops, the sampler's generation
/// loop). Fresh heap allocation inside the tagged loop body —
/// `Vec::new()`, `vec![…]`, `Tensor::zeros(…)` — costs a malloc per
/// timestep per batch and is exactly the regression the scratch-arena
/// work removed; buffers belong before the loop or in a preallocated
/// `nnet::infer::Arena`. The tag is opt-in, so only loops whose authors
/// declared them hot are checked; allocation in callees is invisible to
/// this lexical proxy and is guarded by the alloc-count regression test
/// instead.
fn rule_alloc_in_step_loop(ctx: &Ctx, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if ctx.meta.is_shim {
        return;
    }
    let toks = ctx.toks;
    for c in &lexed.comments {
        // The tag must open the comment — prose merely *mentioning*
        // `lint: step-loop` (rule docs, fixture headers) is not a tag.
        if !c.text.trim_start().starts_with("lint: step-loop") {
            continue;
        }
        // First loop keyword at or after the tag (the tag may trail the
        // loop header line or sit on its own line above it).
        let Some(kw) = toks.iter().position(|t| {
            t.line >= c.line
                && t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "for" | "while" | "loop")
        }) else {
            continue;
        };
        let Some((open, close)) = brace_span_idx(toks, kw) else {
            continue;
        };
        for i in (open + 1)..close {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let offense = match t.text.as_str() {
                "Vec" if calls_assoc(toks, i, "new") => Some("`Vec::new()`"),
                "vec" if toks.get(i + 1).is_some_and(|n| n.text == "!") => Some("`vec![…]`"),
                "Tensor" if calls_assoc(toks, i, "zeros") => Some("`Tensor::zeros(…)`"),
                _ => None,
            };
            if let Some(what) = offense {
                ctx.emit(
                    out,
                    RuleId::AllocInStepLoop,
                    t.line,
                    format!(
                        "{what} inside a `lint: step-loop`-tagged hot loop \
                         allocates every timestep; hoist the buffer above the \
                         loop or take it from a preallocated `nnet::infer::Arena` \
                         (`take_zeroed`/`recycle`)"
                    ),
                    None,
                );
            }
        }
    }
}

/// Rule 10 — `blocking-accept-loop`.
///
/// Flags `.accept(` and `.read_exact(` method calls in files that do not
/// open a comment with the `lint: io-boundary` marker. Both block with no
/// cancellation point: an accept loop outside `netshared::server` cannot
/// be stopped by drain, and a `read_exact` outside `netshared::protocol`
/// loses partially-read bytes on timeout and never polls the session
/// token. The sanctioned modules declare themselves with the tag (and
/// keep their loops interruptible); everything else routes socket I/O
/// through them. Tests, benches, and examples may drive sockets raw.
fn rule_blocking_accept_loop(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    if ctx.meta.is_shim || ctx.io_tagged || ctx.is_test_like() {
        return;
    }
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_method_call = i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|n| n.text == "(");
        let offense = match t.text.as_str() {
            "accept" if is_method_call => {
                Some("`.accept()` blocks outside the sanctioned accept loop")
            }
            "read_exact" if is_method_call => {
                Some("`.read_exact()` blocks and loses partial reads on timeout")
            }
            _ => None,
        };
        let Some(why) = offense else { continue };
        if ctx.in_test_region(t.line) {
            continue;
        }
        ctx.emit(
            out,
            RuleId::BlockingAcceptLoop,
            t.line,
            format!(
                "{why}; socket I/O belongs in a `lint: io-boundary`-tagged \
                 module — route frames through `netshared::protocol`'s \
                 interruptible read/write loops"
            ),
            None,
        );
    }
}

/// Token-index variant of [`brace_span`]: from `from`, finds the first
/// `{` and returns `(open_idx, close_idx)` of its matching brace
/// (EOF-tolerant: unclosed braces span to the last token).
fn brace_span_idx(toks: &[Tok], from: usize) -> Option<(usize, usize)> {
    let open = toks[from..].iter().position(|t| t.text == "{")? + from;
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, i));
                }
            }
            _ => {}
        }
    }
    Some((open, toks.len().saturating_sub(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::classify;

    fn lint_as(path: &str, src: &str) -> Vec<Diagnostic> {
        let meta = classify(path);
        lint_source(&meta, &Config::default(), src)
    }

    fn rules(diags: &[Diagnostic]) -> Vec<(RuleId, u32, bool)> {
        diags.iter().map(|d| (d.rule, d.line, d.waived)).collect()
    }

    #[test]
    fn hashmap_flagged_only_in_critical_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            rules(&lint_as("crates/core/src/x.rs", src)),
            vec![(RuleId::NondeterministicIteration, 1, false)]
        );
        assert!(lint_as("crates/distmetrics/src/x.rs", src).is_empty());
        assert!(lint_as("crates/core/tests/x.rs", src).is_empty());
        assert!(lint_as("shims/rand/src/lib.rs", src).is_empty());
    }

    #[test]
    fn hashmap_suggestion_is_mechanical() {
        let d = lint_as("crates/nnet/src/x.rs", "let m: HashMap<u8, u8> = HashMap::new();\n");
        assert_eq!(d.len(), 2);
        assert_eq!(
            d[0].suggestion.as_deref(),
            Some("let m: BTreeMap<u8, u8> = BTreeMap::new();")
        );
    }

    #[test]
    fn ambient_entropy_respects_whitelist() {
        let src = "let t = Instant::now();\nlet r = thread_rng();\nlet x = rand::random();\nlet w = SystemTime::now();\n";
        let d = lint_as("crates/nnet/src/x.rs", src);
        assert_eq!(
            rules(&d),
            vec![
                (RuleId::AmbientEntropy, 1, false),
                (RuleId::AmbientEntropy, 2, false),
                (RuleId::AmbientEntropy, 3, false),
                (RuleId::AmbientEntropy, 4, false),
            ]
        );
        assert!(lint_as("crates/orchestrator/src/timing.rs", src).is_empty());
        assert!(lint_as("crates/bench/benches/x.rs", src).is_empty());
    }

    #[test]
    fn plain_random_ident_is_not_ambient_entropy() {
        assert!(lint_as("crates/nnet/src/x.rs", "fn random(seed: u64) {}\nlet x = random(3);\n").is_empty());
    }

    #[test]
    fn dp_boundary_requires_the_tag() {
        let tagged = "// lint: dp-post-noise\nlet g = model.flat_gradients();\n";
        assert_eq!(
            rules(&lint_as("crates/doppelganger/src/x.rs", tagged)),
            vec![(RuleId::DpBoundary, 2, false)]
        );
        let untagged = "let g = model.flat_gradients();\n";
        assert!(lint_as("crates/doppelganger/src/x.rs", untagged).is_empty());
    }

    #[test]
    fn float_eq_needs_a_float_literal() {
        let d = lint_as("crates/distmetrics/src/x.rs", "if x == 0.0 {}\nif n == 0 {}\nif 1e-3 != y {}\n");
        assert_eq!(
            rules(&d),
            vec![(RuleId::FloatEq, 1, false), (RuleId::FloatEq, 3, false)]
        );
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = "fn f() { unsafe { g() } }\n";
        assert_eq!(
            rules(&lint_as("crates/nnet/src/x.rs", bad)),
            vec![(RuleId::UndocumentedUnsafe, 1, false)]
        );
        let good = "// SAFETY: g has no invariants\nunsafe { g() }\n";
        assert!(lint_as("crates/nnet/src/x.rs", good).is_empty());
        let trailing = "unsafe { g() } // SAFETY: g has no invariants\n";
        assert!(lint_as("crates/nnet/src/x.rs", trailing).is_empty());
    }

    #[test]
    fn panic_in_lib_exempts_tests_bins_and_cfg_test() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(
            rules(&lint_as("crates/core/src/x.rs", src)),
            vec![(RuleId::PanicInLib, 1, false)]
        );
        assert!(lint_as("crates/core/src/bin/cli.rs", src).is_empty());
        assert!(lint_as("crates/core/tests/t.rs", src).is_empty());

        let with_tests = "fn f() -> u8 { 0 }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { f().checked_add(1).unwrap(); panic!(\"x\"); }\n}\n";
        assert!(lint_as("crates/core/src/x.rs", with_tests).is_empty());
    }

    #[test]
    fn telemetry_clock_flags_raw_reads_outside_the_shims() {
        let src = "let t0 = telemetry::clock::monotonic_nanos();\n";
        assert_eq!(
            rules(&lint_as("crates/core/src/x.rs", src)),
            vec![(RuleId::TelemetryClock, 1, false)]
        );
        // The sanctioned shims and test-like targets are exempt.
        assert!(lint_as("crates/telemetry/src/span.rs", src).is_empty());
        assert!(lint_as("crates/orchestrator/src/timing.rs", src).is_empty());
        assert!(lint_as("crates/core/tests/t.rs", src).is_empty());
        // A bare unrelated identifier on the same theme is fine.
        assert!(lint_as("crates/core/src/x.rs", "fn monotonic() {}\n").is_empty());
    }

    #[test]
    fn unbounded_wait_flags_sleeps_and_raw_waits_in_lib_code() {
        let src = "fn f(cv: &Condvar, g: G) {\n    std::thread::sleep(D);\n    let g = cv.wait(g);\n    let g = cv.wait_timeout(g, D);\n}\n";
        assert_eq!(
            rules(&lint_as("crates/orchestrator/src/x.rs", src)),
            vec![(RuleId::UnboundedWait, 2, false), (RuleId::UnboundedWait, 3, false)],
            "wait_timeout is a distinct identifier and never flagged"
        );
        // Test-like targets, bins, shims, and test regions may block.
        assert!(lint_as("crates/orchestrator/tests/t.rs", src).is_empty());
        assert!(lint_as("crates/core/src/bin/cli.rs", src).is_empty());
        assert!(lint_as("shims/rayon/src/lib.rs", src).is_empty());
        let in_tests = "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::sleep(D); }\n}\n";
        assert!(lint_as("crates/orchestrator/src/x.rs", in_tests).is_empty());
        // A field or free fn named `wait`/`sleep` is not a blocking call.
        assert!(lint_as("crates/core/src/x.rs", "let w = self.wait;\nfn sleep() {}\n").is_empty());
    }

    #[test]
    fn unbounded_wait_flags_fixed_sleep_retry_loops() {
        // A hardcoded per-attempt delay inside a loop is a flat poll.
        let flat = "fn f(t: &T) {\n    while !t.wait_timeout(Duration::from_millis(50)) {\n    }\n}\n";
        assert_eq!(
            rules(&lint_as("crates/orchestrator/src/x.rs", flat)),
            vec![(RuleId::UnboundedWait, 2, false)]
        );
        // Outside a loop, a fixed wait is a one-shot delay — fine.
        let once = "fn f(t: &T) {\n    let _ = t.wait_timeout(Duration::from_millis(50));\n}\n";
        assert!(lint_as("crates/orchestrator/src/x.rs", once).is_empty());
        // A variable duration is a tuning knob, not a hardcoded poll.
        let tunable = "fn f(t: &T, ms: u64) {\n    while !t.wait_timeout(Duration::from_millis(ms)) {\n    }\n}\n";
        assert!(lint_as("crates/orchestrator/src/x.rs", tunable).is_empty());
        // A loop that names a backoff is the sanctioned growing delay.
        let grows = "fn f(t: &T, backoff: &mut B) {\n    loop {\n        if t.wait_timeout(Duration::from_millis(5)) { return; }\n        if backoff.sleep(t) { return; }\n    }\n}\n";
        assert!(lint_as("crates/orchestrator/src/x.rs", grows).is_empty());
        // Test code may poll flat.
        assert!(lint_as("crates/orchestrator/tests/t.rs", flat).is_empty());
    }

    #[test]
    fn waivers_cover_trailing_and_next_line() {
        let trailing = "let m = HashMap::new(); // lint: allow(nondeterministic-iteration) keys sorted below\n";
        let d = lint_as("crates/core/src/x.rs", trailing);
        assert_eq!(rules(&d), vec![(RuleId::NondeterministicIteration, 1, true)]);
        assert_eq!(d[0].waiver_reason.as_deref(), Some("keys sorted below"));

        let standalone = "// lint: allow(panic-in-lib) config validated at startup\nfn f() { x.unwrap(); }\n";
        assert_eq!(
            rules(&lint_as("crates/core/src/x.rs", standalone)),
            vec![(RuleId::PanicInLib, 2, true)]
        );
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_cover() {
        let src = "let m = HashMap::new(); // lint: allow(float-eq) wrong rule\n";
        assert_eq!(
            rules(&lint_as("crates/core/src/x.rs", src)),
            vec![(RuleId::NondeterministicIteration, 1, false)]
        );
    }

    #[test]
    fn alloc_in_step_loop_fires_only_inside_tagged_loops() {
        let tagged = "fn f() {\n    let pre = Vec::new();\n    // lint: step-loop\n    for t in 0..n {\n        let z = Vec::new();\n        let v = vec![0.0; 4];\n        let h = Tensor::zeros(2, 3);\n    }\n    let post = vec![1];\n}\n";
        assert_eq!(
            rules(&lint_as("crates/nnet/src/x.rs", tagged)),
            vec![
                (RuleId::AllocInStepLoop, 5, false),
                (RuleId::AllocInStepLoop, 6, false),
                (RuleId::AllocInStepLoop, 7, false),
            ],
            "allocations before and after the tagged loop are not flagged"
        );

        let untagged = "fn f() {\n    for t in 0..n {\n        let z = Vec::new();\n    }\n}\n";
        assert!(lint_as("crates/nnet/src/x.rs", untagged).is_empty());
    }

    #[test]
    fn alloc_in_step_loop_accepts_trailing_tags_and_waivers() {
        let trailing_tag = "fn f() {\n    while go { // lint: step-loop\n        let z = Tensor::zeros(1, 1);\n    }\n}\n";
        assert_eq!(
            rules(&lint_as("crates/core/src/x.rs", trailing_tag)),
            vec![(RuleId::AllocInStepLoop, 3, false)]
        );

        let waived = "fn f() {\n    // lint: step-loop\n    loop {\n        let z = vec![0u8]; // lint: allow(alloc-in-step-loop) escapes per iteration\n    }\n}\n";
        let d = lint_as("crates/core/src/x.rs", waived);
        assert_eq!(rules(&d), vec![(RuleId::AllocInStepLoop, 4, true)]);
        assert_eq!(d[0].waiver_reason.as_deref(), Some("escapes per iteration"));
    }

    #[test]
    fn alloc_in_step_loop_ignores_method_calls_and_callees() {
        // `arena.take_zeroed` and other method calls are the sanctioned
        // form — only the three literal constructors are flagged.
        let src = "fn f() {\n    // lint: step-loop\n    for t in 0..n {\n        let z = arena.take_zeroed(2, 3);\n        let next = frozen.step(&x, &h, arena);\n    }\n}\n";
        assert!(lint_as("crates/nnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn blocking_accept_loop_needs_the_io_boundary_tag() {
        let src = "fn serve(l: &TcpListener, s: &mut TcpStream) {\n    let (sock, _) = l.accept().ok();\n    s.read_exact(&mut buf).ok();\n}\n";
        assert_eq!(
            rules(&lint_as("crates/core/src/x.rs", src)),
            vec![
                (RuleId::BlockingAcceptLoop, 2, false),
                (RuleId::BlockingAcceptLoop, 3, false),
            ]
        );
        // An opening io-boundary tag sanctions the whole file.
        let tagged = format!("//! lint: io-boundary — owns the accept loop\n{src}");
        assert!(lint_as("crates/netshared/src/x.rs", &tagged).is_empty());
        // Prose mentioning the marker mid-comment does not tag.
        let prose = format!("//! see the `lint: io-boundary` convention\n{src}");
        assert_eq!(rules(&lint_as("crates/core/src/x.rs", &prose)).len(), 2);
        // Tests, shims, and test regions may drive sockets raw; bins may not.
        assert!(lint_as("crates/netshared/tests/t.rs", src).is_empty());
        assert!(lint_as("shims/rand/src/lib.rs", src).is_empty());
        assert_eq!(rules(&lint_as("crates/core/src/bin/cli.rs", src)).len(), 2);
        let in_tests = "#[cfg(test)]\nmod tests {\n    fn t(l: &TcpListener) { l.accept().ok(); }\n}\n";
        assert!(lint_as("crates/core/src/x.rs", in_tests).is_empty());
        // Non-call identifiers sharing the names are fine.
        assert!(lint_as("crates/core/src/x.rs", "fn accept() {}\nlet read_exact = 3;\n").is_empty());
    }

    #[test]
    fn fixture_paths_are_exempt() {
        assert!(lint_as(
            "crates/analyzer/tests/fixtures/bad.rs",
            "let m = HashMap::new();\n"
        )
        .is_empty());
    }
}
