//! Crash-tolerant serving: `from_seq` resume must be bitwise identical
//! to an uninterrupted stream, and a reconnecting client must survive a
//! daemon that dies mid-stream and comes back on the same port — with
//! the assembled output indistinguishable from a single clean pull.
//!
//! lint: io-boundary — raw protocol sockets drive resume scenarios.

use doppelganger::GeneratedSample;
use netshared::protocol::{self, Frame, PROTOCOL_VERSION};
use netshared::{demo_bundle, pull, PullConfig, Server, ServerConfig};
use orchestrator::CancelToken;
use std::sync::atomic::Ordering;
use std::time::Duration;

fn guard_token() -> CancelToken {
    let token = CancelToken::new();
    let t = token.clone();
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(45));
        t.cancel("test guard timeout");
    });
    token
}

fn bits(samples: &[GeneratedSample]) -> Vec<Vec<u32>> {
    samples
        .iter()
        .map(|s| {
            let mut row: Vec<u32> = s.meta.iter().map(|x| x.to_bits()).collect();
            for r in &s.records {
                row.extend(r.iter().map(|x| x.to_bits()));
            }
            row
        })
        .collect()
}

/// Subscribes over the raw protocol and drains the stream, returning the
/// `(seq, samples)` frames received plus the EOF total.
fn collect_frames(
    addr: &str,
    artifact: &str,
    count: u64,
    from_seq: u64,
    token: &CancelToken,
) -> (Vec<(u64, Vec<GeneratedSample>)>, u64) {
    let mut sock = std::net::TcpStream::connect(addr).expect("connect");
    protocol::configure(&sock).expect("configure");
    protocol::write_frame(
        &mut sock,
        &Frame::Hello { version: PROTOCOL_VERSION, peer: "resume".into(), artifacts: vec![] },
        token,
    )
    .unwrap();
    match protocol::read_frame(&mut sock, token).expect("server hello") {
        Frame::Hello { version, .. } => assert_eq!(version, PROTOCOL_VERSION),
        other => panic!("expected HELLO, got {other:?}"),
    }
    protocol::write_frame(
        &mut sock,
        &Frame::Subscribe { stream: 1, artifact: artifact.into(), count, credit: 8, from_seq },
        token,
    )
    .unwrap();
    let mut frames = Vec::new();
    loop {
        match protocol::read_frame(&mut sock, token).expect("frame") {
            Frame::Data { stream, seq, samples } => {
                assert_eq!(stream, 1);
                frames.push((seq, samples));
                protocol::write_frame(&mut sock, &Frame::Credit { stream: 1, frames: 1 }, token)
                    .unwrap();
            }
            Frame::Eof { stream, total } => {
                assert_eq!(stream, 1);
                return (frames, total);
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
}

#[test]
fn from_seq_resume_is_bitwise_identical_to_the_uninterrupted_stream() {
    let server = Server::start(
        ServerConfig { drain: Duration::from_millis(200), ..ServerConfig::default() },
        vec![demo_bundle("demo", 7)],
    )
    .expect("server start");
    let addr = server.local_addr().to_string();
    let token = guard_token();

    let (full, full_total) = collect_frames(&addr, "demo", 60, 0, &token);
    assert_eq!(full_total, 60);
    assert!(full.len() >= 2, "need at least two frames to resume between");

    // Resume from every frame boundary: the suffix must be the same
    // frames, same seqs, same bits — and EOF still reports the full
    // stream total so a client can validate completeness.
    for mid in [1, full.len() / 2, full.len() - 1] {
        let (resumed, total) = collect_frames(&addr, "demo", 60, mid as u64, &token);
        assert_eq!(total, full_total, "EOF total is the stream total, not the suffix");
        assert_eq!(resumed.len(), full.len() - mid, "resume at frame {mid}");
        for ((seq_a, samples_a), (seq_b, samples_b)) in resumed.iter().zip(&full[mid..]) {
            assert_eq!(seq_a, seq_b);
            assert_eq!(bits(samples_a), bits(samples_b), "frame {seq_a} diverged");
        }
    }

    // Resuming past the end of the stream yields EOF alone.
    let (empty, total) = collect_frames(&addr, "demo", 60, 10_000, &token);
    assert!(empty.is_empty(), "no frames past the end");
    assert_eq!(total, 60);
    server.shutdown();
}

#[test]
fn reconnecting_pull_survives_a_daemon_restart_mid_stream() {
    const COUNT: u64 = 20_000;
    // A small buffer cap forces many small DATA frames, so the kill
    // below is guaranteed to land with most of the stream unsent.
    let server = Server::start(
        ServerConfig { drain: Duration::ZERO, capacity_bytes: 2048, ..ServerConfig::default() },
        vec![demo_bundle("demo", 7)],
    )
    .expect("server start");
    let addr = server.local_addr().to_string();

    let puller = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let token = guard_token();
            let mut cfg = PullConfig::new(&addr, "demo", COUNT);
            cfg.credit = 2; // many round trips: the kill lands mid-stream
            cfg.retries = 40;
            cfg.backoff = Duration::from_millis(20);
            pull(&cfg, &token)
        })
    };

    // Wait until the stream is demonstrably live, then die without
    // draining — an abrupt daemon crash from the client's side.
    let stats = server.stats();
    let mut ticks = 0;
    while stats.frames_sent.load(Ordering::Relaxed) < 2 && ticks < 1000 {
        std::thread::sleep(Duration::from_millis(5));
        ticks += 1;
    }
    assert!(stats.frames_sent.load(Ordering::Relaxed) >= 2, "stream never started");
    server.shutdown();

    // Restart on the SAME address (std listeners set SO_REUSEADDR, so
    // TIME_WAIT does not block the rebind). The client's retry budget
    // absorbs the refused connects in between.
    let revived = Server::start(
        ServerConfig {
            addr: addr.clone(),
            drain: Duration::from_millis(200),
            capacity_bytes: 2048,
            ..ServerConfig::default()
        },
        vec![demo_bundle("demo", 7)],
    )
    .expect("server restart");

    let result = puller.join().expect("client thread").expect("reconnecting pull");
    assert_eq!(result.samples.len() as u64, COUNT);
    assert_eq!(result.eof_total, COUNT);
    assert!(result.reconnects >= 1, "the kill should have forced at least one reconnect");

    // The spliced stream is bitwise identical to offline sampling: the
    // restarted daemon regenerated the prefix and resumed exactly where
    // the dead one stopped.
    let mut offline = demo_bundle("demo", 7).rebuild().expect("rebuild");
    assert_eq!(
        bits(&result.samples),
        bits(&offline.sample_fast(COUNT as usize)),
        "resumed pull diverged from offline sampling"
    );
    revived.shutdown();
}
