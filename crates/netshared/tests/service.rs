//! Concurrency and lifecycle: N concurrent clients get bitwise-correct
//! streams, disconnects free their sessions, and silent clients are
//! evicted by the reused orchestrator watchdog.
//!
//! lint: io-boundary — raw sockets simulate disconnecting and silent
//! clients.

use netshared::protocol::{self, Frame, PROTOCOL_VERSION};
use netshared::{demo_bundle, pull, PullConfig, Server, ServerConfig};
use orchestrator::CancelToken;
use std::sync::atomic::Ordering;
use std::time::Duration;

fn guard_token() -> CancelToken {
    let token = CancelToken::new();
    let t = token.clone();
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(30));
        t.cancel("test guard timeout");
    });
    token
}

fn bits(samples: &[doppelganger::GeneratedSample]) -> Vec<Vec<u32>> {
    samples
        .iter()
        .map(|s| {
            let mut row: Vec<u32> = s.meta.iter().map(|x| x.to_bits()).collect();
            for r in &s.records {
                row.extend(r.iter().map(|x| x.to_bits()));
            }
            row
        })
        .collect()
}

fn wait_zero(server: &Server) {
    let stats = server.stats();
    for _ in 0..400 {
        if stats.sessions_open.load(Ordering::Relaxed) == 0
            && stats.streams_open.load(Ordering::Relaxed) == 0
        {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!(
        "resources leaked: {} session(s), {} stream(s)",
        stats.sessions_open.load(Ordering::Relaxed),
        stats.streams_open.load(Ordering::Relaxed),
    );
}

#[test]
fn concurrent_clients_get_bitwise_identical_output_to_offline_sampling() {
    let datasets: &[(&str, u64, u64)] = &[("ugr16", 11, 37), ("caida", 23, 50), ("dc", 5, 21)];
    let server = Server::start(
        ServerConfig { drain: Duration::from_millis(200), ..ServerConfig::default() },
        datasets.iter().map(|(name, seed, _)| demo_bundle(name, *seed)).collect(),
    )
    .expect("server start");
    let addr = server.local_addr().to_string();

    // Two clients per dataset, all pulling at once.
    let mut workers = Vec::new();
    for &(name, _seed, count) in datasets {
        for client in 0..2 {
            let addr = addr.clone();
            workers.push(std::thread::spawn(move || {
                let token = guard_token();
                let mut cfg = PullConfig::new(&addr, name, count);
                cfg.credit = 1 + client as u32 * 3; // window sizes must not matter
                cfg.peer = format!("{name}-client-{client}");
                let result = pull(&cfg, &token).expect("pull");
                (name, count, result)
            }));
        }
    }
    for worker in workers {
        let (name, count, result) = worker.join().expect("client thread");
        assert_eq!(result.samples.len() as u64, count);
        assert_eq!(result.eof_total, count);
        let mut names = result.server_artifacts.clone();
        names.sort();
        assert_eq!(names, vec!["caida", "dc", "ugr16"]);

        let (_, seed, _) = datasets.iter().find(|(n, ..)| *n == name).unwrap();
        let mut offline = demo_bundle(name, *seed).rebuild().expect("rebuild");
        assert_eq!(
            bits(&result.samples),
            bits(&offline.sample_fast(count as usize)),
            "{name}: streamed output diverged from offline sample_fast"
        );
    }

    let stats = server.stats();
    assert_eq!(stats.sessions_total.load(Ordering::Relaxed), 6);
    assert!(stats.frames_sent.load(Ordering::Relaxed) >= 6);
    assert_eq!(stats.eofs_sent.load(Ordering::Relaxed), 6);
    wait_zero(&server);
    assert_eq!(server.shutdown(), 0);
}

#[test]
fn one_connection_can_multiplex_interleaved_streams() {
    let server = Server::start(
        ServerConfig { drain: Duration::from_millis(200), ..ServerConfig::default() },
        vec![demo_bundle("a", 1), demo_bundle("b", 2)],
    )
    .expect("server start");
    let token = guard_token();
    let mut sock = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    protocol::configure(&sock).expect("configure");
    protocol::write_frame(
        &mut sock,
        &Frame::Hello { version: PROTOCOL_VERSION, peer: "mux".into(), artifacts: vec![] },
        &token,
    )
    .unwrap();
    protocol::read_frame(&mut sock, &token).expect("server hello");
    for (stream, artifact) in [(10u64, "a"), (20u64, "b")] {
        protocol::write_frame(
            &mut sock,
            &Frame::Subscribe { stream, artifact: artifact.into(), count: 25, credit: 2, from_seq: 0 },
            &token,
        )
        .unwrap();
    }

    let mut got: std::collections::BTreeMap<u64, Vec<doppelganger::GeneratedSample>> =
        [(10, Vec::new()), (20, Vec::new())].into();
    let mut eofs = 0;
    let mut seqs: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    while eofs < 2 {
        match protocol::read_frame(&mut sock, &token).expect("frame") {
            Frame::Data { stream, seq, samples } => {
                let next = seqs.entry(stream).or_insert(0);
                assert_eq!(seq, *next, "stream {stream} out of order");
                *next += 1;
                got.get_mut(&stream).expect("known stream").extend(samples);
                protocol::write_frame(&mut sock, &Frame::Credit { stream, frames: 1 }, &token)
                    .unwrap();
            }
            Frame::Eof { total, .. } => {
                assert_eq!(total, 25);
                eofs += 1;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    for (stream, seed) in [(10u64, 1u64), (20, 2)] {
        let name = if stream == 10 { "a" } else { "b" };
        let mut offline = demo_bundle(name, seed).rebuild().expect("rebuild");
        assert_eq!(bits(&got[&stream]), bits(&offline.sample_fast(25)), "stream {stream}");
    }
    drop(sock);
    wait_zero(&server);
    server.shutdown();
}

#[test]
fn disconnect_mid_stream_frees_the_session() {
    let server = Server::start(
        ServerConfig { drain: Duration::from_millis(200), ..ServerConfig::default() },
        vec![demo_bundle("demo", 7)],
    )
    .expect("server start");
    let token = guard_token();
    let mut sock = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    protocol::configure(&sock).expect("configure");
    protocol::write_frame(
        &mut sock,
        &Frame::Hello { version: PROTOCOL_VERSION, peer: "flaky".into(), artifacts: vec![] },
        &token,
    )
    .unwrap();
    protocol::read_frame(&mut sock, &token).expect("server hello");
    protocol::write_frame(
        &mut sock,
        &Frame::Subscribe { stream: 1, artifact: "demo".into(), count: 1000, credit: 2, from_seq: 0 },
        &token,
    )
    .unwrap();
    // Take a couple of frames to prove the stream was live, then vanish.
    for _ in 0..2 {
        match protocol::read_frame(&mut sock, &token).expect("data") {
            Frame::Data { .. } => {}
            other => panic!("expected DATA, got {other:?}"),
        }
    }
    assert_eq!(server.stats().sessions_open.load(Ordering::Relaxed), 1);
    drop(sock);

    // Producer, sender, and session threads must all unwind; the gauges
    // return to zero without any explicit cleanup call.
    wait_zero(&server);
    assert_eq!(server.shutdown(), 0);
}

#[test]
fn silent_client_is_evicted_by_the_idle_watchdog() {
    let server = Server::start(
        ServerConfig {
            idle_timeout_secs: Some(0.3),
            drain: Duration::from_millis(200),
            ..ServerConfig::default()
        },
        vec![demo_bundle("demo", 7)],
    )
    .expect("server start");
    let token = guard_token();
    let mut sock = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    protocol::configure(&sock).expect("configure");
    protocol::write_frame(
        &mut sock,
        &Frame::Hello { version: PROTOCOL_VERSION, peer: "silent".into(), artifacts: vec![] },
        &token,
    )
    .unwrap();
    protocol::read_frame(&mut sock, &token).expect("server hello");
    // ... and then say nothing at all.

    let stats = server.stats();
    let mut ticks = 0;
    while stats.evictions.load(Ordering::Relaxed) == 0 && ticks < 400 {
        std::thread::sleep(Duration::from_millis(10));
        ticks += 1;
    }
    assert!(stats.evictions.load(Ordering::Relaxed) >= 1, "watchdog never evicted");
    wait_zero(&server);

    // The eviction is visible in the orchestrator event log too.
    let cancelled = server
        .events()
        .events()
        .iter()
        .any(|e| format!("{e:?}").contains("session-"));
    assert!(cancelled, "no watchdog event recorded for the session");

    // An active client on the same server is NOT evicted: activity beats
    // the heartbeat on every frame.
    let cfg = PullConfig::new(&server.local_addr().to_string(), "demo", 40);
    let result = pull(&cfg, &token).expect("active pull");
    assert_eq!(result.samples.len(), 40);
    drop(sock);
    server.shutdown();
}
