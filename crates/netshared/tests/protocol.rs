//! Protocol fuzz/property suite: every frame type round-trips through
//! encode/decode bitwise, and a live server answers malformed input with
//! ERROR frames instead of panicking.
//!
//! lint: io-boundary — drives a raw `TcpStream` to inject broken frames.

use doppelganger::GeneratedSample;
use netshared::protocol::{
    self, decode_frame, encode_frame, Frame, ProtoError, ERR_MALFORMED, ERR_OVERSIZED,
    ERR_PROTOCOL, ERR_UNKNOWN_ARTIFACT, ERR_VERSION, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use netshared::{demo_bundle, Server, ServerConfig};
use orchestrator::CancelToken;
use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

// ------------------------------------------------------------ strategies

/// Characters stressing every JSON escape class: quotes, backslashes,
/// control characters, braces that could confuse a sloppy parser, and
/// non-ASCII (BMP and astral, the latter needing surrogate pairs).
const CHARSET: &[char] = &[
    'a', 'Z', '9', ' ', '"', '\\', '\n', '\r', '\t', '\u{0}', '\u{1b}', '{', '}', '[', ':', ',',
    '/', '\u{3bb}', '\u{20ac}', '\u{1F600}',
];

fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..CHARSET.len(), 0..12)
        .prop_map(|ix| ix.into_iter().map(|i| CHARSET[i]).collect())
}

/// Finite `f32` over the full bit domain (non-finite bit patterns fold to
/// a finite value derived from the same bits; JSON has no NaN/Inf).
fn arb_f32() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(|bits| {
        let f = f32::from_bits(bits);
        if f.is_finite() {
            f
        } else {
            (bits & 0xffff) as f32 / 7.0 - 4000.0
        }
    })
}

fn arb_sample() -> impl Strategy<Value = GeneratedSample> {
    (
        prop::collection::vec(arb_f32(), 0..6),
        prop::collection::vec(prop::collection::vec(arb_f32(), 0..4), 0..5),
    )
        .prop_map(|(meta, records)| GeneratedSample { meta, records })
}

// ----------------------------------------------------- round-trip checks

/// Encode → split prefix/payload → decode must reproduce the frame, and
/// the prefix must be the big-endian payload length.
fn assert_round_trip(frame: Frame) -> Result<(), TestCaseError> {
    let bytes = match encode_frame(&frame) {
        Ok(b) => b,
        Err(e) => return Err(TestCaseError::Fail(format!("encode failed: {e}"))),
    };
    prop_assert!(bytes.len() >= 5, "frame below minimum wire size");
    let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    prop_assert_eq!(len, bytes.len() - 4);
    prop_assert!(len <= MAX_FRAME_BYTES);
    match decode_frame(&bytes[4..]) {
        Ok(back) => prop_assert_eq!(back, frame),
        Err(e) => return Err(TestCaseError::Fail(format!("decode failed: {e}"))),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn hello_round_trips(
        version in any::<u32>(),
        peer in arb_string(),
        artifacts in prop::collection::vec(arb_string(), 0..4),
    ) {
        assert_round_trip(Frame::Hello { version, peer, artifacts })?;
    }

    #[test]
    fn subscribe_round_trips(
        stream in any::<u64>(),
        artifact in arb_string(),
        count in any::<u64>(),
        credit in any::<u32>(),
        from_seq in any::<u64>(),
    ) {
        assert_round_trip(Frame::Subscribe { stream, artifact, count, credit, from_seq })?;
    }

    #[test]
    fn data_round_trips_f32_bitwise(
        stream in any::<u64>(),
        seq in any::<u64>(),
        samples in prop::collection::vec(arb_sample(), 0..4),
    ) {
        let frame = Frame::Data { stream, seq, samples: samples.clone() };
        let bytes = encode_frame(&frame).map_err(|e| {
            TestCaseError::Fail(format!("encode failed: {e}"))
        })?;
        match decode_frame(&bytes[4..]) {
            Ok(Frame::Data { samples: back, .. }) => {
                prop_assert_eq!(back.len(), samples.len());
                for (b, s) in back.iter().zip(&samples) {
                    // Bit-level equality: catches -0.0 vs 0.0 drift that
                    // PartialEq would wave through.
                    let bits = |v: &Vec<f32>| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
                    prop_assert_eq!(bits(&b.meta), bits(&s.meta));
                    prop_assert_eq!(b.records.len(), s.records.len());
                    for (br, sr) in b.records.iter().zip(&s.records) {
                        prop_assert_eq!(bits(br), bits(sr));
                    }
                }
            }
            other => return Err(TestCaseError::Fail(format!("bad decode: {other:?}"))),
        }
    }

    #[test]
    fn credit_and_eof_round_trip(
        stream in any::<u64>(),
        frames in any::<u32>(),
        total in any::<u64>(),
    ) {
        assert_round_trip(Frame::Credit { stream, frames })?;
        assert_round_trip(Frame::Eof { stream, total })?;
    }

    #[test]
    fn error_round_trips(
        stream in prop_oneof![Just(None), any::<u64>().prop_map(Some)],
        code in arb_string(),
        message in arb_string(),
    ) {
        assert_round_trip(Frame::Error { stream, code, message })?;
    }

    #[test]
    fn decode_never_panics_on_junk(payload in prop::collection::vec(any::<u8>(), 0..64)) {
        // Any byte soup must yield Ok or Malformed — never a panic.
        match decode_frame(&payload) {
            Ok(_) | Err(ProtoError::Malformed(_)) => {}
            Err(e) => return Err(TestCaseError::Fail(format!("unexpected error: {e}"))),
        }
    }
}

#[test]
fn extreme_f32_values_survive_the_wire_bitwise() {
    let meta = vec![
        f32::MAX,
        f32::MIN,
        f32::MIN_POSITIVE,
        f32::from_bits(1), // smallest subnormal
        -0.0,
        0.0,
        1.0e-38,
        std::f32::consts::PI,
    ];
    let frame = Frame::Data {
        stream: 0,
        seq: 0,
        samples: vec![GeneratedSample { meta: meta.clone(), records: vec![] }],
    };
    let bytes = encode_frame(&frame).unwrap();
    match decode_frame(&bytes[4..]).unwrap() {
        Frame::Data { samples, .. } => {
            let back: Vec<u32> = samples[0].meta.iter().map(|x| x.to_bits()).collect();
            let want: Vec<u32> = meta.iter().map(|x| x.to_bits()).collect();
            assert_eq!(back, want);
        }
        other => panic!("bad decode: {other:?}"),
    }
}

#[test]
fn encode_rejects_payloads_above_the_wire_ceiling() {
    // ~8 MiB of samples encodes past MAX_FRAME_BYTES.
    let sample = GeneratedSample { meta: vec![1.25; 1024], records: vec![] };
    let frame = Frame::Data { stream: 0, seq: 0, samples: vec![sample; 2048] };
    assert!(matches!(encode_frame(&frame), Err(ProtoError::Oversized(_))));
}

// --------------------------------------------- live-server fault answers

/// Token that self-cancels so a wedged server cannot hang the suite.
fn guard_token() -> CancelToken {
    let token = CancelToken::new();
    let t = token.clone();
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(20));
        t.cancel("test guard timeout");
    });
    token
}

fn start_server() -> Server {
    Server::start(
        ServerConfig { drain: Duration::from_millis(200), ..ServerConfig::default() },
        vec![demo_bundle("demo", 7)],
    )
    .expect("server start")
}

fn connect(server: &Server) -> TcpStream {
    let sock = TcpStream::connect(server.local_addr()).expect("connect");
    protocol::configure(&sock).expect("configure");
    sock
}

/// Performs the client half of a good handshake.
fn handshake(sock: &mut TcpStream, token: &CancelToken) -> Vec<String> {
    protocol::write_frame(
        sock,
        &Frame::Hello { version: PROTOCOL_VERSION, peer: "test".into(), artifacts: vec![] },
        token,
    )
    .expect("hello send");
    match protocol::read_frame(sock, token).expect("hello recv") {
        Frame::Hello { version, artifacts, .. } => {
            assert_eq!(version, PROTOCOL_VERSION);
            artifacts
        }
        other => panic!("expected server HELLO, got {other:?}"),
    }
}

/// Reads frames until an ERROR arrives; returns its code.
fn read_error_code(sock: &mut TcpStream, token: &CancelToken) -> String {
    loop {
        match protocol::read_frame(sock, token).expect("error frame") {
            Frame::Error { code, .. } => return code,
            _ => continue,
        }
    }
}

fn wait_sessions_closed(server: &Server) {
    for _ in 0..200 {
        if server.stats().sessions_open.load(std::sync::atomic::Ordering::Relaxed) == 0 {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("sessions never unwound");
}

#[test]
fn wrong_version_hello_gets_unsupported_version_error() {
    let server = start_server();
    let token = guard_token();
    let mut sock = connect(&server);
    protocol::write_frame(
        &mut sock,
        &Frame::Hello { version: PROTOCOL_VERSION + 9, peer: "future".into(), artifacts: vec![] },
        &token,
    )
    .unwrap();
    assert_eq!(read_error_code(&mut sock, &token), ERR_VERSION);
    drop(sock);
    wait_sessions_closed(&server);
    assert!(server.stats().errors_sent.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    server.shutdown();
}

#[test]
fn non_hello_first_frame_is_a_protocol_violation() {
    let server = start_server();
    let token = guard_token();
    let mut sock = connect(&server);
    protocol::write_frame(&mut sock, &Frame::Credit { stream: 1, frames: 1 }, &token).unwrap();
    assert_eq!(read_error_code(&mut sock, &token), ERR_PROTOCOL);
    drop(sock);
    wait_sessions_closed(&server);
    server.shutdown();
}

#[test]
fn oversized_length_prefix_gets_oversized_frame_error() {
    let server = start_server();
    let token = guard_token();
    let mut sock = connect(&server);
    handshake(&mut sock, &token);
    // A prefix claiming u32::MAX bytes: rejected before any allocation.
    sock.write_all(&u32::MAX.to_be_bytes()).unwrap();
    assert_eq!(read_error_code(&mut sock, &token), ERR_OVERSIZED);
    drop(sock);
    wait_sessions_closed(&server);
    server.shutdown();
}

#[test]
fn zero_length_prefix_gets_oversized_frame_error() {
    let server = start_server();
    let token = guard_token();
    let mut sock = connect(&server);
    handshake(&mut sock, &token);
    sock.write_all(&0u32.to_be_bytes()).unwrap();
    assert_eq!(read_error_code(&mut sock, &token), ERR_OVERSIZED);
    drop(sock);
    wait_sessions_closed(&server);
    server.shutdown();
}

#[test]
fn garbage_payload_gets_malformed_frame_error() {
    let server = start_server();
    let token = guard_token();
    let mut sock = connect(&server);
    handshake(&mut sock, &token);
    let junk = b"this is not json at all {{{";
    sock.write_all(&(junk.len() as u32).to_be_bytes()).unwrap();
    sock.write_all(junk).unwrap();
    assert_eq!(read_error_code(&mut sock, &token), ERR_MALFORMED);
    drop(sock);
    wait_sessions_closed(&server);
    server.shutdown();
}

#[test]
fn truncated_payload_tears_down_without_an_error_frame() {
    let server = start_server();
    let token = guard_token();
    let mut sock = connect(&server);
    handshake(&mut sock, &token);
    // Claim 64 bytes, send 3, vanish: the server must just unwind.
    sock.write_all(&64u32.to_be_bytes()).unwrap();
    sock.write_all(b"abc").unwrap();
    drop(sock);
    wait_sessions_closed(&server);
    assert_eq!(server.stats().streams_open.load(std::sync::atomic::Ordering::Relaxed), 0);
    server.shutdown();
}

#[test]
fn unknown_artifact_errors_but_keeps_the_connection_usable() {
    let server = start_server();
    let token = guard_token();
    let mut sock = connect(&server);
    let artifacts = handshake(&mut sock, &token);
    assert_eq!(artifacts, vec!["demo".to_string()]);
    protocol::write_frame(
        &mut sock,
        &Frame::Subscribe { stream: 1, artifact: "nope".into(), count: 3, credit: 4, from_seq: 0 },
        &token,
    )
    .unwrap();
    assert_eq!(read_error_code(&mut sock, &token), ERR_UNKNOWN_ARTIFACT);
    // The same connection can still subscribe to a real artifact.
    protocol::write_frame(
        &mut sock,
        &Frame::Subscribe { stream: 2, artifact: "demo".into(), count: 3, credit: 4, from_seq: 0 },
        &token,
    )
    .unwrap();
    let mut got = 0u64;
    loop {
        match protocol::read_frame(&mut sock, &token).expect("stream frame") {
            Frame::Data { stream, samples, .. } => {
                assert_eq!(stream, 2);
                got += samples.len() as u64;
                protocol::write_frame(&mut sock, &Frame::Credit { stream: 2, frames: 1 }, &token)
                    .unwrap();
            }
            Frame::Eof { stream, total } => {
                assert_eq!(stream, 2);
                assert_eq!(total, 3);
                break;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(got, 3);
    drop(sock);
    wait_sessions_closed(&server);
    server.shutdown();
}

#[test]
fn duplicate_stream_id_is_a_protocol_violation() {
    let server = start_server();
    let token = guard_token();
    let mut sock = connect(&server);
    handshake(&mut sock, &token);
    for _ in 0..2 {
        protocol::write_frame(
            &mut sock,
            &Frame::Subscribe { stream: 5, artifact: "demo".into(), count: 2, credit: 1, from_seq: 0 },
            &token,
        )
        .unwrap();
    }
    // Skip past DATA/EOF of the first subscription to the ERROR.
    let code = read_error_code(&mut sock, &token);
    assert_eq!(code, ERR_PROTOCOL);
    drop(sock);
    wait_sessions_closed(&server);
    server.shutdown();
}
