//! The bounded-memory guarantee: a stalled consumer stalls its own
//! producer at the buffer's capacity cap — it does not grow server
//! memory, and it does not slow other clients down.
//!
//! lint: io-boundary — one client here is a raw socket that deliberately
//! stops reading.

use netshared::protocol::{self, Frame, PROTOCOL_VERSION};
use netshared::{demo_bundle, pull, PullConfig, Server, ServerConfig};
use orchestrator::CancelToken;
use std::sync::atomic::Ordering;
use std::time::Duration;

const CAPACITY: usize = 2048;

fn guard_token() -> CancelToken {
    let token = CancelToken::new();
    let t = token.clone();
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(30));
        t.cancel("test guard timeout");
    });
    token
}

fn bits(samples: &[doppelganger::GeneratedSample]) -> Vec<Vec<u32>> {
    samples
        .iter()
        .map(|s| {
            let mut row: Vec<u32> = s.meta.iter().map(|x| x.to_bits()).collect();
            for r in &s.records {
                row.extend(r.iter().map(|x| x.to_bits()));
            }
            row
        })
        .collect()
}

#[test]
fn stalled_client_bounds_memory_and_does_not_slow_others() {
    let server = Server::start(
        ServerConfig {
            capacity_bytes: CAPACITY,
            drain: Duration::from_millis(200),
            ..ServerConfig::default()
        },
        vec![demo_bundle("demo", 7)],
    )
    .expect("server start");
    let stats = server.stats();
    let token = guard_token();

    // --- the stalled client: subscribes big, reads one frame, stops.
    let mut stalled = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    protocol::configure(&stalled).expect("configure");
    protocol::write_frame(
        &mut stalled,
        &Frame::Hello { version: PROTOCOL_VERSION, peer: "stalled".into(), artifacts: vec![] },
        &token,
    )
    .unwrap();
    let hello = protocol::read_frame(&mut stalled, &token).expect("server hello");
    assert!(matches!(hello, Frame::Hello { .. }));
    protocol::write_frame(
        &mut stalled,
        &Frame::Subscribe { stream: 1, artifact: "demo".into(), count: 500, credit: 1, from_seq: 0 },
        &token,
    )
    .unwrap();
    match protocol::read_frame(&mut stalled, &token).expect("first data frame") {
        Frame::Data { stream, seq, .. } => {
            assert_eq!((stream, seq), (1, 0));
        }
        other => panic!("expected DATA, got {other:?}"),
    }
    // No CREDIT granted and no more reads: the sender is now starved of
    // credit and the producer keeps pushing until the buffer cap.

    // Wait until both stall mechanisms have demonstrably engaged.
    let deadline = 400;
    let mut ticks = 0;
    while (stats.credit_stalls.load(Ordering::Relaxed) == 0
        || stats.push_stalls.load(Ordering::Relaxed) == 0)
        && ticks < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
        ticks += 1;
    }
    assert!(
        stats.credit_stalls.load(Ordering::Relaxed) >= 1,
        "sender never stalled on credit"
    );
    assert!(
        stats.push_stalls.load(Ordering::Relaxed) >= 1,
        "producer never stalled on the buffer cap"
    );

    // --- the fast client: a full pull on a second connection, while the
    // stalled stream sits wedged.
    let cfg = PullConfig::new(&server.local_addr().to_string(), "demo", 50);
    let result = pull(&cfg, &token).expect("fast pull");
    assert_eq!(result.samples.len(), 50);
    assert_eq!(result.eof_total, 50);

    // Bitwise fidelity: the streamed samples equal an offline
    // sample_fast from the same bundle.
    let mut offline = demo_bundle("demo", 7).rebuild().expect("rebuild");
    let want = offline.sample_fast(50);
    assert_eq!(bits(&result.samples), bits(&want), "stream diverged from offline sampler");

    // --- the invariant: no stream ever buffered more than the cap.
    let max = stats.stream_max_buffered.load(Ordering::Relaxed);
    assert!(max >= 1, "high-water mark never moved");
    assert!(
        max <= CAPACITY as u64,
        "stream buffered {max} bytes, cap is {CAPACITY}"
    );
    assert_eq!(stats.drops.load(Ordering::Relaxed), 0, "frames were dropped");

    // --- teardown: disconnecting the stalled client frees everything.
    drop(stalled);
    let mut ticks = 0;
    while (stats.sessions_open.load(Ordering::Relaxed) != 0
        || stats.streams_open.load(Ordering::Relaxed) != 0)
        && ticks < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
        ticks += 1;
    }
    assert_eq!(stats.sessions_open.load(Ordering::Relaxed), 0, "session leaked");
    assert_eq!(stats.streams_open.load(Ordering::Relaxed), 0, "stream leaked");

    let lingering = server.shutdown();
    assert_eq!(lingering, 0, "shutdown found sessions still alive");
}

#[test]
fn tiny_capacity_still_makes_progress_one_frame_at_a_time() {
    // A cap smaller than any encoded frame: the oversized-into-empty rule
    // must keep the stream draining frame by frame instead of deadlocking.
    let server = Server::start(
        ServerConfig {
            capacity_bytes: 16,
            drain: Duration::from_millis(200),
            ..ServerConfig::default()
        },
        vec![demo_bundle("tiny", 3)],
    )
    .expect("server start");
    let token = guard_token();
    let cfg = PullConfig::new(&server.local_addr().to_string(), "tiny", 20);
    let result = pull(&cfg, &token).expect("pull under tiny cap");
    assert_eq!(result.samples.len(), 20);

    let mut offline = demo_bundle("tiny", 3).rebuild().expect("rebuild");
    assert_eq!(bits(&result.samples), bits(&offline.sample_fast(20)));
    server.shutdown();
}
