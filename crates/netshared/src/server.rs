//! The daemon core: listener, accept loop, session registry, watchdog,
//! and graceful drain.
//!
//! lint: io-boundary — this module owns the `TcpListener` accept loop;
//! raw accepts anywhere else in the workspace trip the
//! `blocking-accept-loop` lint.
//!
//! Lifecycle: [`Server::start`] binds (port 0 for ephemeral), spawns the
//! accept thread (and, when an idle timeout is configured, the reused
//! orchestrator [`Watchdog`] with each session's
//! [`Heartbeat`](orchestrator::Heartbeat)), and
//! returns a handle. [`Server::shutdown`] runs the two-phase drain:
//!
//! 1. **drain**: stop accepting, refuse new `SUBSCRIBE`s (`ERR_DRAINING`),
//!    and give in-flight streams up to `drain` to finish naturally;
//! 2. **cancel**: trip every session token; blocked buffer waits, credit
//!    waits, and socket I/O all poll the token, so sessions unwind, and
//!    every thread is joined before `shutdown` returns.

use crate::protocol::{self, Frame, ERR_OVERLOADED};
use crate::session::{run_session, SessionCtx};
use doppelganger::ArtifactBundle;
use orchestrator::watchdog::{Watchdog, WatchdogOptions};
use orchestrator::{CancelToken, EventLog};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Accept-loop poll interval (bounds shutdown latency).
const ACCEPT_POLL: Duration = Duration::from_millis(20);
/// Drain-phase poll interval.
const DRAIN_POLL: Duration = Duration::from_millis(50);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Per-stream buffer capacity cap in bytes.
    pub capacity_bytes: usize,
    /// Evict sessions whose clients go silent (no frames in or out) for
    /// this long; `None` disables the watchdog.
    pub idle_timeout_secs: Option<f64>,
    /// Grace window for in-flight streams during [`Server::shutdown`].
    pub drain: Duration,
    /// Admission control: with this many sessions open, new connections
    /// are answered with a retryable `overloaded` ERROR and dropped
    /// instead of growing the session registry (`None` = unlimited).
    pub max_sessions: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            capacity_bytes: 64 * 1024,
            idle_timeout_secs: None,
            drain: Duration::from_secs(2),
            max_sessions: None,
        }
    }
}

/// Cheap always-consistent counters for tests and operators; each has a
/// `netshared.*` metrics twin in the global telemetry registry.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Sessions currently connected (`netshared.sessions.open`).
    pub sessions_open: AtomicI64,
    /// Sessions accepted over the server's lifetime.
    pub sessions_total: AtomicU64,
    /// Streams currently subscribed (`netshared.streams.open`).
    pub streams_open: AtomicI64,
    /// DATA frames written (`netshared.frames.sent`).
    pub frames_sent: AtomicU64,
    /// EOF frames written.
    pub eofs_sent: AtomicU64,
    /// ERROR frames written (`netshared.errors.sent`).
    pub errors_sent: AtomicU64,
    /// Sessions evicted by the idle watchdog (`netshared.evictions`).
    pub evictions: AtomicU64,
    /// Times a sender found its credit budget empty
    /// (`netshared.stream.credit_stalls`).
    pub credit_stalls: AtomicU64,
    /// Times a producer found its stream buffer full
    /// (`netshared.stream.push_stalls`).
    pub push_stalls: AtomicU64,
    /// Frames dropped into a closed buffer (`netshared.stream.drops`).
    pub drops: AtomicU64,
    /// High-water mark of any single stream's buffered bytes — the
    /// bounded-memory invariant the backpressure suite pins.
    pub stream_max_buffered: AtomicU64,
    /// Connections shed by `--max-sessions` admission control
    /// (`netshared.shed`).
    pub shed: AtomicU64,
}

/// Session registry entry: the session's cancel token plus its joinable
/// thread handle.
type SessionSlot = (CancelToken, std::thread::JoinHandle<()>);

/// A running daemon; dropping it without [`Server::shutdown`] aborts
/// sessions without the drain grace.
pub struct Server {
    local_addr: SocketAddr,
    token: CancelToken,
    draining: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    sessions: Arc<Mutex<Vec<SessionSlot>>>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    watchdog: Option<Arc<Watchdog>>,
    watchdog_thread: Option<std::thread::JoinHandle<()>>,
    events: Arc<EventLog>,
    artifacts: Vec<String>,
    drain: Duration,
}

impl Server {
    /// Binds and starts serving `bundles`. Fails on bind errors and on
    /// duplicate artifact names.
    pub fn start(cfg: ServerConfig, bundles: Vec<ArtifactBundle>) -> Result<Server, String> {
        let mut by_name: BTreeMap<String, Arc<ArtifactBundle>> = BTreeMap::new();
        for bundle in bundles {
            let name = bundle.name.clone();
            if by_name.insert(name.clone(), Arc::new(bundle)).is_some() {
                return Err(format!("duplicate artifact name {name:?}"));
            }
        }
        let artifacts: Vec<String> = by_name.keys().cloned().collect();
        let by_name = Arc::new(by_name);

        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| format!("bind {}: {e}", cfg.addr))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;

        let token = CancelToken::new();
        let draining = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let sessions: Arc<Mutex<Vec<SessionSlot>>> = Arc::new(Mutex::new(Vec::new()));
        let events = Arc::new(EventLog::new());

        let (watchdog, watchdog_thread) = match cfg.idle_timeout_secs {
            Some(stale) => {
                let dog = Arc::new(Watchdog::new(WatchdogOptions {
                    max_job_secs: None,
                    heartbeat_timeout_secs: Some(stale),
                    poll: Duration::from_millis(50),
                }));
                let thread = {
                    let (dog, events) = (Arc::clone(&dog), Arc::clone(&events));
                    std::thread::spawn(move || dog.run(&events))
                };
                (Some(dog), Some(thread))
            }
            None => (None, None),
        };

        let accept_thread = {
            let token = token.clone();
            let draining = Arc::clone(&draining);
            let stats = Arc::clone(&stats);
            let sessions = Arc::clone(&sessions);
            let watchdog = watchdog.clone();
            let capacity_bytes = cfg.capacity_bytes.max(1);
            let max_sessions = cfg.max_sessions;
            let next_id = AtomicU64::new(0);
            std::thread::spawn(move || {
                let _span = telemetry::span!("netshared/accept");
                while !token.wait_timeout(Duration::ZERO) {
                    match listener.accept() {
                        Ok((mut sock, _peer)) => {
                            // Admission control: at the session cap, shed
                            // the connection with a retryable `overloaded`
                            // ERROR instead of letting the registry (and
                            // the kernel accept queue behind it) grow.
                            let at_cap = max_sessions.is_some_and(|max| {
                                stats.sessions_open.load(Ordering::Relaxed) >= max as i64
                            });
                            if at_cap {
                                stats.shed.fetch_add(1, Ordering::Relaxed);
                                stats.errors_sent.fetch_add(1, Ordering::Relaxed);
                                telemetry::metrics::counter("netshared.shed").inc();
                                telemetry::metrics::counter("netshared.errors.sent").inc();
                                if sock.set_nonblocking(false).is_ok()
                                    && protocol::configure(&sock).is_ok()
                                {
                                    let _ = protocol::write_frame(
                                        &mut sock,
                                        &Frame::Error {
                                            stream: None,
                                            code: ERR_OVERLOADED.to_string(),
                                            message: format!(
                                                "session limit {} reached; retry later",
                                                max_sessions.unwrap_or(0)
                                            ),
                                        },
                                        &token,
                                    );
                                }
                                continue;
                            }
                            let id = next_id.fetch_add(1, Ordering::Relaxed);
                            stats.sessions_total.fetch_add(1, Ordering::Relaxed);
                            // Sessions do their own (timeout-based) blocking I/O.
                            if sock.set_nonblocking(false).is_err() {
                                continue;
                            }
                            let session_token = CancelToken::new();
                            let ctx = SessionCtx {
                                id,
                                bundles: Arc::clone(&by_name),
                                capacity_bytes,
                                token: session_token.clone(),
                                stats: Arc::clone(&stats),
                                watchdog: watchdog.clone(),
                                draining: Arc::clone(&draining),
                            };
                            let handle =
                                std::thread::spawn(move || run_session(sock, ctx));
                            sessions
                                .lock() // lint: lock-order(netshared.session_registry)
                                .expect("session registry lock") // lint: allow(panic-in-lib) poisoned session registry lock is unrecoverable
                                .push((session_token, handle));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            if token.wait_timeout(ACCEPT_POLL) {
                                break;
                            }
                        }
                        Err(_) => {
                            if token.wait_timeout(ACCEPT_POLL) {
                                break;
                            }
                        }
                    }
                }
            })
        };

        Ok(Server {
            local_addr,
            token,
            draining,
            stats,
            sessions,
            accept_thread: Some(accept_thread),
            watchdog,
            watchdog_thread,
            events,
            artifacts,
            drain: cfg.drain,
        })
    }

    /// The bound address (with the real port when `addr` used port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Names of the artifacts on offer, sorted.
    pub fn artifacts(&self) -> &[String] {
        &self.artifacts
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// The orchestrator event log (watchdog cancellations land here).
    pub fn events(&self) -> Arc<EventLog> {
        Arc::clone(&self.events)
    }

    /// Graceful two-phase shutdown (see module docs). Consumes the
    /// server; returns the number of sessions that were still live when
    /// the cancel phase began.
    pub fn shutdown(mut self) -> usize {
        let _span = telemetry::span!("netshared/shutdown");
        // Phase 1: drain. Stop accepting and refuse new subscriptions,
        // but leave live sessions running for up to the drain window.
        self.draining.store(true, Ordering::Relaxed);
        self.token.cancel("server shutdown");
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let drain_ticks = (self.drain_ticks()).max(1);
        for _ in 0..drain_ticks {
            if self.stats.sessions_open.load(Ordering::Relaxed) == 0 {
                break;
            }
            // Never-cancelled token as an interruptible sleep.
            let _ = CancelToken::new().wait_timeout(DRAIN_POLL);
        }
        // Phase 2: cancel whatever is left and join every session.
        // lint: allow(panic-in-lib) poisoned session registry lock is unrecoverable
        let sessions = std::mem::take(&mut *self.sessions.lock().expect("session registry lock")); // lint: lock-order(netshared.session_registry)
        let lingering = self.stats.sessions_open.load(Ordering::Relaxed).max(0) as usize;
        for (token, _) in &sessions {
            token.cancel("server shutdown");
        }
        for (_, handle) in sessions {
            let _ = handle.join();
        }
        if let Some(dog) = &self.watchdog {
            dog.stop();
        }
        if let Some(t) = self.watchdog_thread.take() {
            let _ = t.join();
        }
        lingering
    }

    fn drain_ticks(&self) -> u32 {
        (self.drain.as_millis() / DRAIN_POLL.as_millis()).min(u128::from(u32::MAX)) as u32
    }
}
