//! The `netshared` daemon binary.
//!
//! lint: io-boundary — reads stdin for the shutdown trigger.
//!
//! ```text
//! netshared --artifact path.json [--artifact ...] [--demo name:seed ...]
//!           [--addr 127.0.0.1:0] [--addr-file PATH]
//!           [--capacity-bytes N] [--idle-timeout-secs S]
//!           [--drain-secs S] [--max-sessions N] [--metrics-out PATH]
//! ```
//!
//! The daemon serves until stdin closes or a line reading `shutdown`
//! arrives (the SIGTERM stand-in that needs no signal-handling
//! machinery: `scripts/ci.sh serve` drives it through a FIFO), then runs
//! the graceful drain and exits 0. `--addr-file` writes the bound
//! address (ephemeral ports) once the listener is up. Exit codes follow
//! the workspace taxonomy: 0 success, 1 runtime failure, 2 usage error.

use doppelganger::ArtifactBundle;
use netshared::{demo_bundle, Server, ServerConfig};
use std::io::BufRead;
use std::time::Duration;

#[derive(Debug)]
struct Args {
    artifacts: Vec<String>,
    demos: Vec<(String, u64)>,
    addr: String,
    addr_file: Option<String>,
    capacity_bytes: usize,
    idle_timeout_secs: Option<f64>,
    drain_secs: f64,
    max_sessions: Option<usize>,
    metrics_out: Option<String>,
}

fn usage() -> String {
    "usage: netshared [--artifact BUNDLE.json ...] [--demo NAME:SEED ...]\n\
     \x20                [--addr HOST:PORT] [--addr-file PATH]\n\
     \x20                [--capacity-bytes N] [--idle-timeout-secs S]\n\
     \x20                [--drain-secs S] [--max-sessions N] [--metrics-out PATH]\n\
     at least one --artifact or --demo is required"
        .to_string()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        artifacts: Vec::new(),
        demos: Vec::new(),
        addr: "127.0.0.1:0".to_string(),
        addr_file: None,
        capacity_bytes: 64 * 1024,
        idle_timeout_secs: None,
        drain_secs: 2.0,
        max_sessions: None,
        metrics_out: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--artifact" => args.artifacts.push(value("--artifact")?),
            "--demo" => {
                let spec = value("--demo")?;
                let (name, seed) = spec
                    .split_once(':')
                    .ok_or_else(|| format!("--demo wants NAME:SEED, got {spec:?}"))?;
                let seed: u64 = seed
                    .parse()
                    .map_err(|_| format!("--demo seed must be a u64, got {seed:?}"))?;
                if name.is_empty() {
                    return Err(format!("--demo wants NAME:SEED, got {spec:?}"));
                }
                args.demos.push((name.to_string(), seed));
            }
            "--addr" => args.addr = value("--addr")?,
            "--addr-file" => args.addr_file = Some(value("--addr-file")?),
            "--capacity-bytes" => {
                let v = value("--capacity-bytes")?;
                args.capacity_bytes = v
                    .parse()
                    .map_err(|_| format!("--capacity-bytes must be a usize, got {v:?}"))?;
            }
            "--idle-timeout-secs" => {
                let v = value("--idle-timeout-secs")?;
                args.idle_timeout_secs = Some(
                    v.parse()
                        .map_err(|_| format!("--idle-timeout-secs must be a number, got {v:?}"))?,
                );
            }
            "--drain-secs" => {
                let v = value("--drain-secs")?;
                args.drain_secs = v
                    .parse()
                    .map_err(|_| format!("--drain-secs must be a number, got {v:?}"))?;
            }
            "--max-sessions" => {
                let v = value("--max-sessions")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--max-sessions must be a usize, got {v:?}"))?;
                if n == 0 {
                    return Err("--max-sessions must be at least 1".to_string());
                }
                args.max_sessions = Some(n);
            }
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.artifacts.is_empty() && args.demos.is_empty() {
        return Err("nothing to serve".to_string());
    }
    Ok(args)
}

fn run(args: Args) -> Result<(), String> {
    let mut bundles = Vec::new();
    for path in &args.artifacts {
        bundles.push(ArtifactBundle::load(std::path::Path::new(path))?);
    }
    for (name, seed) in &args.demos {
        bundles.push(demo_bundle(name, *seed));
    }
    let server = Server::start(
        ServerConfig {
            addr: args.addr.clone(),
            capacity_bytes: args.capacity_bytes,
            idle_timeout_secs: args.idle_timeout_secs,
            drain: Duration::from_secs_f64(args.drain_secs.max(0.0)),
            max_sessions: args.max_sessions,
        },
        bundles,
    )?;
    let addr = server.local_addr();
    if let Some(path) = &args.addr_file {
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    eprintln!("netshared: serving {:?} on {addr}", server.artifacts());

    // Serve until stdin closes or says "shutdown".
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(text) if text.trim() == "shutdown" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }

    let lingering = server.shutdown();
    eprintln!("netshared: drained ({lingering} session(s) cancelled)");
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, telemetry::metrics::snapshot_json())
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("netshared: {e}\n{}", usage());
            std::process::exit(2);
        }
    };
    // Arm deterministic socket-fault injection when the chaos harness
    // asks for it; a malformed spec is a usage error, same as a flag.
    if let Err(e) = orchestrator::netfault::init_from_env() {
        eprintln!("netshared: {e}");
        std::process::exit(2);
    }
    if let Err(e) = run(args) {
        eprintln!("netshared: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_requires_something_to_serve() {
        assert!(parse_args(&[]).unwrap_err().contains("nothing to serve"));
    }

    #[test]
    fn parse_accepts_demos_and_flags() {
        let args = parse_args(&s(&[
            "--demo", "ugr16:7", "--demo", "caida:9",
            "--capacity-bytes", "4096",
            "--idle-timeout-secs", "1.5",
            "--drain-secs", "0.5",
            "--addr", "127.0.0.1:0",
            "--max-sessions", "3",
        ]))
        .unwrap();
        assert_eq!(args.demos, vec![("ugr16".to_string(), 7), ("caida".to_string(), 9)]);
        assert_eq!(args.capacity_bytes, 4096);
        assert_eq!(args.idle_timeout_secs, Some(1.5));
        assert_eq!(args.drain_secs, 0.5);
        assert_eq!(args.max_sessions, Some(3));
    }

    #[test]
    fn parse_rejects_bad_demo_specs_and_unknown_flags() {
        assert!(parse_args(&s(&["--demo", "noseed"])).is_err());
        assert!(parse_args(&s(&["--demo", "x:1", "--max-sessions", "0"])).is_err());
        assert!(parse_args(&s(&["--demo", "x:1", "--max-sessions", "lots"])).is_err());
        assert!(parse_args(&s(&["--demo", ":3"])).is_err());
        assert!(parse_args(&s(&["--demo", "x:notanum"])).is_err());
        assert!(parse_args(&s(&["--bogus"])).is_err());
        assert!(parse_args(&s(&["--artifact"])).is_err());
    }
}
