//! Bounded per-stream buffer between the generation producer and the
//! socket sender.
//!
//! Shaped after the flux `Flow` exemplar: an indexed chunk bucket
//! (`seq → encoded frame bytes`) with a byte-capacity cap, push/pull
//! waiter counters, and drop/buffered statistics. The producer pushes
//! encoded DATA frames and *blocks* when the buffer is at capacity —
//! backpressure, not growth — while the sender pulls frames in sequence
//! order as client credit allows. Both sides poll a [`CancelToken`]
//! inside their condvar waits so session teardown never strands a
//! thread.
//!
//! The capacity invariant the slow-consumer test pins: at every instant,
//! `buffered_bytes ≤ max(capacity, first frame's size)` — a single frame
//! larger than the capacity is admitted alone (otherwise it could never
//! be delivered), and everything else waits.

use crate::server::ServerStats;
use orchestrator::CancelToken;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How long a blocked push/pull sleeps before re-checking its token.
const WAIT_POLL: Duration = Duration::from_millis(20);

/// Running statistics, sampled via [`StreamBuf::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufStats {
    /// Frames accepted by [`StreamBuf::push`].
    pub pushed: u64,
    /// Frames pulled by [`StreamBuf::pull`].
    pub pulled: u64,
    /// Frames rejected because the consumer side closed first.
    pub dropped: u64,
    /// Times a push found the buffer full and had to wait.
    pub push_stalls: u64,
    /// Bytes currently buffered.
    pub buffered_bytes: usize,
    /// High-water mark of `buffered_bytes` over the buffer's lifetime.
    pub max_buffered_bytes: usize,
}

#[derive(Default)]
struct BufState {
    /// `seq → encoded frame`; BTreeMap keeps delivery in push order.
    bucket: BTreeMap<u64, Vec<u8>>,
    /// Next sequence number a push will take.
    next_index: u64,
    /// Next sequence number a pull will deliver.
    tail_index: u64,
    /// Producer finished; holds the total sample count for the EOF frame.
    finished: Option<u64>,
    /// Consumer gone; pushes are dropped and pulls fail.
    closed: bool,
    /// Threads currently blocked in `push` / `pull` (diagnostics).
    waiting_push: u32,
    waiting_pull: u32,
    stats: BufStats,
}

/// What a [`StreamBuf::pull`] yielded.
#[derive(Debug, Clone, PartialEq)]
pub enum Pulled {
    /// The next frame in sequence order: `(seq, encoded bytes)`.
    Frame(u64, Vec<u8>),
    /// Producer is done and the buffer is drained; total sample count.
    Finished(u64),
    /// The buffer was closed or the token fired.
    Closed,
}

/// The bounded buffer (see module docs).
pub struct StreamBuf {
    state: Mutex<BufState>,
    push_cv: Condvar,
    pull_cv: Condvar,
    capacity: usize,
    /// Server-wide stat mirror (None for standalone buffers in tests).
    sink: Option<Arc<ServerStats>>,
}

impl StreamBuf {
    /// A buffer admitting at most `capacity` bytes of encoded frames
    /// (plus the one oversized-frame exception, see module docs).
    pub fn new(capacity: usize) -> Self {
        StreamBuf {
            state: Mutex::new(BufState::default()),
            push_cv: Condvar::new(),
            pull_cv: Condvar::new(),
            capacity: capacity.max(1),
            sink: None,
        }
    }

    /// Like [`StreamBuf::new`], additionally mirroring stall/drop/high-water
    /// statistics into the server-wide [`ServerStats`].
    pub fn with_stats(capacity: usize, sink: Arc<ServerStats>) -> Self {
        let mut buf = StreamBuf::new(capacity);
        buf.sink = Some(sink);
        buf
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BufState> {
        // lint: allow(panic-in-lib) poisoned stream buffer lock is unrecoverable
        self.state.lock().expect("stream buffer lock") // lint: lock-order(netshared.stream_state)
    }

    /// Appends one encoded frame, blocking while the buffer is full.
    /// Returns `false` (and counts a drop) if the buffer closed or the
    /// token fired before the frame fit.
    pub fn push(&self, bytes: Vec<u8>, token: &CancelToken) -> bool {
        let len = bytes.len();
        let mut st = self.lock(); // lint: lock-order(netshared.stream_state)
        let mut stalled = false;
        while !st.closed && st.stats.buffered_bytes + len > self.capacity {
            // An over-capacity frame may enter an empty buffer alone;
            // splitting is the producer's job, delivery is ours.
            if st.bucket.is_empty() {
                break;
            }
            if token.is_cancelled() {
                break;
            }
            if !stalled {
                stalled = true;
                st.stats.push_stalls += 1;
                telemetry::metrics::counter("netshared.stream.push_stalls").inc();
                if let Some(sink) = &self.sink {
                    sink.push_stalls.fetch_add(1, Ordering::Relaxed);
                }
            }
            st.waiting_push += 1;
            let (guard, _) = self
                .push_cv
                .wait_timeout(st, WAIT_POLL)
                .expect("stream buffer lock"); // lint: allow(panic-in-lib) poisoned stream buffer lock is unrecoverable
            st = guard;
            st.waiting_push -= 1;
        }
        if st.closed || (token.is_cancelled() && st.stats.buffered_bytes + len > self.capacity) {
            st.stats.dropped += 1;
            telemetry::metrics::counter("netshared.stream.drops").inc();
            if let Some(sink) = &self.sink {
                sink.drops.fetch_add(1, Ordering::Relaxed);
            }
            return false;
        }
        let seq = st.next_index;
        st.next_index += 1;
        st.bucket.insert(seq, bytes);
        st.stats.pushed += 1;
        st.stats.buffered_bytes += len;
        st.stats.max_buffered_bytes = st.stats.max_buffered_bytes.max(st.stats.buffered_bytes);
        telemetry::metrics::gauge("netshared.bytes.buffered").add(len as f64);
        if let Some(sink) = &self.sink {
            sink.stream_max_buffered
                .fetch_max(st.stats.buffered_bytes as u64, Ordering::Relaxed);
        }
        self.pull_cv.notify_one();
        true
    }

    /// Takes the next frame in sequence order, blocking while the buffer
    /// is empty and the producer still running.
    pub fn pull(&self, token: &CancelToken) -> Pulled {
        let mut st = self.lock(); // lint: lock-order(netshared.stream_state)
        loop {
            if st.closed {
                return Pulled::Closed;
            }
            let tail = st.tail_index;
            if let Some(bytes) = st.bucket.remove(&tail) {
                st.tail_index += 1;
                st.stats.pulled += 1;
                st.stats.buffered_bytes -= bytes.len();
                telemetry::metrics::gauge("netshared.bytes.buffered").add(-(bytes.len() as f64));
                self.push_cv.notify_one();
                return Pulled::Frame(st.tail_index - 1, bytes);
            }
            if let Some(total) = st.finished {
                return Pulled::Finished(total);
            }
            if token.is_cancelled() {
                return Pulled::Closed;
            }
            st.waiting_pull += 1;
            let (guard, _) = self
                .pull_cv
                .wait_timeout(st, WAIT_POLL)
                .expect("stream buffer lock"); // lint: allow(panic-in-lib) poisoned stream buffer lock is unrecoverable
            st = guard;
            st.waiting_pull -= 1;
        }
    }

    /// Producer-side completion: after the bucket drains, pulls yield
    /// `Finished(total)`.
    pub fn finish(&self, total: u64) {
        let mut st = self.lock(); // lint: lock-order(netshared.stream_state)
        st.finished = Some(total);
        self.pull_cv.notify_all();
    }

    /// Consumer-side teardown: blocked pushes drop, blocked pulls end.
    /// Remaining buffered bytes are released from the gauge.
    pub fn close(&self) {
        let mut st = self.lock(); // lint: lock-order(netshared.stream_state)
        if !st.closed {
            st.closed = true;
            if st.stats.buffered_bytes > 0 {
                telemetry::metrics::gauge("netshared.bytes.buffered")
                    .add(-(st.stats.buffered_bytes as f64));
                st.stats.buffered_bytes = 0;
            }
        }
        self.push_cv.notify_all();
        self.pull_cv.notify_all();
    }

    /// A snapshot of the running statistics.
    pub fn stats(&self) -> BufStats {
        self.lock().stats // lint: lock-order(netshared.stream_state)
    }

    /// Waiter counters `(waiting_push, waiting_pull)` (diagnostics).
    pub fn waiters(&self) -> (u32, u32) {
        let st = self.lock(); // lint: lock-order(netshared.stream_state)
        (st.waiting_push, st.waiting_pull)
    }

    /// The configured capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn frame(n: usize) -> Vec<u8> {
        vec![0xab; n]
    }

    #[test]
    fn frames_flow_in_sequence_order() {
        let buf = StreamBuf::new(1024);
        let token = CancelToken::new();
        assert!(buf.push(frame(3), &token));
        assert!(buf.push(frame(5), &token));
        buf.finish(2);
        assert_eq!(buf.pull(&token), Pulled::Frame(0, frame(3)));
        assert_eq!(buf.pull(&token), Pulled::Frame(1, frame(5)));
        assert_eq!(buf.pull(&token), Pulled::Finished(2));
        let st = buf.stats();
        assert_eq!((st.pushed, st.pulled, st.buffered_bytes), (2, 2, 0));
        assert_eq!(st.max_buffered_bytes, 8);
    }

    #[test]
    fn full_buffer_blocks_push_until_a_pull_frees_space() {
        let buf = Arc::new(StreamBuf::new(10));
        let token = CancelToken::new();
        assert!(buf.push(frame(6), &token));
        let b2 = Arc::clone(&buf);
        let t2 = token.clone();
        let pusher = std::thread::spawn(move || b2.push(frame(6), &t2));
        // The second 6-byte frame cannot fit beside the first.
        while buf.waiters().0 == 0 {
            std::thread::yield_now();
        }
        assert_eq!(buf.stats().buffered_bytes, 6, "cap respected while push waits");
        assert_eq!(buf.pull(&token), Pulled::Frame(0, frame(6)));
        assert!(pusher.join().unwrap());
        assert_eq!(buf.stats().push_stalls, 1);
        assert!(buf.stats().max_buffered_bytes <= 10);
    }

    #[test]
    fn oversized_frame_is_admitted_only_into_an_empty_buffer() {
        let buf = StreamBuf::new(4);
        let token = CancelToken::new();
        assert!(buf.push(frame(9), &token), "lone oversized frame must pass");
        assert_eq!(buf.stats().buffered_bytes, 9);
        assert_eq!(buf.pull(&token), Pulled::Frame(0, frame(9)));
        assert_eq!(buf.stats().buffered_bytes, 0);
    }

    #[test]
    fn close_drops_blocked_push_and_ends_pulls() {
        let buf = Arc::new(StreamBuf::new(4));
        let token = CancelToken::new();
        assert!(buf.push(frame(4), &token));
        let b2 = Arc::clone(&buf);
        let t2 = token.clone();
        let pusher = std::thread::spawn(move || b2.push(frame(4), &t2));
        while buf.waiters().0 == 0 {
            std::thread::yield_now();
        }
        buf.close();
        assert!(!pusher.join().unwrap(), "push into closed buffer drops");
        assert_eq!(buf.pull(&token), Pulled::Closed);
        let st = buf.stats();
        assert_eq!(st.dropped, 1);
        assert_eq!(st.buffered_bytes, 0, "close releases buffered bytes");
    }

    #[test]
    fn cancelled_token_unblocks_both_sides() {
        let buf = StreamBuf::new(4);
        let token = CancelToken::new();
        token.cancel("test teardown");
        assert_eq!(buf.pull(&token), Pulled::Closed);
        assert!(buf.push(frame(2), &token), "non-blocking push still lands");
        assert!(!buf.push(frame(4), &token), "blocking push drops instead");
    }

    #[test]
    fn finish_after_drain_yields_total_forever() {
        let buf = StreamBuf::new(16);
        let token = CancelToken::new();
        buf.finish(40);
        assert_eq!(buf.pull(&token), Pulled::Finished(40));
        assert_eq!(buf.pull(&token), Pulled::Finished(40));
    }
}
