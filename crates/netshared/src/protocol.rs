//! Wire protocol: length-prefixed, versioned, serde-encoded frames.
//!
//! lint: io-boundary — this module is a sanctioned socket I/O layer;
//! raw reads/writes anywhere else in the workspace trip the
//! `blocking-accept-loop` lint.
//!
//! The byte-level framing (prefix grammar, cancel-aware resumable
//! reads/writes, timeout configuration) lives in [`orchestrator::wire`]
//! since the coordinator/worker control channel adopted the same
//! grammar; this module keeps the daemon-specific [`Frame`] vocabulary
//! and error codes, delegating the socket mechanics.
//!
//! ## Frame grammar (frozen, like the JSONL event schema)
//!
//! Every frame on the wire is `u32 big-endian payload length` followed by
//! exactly that many bytes of JSON encoding one [`Frame`] (externally
//! tagged: `{"Hello":{...}}`). A length of zero or above
//! [`MAX_FRAME_BYTES`] is a protocol violation: the peer answers with an
//! [`Frame::Error`] (`code = "oversized-frame"`) where possible and closes.
//!
//! Conversation shape:
//!
//! ```text
//! client                                server
//!   | -- Hello{version, peer, []} -------> |   (version gate)
//!   | <------ Hello{version, "netshared", |
//!   |                artifact names} ----- |
//!   | -- Subscribe{stream, artifact,       |
//!   |              count, credit} -------> |   (one per stream)
//!   | <-------------- Data{stream, seq,..} |   (consumes 1 credit each)
//!   | -- Credit{stream, frames} ---------> |   (top-up, any time)
//!   | <---------------- Eof{stream, total} |   (after `count` samples)
//!   | <- Error{stream?, code, message} --- |   (instead of panicking)
//! ```
//!
//! Credit is counted in DATA *frames*, not samples: a subscription starts
//! with `credit` frames of budget and the server only sends a DATA frame
//! while budget remains, so a stalled client bounds not just server-side
//! buffering (the stream buffer's capacity cap) but also kernel socket
//! queue growth.

use doppelganger::GeneratedSample;
use orchestrator::wire::{self, WireError};
use orchestrator::CancelToken;
use serde::{Deserialize, Serialize};
use std::net::TcpStream;
use std::time::Duration;

/// Protocol version spoken by this build; bumped on any grammar change.
///
/// * **v1** — the PR 7 grammar.
/// * **v2** — `SUBSCRIBE` gains `from_seq` (resume a stream from a DATA
///   frame index) and the retryable `overloaded` error code. v2 is a
///   strict superset: `from_seq` is `#[serde(default)]`, so v1 JSON
///   still decodes (as `from_seq = 0`, i.e. the whole stream) and the
///   HELLO exchange negotiates down to a v1 peer (see [`MIN_VERSION`]).
pub const PROTOCOL_VERSION: u32 = 2;

/// Oldest protocol version this build still speaks. The server accepts
/// any client HELLO in `MIN_VERSION..=PROTOCOL_VERSION` and answers with
/// the negotiated (minimum of the two) version.
pub const MIN_VERSION: u32 = 1;

/// Hard ceiling on one frame's payload (prefix values above it are
/// rejected before any allocation happens).
pub const MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// How long a blocked socket read/write waits before re-checking the
/// cancel token; bounds shutdown latency.
pub const IO_POLL: Duration = wire::IO_POLL;

/// `ERROR` code: peer's `HELLO.version` is not [`PROTOCOL_VERSION`].
pub const ERR_VERSION: &str = "unsupported-version";
/// `ERROR` code: `SUBSCRIBE.artifact` names nothing the server loaded.
pub const ERR_UNKNOWN_ARTIFACT: &str = "unknown-artifact";
/// `ERROR` code: length prefix of zero or above [`MAX_FRAME_BYTES`].
pub const ERR_OVERSIZED: &str = "oversized-frame";
/// `ERROR` code: payload bytes did not decode as a frame.
pub const ERR_MALFORMED: &str = "malformed-frame";
/// `ERROR` code: frame arrived that the conversation state disallows
/// (e.g. `SUBSCRIBE` reusing a live stream id, or a missing `HELLO`).
pub const ERR_PROTOCOL: &str = "protocol-violation";
/// `ERROR` code: the server is draining and takes no new subscriptions.
pub const ERR_DRAINING: &str = "draining";
/// `ERROR` code: admission control shed this connection (`--max-sessions`
/// reached). Retryable — clients back off and reconnect.
pub const ERR_OVERLOADED: &str = "overloaded";

/// One protocol frame. Field order and variant names are part of the
/// frozen wire grammar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Frame {
    /// Handshake, sent by the client first and answered by the server.
    /// The server's answer lists the artifact names it serves.
    Hello {
        /// Speaker's protocol version.
        version: u32,
        /// Free-form speaker name (diagnostics only).
        peer: String,
        /// Artifacts available for subscription (server→client only;
        /// clients send an empty list).
        artifacts: Vec<String>,
    },
    /// Opens a stream: `count` samples of `artifact`, with an initial
    /// budget of `credit` DATA frames.
    Subscribe {
        /// Client-chosen stream id, unique per connection.
        stream: u64,
        /// Which loaded artifact to sample.
        artifact: String,
        /// Total samples wanted.
        count: u64,
        /// Initial DATA-frame budget.
        credit: u32,
        /// First DATA frame wanted (v2): the server regenerates the
        /// stream deterministically and suppresses frames below this
        /// seq, so a reconnecting client resumes bitwise-identically.
        /// Absent in v1 frames, which decode as 0 (the whole stream).
        #[serde(default)]
        from_seq: u64,
    },
    /// One batch of generated samples; consumes one credit.
    Data {
        /// Stream id from the `SUBSCRIBE`.
        stream: u64,
        /// Consecutive frame number within the stream, from 0.
        seq: u64,
        /// The samples, in generation order.
        samples: Vec<GeneratedSample>,
    },
    /// Client grants the server `frames` more DATA frames on `stream`.
    Credit {
        /// Stream id.
        stream: u64,
        /// Additional DATA-frame budget.
        frames: u32,
    },
    /// Stream complete: `total` samples were sent.
    Eof {
        /// Stream id.
        stream: u64,
        /// Total samples streamed (equals the subscribed `count`).
        total: u64,
    },
    /// Fault report; `stream` is `None` for connection-level faults
    /// (bad handshake, malformed frame).
    Error {
        /// Affected stream, if the fault is scoped to one.
        stream: Option<u64>,
        /// Machine-readable code (one of the `ERR_*` constants).
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

/// Why a frame could not be read/written.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// Peer closed the connection cleanly between frames.
    Closed,
    /// Peer vanished mid-frame (truncated payload).
    Truncated,
    /// Length prefix of zero or above [`MAX_FRAME_BYTES`].
    Oversized(u64),
    /// Payload bytes did not decode as a [`Frame`].
    Malformed(String),
    /// Socket error other than a timeout.
    Io(String),
    /// The cancel token fired while blocked.
    Cancelled,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::Truncated => write!(f, "connection closed mid-frame"),
            ProtoError::Oversized(n) => {
                write!(f, "frame length {n} outside 1..={MAX_FRAME_BYTES}")
            }
            ProtoError::Malformed(m) => write!(f, "malformed frame: {m}"),
            ProtoError::Io(m) => write!(f, "socket error: {m}"),
            ProtoError::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Maps a byte-layer [`WireError`] into this protocol's error type.
fn from_wire(e: WireError) -> ProtoError {
    match e {
        WireError::Closed => ProtoError::Closed,
        WireError::Truncated => ProtoError::Truncated,
        WireError::Oversized(n) => ProtoError::Oversized(n),
        WireError::Io(m) => ProtoError::Io(m),
        WireError::Cancelled => ProtoError::Cancelled,
    }
}

/// Encodes a frame as its on-wire bytes (length prefix + JSON payload).
pub fn encode_frame(frame: &Frame) -> Result<Vec<u8>, ProtoError> {
    let payload = serde_json::to_string(frame)
        .map_err(|e| ProtoError::Malformed(format!("encode: {e}")))?;
    wire::frame(payload.as_bytes(), MAX_FRAME_BYTES).map_err(from_wire)
}

/// Decodes one frame from payload bytes (the length prefix already
/// stripped and validated).
pub fn decode_frame(payload: &[u8]) -> Result<Frame, ProtoError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| ProtoError::Malformed(format!("payload not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| ProtoError::Malformed(e.to_string()))
}

/// Marks a socket for interruptible I/O: blocked reads and writes wake
/// every [`IO_POLL`] so the token can be checked.
pub fn configure(stream: &TcpStream) -> Result<(), ProtoError> {
    wire::configure(stream).map_err(from_wire)
}

/// Reads one complete frame, blocking (interruptibly) until it arrives.
pub fn read_frame(stream: &mut TcpStream, token: &CancelToken) -> Result<Frame, ProtoError> {
    let payload = wire::read_frame_bytes(stream, token, MAX_FRAME_BYTES).map_err(from_wire)?;
    decode_frame(&payload)
}

/// Writes pre-encoded frame bytes completely, resuming across socket
/// timeouts (a short write keeps its offset) and aborting on `token`.
pub fn write_encoded(
    stream: &mut TcpStream,
    bytes: &[u8],
    token: &CancelToken,
) -> Result<(), ProtoError> {
    wire::write_all(stream, bytes, token).map_err(from_wire)
}

/// Encodes and writes one frame.
pub fn write_frame(
    stream: &mut TcpStream,
    frame: &Frame,
    token: &CancelToken,
) -> Result<(), ProtoError> {
    let bytes = encode_frame(frame)?;
    write_encoded(stream, &bytes, token)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_prepends_big_endian_length() {
        let bytes = encode_frame(&Frame::Credit { stream: 1, frames: 2 }).unwrap();
        let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        assert_eq!(len, bytes.len() - 4);
        assert_eq!(decode_frame(&bytes[4..]).unwrap(), Frame::Credit { stream: 1, frames: 2 });
    }

    #[test]
    fn decode_rejects_non_utf8_and_non_frame_payloads() {
        assert!(matches!(decode_frame(&[0xff, 0xfe]), Err(ProtoError::Malformed(_))));
        assert!(matches!(decode_frame(b"{\"Nope\":{}}"), Err(ProtoError::Malformed(_))));
        assert!(matches!(decode_frame(b"[1,2"), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn v1_subscribe_without_from_seq_decodes_as_zero() {
        // Bytes a v1 client puts on the wire, verbatim: no `from_seq`.
        let v1 = br#"{"Subscribe":{"stream":1,"artifact":"demo","count":10,"credit":4}}"#;
        match decode_frame(v1).unwrap() {
            Frame::Subscribe { stream, artifact, count, credit, from_seq } => {
                assert_eq!((stream, count, credit, from_seq), (1, 10, 4, 0));
                assert_eq!(artifact, "demo");
            }
            other => panic!("decoded as {other:?}"),
        }
    }

    #[test]
    fn v2_subscribe_round_trips_from_seq() {
        let f = Frame::Subscribe {
            stream: 3,
            artifact: "demo".into(),
            count: 100,
            credit: 4,
            from_seq: 17,
        };
        let bytes = encode_frame(&f).unwrap();
        assert_eq!(decode_frame(&bytes[4..]).unwrap(), f);
        // v2 is a strict superset of v1.
        const { assert!(PROTOCOL_VERSION > MIN_VERSION) };
    }

    #[test]
    fn error_frame_carries_optional_stream() {
        for stream in [None, Some(7u64)] {
            let f = Frame::Error {
                stream,
                code: ERR_MALFORMED.to_string(),
                message: "x".to_string(),
            };
            let bytes = encode_frame(&f).unwrap();
            assert_eq!(decode_frame(&bytes[4..]).unwrap(), f);
        }
    }
}
