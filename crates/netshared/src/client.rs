//! Client side of the protocol: the `pull` helper `netshare_cli pull`
//! and the integration tests drive.
//!
//! lint: io-boundary — connects and reads frames off the socket.

use crate::protocol::{self, Frame, ProtoError, PROTOCOL_VERSION};
use doppelganger::GeneratedSample;
use orchestrator::CancelToken;
use std::net::TcpStream;

/// One `pull` request.
#[derive(Debug, Clone)]
pub struct PullConfig {
    /// Server address, e.g. `127.0.0.1:7464`.
    pub addr: String,
    /// Artifact to subscribe to.
    pub artifact: String,
    /// Total samples wanted.
    pub count: u64,
    /// Initial DATA-frame credit; the client restores the budget after
    /// every received frame, so this is also the in-flight window.
    pub credit: u32,
    /// Client name sent in HELLO (diagnostics only).
    pub peer: String,
}

impl PullConfig {
    /// A pull of `count` samples of `artifact` with a 4-frame window.
    pub fn new(addr: &str, artifact: &str, count: u64) -> Self {
        PullConfig {
            addr: addr.to_string(),
            artifact: artifact.to_string(),
            count,
            credit: 4,
            peer: "netshare_cli".to_string(),
        }
    }
}

/// What a completed pull returned.
#[derive(Debug, Clone)]
pub struct PullResult {
    /// All samples, in stream order.
    pub samples: Vec<GeneratedSample>,
    /// DATA frames received.
    pub frames: u64,
    /// Artifact names the server advertised in its HELLO.
    pub server_artifacts: Vec<String>,
    /// The EOF frame's total (equals `samples.len()`).
    pub eof_total: u64,
}

/// Subscribes to one stream and pulls it to EOF. Fails with a message on
/// connection faults, protocol violations, or a server ERROR frame.
pub fn pull(cfg: &PullConfig, token: &CancelToken) -> Result<PullResult, String> {
    let _span = telemetry::span!("netshared/pull[{}]", cfg.artifact);
    let mut sock = TcpStream::connect(&cfg.addr).map_err(|e| format!("connect {}: {e}", cfg.addr))?;
    protocol::configure(&sock).map_err(|e| format!("configure: {e}"))?;

    protocol::write_frame(
        &mut sock,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            peer: cfg.peer.clone(),
            artifacts: Vec::new(),
        },
        token,
    )
    .map_err(|e| format!("handshake send: {e}"))?;
    let server_artifacts = match protocol::read_frame(&mut sock, token) {
        Ok(Frame::Hello { version, artifacts, .. }) if version == PROTOCOL_VERSION => artifacts,
        Ok(Frame::Hello { version, .. }) => {
            return Err(format!("server speaks protocol version {version}, want {PROTOCOL_VERSION}"))
        }
        Ok(Frame::Error { code, message, .. }) => return Err(format!("server error {code}: {message}")),
        Ok(other) => return Err(format!("expected server HELLO, got {other:?}")),
        Err(e) => return Err(format!("handshake recv: {e}")),
    };

    const STREAM: u64 = 1;
    protocol::write_frame(
        &mut sock,
        &Frame::Subscribe {
            stream: STREAM,
            artifact: cfg.artifact.clone(),
            count: cfg.count,
            credit: cfg.credit.max(1),
        },
        token,
    )
    .map_err(|e| format!("subscribe send: {e}"))?;

    let mut samples = Vec::new();
    let mut frames = 0u64;
    let mut next_seq = 0u64;
    loop {
        match protocol::read_frame(&mut sock, token) {
            Ok(Frame::Data { stream, seq, samples: batch }) => {
                if stream != STREAM {
                    return Err(format!("DATA for unknown stream {stream}"));
                }
                if seq != next_seq {
                    return Err(format!("DATA out of order: seq {seq}, want {next_seq}"));
                }
                next_seq += 1;
                frames += 1;
                samples.extend(batch);
                // Restore the budget: one credit per consumed frame.
                protocol::write_frame(&mut sock, &Frame::Credit { stream: STREAM, frames: 1 }, token)
                    .map_err(|e| format!("credit send: {e}"))?;
            }
            Ok(Frame::Eof { stream, total }) => {
                if stream != STREAM {
                    return Err(format!("EOF for unknown stream {stream}"));
                }
                if total != samples.len() as u64 {
                    return Err(format!("EOF total {total} != {} received samples", samples.len()));
                }
                return Ok(PullResult { samples, frames, server_artifacts, eof_total: total });
            }
            Ok(Frame::Error { code, message, .. }) => {
                return Err(format!("server error {code}: {message}"));
            }
            Ok(other) => return Err(format!("unexpected frame {other:?}")),
            Err(ProtoError::Cancelled) => return Err("pull cancelled".to_string()),
            Err(e) => return Err(format!("stream recv: {e}")),
        }
    }
}
