//! Client side of the protocol: the `pull` helper `netshare_cli pull`
//! and the integration tests drive.
//!
//! ## Reconnecting pulls
//!
//! [`pull`] survives a serving interruption (daemon restart, connection
//! reset, an injected socket fault) when [`PullConfig::retries`] is
//! non-zero: every failure is classified as *retryable* or *fatal*
//! ([`PullError`]), and on a retryable one the client sleeps out a
//! seeded [`Backoff`] delay, reconnects, and re-subscribes with
//! `from_seq` set to the next DATA frame it has not yet delivered
//! (protocol v2). The server regenerates the stream deterministically
//! and suppresses the already-delivered prefix, so a resumed pull's
//! byte stream is identical to an uninterrupted one. Delivered progress
//! refills the retry budget, so a long stream tolerates more faults
//! than a short one without unbounded looping on a dead server.
//!
//! lint: io-boundary — connects and reads frames off the socket.

use crate::protocol::{
    self, Frame, ProtoError, ERR_DRAINING, ERR_OVERLOADED, MIN_VERSION, PROTOCOL_VERSION,
};
use doppelganger::GeneratedSample;
use orchestrator::{fnv1a64, Backoff, CancelToken};
use std::net::TcpStream;
use std::time::Duration;

/// One `pull` request.
#[derive(Debug, Clone)]
pub struct PullConfig {
    /// Server address, e.g. `127.0.0.1:7464`.
    pub addr: String,
    /// Artifact to subscribe to.
    pub artifact: String,
    /// Total samples wanted.
    pub count: u64,
    /// Initial DATA-frame credit; the client restores the budget after
    /// every received frame, so this is also the in-flight window.
    pub credit: u32,
    /// Client name sent in HELLO (diagnostics only).
    pub peer: String,
    /// Reconnect attempts allowed per stretch of no progress; `0`
    /// disables retries (single attempt, the v1 behaviour). The budget
    /// refills whenever an attempt delivers at least one new frame.
    pub retries: u32,
    /// Base delay of the reconnect [`Backoff`] schedule (doubles per
    /// attempt, capped at 16× base, with jitter seeded from the
    /// artifact name so chaos runs replay identically).
    pub backoff: Duration,
}

impl PullConfig {
    /// A pull of `count` samples of `artifact` with a 4-frame window
    /// and no retries.
    pub fn new(addr: &str, artifact: &str, count: u64) -> Self {
        PullConfig {
            addr: addr.to_string(),
            artifact: artifact.to_string(),
            count,
            credit: 4,
            peer: "netshare_cli".to_string(),
            retries: 0,
            backoff: Duration::from_millis(100),
        }
    }
}

/// What a completed pull returned.
#[derive(Debug, Clone)]
pub struct PullResult {
    /// All samples, in stream order.
    pub samples: Vec<GeneratedSample>,
    /// DATA frames received (resumed frames count once).
    pub frames: u64,
    /// Artifact names the server advertised in its HELLO.
    pub server_artifacts: Vec<String>,
    /// The EOF frame's total (equals `samples.len()`).
    pub eof_total: u64,
    /// Reconnects performed before the stream completed.
    pub reconnects: u64,
}

/// Why a pull failed, split by whether retrying could help. The CLI
/// maps the two arms to distinct exit codes (4 retryable-exhausted,
/// 1 fatal).
#[derive(Debug, Clone, PartialEq)]
pub enum PullError {
    /// Transient: the connection dropped, the stream was cut mid-frame,
    /// or the server answered `draining`/`overloaded`. Reconnecting
    /// (possibly to a restarted server) may succeed. A pull that ran
    /// out of retries reports the *last* retryable fault here.
    Retryable(String),
    /// Permanent: version mismatch, unknown artifact, a protocol
    /// violation, an EOF total mismatch, or cancellation. Retrying
    /// would fail identically.
    Fatal(String),
}

impl PullError {
    /// `true` for the [`PullError::Retryable`] arm.
    pub fn is_retryable(&self) -> bool {
        matches!(self, PullError::Retryable(_))
    }
}

impl std::fmt::Display for PullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PullError::Retryable(m) => write!(f, "{m}"),
            PullError::Fatal(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for PullError {}

/// Classifies a server ERROR frame: `draining` and `overloaded` invite
/// a retry elsewhere/later; everything else is a verdict.
fn classify_server_error(code: &str, message: &str) -> PullError {
    let text = format!("server error {code}: {message}");
    if code == ERR_DRAINING || code == ERR_OVERLOADED {
        PullError::Retryable(text)
    } else {
        PullError::Fatal(text)
    }
}

/// Maps a read/write-layer fault mid-conversation. Cancellation is
/// fatal (retrying against the user's wishes); everything else —
/// closed, truncated, garbage payloads, socket errors — could be a
/// dying server and is retryable.
fn classify_proto_error(context: &str, e: ProtoError) -> PullError {
    match e {
        ProtoError::Cancelled => PullError::Fatal("pull cancelled".to_string()),
        other => PullError::Retryable(format!("{context}: {other}")),
    }
}

/// Subscribes to one stream and pulls it to EOF, reconnecting across
/// retryable faults per [`PullConfig::retries`] (see module docs).
pub fn pull(cfg: &PullConfig, token: &CancelToken) -> Result<PullResult, PullError> {
    let _span = telemetry::span!("netshared/pull[{}]", cfg.artifact);
    let mut samples = Vec::new();
    let mut next_seq = 0u64;
    let mut frames = 0u64;
    let mut server_artifacts = Vec::new();
    let mut reconnects = 0u64;
    let mut budget = cfg.retries;
    let cap = cfg.backoff.saturating_mul(16);
    let mut backoff = Backoff::new(cfg.backoff, cap, fnv1a64(cfg.artifact.as_bytes()));

    loop {
        let frames_before = frames;
        let attempt = pull_attempt(
            cfg,
            token,
            &mut samples,
            &mut next_seq,
            &mut frames,
            &mut server_artifacts,
        );
        match attempt {
            Ok(eof_total) => {
                return Ok(PullResult { samples, frames, server_artifacts, eof_total, reconnects })
            }
            Err(PullError::Retryable(m)) => {
                if frames > frames_before {
                    // Progress since the last fault: refill the budget
                    // and restart the backoff schedule from its base.
                    budget = cfg.retries;
                    backoff.reset();
                }
                if budget == 0 {
                    let verdict = if cfg.retries == 0 {
                        m
                    } else {
                        format!("retries exhausted after {reconnects} reconnects: {m}")
                    };
                    return Err(PullError::Retryable(verdict));
                }
                budget -= 1;
                reconnects += 1;
                telemetry::metrics::counter("netshared.pull.reconnects").inc();
                if backoff.sleep(token) {
                    return Err(PullError::Fatal("pull cancelled".to_string()));
                }
            }
            Err(fatal) => return Err(fatal),
        }
    }
}

/// One connect → handshake → subscribe-from-`next_seq` → drain attempt.
/// Mutates the accumulated stream state in place so a retryable failure
/// keeps everything delivered so far; returns the EOF total on success.
fn pull_attempt(
    cfg: &PullConfig,
    token: &CancelToken,
    samples: &mut Vec<GeneratedSample>,
    next_seq: &mut u64,
    frames: &mut u64,
    server_artifacts: &mut Vec<String>,
) -> Result<u64, PullError> {
    let mut sock = TcpStream::connect(&cfg.addr)
        .map_err(|e| PullError::Retryable(format!("connect {}: {e}", cfg.addr)))?;
    protocol::configure(&sock).map_err(|e| classify_proto_error("configure", e))?;

    protocol::write_frame(
        &mut sock,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            peer: cfg.peer.clone(),
            artifacts: Vec::new(),
        },
        token,
    )
    .map_err(|e| classify_proto_error("handshake send", e))?;
    match protocol::read_frame(&mut sock, token) {
        Ok(Frame::Hello { version, artifacts, .. })
            if (MIN_VERSION..=PROTOCOL_VERSION).contains(&version) =>
        {
            if version < 2 && *next_seq > 0 {
                return Err(PullError::Fatal(format!(
                    "server negotiated protocol v{version}, which cannot resume from seq {next_seq}"
                )));
            }
            *server_artifacts = artifacts;
        }
        Ok(Frame::Hello { version, .. }) => {
            return Err(PullError::Fatal(format!(
                "server speaks protocol version {version}, want {MIN_VERSION}..={PROTOCOL_VERSION}"
            )))
        }
        Ok(Frame::Error { code, message, .. }) => return Err(classify_server_error(&code, &message)),
        Ok(other) => return Err(PullError::Fatal(format!("expected server HELLO, got {other:?}"))),
        Err(e) => return Err(classify_proto_error("handshake recv", e)),
    }

    const STREAM: u64 = 1;
    protocol::write_frame(
        &mut sock,
        &Frame::Subscribe {
            stream: STREAM,
            artifact: cfg.artifact.clone(),
            count: cfg.count,
            credit: cfg.credit.max(1),
            from_seq: *next_seq,
        },
        token,
    )
    .map_err(|e| classify_proto_error("subscribe send", e))?;

    loop {
        match protocol::read_frame(&mut sock, token) {
            Ok(Frame::Data { stream, seq, samples: batch }) => {
                if stream != STREAM {
                    return Err(PullError::Fatal(format!("DATA for unknown stream {stream}")));
                }
                if seq < *next_seq {
                    // Replayed frame (e.g. a resume answered below the
                    // requested seq): already delivered, skip the bytes
                    // but still top the credit window back up.
                    protocol::write_frame(
                        &mut sock,
                        &Frame::Credit { stream: STREAM, frames: 1 },
                        token,
                    )
                    .map_err(|e| classify_proto_error("credit send", e))?;
                    continue;
                }
                if seq > *next_seq {
                    // A gap means this connection lost frames; the
                    // resumed stream is still intact server-side.
                    return Err(PullError::Retryable(format!(
                        "DATA out of order: seq {seq}, want {next_seq}"
                    )));
                }
                *next_seq += 1;
                *frames += 1;
                samples.extend(batch);
                // Restore the budget: one credit per consumed frame.
                protocol::write_frame(&mut sock, &Frame::Credit { stream: STREAM, frames: 1 }, token)
                    .map_err(|e| classify_proto_error("credit send", e))?;
            }
            Ok(Frame::Eof { stream, total }) => {
                if stream != STREAM {
                    return Err(PullError::Fatal(format!("EOF for unknown stream {stream}")));
                }
                if total != samples.len() as u64 {
                    return Err(PullError::Fatal(format!(
                        "EOF total {total} != {} received samples",
                        samples.len()
                    )));
                }
                return Ok(total);
            }
            Ok(Frame::Error { code, message, .. }) => {
                return Err(classify_server_error(&code, &message))
            }
            Ok(other) => return Err(PullError::Fatal(format!("unexpected frame {other:?}"))),
            Err(e) => return Err(classify_proto_error("stream recv", e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_error_codes_split_into_retryable_and_fatal() {
        assert!(classify_server_error(ERR_DRAINING, "x").is_retryable());
        assert!(classify_server_error(ERR_OVERLOADED, "x").is_retryable());
        assert!(!classify_server_error(protocol::ERR_UNKNOWN_ARTIFACT, "x").is_retryable());
        assert!(!classify_server_error(protocol::ERR_VERSION, "x").is_retryable());
        assert!(!classify_server_error(protocol::ERR_PROTOCOL, "x").is_retryable());
    }

    #[test]
    fn transport_faults_retry_but_cancellation_is_final() {
        assert!(classify_proto_error("recv", ProtoError::Closed).is_retryable());
        assert!(classify_proto_error("recv", ProtoError::Truncated).is_retryable());
        assert!(classify_proto_error("recv", ProtoError::Malformed("x".into())).is_retryable());
        assert!(classify_proto_error("recv", ProtoError::Io("x".into())).is_retryable());
        assert!(!classify_proto_error("recv", ProtoError::Cancelled).is_retryable());
    }

    #[test]
    fn pull_with_no_retries_fails_fast_on_connect() {
        // Port 1 is essentially never listening; the single attempt
        // must come back retryable without sleeping.
        let cfg = PullConfig::new("127.0.0.1:1", "demo", 4);
        let token = CancelToken::new();
        match pull(&cfg, &token) {
            Err(PullError::Retryable(m)) => assert!(m.contains("connect"), "{m}"),
            other => panic!("expected retryable connect failure, got {other:?}"),
        }
    }
}
