//! Per-connection session: handshake, subscription management, and the
//! per-stream producer/sender thread pair.
//!
//! Thread model, per connection:
//!
//! * the **session thread** (spawned by the server's accept loop) runs
//!   the handshake, then loops reading client frames (`SUBSCRIBE`,
//!   `CREDIT`), beating the watchdog heartbeat on every arrival;
//! * each subscription spawns a **producer** thread — rebuilds the
//!   artifact's sampler, walks a [`SampleCursor`](doppelganger::SampleCursor)
//!   batch-by-batch, encodes DATA frames, and pushes them into the
//!   stream's bounded [`StreamBuf`] (blocking at the capacity cap:
//!   backpressure, not memory growth) — and a **sender** thread that
//!   takes one client credit, pulls the next frame in sequence order,
//!   and writes it to the shared socket;
//! * teardown (client disconnect, malformed frame, watchdog eviction, or
//!   server drain) cancels the session token; every blocked wait in the
//!   buffer, credit gate, and socket I/O polls that token, so the
//!   session unwinds without orphaned threads.

use crate::buffer::{Pulled, StreamBuf};
use crate::protocol::{
    self, Frame, ProtoError, ERR_DRAINING, ERR_MALFORMED, ERR_OVERSIZED, ERR_PROTOCOL,
    ERR_UNKNOWN_ARTIFACT, ERR_VERSION, PROTOCOL_VERSION,
};
use crate::server::ServerStats;
use doppelganger::{ArtifactBundle, GeneratedSample};
use orchestrator::watchdog::Watchdog;
use orchestrator::{CancelToken, Heartbeat};
use std::collections::BTreeMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How long a sender blocked on zero credit sleeps between token checks.
const CREDIT_POLL: Duration = Duration::from_millis(20);

/// DATA-frame budget for one stream: starts at the `SUBSCRIBE` credit,
/// topped up by `CREDIT` frames, drawn down one per DATA frame sent.
struct CreditGate {
    budget: Mutex<u64>,
    cv: Condvar,
    stats: Arc<ServerStats>,
}

impl CreditGate {
    fn new(initial: u32, stats: Arc<ServerStats>) -> Self {
        CreditGate {
            budget: Mutex::new(u64::from(initial)),
            cv: Condvar::new(),
            stats,
        }
    }

    fn add(&self, frames: u32) {
        // lint: allow(panic-in-lib) poisoned credit lock is unrecoverable
        let mut budget = self.budget.lock().expect("credit lock"); // lint: lock-order(netshared.credit_budget)
        *budget += u64::from(frames);
        self.cv.notify_all();
    }

    /// Takes one credit, blocking while the budget is zero. Counts one
    /// `netshared.stream.credit_stalls` per stall episode. `false` means
    /// the token fired first.
    fn take(&self, token: &CancelToken) -> bool {
        // lint: allow(panic-in-lib) poisoned credit lock is unrecoverable
        let mut budget = self.budget.lock().expect("credit lock"); // lint: lock-order(netshared.credit_budget)
        let mut stalled = false;
        while *budget == 0 {
            if token.is_cancelled() {
                return false;
            }
            if !stalled {
                stalled = true;
                telemetry::metrics::counter("netshared.stream.credit_stalls").inc();
                self.stats.credit_stalls.fetch_add(1, Ordering::Relaxed);
            }
            let (guard, _) = self
                .cv
                .wait_timeout(budget, CREDIT_POLL)
                .expect("credit lock"); // lint: allow(panic-in-lib) poisoned credit lock is unrecoverable
            budget = guard;
        }
        *budget -= 1;
        true
    }
}

/// Everything a session needs from the server.
pub(crate) struct SessionCtx {
    /// Session id (diagnostics + watchdog job name).
    pub id: u64,
    /// Artifacts on offer, by name.
    pub bundles: Arc<BTreeMap<String, Arc<ArtifactBundle>>>,
    /// Per-stream buffer capacity cap in bytes.
    pub capacity_bytes: usize,
    /// Session-scoped token; the server cancels it on shutdown, the
    /// watchdog on idle eviction.
    pub token: CancelToken,
    /// Shared server statistics.
    pub stats: Arc<ServerStats>,
    /// Idle-eviction watchdog (None when no idle timeout is configured).
    pub watchdog: Option<Arc<Watchdog>>,
    /// Set while the server drains: new subscriptions are refused.
    pub draining: Arc<AtomicBool>,
}

struct StreamHandle {
    buf: Arc<StreamBuf>,
    credit: Arc<CreditGate>,
    producer: std::thread::JoinHandle<()>,
    sender: std::thread::JoinHandle<()>,
}

/// Sends a frame on the shared write half, swallowing I/O errors (the
/// read side will observe the broken connection and tear down).
fn send(writer: &Mutex<TcpStream>, frame: &Frame, token: &CancelToken) -> bool {
    // lint: allow(panic-in-lib) poisoned socket write lock is unrecoverable
    let mut sock = writer.lock().expect("socket write lock"); // lint: lock-order(netshared.socket_writer)
    protocol::write_frame(&mut sock, frame, token).is_ok()
}

fn send_error(
    writer: &Mutex<TcpStream>,
    token: &CancelToken,
    stats: &ServerStats,
    stream: Option<u64>,
    code: &str,
    message: String,
) {
    stats.errors_sent.fetch_add(1, Ordering::Relaxed);
    telemetry::metrics::counter("netshared.errors.sent").inc();
    send(
        writer,
        &Frame::Error { stream, code: code.to_string(), message },
        token,
    );
}

/// Encodes `samples` as one DATA frame and pushes it; recursively splits
/// the batch when the encoding exceeds the buffer capacity (or the wire
/// ceiling), so one frame never monopolizes the whole buffer. Returns
/// `false` once the stream is closed or a single sample cannot fit.
///
/// Frames with `seq < from_seq` are *suppressed*: they are still encoded
/// and still advance `next_seq` — so batch-split decisions, frame
/// boundaries, and downstream seq numbers are bitwise-identical to an
/// uninterrupted stream — but their bytes never enter the buffer. This
/// is what makes a v2 resume (`SUBSCRIBE.from_seq`) exact: the producer
/// replays the deterministic generation and skips the delivered prefix.
fn push_samples(
    stream: u64,
    samples: &[GeneratedSample],
    next_seq: &mut u64,
    from_seq: u64,
    buf: &StreamBuf,
    token: &CancelToken,
) -> bool {
    if samples.is_empty() {
        return true;
    }
    let frame = Frame::Data { stream, seq: *next_seq, samples: samples.to_vec() };
    let split = |next_seq: &mut u64| {
        let mid = samples.len() / 2;
        push_samples(stream, &samples[..mid], next_seq, from_seq, buf, token)
            && push_samples(stream, &samples[mid..], next_seq, from_seq, buf, token)
    };
    match protocol::encode_frame(&frame) {
        Ok(bytes) if bytes.len() <= buf.capacity() || samples.len() == 1 => {
            if *next_seq < from_seq {
                *next_seq += 1; // suppressed: the client already has it
                true
            } else if buf.push(bytes, token) {
                *next_seq += 1;
                true
            } else {
                false
            }
        }
        Ok(_) => split(next_seq),
        Err(ProtoError::Oversized(_)) if samples.len() > 1 => split(next_seq),
        Err(_) => false,
    }
}

/// The producer thread body: sampler rebuild + cursor walk + encode +
/// push. Finishes the buffer with the produced total (which the sender
/// turns into EOF) or closes it on failure.
#[allow(clippy::too_many_arguments)]
fn produce(
    stream: u64,
    count: u64,
    from_seq: u64,
    bundle: Arc<ArtifactBundle>,
    buf: Arc<StreamBuf>,
    token: CancelToken,
    writer: Arc<Mutex<TcpStream>>,
    stats: Arc<ServerStats>,
) {
    let _span = telemetry::span!("netshared/produce[{}]", stream);
    let mut model = match bundle.rebuild() {
        Ok(m) => m,
        Err(e) => {
            send_error(
                &writer,
                &token,
                &stats,
                Some(stream),
                ERR_UNKNOWN_ARTIFACT,
                format!("artifact {:?} failed to rebuild: {e}", bundle.name),
            );
            buf.close();
            return;
        }
    };
    let mut cursor = match model.sample_cursor(count as usize) {
        Ok(c) => c,
        Err(e) => {
            send_error(
                &writer,
                &token,
                &stats,
                Some(stream),
                ERR_UNKNOWN_ARTIFACT,
                format!("artifact {:?} cannot stream: {e}", bundle.name),
            );
            buf.close();
            return;
        }
    };
    let mut next_seq = 0u64;
    while let Some(batch) = cursor.next_batch() {
        if token.is_cancelled() {
            return;
        }
        if !push_samples(stream, &batch, &mut next_seq, from_seq, &buf, &token) {
            return;
        }
    }
    // EOF carries the *full* stream total even on a resume: the client
    // checks its cumulative sample count across reconnects against it.
    buf.finish(cursor.produced() as u64);
}

/// The sender thread body: one credit, one frame, in sequence order.
fn dispatch(
    stream: u64,
    buf: Arc<StreamBuf>,
    credit: Arc<CreditGate>,
    token: CancelToken,
    writer: Arc<Mutex<TcpStream>>,
    stats: Arc<ServerStats>,
    heartbeat: Heartbeat,
) {
    loop {
        if !credit.take(&token) {
            break;
        }
        match buf.pull(&token) {
            Pulled::Frame(_, bytes) => {
                // lint: allow(panic-in-lib) poisoned socket write lock is unrecoverable
                let mut sock = writer.lock().expect("socket write lock"); // lint: lock-order(netshared.socket_writer)
                if protocol::write_encoded(&mut sock, &bytes, &token).is_err() {
                    break;
                }
                drop(sock);
                stats.frames_sent.fetch_add(1, Ordering::Relaxed);
                telemetry::metrics::counter("netshared.frames.sent").inc();
                heartbeat.beat(0);
            }
            Pulled::Finished(total) => {
                if send(&writer, &Frame::Eof { stream, total }, &token) {
                    stats.eofs_sent.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
            Pulled::Closed => break,
        }
    }
    stats.streams_open.fetch_sub(1, Ordering::Relaxed);
    telemetry::metrics::gauge("netshared.streams.open").add(-1.0);
}

/// Runs one client connection to completion. Returns when the client
/// disconnects, a protocol fault closes the connection, or the session
/// token fires (server shutdown / idle eviction).
pub(crate) fn run_session(stream: TcpStream, ctx: SessionCtx) {
    let _span = telemetry::span!("netshared/session[{}]", ctx.id);
    ctx.stats.sessions_open.fetch_add(1, Ordering::Relaxed);
    telemetry::metrics::gauge("netshared.sessions.open").add(1.0);
    let heartbeat = Heartbeat::new();
    // First beat arms staleness detection: a session idle from the very
    // start must still be evictable.
    heartbeat.beat(0);
    let _watch = ctx.watchdog.as_ref().map(|dog| {
        dog.register(
            &format!("session-{}", ctx.id),
            0,
            heartbeat.clone(),
            ctx.token.clone(),
        )
    });

    let mut streams: BTreeMap<u64, StreamHandle> = BTreeMap::new();
    serve_client(&stream, &ctx, &heartbeat, &mut streams);

    // Teardown: stop producers/senders, then join them.
    ctx.token.cancel("session closed");
    for handle in streams.values() {
        handle.buf.close();
        handle.credit.add(0); // wake a sender blocked on credit
    }
    for handle in std::mem::take(&mut streams).into_values() {
        let _ = handle.producer.join();
        let _ = handle.sender.join();
    }
    if let Some(reason) = ctx.token.reason() {
        if reason.contains("heartbeat stale") || reason.contains("deadline exceeded") {
            ctx.stats.evictions.fetch_add(1, Ordering::Relaxed);
            telemetry::metrics::counter("netshared.evictions").inc();
        }
    }
    ctx.stats.sessions_open.fetch_sub(1, Ordering::Relaxed);
    telemetry::metrics::gauge("netshared.sessions.open").add(-1.0);
}

/// Handshake + read loop. Split out of [`run_session`] so teardown runs
/// on every exit path.
fn serve_client(
    stream: &TcpStream,
    ctx: &SessionCtx,
    heartbeat: &Heartbeat,
    streams: &mut BTreeMap<u64, StreamHandle>,
) {
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    if protocol::configure(stream).is_err() {
        return;
    }
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };

    // Handshake: the client speaks first; the server accepts any version
    // in `MIN_VERSION..=PROTOCOL_VERSION` and answers with the
    // negotiated (minimum) version, so v1 clients keep working against a
    // v2 server (`from_seq` is additive; v1 simply never sends it).
    let negotiated = match protocol::read_frame(&mut reader, &ctx.token) {
        Ok(Frame::Hello { version, .. })
            if (protocol::MIN_VERSION..=PROTOCOL_VERSION).contains(&version) =>
        {
            version
        }
        Ok(Frame::Hello { version, .. }) => {
            send_error(
                &writer,
                &ctx.token,
                &ctx.stats,
                None,
                ERR_VERSION,
                format!(
                    "server speaks versions {}..={PROTOCOL_VERSION}, client sent {version}",
                    protocol::MIN_VERSION
                ),
            );
            return;
        }
        Ok(other) => {
            send_error(
                &writer,
                &ctx.token,
                &ctx.stats,
                None,
                ERR_PROTOCOL,
                format!("expected HELLO, got {}", frame_name(&other)),
            );
            return;
        }
        Err(e) => {
            report_read_error(&writer, ctx, e);
            return;
        }
    };
    heartbeat.beat(0);
    let artifacts: Vec<String> = ctx.bundles.keys().cloned().collect();
    if !send(
        &writer,
        &Frame::Hello {
            version: negotiated,
            peer: "netshared".to_string(),
            artifacts,
        },
        &ctx.token,
    ) {
        return;
    }

    loop {
        match protocol::read_frame(&mut reader, &ctx.token) {
            Ok(frame) => {
                heartbeat.beat(0);
                if !handle_frame(frame, ctx, &writer, streams) {
                    return;
                }
            }
            Err(ProtoError::Closed) | Err(ProtoError::Truncated) | Err(ProtoError::Cancelled) => {
                return;
            }
            Err(e) => {
                report_read_error(&writer, ctx, e);
                return;
            }
        }
    }
}

/// Dispatches one client frame; `false` ends the session.
fn handle_frame(
    frame: Frame,
    ctx: &SessionCtx,
    writer: &Arc<Mutex<TcpStream>>,
    streams: &mut BTreeMap<u64, StreamHandle>,
) -> bool {
    match frame {
        Frame::Subscribe { stream, artifact, count, credit, from_seq } => {
            if ctx.draining.load(Ordering::Relaxed) {
                send_error(
                    writer,
                    &ctx.token,
                    &ctx.stats,
                    Some(stream),
                    ERR_DRAINING,
                    "server is draining; no new subscriptions".to_string(),
                );
                return true;
            }
            if streams.contains_key(&stream) {
                send_error(
                    writer,
                    &ctx.token,
                    &ctx.stats,
                    Some(stream),
                    ERR_PROTOCOL,
                    format!("stream {stream} already subscribed on this connection"),
                );
                return true;
            }
            let Some(bundle) = ctx.bundles.get(&artifact) else {
                send_error(
                    writer,
                    &ctx.token,
                    &ctx.stats,
                    Some(stream),
                    ERR_UNKNOWN_ARTIFACT,
                    format!("no artifact named {artifact:?} is loaded"),
                );
                return true;
            };
            telemetry::metrics::counter("netshared.subscribes").inc();
            ctx.stats.streams_open.fetch_add(1, Ordering::Relaxed);
            telemetry::metrics::gauge("netshared.streams.open").add(1.0);
            let buf = Arc::new(StreamBuf::with_stats(ctx.capacity_bytes, Arc::clone(&ctx.stats)));
            let gate = Arc::new(CreditGate::new(credit, Arc::clone(&ctx.stats)));
            let producer = {
                let (bundle, buf) = (Arc::clone(bundle), Arc::clone(&buf));
                let (token, writer) = (ctx.token.clone(), Arc::clone(writer));
                let stats = Arc::clone(&ctx.stats);
                std::thread::spawn(move || {
                    produce(stream, count, from_seq, bundle, buf, token, writer, stats)
                })
            };
            let sender = {
                let (buf, gate) = (Arc::clone(&buf), Arc::clone(&gate));
                let (token, writer) = (ctx.token.clone(), Arc::clone(writer));
                let stats = Arc::clone(&ctx.stats);
                let heartbeat = Heartbeat::new();
                std::thread::spawn(move || {
                    dispatch(stream, buf, gate, token, writer, stats, heartbeat)
                })
            };
            streams.insert(stream, StreamHandle { buf, credit: gate, producer, sender });
            true
        }
        Frame::Credit { stream, frames } => {
            // Credit for a finished/unknown stream can race EOF in
            // flight; tolerate it silently.
            if let Some(handle) = streams.get(&stream) {
                handle.credit.add(frames);
            }
            true
        }
        // Informational from a client; ignore.
        Frame::Error { .. } => true,
        other => {
            send_error(
                writer,
                &ctx.token,
                &ctx.stats,
                None,
                ERR_PROTOCOL,
                format!("client may not send {}", frame_name(&other)),
            );
            false
        }
    }
}

/// Answers a framing-level read fault with the matching ERROR frame
/// (framing cannot be resynchronized afterwards, so the caller closes).
fn report_read_error(writer: &Arc<Mutex<TcpStream>>, ctx: &SessionCtx, e: ProtoError) {
    let code = match &e {
        ProtoError::Oversized(_) => ERR_OVERSIZED,
        ProtoError::Malformed(_) => ERR_MALFORMED,
        _ => return, // disconnects and cancellation get no farewell
    };
    send_error(writer, &ctx.token, &ctx.stats, None, code, e.to_string());
}

fn frame_name(frame: &Frame) -> &'static str {
    match frame {
        Frame::Hello { .. } => "HELLO",
        Frame::Subscribe { .. } => "SUBSCRIBE",
        Frame::Data { .. } => "DATA",
        Frame::Credit { .. } => "CREDIT",
        Frame::Eof { .. } => "EOF",
        Frame::Error { .. } => "ERROR",
    }
}
