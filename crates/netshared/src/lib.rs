//! # netshared
//!
//! Generation-as-a-service: a long-running daemon that loads trained
//! [`ArtifactBundle`](doppelganger::ArtifactBundle)s and streams
//! synthetic flows/packets to many concurrent clients over a
//! length-prefixed, versioned, credit-based TCP protocol. The deployment
//! shape the paper's consumers need — "generate me traffic" as a
//! service, not a batch CLI run (ROADMAP item 1).
//!
//! The three load-bearing guarantees, each pinned by an integration
//! suite:
//!
//! * **Bitwise fidelity** (`tests/service.rs`): a streamed pull is
//!   byte-identical to `sample_fast` run offline from the same bundle —
//!   the producer walks the same
//!   [`SampleCursor`](doppelganger::SampleCursor) loop, artifact rebuild
//!   restores the exact RNG state, and the JSON frame codec round-trips
//!   `f32` bitwise.
//! * **Bounded memory under backpressure** (`tests/backpressure.rs`):
//!   each stream buffers at most its configured capacity in encoded
//!   frames; a stalled client stalls its own producer
//!   ([`buffer::StreamBuf`]) without affecting other streams or growing
//!   the heap.
//! * **No stranded resources** (`tests/service.rs`): disconnects,
//!   malformed frames, idle eviction (the reused orchestrator
//!   [`Watchdog`](orchestrator::watchdog::Watchdog)), and server drain
//!   all unwind sessions completely — gauges return to zero and every
//!   thread is joined.
//!
//! Module map: [`protocol`] (wire grammar + interruptible socket I/O),
//! [`buffer`] (bounded per-stream buffer), `session` (per-connection
//! threads), [`server`] (accept loop + drain), [`client`] (`pull`
//! helper), [`demo`] (seeded untrained bundles for smoke tests).

#![warn(missing_docs)]

pub mod buffer;
pub mod client;
pub mod demo;
pub mod protocol;
pub(crate) mod session;
pub mod server;

pub use buffer::{BufStats, StreamBuf};
pub use client::{pull, PullConfig, PullError, PullResult};
pub use demo::{demo_bundle, demo_config};
pub use protocol::{Frame, ProtoError, MAX_FRAME_BYTES, PROTOCOL_VERSION};
pub use server::{Server, ServerConfig, ServerStats};
