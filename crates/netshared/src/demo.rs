//! Seeded demo bundles: tiny untrained samplers for smoke tests and the
//! `netshared --demo name:seed` flag, so exercising the serving path
//! end-to-end needs no training run. The sampler is a freshly
//! initialized DoppelGANger — statistically meaningless, bitwise
//! deterministic, which is exactly what protocol and equivalence checks
//! need.

use doppelganger::{ArtifactBundle, DgConfig, DoppelGanger, FeatureSpec, Segment};

/// The [`DgConfig`] every demo bundle uses (small enough that rebuilds
/// are instant; `batch_size` sets the DATA-frame batch).
pub fn demo_config(seed: u64) -> DgConfig {
    let mut cfg = DgConfig::small(
        FeatureSpec::new(vec![
            Segment::Continuous { dim: 3 },
            Segment::Categorical { dim: 4 },
        ]),
        FeatureSpec::continuous(2),
        5,
    );
    cfg.meta_hidden = vec![8];
    cfg.rnn_hidden = 6;
    cfg.head_hidden = vec![6];
    cfg.disc_hidden = vec![8];
    cfg.aux_hidden = vec![6];
    cfg.batch_size = 8;
    cfg.seed = seed;
    cfg
}

/// A named demo bundle whose sample stream is a pure function of `seed`.
pub fn demo_bundle(name: &str, seed: u64) -> ArtifactBundle {
    let model = DoppelGanger::new(demo_config(seed));
    ArtifactBundle::capture(name, &model, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_bundles_are_deterministic_in_name_and_seed() {
        let a = demo_bundle("x", 3);
        let b = demo_bundle("x", 3);
        assert_eq!(a, b);
        let c = demo_bundle("x", 4);
        assert_ne!(a.artifact, c.artifact, "different seed, different weights");
    }

    #[test]
    fn demo_bundle_streams_match_offline_sampling() {
        let bundle = demo_bundle("d", 11);
        let mut m1 = bundle.rebuild().unwrap();
        let mut m2 = bundle.rebuild().unwrap();
        assert_eq!(m1.sample_fast(17), m2.sample_fast(17));
    }
}
