//! Runtime-sanitizer acceptance tests (`cargo test -p nnet --features
//! sanitize`): an injected NaN must be caught at the faulty layer with an
//! attributed diagnostic, and the incident must reach the global hook
//! before the fatal panic.
#![cfg(feature = "sanitize")]

use nnet::layers::{Activation, Layer, Sequential};
use nnet::sanitize::{self, Incident, IncidentKind};
use nnet::tensor::Tensor;
use nnet::{GradClip, Parameterized};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

fn panic_message(r: std::thread::Result<Tensor>) -> String {
    let err = r.expect_err("sanitizer should have tripped");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

/// The headline acceptance check: poison one input element with NaN, run
/// the forward pass, and require a panic that names the offending layer.
#[test]
fn injected_nan_is_caught_with_layer_attribution() {
    // The hook is process-global; capture everything and filter by op so
    // concurrent tests in this binary cannot confuse the assertion.
    let seen: Arc<Mutex<Vec<Incident>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    sanitize::set_hook(move |inc: &Incident| {
        sink.lock().unwrap().push(inc.clone());
    });

    let mut rng = StdRng::seed_from_u64(7);
    let mut net = Sequential::mlp(4, &[8], 2, Activation::Tanh, &mut rng);
    let mut x = Tensor::randn(3, 4, &mut rng);
    x.data_mut()[5] = f32::NAN; // the injected fault

    let msg = panic_message(catch_unwind(AssertUnwindSafe(|| net.forward(&x))));
    // Layer-attributed diagnostic: the first Linear node is named, and the
    // tripping op plus the bad element are identified.
    assert!(msg.contains("non-finite"), "{msg}");
    assert!(msg.contains("seq[0]:Linear"), "{msg}");
    assert!(msg.contains("matmul_add_bias"), "{msg}");

    let incidents = seen.lock().unwrap();
    let inc = incidents
        .iter()
        .find(|i| i.op == "matmul_add_bias")
        .expect("hook must observe the trip before the panic");
    assert_eq!(inc.kind, IncidentKind::NonFinite);
    assert!(inc.scope.contains("seq[0]:Linear"), "scope: {}", inc.scope);
    sanitize::clear_hook();
}

/// A NaN appearing mid-network (not in the input) is attributed to the
/// node where it first surfaces, not to the network entry.
#[test]
fn mid_network_fault_names_the_faulty_node() {
    let mut rng = StdRng::seed_from_u64(8);
    let mut net = Sequential::mlp(3, &[5, 5], 1, Activation::Relu, &mut rng);
    // Poison the second Linear's bias (node index 2: Linear,Activation,
    // Linear; parameter order w0,b0,w2,b2). The bias seeds the fused GEMM
    // output unconditionally, so the fault cannot dodge the zero-skip
    // kernel fast path.
    net.parameters_mut()[3].data_mut()[0] = f32::INFINITY;
    let x = Tensor::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
    let msg = panic_message(catch_unwind(AssertUnwindSafe(|| net.forward(&x))));
    assert!(msg.contains("seq[2]:Linear"), "{msg}");
    assert!(!msg.contains("seq[0]"), "{msg}");
}

#[test]
fn backward_pass_is_attributed_too() {
    let mut rng = StdRng::seed_from_u64(9);
    let mut net = Sequential::mlp(2, &[4], 2, Activation::Tanh, &mut rng);
    let x = Tensor::randn(2, 2, &mut rng);
    let y = net.forward(&x);
    let mut grad = Tensor::from_vec(y.rows(), y.cols(), vec![1.0; y.len()]);
    grad.data_mut()[0] = f32::NAN;
    net.zero_grad();
    let msg = panic_message(catch_unwind(AssertUnwindSafe(|| net.backward(&grad))));
    assert!(msg.contains("non-finite"), "{msg}");
    assert!(msg.contains("/backward"), "{msg}");
}

#[test]
fn gradient_norm_explosion_is_detected() {
    let mut rng = StdRng::seed_from_u64(10);
    let mut net = Sequential::mlp(2, &[4], 1, Activation::Relu, &mut rng);
    for g in net.gradients_mut() {
        g.fill(1.0e5);
    }
    sanitize::set_grad_norm_limit(1.0e3);
    let result = catch_unwind(AssertUnwindSafe(|| {
        GradClip::clip_global_norm(&mut net, 1.0e9) // max_norm above the norm: no clip, must still trip
    }));
    sanitize::set_grad_norm_limit(1.0e6); // restore the default for other tests
    let err = result.expect_err("explosion should trip");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("grad-explosion"), "{msg}");
    assert!(msg.contains("clip_global_norm"), "{msg}");
}

/// A healthy forward/backward/clip cycle must not trip anything.
#[test]
fn clean_training_step_does_not_trip() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut net = Sequential::mlp(3, &[6], 2, Activation::LeakyRelu, &mut rng);
    let x = Tensor::randn(4, 3, &mut rng);
    let y = net.forward(&x);
    let grad = Tensor::from_vec(y.rows(), y.cols(), vec![0.1; y.len()]);
    net.zero_grad();
    let _ = net.backward(&grad);
    let norm = GradClip::clip_global_norm(&mut net, 1.0);
    assert!(norm.is_finite());
}
