//! Golden-value regression test for `DpSgdTrainer::sanitize_batch`.
//!
//! DP-SGD's privacy guarantee rides on the exact per-example clip →
//! sum → noise → average pipeline. The kernel rewrite must not change
//! any of these numbers: the fixtures below were captured from a
//! fixed-seed run and pin both the noise-free clipped gradients (pure
//! per-example clipping semantics) and the noised sanitized gradient
//! (RNG stream position included).

use nnet::layers::{Activation, Layer, Sequential};
use nnet::{DpSgdConfig, DpSgdTrainer, Parameterized, Tensor};
use rand::prelude::*;

/// Tiny fixed-seed regression problem: 2→3→1 tanh MLP, 4 examples.
fn fixture() -> (Sequential, Tensor, Tensor) {
    let mut rng = StdRng::seed_from_u64(0xD509);
    let net = Sequential::mlp(2, &[3], 1, Activation::Tanh, &mut rng);
    let x = Tensor::from_vec(4, 2, vec![0.4, -1.2, 0.9, 0.3, -0.5, 0.7, 1.1, -0.8]);
    let y = Tensor::from_vec(4, 1, vec![0.2, -0.4, 0.6, -0.1]);
    (net, x, y)
}

fn per_example<'a>(x: &'a Tensor, y: &'a Tensor) -> impl FnMut(&mut Sequential, usize) + 'a {
    move |m: &mut Sequential, i: usize| {
        let xi = x.select_rows(&[i]);
        let yi = y.select_rows(&[i]);
        let pred = m.forward(&xi);
        let (_, grad) = nnet::loss::mse(&pred, &yi);
        let _ = m.backward(&grad);
    }
}

/// Golden per-example clipped gradients (noise off), captured at
/// clip_norm = 0.05 — every example's raw gradient exceeds the clip, so
/// these values pin the clip-scale arithmetic too. Debug-printed f32s
/// round-trip exactly, so equality below is bitwise.
const GOLDEN_CLIPPED: [[f32; 13]; 4] = [
    [
        -0.0059425537, -4.7782282e-6, 0.00788719, 0.017827662, 1.4334684e-5,
        -0.023661572, -0.014856384, -1.194557e-5, 0.019717975, -0.0041454462,
        0.019916372, -0.0015504826, -0.02233879,
    ],
    [
        0.016010584, 4.1720257e-5, -0.015367624, 0.0053368616, 1.3906754e-5,
        -0.0051225414, 0.017789537, 4.6355843e-5, -0.017075138, 0.007415604,
        -0.016695313, 0.01542264, 0.027805757,
    ],
    [
        0.008565862, 1.1821708e-5, -0.010955761, -0.011992207, -1.655039e-5,
        0.015338065, -0.017131723, -2.3643415e-5, 0.021911522, 0.0049718674,
        -0.02080697, 0.005392314, -0.025830014,
    ],
    [
        -0.015375951, -6.6272037e-6, 0.016688304, 0.011182509, 4.8197844e-6,
        -0.012136947, -0.013978137, -6.0247303e-6, 0.015171184, -0.008796574,
        0.02239119, -0.0123522505, -0.023576487,
    ],
];

/// Golden sanitized gradient for the full batch with σ = 1.3 and noise
/// seed 0xBEEF: pins clip → sum → noise-stream → average end to end.
const GOLDEN_NOISED: [f32; 13] = [
    -0.013163313, -0.011859614, -0.033571288, 0.025471255, -0.0103326915,
    -0.022560006, 0.0060004657, -0.0010554135, 0.034524404, -0.025489882,
    0.005374217, 0.026390564, -0.017263649,
];

#[test]
fn per_example_clipped_gradients_match_goldens() {
    let (net, x, y) = fixture();
    for (i, golden) in GOLDEN_CLIPPED.iter().enumerate() {
        let mut m = net.clone();
        let mut t = DpSgdTrainer::new(
            DpSgdConfig { clip_norm: 0.05, noise_multiplier: 0.0 },
            1,
        );
        t.sanitize_batch(&mut m, &[i], per_example(&x, &y));
        let got = m.flat_gradients();
        assert_eq!(got.as_slice(), golden.as_slice(), "example {i} clipped gradient drifted");
        // A single-example batch with σ=0 is exactly the clipped
        // per-example gradient: confirm the clip actually engaged.
        let norm: f32 = got.iter().map(|g| g * g).sum::<f32>().sqrt();
        assert!((norm - 0.05).abs() < 1e-6, "example {i} should be clipped to exactly C");
    }
}

#[test]
fn noised_batch_gradient_matches_goldens() {
    let (net, x, y) = fixture();
    let mut m = net.clone();
    let mut t = DpSgdTrainer::new(
        DpSgdConfig { clip_norm: 0.05, noise_multiplier: 1.3 },
        0xBEEF,
    );
    t.sanitize_batch(&mut m, &[0, 1, 2, 3], per_example(&x, &y));
    assert_eq!(m.flat_gradients().as_slice(), GOLDEN_NOISED.as_slice());
    assert_eq!(t.steps(), 1);
}

#[test]
fn noise_free_batch_is_average_of_clipped_goldens() {
    // Cross-check: the batch pipeline at σ=0 must equal the average of
    // the four pinned per-example clipped gradients.
    let (net, x, y) = fixture();
    let mut m = net.clone();
    let mut t = DpSgdTrainer::new(
        DpSgdConfig { clip_norm: 0.05, noise_multiplier: 0.0 },
        1,
    );
    t.sanitize_batch(&mut m, &[0, 1, 2, 3], per_example(&x, &y));
    let got = m.flat_gradients();
    for (j, &g) in got.iter().enumerate() {
        let mean: f32 = GOLDEN_CLIPPED.iter().map(|e| e[j]).sum::<f32>() / 4.0;
        assert!((g - mean).abs() <= 1e-7, "coord {j}: {g} vs mean {mean}");
    }
}
