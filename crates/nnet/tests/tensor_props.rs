//! Property tests for the tensor algebra every layer depends on.

use nnet::Tensor;
use proptest::prelude::*;

fn arb_tensor(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |data| Tensor::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative(
        adata in prop::collection::vec(-10.0f32..10.0, 4 * 3),
        bdata in prop::collection::vec(-10.0f32..10.0, 3 * 5),
        cdata in prop::collection::vec(-10.0f32..10.0, 5 * 2),
    ) {
        let a = Tensor::from_vec(4, 3, adata);
        let b = Tensor::from_vec(3, 5, bdata);
        let c = Tensor::from_vec(5, 2, cdata);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-1 * (1.0 + x.abs()), "{} vs {}", x, y);
        }
    }

    #[test]
    fn transpose_is_involutive(a in arb_tensor(6, 6)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn fused_transpose_products_match_explicit(
        adata in prop::collection::vec(-10.0f32..10.0, 5 * 4),
        bdata in prop::collection::vec(-10.0f32..10.0, 5 * 3),
    ) {
        let a = Tensor::from_vec(5, 4, adata);
        let b = Tensor::from_vec(5, 3, bdata);
        let fused = a.t_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        for (x, y) in fused.data().iter().zip(explicit.data()) {
            prop_assert!((x - y).abs() < 1e-3 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn hstack_slice_round_trip(
        adata in prop::collection::vec(-10.0f32..10.0, 4 * 5),
        bdata in prop::collection::vec(-10.0f32..10.0, 4 * 3),
    ) {
        let a = Tensor::from_vec(4, 5, adata);
        let b = Tensor::from_vec(4, 3, bdata);
        let h = Tensor::hstack(&[&a, &b]);
        prop_assert_eq!(h.slice_cols(0, a.cols()), a.clone());
        prop_assert_eq!(h.slice_cols(a.cols(), a.cols() + 3), b);
    }

    #[test]
    fn sum_rows_matches_manual(a in arb_tensor(5, 4)) {
        let s = a.sum_rows();
        for c in 0..a.cols() {
            let manual: f32 = (0..a.rows()).map(|r| a.get(r, c)).sum();
            prop_assert!((s.get(0, c) - manual).abs() < 1e-3 * (1.0 + manual.abs()));
        }
    }

    #[test]
    fn clamp_bounds_hold(mut a in arb_tensor(4, 4), lo in -5.0f32..0.0, width in 0.1f32..5.0) {
        let hi = lo + width;
        a.clamp_inplace(lo, hi);
        prop_assert!(a.data().iter().all(|&v| v >= lo && v <= hi));
    }

    #[test]
    fn norm_is_scale_homogeneous(a in arb_tensor(4, 4), s in 0.1f32..10.0) {
        let n1 = a.norm();
        let mut b = a.clone();
        b.scale(s);
        prop_assert!((b.norm() - s * n1).abs() < 1e-2 * (1.0 + n1));
    }
}
