//! Telemetry metrics stay deterministic when recorded from the rayon
//! pool — the same pool the parallel GEMM kernel dispatches into, so this
//! pins the property the instrumented hot path relies on.
#![cfg(feature = "telemetry")]

use rayon::prelude::*;

#[test]
fn rayon_recorded_metrics_snapshot_deterministically() {
    let samples: Vec<u64> = (0..2048).collect();
    let recorded: Vec<()> = samples
        .par_iter()
        .map(|&i| {
            telemetry::metrics::counter("rayon.test.calls").inc();
            telemetry::metrics::histogram(
                "rayon.test.us",
                &telemetry::metrics::DURATION_US_EDGES,
            )
            .record((i % 97) as f64);
        })
        .collect();
    assert_eq!(recorded.len(), 2048);

    let snap = telemetry::metrics::snapshot();
    assert_eq!(snap.counters["rayon.test.calls"], 2048);
    let hs = &snap.histograms["rayon.test.us"];
    assert_eq!(hs.count, 2048);
    // Integer-valued f64 samples add exactly, so the CAS-loop sum is the
    // same no matter how the pool interleaved the records.
    let expected: f64 = (0..2048u64).map(|i| (i % 97) as f64).sum();
    assert_eq!(hs.sum, expected);
}
