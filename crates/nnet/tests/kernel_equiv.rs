//! Property-based equivalence tests for the GEMM kernel rewrite.
//!
//! For every product shape the tensor API exposes (`A·B`, `Aᵀ·B`,
//! `A·Bᵀ`), the naive reference kernel, the cache-tiled kernel, and the
//! rayon-banded parallel kernel must agree: naive vs tiled within a
//! floating-point reassociation tolerance, tiled vs parallel *bitwise*.
//! Shapes are drawn randomly and include the degenerate 1×N / N×1 edge
//! cases; a dedicated generator plants all-zero rows to exercise the
//! zero-skip fast path of `t_matmul` / the block-skip of the tiled
//! kernels.

use nnet::Tensor;
use proptest::prelude::*;

const REL_TOL: f32 = 1e-4;

fn close(a: &Tensor, b: &Tensor) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.shape(), b.shape());
    for (&x, &y) in a.data().iter().zip(b.data()) {
        prop_assert!(
            (x - y).abs() <= REL_TOL * (1.0 + x.abs()),
            "{} vs {}",
            x,
            y
        );
    }
    Ok(())
}

/// A rows×cols tensor with entries in [-2, 2), where each row is zeroed
/// with probability ~1/4 (zero-skip coverage).
fn tensor_strategy(
    rows: usize,
    cols: usize,
    seed: u64,
) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(0u8..4, rows).prop_map(move |zero_mask| {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(
            seed ^ zero_mask.iter().fold(0u64, |h, &b| h.wrapping_mul(31).wrapping_add(b as u64)),
        );
        let mut t = Tensor::zeros(rows, cols);
        for (r, &mask) in zero_mask.iter().enumerate().take(rows) {
            if mask == 0 {
                continue; // planted all-zero row
            }
            for v in t.row_mut(r) {
                *v = rng.gen_range(-2.0f32..2.0);
            }
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_paths_agree(
        (m, k, n) in (1usize..24, 1usize..40, 1usize..24),
        salt in any::<u64>(),
    ) {
        let a = tensor_strategy(m, k, salt).gen_with(salt);
        let b = tensor_strategy(k, n, salt ^ 1).gen_with(salt ^ 1);
        let naive = a.matmul_serial(&b);
        let tiled = a.matmul_tiled(&b);
        let par = a.matmul_parallel(&b);
        close(&naive, &tiled)?;
        prop_assert_eq!(tiled.data(), par.data(), "tiled vs parallel must be bitwise equal");
        close(&naive, &a.matmul(&b))?;
    }

    #[test]
    fn t_matmul_zero_skip_agrees_with_dense_transpose(
        (m, k, n) in (1usize..24, 1usize..24, 1usize..24),
        salt in any::<u64>(),
    ) {
        let a = tensor_strategy(m, k, salt.wrapping_add(7)).gen_with(salt);
        let b = tensor_strategy(m, n, salt.wrapping_add(8)).gen_with(salt ^ 2);
        let fused = a.t_matmul(&b);
        let reference = a.t_matmul_serial(&b);
        let dense = a.transpose().matmul_serial(&b);
        close(&reference, &fused)?;
        close(&dense, &fused)?;
    }

    #[test]
    fn matmul_t_agrees_with_dense_transpose(
        (m, k, p) in (1usize..24, 1usize..40, 1usize..24),
        salt in any::<u64>(),
    ) {
        let a = tensor_strategy(m, k, salt.wrapping_add(9)).gen_with(salt);
        let b = tensor_strategy(p, k, salt.wrapping_add(10)).gen_with(salt ^ 3);
        let fused = a.matmul_t(&b);
        let reference = a.matmul_t_serial(&b);
        let dense = a.matmul_serial(&b.transpose());
        close(&reference, &fused)?;
        close(&dense, &fused)?;
    }

    #[test]
    fn fused_helpers_match_unfused_pipelines(
        (m, k, n) in (1usize..16, 1usize..32, 1usize..16),
        salt in any::<u64>(),
    ) {
        let a = tensor_strategy(m, k, salt.wrapping_add(11)).gen_with(salt);
        let b = tensor_strategy(k, n, salt.wrapping_add(12)).gen_with(salt ^ 4);
        let bias = tensor_strategy(1, n, salt.wrapping_add(13)).gen_with(salt ^ 5);

        // matmul_add_bias == matmul then broadcast.
        let fused = a.matmul_add_bias(&b, &bias);
        let mut unfused = a.matmul(&b);
        unfused.add_row_broadcast(&bias);
        close(&unfused, &fused)?;

        // matmul_acc == acc + matmul.
        let acc0 = tensor_strategy(m, n, salt.wrapping_add(14)).gen_with(salt ^ 6);
        let mut acc = acc0.clone();
        a.matmul_acc(&b, &mut acc);
        let mut expect = acc0.clone();
        expect.add_assign(&a.matmul(&b));
        close(&expect, &acc)?;

        // t_matmul_acc == acc + t_matmul.
        let c = tensor_strategy(m, n, salt.wrapping_add(15)).gen_with(salt ^ 7);
        let acc0 = tensor_strategy(k, n, salt.wrapping_add(16)).gen_with(salt ^ 8);
        let mut acc = acc0.clone();
        a.t_matmul_acc(&c, &mut acc);
        let mut expect = acc0;
        expect.add_assign(&a.t_matmul(&c));
        close(&expect, &acc)?;

        // axpy == add_scaled; map_inplace == map.
        let x = tensor_strategy(m, k, salt.wrapping_add(17)).gen_with(salt ^ 9);
        let mut ya = a.clone();
        ya.axpy(0.5, &x);
        let mut yb = a.clone();
        yb.add_scaled(&x, 0.5);
        prop_assert_eq!(ya.data(), yb.data());
        let mut mi = a.clone();
        mi.map_inplace(|v| v * v - 1.0);
        let mapped = a.map(|v| v * v - 1.0);
        prop_assert_eq!(mi.data(), mapped.data());
    }
}

/// Strategy values need an RNG at a fixed case; tiny helper so the
/// proptest macro body can materialize a `tensor_strategy` directly.
trait GenWith<T> {
    fn gen_with(&self, salt: u64) -> T;
}

impl<S: Strategy> GenWith<S::Value> for S {
    fn gen_with(&self, salt: u64) -> S::Value {
        let mut rng = proptest::TestRng::for_case("kernel_equiv::gen_with", salt);
        self.gen(&mut rng)
    }
}

#[test]
fn all_zero_inputs_produce_all_zero_outputs() {
    let a = Tensor::zeros(33, 65); // big enough for the tiled path
    let b = Tensor::zeros(65, 31);
    assert!(a.matmul(&b).data().iter().all(|&x| x == 0.0));
    assert!(a.t_matmul(&Tensor::zeros(33, 9)).data().iter().all(|&x| x == 0.0));
    assert!(a.matmul_t(&Tensor::zeros(5, 65)).data().iter().all(|&x| x == 0.0));
}

#[test]
fn one_by_n_and_n_by_one_edges() {
    use rand::prelude::*;
    let mut rng = StdRng::seed_from_u64(99);
    let row = Tensor::randn(1, 37, &mut rng); // 1×N
    let col = Tensor::randn(37, 1, &mut rng); // N×1
    let scalar = row.matmul(&col);
    assert_eq!(scalar.shape(), (1, 1));
    let outer = col.matmul(&row);
    assert_eq!(outer.shape(), (37, 37));
    let outer_ref = col.matmul_serial(&row);
    for (x, y) in outer.data().iter().zip(outer_ref.data()) {
        assert!((x - y).abs() <= 1e-4 * (1.0 + x.abs()));
    }
    // Aᵀ·B and A·Bᵀ on the same degenerate shapes.
    let t = row.t_matmul(&Tensor::randn(1, 5, &mut rng));
    assert_eq!(t.shape(), (37, 5));
    let nt = col.matmul_t(&Tensor::randn(4, 1, &mut rng));
    assert_eq!(nt.shape(), (37, 4));
}
