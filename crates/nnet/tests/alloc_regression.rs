//! Allocation regression gate for the GRU step loops.
//!
//! The training forward/backward used to allocate every gate buffer
//! fresh on every timestep (~15 heap allocations per step). The scratch
//! arena hoists those: after a warm-up pass, per-step cost must stay at
//! the steady-state floor (the cached `hs` clone in the forward and the
//! escaping `dx` in the backward), not regress to per-gate allocation.
//!
//! Measured with a counting global allocator, so this file holds exactly
//! one test — parallel tests would pollute each other's counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use nnet::{Gru, Tensor};
use rand::prelude::*;
use rand::rngs::StdRng;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// The counter is a side effect with no influence on the returned memory;
// every call delegates verbatim to `System`.
// SAFETY: System upholds the GlobalAlloc contract; this impl forwards to it.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same layout contract as the caller; System::alloc upholds it.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: layout is the caller's, forwarded unmodified.
        unsafe { System.alloc(layout) }
    }
    // SAFETY: same (ptr, layout) pairing contract as the caller.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr was returned by System.alloc with this exact layout.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One full forward + backward pass over `steps` timesteps.
fn train_pass(gru: &mut Gru, xs: &[Tensor], h0: &Tensor, grad_template: &Tensor) {
    let hs = gru.forward_sequence(xs, h0);
    let grads: Vec<Tensor> = hs.iter().map(|_| grad_template.clone()).collect();
    let _ = gru.backward_sequence(&grads);
}

#[test]
fn gru_step_loops_do_not_allocate_per_gate() {
    // Sizes deliberately below the GEMM parallel threshold so rayon's
    // worker pool never wakes up and pollutes the counter.
    let (batch, input_dim, hidden) = (4, 6, 16);
    let mut rng = StdRng::seed_from_u64(42);
    let mut gru = Gru::new(input_dim, hidden, &mut rng);

    let make_xs = |steps: usize, rng: &mut StdRng| -> Vec<Tensor> {
        (0..steps)
            .map(|_| {
                let mut x = Tensor::zeros(batch, input_dim);
                x.fill_randn(rng);
                x
            })
            .collect()
    };
    let h0 = Tensor::zeros(batch, hidden);
    let grad = Tensor::zeros(batch, hidden);

    let short_xs = make_xs(8, &mut rng);
    let long_xs = make_xs(32, &mut rng);

    // Warm the scratch arena at the larger shape so both measured passes
    // run on a saturated pool.
    train_pass(&mut gru, &long_xs, &h0, &grad);
    train_pass(&mut gru, &short_xs, &h0, &grad);

    let before_short = allocs_now();
    train_pass(&mut gru, &short_xs, &h0, &grad);
    let short_cost = allocs_now() - before_short;

    let before_long = allocs_now();
    train_pass(&mut gru, &long_xs, &h0, &grad);
    let long_cost = allocs_now() - before_long;

    // Marginal allocations per extra timestep. Steady state is ~2 real
    // per-step allocations (the forward's `hs` clone and the backward's
    // escaping `dx`) plus the per-pass `Vec` collections in this harness;
    // the old per-gate code sat around 15/step.
    let per_step = (long_cost.saturating_sub(short_cost)) as f64 / (32 - 8) as f64;
    assert!(
        per_step <= 6.0,
        "GRU step loops regressed to per-step allocation: \
         {per_step:.2} allocs/step (short pass {short_cost}, long pass {long_cost})"
    );
}
