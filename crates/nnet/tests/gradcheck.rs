//! Finite-difference gradient checks for every `Parameterized` layer.
//!
//! The kernel rewrite (`nnet::kernel`) changed how every matrix product
//! is computed; this suite is the correctness gate: each layer's
//! analytic backward pass must match central finite differences of its
//! forward pass, on sizes that exercise the naive, tiled, and parallel
//! kernel paths.
//!
//! Coverage: `Linear` (dense), `Sequential` (dense + every activation),
//! `Gru` (BPTT), and `Conv2d`. That is the complete set of
//! gradient-carrying layers in `nnet` — there is no embedding layer in
//! this crate (the Ip2Vec embeddings live outside the autograd stack).

use nnet::layers::{Activation, Layer, Sequential};
use nnet::{Conv2d, Gru, Linear, Parameterized, Tensor};
use rand::prelude::*;

/// Deterministic, non-constant loss weights: a plain all-ones loss can
/// miss transpose bugs (symmetric inputs), varying weights cannot.
fn loss_weights(rows: usize, cols: usize) -> Tensor {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| ((i * 31 + 7) % 13) as f32 / 13.0 - 0.5)
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Weighted-sum loss, accumulated in f64 to keep the finite-difference
/// quotient out of f32 cancellation trouble.
fn weighted_loss(y: &Tensor, w: &Tensor) -> f64 {
    y.data()
        .iter()
        .zip(w.data())
        .map(|(&a, &b)| a as f64 * b as f64)
        .sum()
}

/// Central-difference estimate with a non-smoothness guard: when the
/// one-sided forward and backward quotients disagree, the interval
/// straddles (or sits on) a ReLU-style kink, where finite differences
/// average the two slopes while the analytic backward pass picks one —
/// report `None` so the caller skips that index.
fn stable_numeric_grad(mut f: impl FnMut(f32) -> f64, eps: f32) -> Option<f32> {
    let f0 = f(0.0);
    let fp = f(eps);
    let fm = f(-eps);
    let fwd = ((fp - f0) / eps as f64) as f32;
    let bwd = ((f0 - fm) / eps as f64) as f32;
    let central = ((fp - fm) / (2.0 * eps as f64)) as f32;
    if (fwd - bwd).abs() > 2e-2 * (1.0 + central.abs()) {
        None
    } else {
        Some(central)
    }
}

/// Checks a layer's input gradient and (spot-checked) parameter
/// gradients against central finite differences.
fn check_layer<L: Layer>(layer: &mut L, x: &Tensor, eps: f32, tol: f32) {
    let y = layer.forward(x);
    let w = loss_weights(y.rows(), y.cols());
    layer.zero_grad();
    let gx = layer.backward(&w);
    let analytic = layer.flat_gradients();
    let mut checked = 0usize;

    // Input gradient, every element.
    for i in 0..x.len() {
        let num = stable_numeric_grad(
            |delta| {
                let mut xd = x.clone();
                xd.data_mut()[i] += delta;
                weighted_loss(&layer.forward(&xd), &w)
            },
            eps,
        );
        let Some(num) = num else { continue };
        checked += 1;
        let ana = gx.data()[i];
        assert!(
            (num - ana).abs() < tol * (1.0 + num.abs()),
            "input grad [{i}]: numeric {num} vs analytic {ana}"
        );
    }

    // Parameter gradients, a spread of indices (full sweep is O(P·F)).
    let n = layer.num_parameters();
    let step = (n / 30).max(1);
    for i in (0..n).step_by(step) {
        let set = |l: &mut L, delta: f32| {
            let mut off = 0;
            for p in l.parameters_mut() {
                if i < off + p.len() {
                    p.data_mut()[i - off] += delta;
                    return;
                }
                off += p.len();
            }
        };
        let num = stable_numeric_grad(
            |delta| {
                set(layer, delta);
                let f = weighted_loss(&layer.forward(x), &w);
                set(layer, -delta);
                f
            },
            eps,
        );
        let Some(num) = num else { continue };
        checked += 1;
        let ana = analytic[i];
        assert!(
            (num - ana).abs() < tol * (1.0 + num.abs()),
            "param grad [{i}]: numeric {num} vs analytic {ana}"
        );
    }
    assert!(checked > 0, "every index hit a non-smooth point — check is vacuous");
}

#[test]
fn linear_small_naive_path() {
    let mut rng = StdRng::seed_from_u64(10);
    let mut l = Linear::new(3, 4, &mut rng);
    let x = Tensor::randn(2, 3, &mut rng);
    check_layer(&mut l, &x, 1e-2, 2e-2);
}

#[test]
fn linear_batch_on_tiled_kernel_path() {
    // 16 × 48 · 48 × 64 = 49k FLOPs ≥ TILE_MIN_FLOPS: tiled serial path.
    let mut rng = StdRng::seed_from_u64(11);
    let mut l = Linear::new(48, 64, &mut rng);
    let x = Tensor::randn(16, 48, &mut rng);
    check_layer(&mut l, &x, 1e-2, 3e-2);
}

#[test]
fn linear_batch_on_parallel_kernel_path() {
    // 32 × 64 · 64 × 64 = 131k FLOPs ≥ PAR_MIN_FLOPS; force multiple
    // rayon threads so the banded kernel actually runs multi-threaded
    // even on a single-core host. Safe process-wide: the parallel path
    // is bitwise identical to the tiled path at any thread count.
    std::env::set_var("RAYON_NUM_THREADS", "4");
    const _: () = assert!(32 * 64 * 64 >= nnet::kernel::PAR_MIN_FLOPS);
    let mut rng = StdRng::seed_from_u64(12);
    let mut l = Linear::new(64, 64, &mut rng);
    let x = Tensor::randn(32, 64, &mut rng);
    check_layer(&mut l, &x, 1e-2, 3e-2);
}

#[test]
fn mlp_every_activation() {
    for (seed, act) in [
        (20u64, Activation::Tanh),
        (21, Activation::Relu),
        (22, Activation::LeakyRelu),
        (23, Activation::Sigmoid),
        (24, Activation::Identity),
    ] {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::mlp(4, &[6, 5], 3, act, &mut rng);
        let x = Tensor::randn(3, 4, &mut rng);
        check_layer(&mut net, &x, 1e-2, 3e-2);
    }
}

#[test]
fn conv2d_padded_multichannel() {
    let mut rng = StdRng::seed_from_u64(30);
    let mut conv = Conv2d::new(2, 3, 3, 4, 4, 1, &mut rng);
    let x = Tensor::randn(2, conv.in_dim(), &mut rng);
    check_layer(&mut conv, &x, 1e-2, 3e-2);
}

/// GRU uses a sequence interface rather than `Layer`; check the full
/// BPTT path (input, parameter, and h0 gradients) the same way.
#[test]
fn gru_bptt_full_gradcheck() {
    let mut rng = StdRng::seed_from_u64(40);
    let mut gru = Gru::new(3, 4, &mut rng);
    let xs: Vec<Tensor> = (0..4).map(|_| Tensor::randn(2, 3, &mut rng)).collect();
    let h0 = Tensor::randn(2, 4, &mut rng);

    let hs = gru.forward_sequence(&xs, &h0);
    let ws: Vec<Tensor> = hs.iter().map(|h| loss_weights(h.rows(), h.cols())).collect();
    gru.zero_grad();
    let (dxs, dh0) = gru.backward_sequence(&ws);
    let analytic = gru.flat_gradients();

    let loss = |g: &mut Gru, xs: &[Tensor], h0: &Tensor| -> f64 {
        g.forward_sequence(xs, h0)
            .iter()
            .zip(&ws)
            .map(|(h, w)| weighted_loss(h, w))
            .sum()
    };
    let eps = 1e-2f32;
    let tol = 3e-2f32;

    for t in 0..xs.len() {
        for i in 0..xs[t].len() {
            let mut xp = xs.to_vec();
            xp[t].data_mut()[i] += eps;
            let mut xm = xs.to_vec();
            xm[t].data_mut()[i] -= eps;
            let num = ((loss(&mut gru, &xp, &h0) - loss(&mut gru, &xm, &h0))
                / (2.0 * eps as f64)) as f32;
            let ana = dxs[t].data()[i];
            assert!(
                (num - ana).abs() < tol * (1.0 + num.abs()),
                "dx[{t}][{i}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    for i in 0..h0.len() {
        let mut hp = h0.clone();
        hp.data_mut()[i] += eps;
        let mut hm = h0.clone();
        hm.data_mut()[i] -= eps;
        let num =
            ((loss(&mut gru, &xs, &hp) - loss(&mut gru, &xs, &hm)) / (2.0 * eps as f64)) as f32;
        let ana = dh0.data()[i];
        assert!(
            (num - ana).abs() < tol * (1.0 + num.abs()),
            "dh0[{i}]: numeric {num} vs analytic {ana}"
        );
    }

    let n = gru.num_parameters();
    let step = (n / 30).max(1);
    for i in (0..n).step_by(step) {
        let set = |g: &mut Gru, delta: f32| {
            let mut off = 0;
            for p in g.parameters_mut() {
                if i < off + p.len() {
                    p.data_mut()[i - off] += delta;
                    return;
                }
                off += p.len();
            }
        };
        set(&mut gru, eps);
        let fp = loss(&mut gru, &xs, &h0);
        set(&mut gru, -2.0 * eps);
        let fm = loss(&mut gru, &xs, &h0);
        set(&mut gru, eps);
        let num = ((fp - fm) / (2.0 * eps as f64)) as f32;
        let ana = analytic[i];
        assert!(
            (num - ana).abs() < tol * (1.0 + num.abs()),
            "param grad [{i}]: numeric {num} vs analytic {ana}"
        );
    }
}
