//! Property suite for the inference activation arena.
//!
//! Three invariants, over arbitrary `(batch, hidden, seq_len)` shapes:
//!
//! 1. **Warm-up saturation** — after one full GRU sequence pass, further
//!    passes of the same shape never allocate: every `take_*` is served
//!    from the pool.
//! 2. **No aliasing** — buffers held simultaneously (e.g. the per-stream
//!    hidden states of a batched sampler) occupy disjoint storage.
//! 3. **Clean reset** — recycling returns storage to the pool intact and
//!    zero-initialised on the next take, so a warm arena is
//!    indistinguishable from a cold one in results.

use nnet::infer::Arena;
use nnet::{Gru, Tensor};
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Runs `steps` frozen-GRU steps, recycling each previous hidden state,
/// and returns the final hidden state (recycled before returning).
fn run_sequence(gru: &Gru, arena: &mut Arena, batch: usize, input_dim: usize, steps: usize) {
    let frozen = gru.freeze();
    let mut rng = StdRng::seed_from_u64(9);
    let mut x = arena.take_zeroed(batch, input_dim);
    let mut h = arena.take_zeroed(batch, frozen.hidden_dim());
    for _ in 0..steps {
        x.fill_randn(&mut rng);
        let next = frozen.step(&x, &h, arena);
        arena.recycle(std::mem::replace(&mut h, next));
    }
    arena.recycle(x);
    arena.recycle(h);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant 1: a warmed arena serves a same-shape pass entirely from
    /// the pool — the alloc counter does not move.
    #[test]
    fn warm_arena_never_reallocates(
        batch in 1usize..8,
        input_dim in 1usize..6,
        hidden in 1usize..10,
        steps in 1usize..12,
    ) {
        let mut rng = StdRng::seed_from_u64(3);
        let gru = Gru::new(input_dim, hidden, &mut rng);
        let mut arena = Arena::new();

        run_sequence(&gru, &mut arena, batch, input_dim, steps);
        let warm_allocs = arena.allocs();
        prop_assert!(warm_allocs > 0, "cold pass must allocate");

        for round in 0..3 {
            run_sequence(&gru, &mut arena, batch, input_dim, steps);
            prop_assert_eq!(
                arena.allocs(), warm_allocs,
                "pass {} of a warmed arena allocated", round + 2
            );
        }
        prop_assert!(arena.reuses() > 0);
    }

    /// Invariant 2: tensors held at the same time never share storage —
    /// one stream's state cannot bleed into another's.
    #[test]
    fn live_buffers_never_alias(
        shapes in prop::collection::vec((1usize..6, 1usize..8), 2..10),
    ) {
        let mut arena = Arena::new();
        // Warm the pool so later takes are reuses, the interesting case.
        let warm: Vec<Tensor> = shapes
            .iter()
            .map(|&(r, c)| arena.take_zeroed(r, c))
            .collect();
        for t in warm {
            arena.recycle(t);
        }

        let live: Vec<Tensor> = shapes
            .iter()
            .map(|&(r, c)| arena.take_zeroed(r, c))
            .collect();
        for i in 0..live.len() {
            for j in (i + 1)..live.len() {
                let (a, b) = (live[i].data(), live[j].data());
                let (astart, aend) = (a.as_ptr() as usize, a.as_ptr() as usize + a.len() * 4);
                let (bstart, bend) = (b.as_ptr() as usize, b.as_ptr() as usize + b.len() * 4);
                prop_assert!(
                    aend <= bstart || bend <= astart,
                    "buffers {} and {} overlap", i, j
                );
            }
        }
    }

    /// Invariant 3: recycle returns storage to the pool, and the next
    /// same-shape take is a zeroed reuse — a warm arena computes the same
    /// bytes as a cold one.
    #[test]
    fn recycle_resets_cleanly(
        batch in 1usize..8,
        input_dim in 1usize..6,
        hidden in 1usize..10,
        steps in 1usize..10,
    ) {
        let mut rng = StdRng::seed_from_u64(11);
        let gru = Gru::new(input_dim, hidden, &mut rng);
        let frozen = gru.freeze();

        let run = |arena: &mut Arena| -> Tensor {
            let mut step_rng = StdRng::seed_from_u64(21);
            let mut x = arena.take_zeroed(batch, input_dim);
            let mut h = arena.take_zeroed(batch, hidden);
            for _ in 0..steps {
                x.fill_randn(&mut step_rng);
                let next = frozen.step(&x, &h, arena);
                arena.recycle(std::mem::replace(&mut h, next));
            }
            arena.recycle(x);
            h
        };

        let mut cold = Arena::new();
        let reference = run(&mut cold);

        // Dirty a warm arena with unrelated garbage values, then recycle.
        let mut warm = Arena::new();
        let mut junk = warm.take_zeroed(batch.max(2), hidden.max(input_dim));
        junk.fill(f32::MAX / 2.0);
        warm.recycle(junk);
        let first = run(&mut warm);
        warm.recycle(first);
        prop_assert!(warm.pooled() > 0, "recycled buffers must reach the pool");

        let again = run(&mut warm);
        prop_assert_eq!(
            reference.data(), again.data(),
            "warm arena diverged from cold arena"
        );
        warm.recycle(again);
    }

    /// The frozen MLP path obeys the same warm-up property as the GRU.
    #[test]
    fn frozen_sequential_warm_passes_are_alloc_free(
        rows in 1usize..8,
        in_dim in 1usize..6,
        hid in 1usize..8,
        out_dim in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(7);
        let net = nnet::Sequential::mlp(
            in_dim, &[hid], out_dim, nnet::Activation::Relu, &mut rng,
        );
        let frozen = nnet::infer::FrozenSequential::of(&net).unwrap();
        let mut arena = Arena::new();
        let mut input = Tensor::zeros(rows, in_dim);
        input.fill_randn(&mut rng);

        let out = frozen.forward(&input, &mut arena);
        arena.recycle(out);
        let warm_allocs = arena.allocs();
        for _ in 0..3 {
            let out = frozen.forward(&input, &mut arena);
            arena.recycle(out);
            prop_assert_eq!(arena.allocs(), warm_allocs);
        }
    }
}
