//! 2-D convolution (stride 1, zero padding) with hand-written backprop.
//!
//! Exists for PAC-GAN, whose discriminator is a CNN over the packet's
//! greyscale byte grid. Inputs and outputs are flattened channel-major:
//! a batch row holds `c_in · h · w` values as `[channel][row][col]`.

use crate::tensor::Tensor;
use crate::Parameterized;
use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// A stride-1 2-D convolution layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    c_in: usize,
    c_out: usize,
    k: usize,
    h: usize,
    w: usize,
    pad: usize,
    /// Kernels, `c_out × (c_in·k·k)` row-major.
    weight: Tensor,
    /// Per-output-channel bias.
    bias: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
    #[serde(skip)]
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Builds a convolution over `h × w` inputs with `c_in` channels,
    /// `c_out` output channels, `k × k` kernels and `pad` zero padding.
    ///
    /// # Panics
    /// Panics if the kernel cannot fit the padded input.
    pub fn new<R: Rng + ?Sized>(
        c_in: usize,
        c_out: usize,
        k: usize,
        h: usize,
        w: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        assert!(h + 2 * pad >= k && w + 2 * pad >= k, "kernel larger than padded input");
        Conv2d {
            c_in,
            c_out,
            k,
            h,
            w,
            pad,
            weight: Tensor::he(c_in * k * k, c_out, rng).transpose(),
            bias: Tensor::zeros(1, c_out),
            grad_w: Tensor::zeros(c_out, c_in * k * k),
            grad_b: Tensor::zeros(1, c_out),
            cached_input: None,
        }
    }

    /// Output height.
    pub fn h_out(&self) -> usize {
        self.h + 2 * self.pad - self.k + 1
    }

    /// Output width.
    pub fn w_out(&self) -> usize {
        self.w + 2 * self.pad - self.k + 1
    }

    /// Output row width (`c_out · h_out · w_out`).
    pub fn out_dim(&self) -> usize {
        self.c_out * self.h_out() * self.w_out()
    }

    /// Input row width (`c_in · h · w`).
    pub fn in_dim(&self) -> usize {
        self.c_in * self.h * self.w
    }

    #[inline]
    fn in_px(&self, row: &[f32], c: usize, y: isize, x: isize) -> f32 {
        if y < 0 || x < 0 || y >= self.h as isize || x >= self.w as isize {
            0.0
        } else {
            row[c * self.h * self.w + y as usize * self.w + x as usize]
        }
    }
}

impl Parameterized for Conv2d {
    fn parameters(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }
    fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }
    fn gradients_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.grad_w, &mut self.grad_b]
    }
}

impl crate::layers::Layer for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.cols(), self.in_dim(), "conv input width mismatch");
        let (ho, wo) = (self.h_out(), self.w_out());
        let mut out = Tensor::zeros(input.rows(), self.out_dim());
        for b in 0..input.rows() {
            let row = input.row(b);
            for co in 0..self.c_out {
                let kernel = self.weight.row(co);
                let bias = self.bias.data()[co];
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut acc = bias;
                        for ci in 0..self.c_in {
                            for ky in 0..self.k {
                                for kx in 0..self.k {
                                    let iy = oy as isize + ky as isize - self.pad as isize;
                                    let ix = ox as isize + kx as isize - self.pad as isize;
                                    acc += kernel[ci * self.k * self.k + ky * self.k + kx]
                                        * self.in_px(row, ci, iy, ix);
                                }
                            }
                        }
                        out.row_mut(b)[co * ho * wo + oy * wo + ox] = acc;
                    }
                }
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward"); // lint: allow(panic-in-lib) documented API contract: forward precedes backward (lint: allow(panic-in-lib) documented API contract: forward precedes backward)
        let (ho, wo) = (self.h_out(), self.w_out());
        assert_eq!(grad_output.cols(), self.out_dim(), "conv grad width mismatch");
        let mut grad_in = Tensor::zeros(input.rows(), self.in_dim());
        for b in 0..input.rows() {
            let row = input.row(b);
            let gout = grad_output.row(b);
            for co in 0..self.c_out {
                let kernel_base = co;
                for oy in 0..ho {
                    for ox in 0..wo {
                        let g = gout[co * ho * wo + oy * wo + ox];
                        if g == 0.0 { // lint: allow(float-eq) zero-skip fast path: only exact 0.0 (zero-padded input) may skip the FMA
                            continue;
                        }
                        self.grad_b.data_mut()[co] += g;
                        for ci in 0..self.c_in {
                            for ky in 0..self.k {
                                for kx in 0..self.k {
                                    let iy = oy as isize + ky as isize - self.pad as isize;
                                    let ix = ox as isize + kx as isize - self.pad as isize;
                                    let widx = ci * self.k * self.k + ky * self.k + kx;
                                    let x = self.in_px(row, ci, iy, ix);
                                    self.grad_w.row_mut(kernel_base)[widx] += g * x;
                                    if iy >= 0
                                        && ix >= 0
                                        && (iy as usize) < self.h
                                        && (ix as usize) < self.w
                                    {
                                        grad_in.row_mut(b)[ci * self.h * self.w
                                            + iy as usize * self.w
                                            + ix as usize] +=
                                            g * self.weight.row(co)[widx];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Layer;
    use rand::rngs::StdRng;

    #[test]
    fn output_shape_is_correct() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv2d::new(1, 8, 3, 4, 4, 1, &mut rng);
        assert_eq!(conv.h_out(), 4);
        assert_eq!(conv.w_out(), 4);
        assert_eq!(conv.out_dim(), 8 * 16);
        let no_pad = Conv2d::new(2, 3, 3, 5, 5, 0, &mut rng);
        assert_eq!(no_pad.h_out(), 3);
        assert_eq!(no_pad.out_dim(), 3 * 9);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(1, 1, 1, 3, 3, 0, &mut rng);
        conv.parameters_mut()[0].data_mut()[0] = 1.0; // 1×1 kernel = identity
        conv.parameters_mut()[1].data_mut()[0] = 0.0;
        let x = Tensor::from_vec(1, 9, (1..=9).map(|v| v as f32).collect());
        let y = conv.forward(&x);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_convolution() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new(1, 1, 3, 3, 3, 0, &mut rng);
        // All-ones kernel, zero bias → output = sum of the 3×3 input.
        for w in conv.parameters_mut()[0].data_mut() {
            *w = 1.0;
        }
        conv.parameters_mut()[1].data_mut()[0] = 0.0;
        let x = Tensor::from_vec(1, 9, (1..=9).map(|v| v as f32).collect());
        let y = conv.forward(&x);
        assert_eq!(y.shape(), (1, 1));
        assert_eq!(y.data()[0], 45.0);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::new(2, 3, 3, 4, 4, 1, &mut rng);
        let x = Tensor::randn(2, conv.in_dim(), &mut rng);
        let y = conv.forward(&x);
        let ones = Tensor::from_vec(y.rows(), y.cols(), vec![1.0; y.len()]);
        conv.zero_grad();
        let gx = conv.backward(&ones);
        let flat = conv.flat_gradients();

        let eps = 1e-2f32;
        let loss = |conv: &mut Conv2d, x: &Tensor| -> f32 {
            conv.forward(x).data().iter().sum()
        };
        // Input gradient spot checks.
        for i in (0..x.len()).step_by(x.len() / 10 + 1) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&mut conv, &xp) - loss(&mut conv, &xm)) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < 2e-2 * (1.0 + num.abs()),
                "input grad {i}: numeric {num} vs analytic {}",
                gx.data()[i]
            );
        }
        // Parameter gradient spot checks.
        let n = conv.num_parameters();
        for i in (0..n).step_by(n / 12 + 1) {
            let set = |conv: &mut Conv2d, delta: f32| {
                let mut off = 0;
                for p in conv.parameters_mut() {
                    if i < off + p.len() {
                        p.data_mut()[i - off] += delta;
                        return;
                    }
                    off += p.len();
                }
            };
            set(&mut conv, eps);
            let fp = loss(&mut conv, &x);
            set(&mut conv, -2.0 * eps);
            let fm = loss(&mut conv, &x);
            set(&mut conv, eps);
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - flat[i]).abs() < 2e-2 * (1.0 + num.abs()),
                "param grad {i}: numeric {num} vs analytic {}",
                flat[i]
            );
        }
    }
}
