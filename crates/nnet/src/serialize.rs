//! Parameter checkpointing.
//!
//! NetShare's scalability insight (I3) trains a seed chunk, then fine-tunes
//! the remaining chunks *in parallel* from that seed model; its privacy
//! insight (I4) fine-tunes a public pre-trained model with DP-SGD. Both
//! need cheap save/restore of model parameters, provided here as a JSON
//! snapshot (human-inspectable, diff-able, stable across runs).

use crate::tensor::Tensor;
use crate::Parameterized;
use serde::{Deserialize, Serialize};

/// A serialized parameter snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Parameter tensors in `Parameterized::parameters` order.
    pub tensors: Vec<Tensor>,
}

/// Captures a model's parameters.
pub fn snapshot(model: &dyn Parameterized) -> Checkpoint {
    Checkpoint {
        tensors: model.parameters().into_iter().cloned().collect(),
    }
}

/// Restores a snapshot into a model of identical architecture.
///
/// # Panics
/// Panics on a parameter count or shape mismatch.
pub fn restore(model: &mut dyn Parameterized, ckpt: &Checkpoint) {
    let mut params = model.parameters_mut();
    assert_eq!(params.len(), ckpt.tensors.len(), "checkpoint parameter count mismatch");
    for (p, t) in params.iter_mut().zip(&ckpt.tensors) {
        assert_eq!(p.shape(), t.shape(), "checkpoint shape mismatch");
        p.data_mut().copy_from_slice(t.data());
    }
}

/// Serializes a checkpoint to JSON.
pub fn to_json(ckpt: &Checkpoint) -> String {
    serde_json::to_string(ckpt).expect("checkpoint serialization cannot fail") // lint: allow(panic-in-lib) checkpoints are plain finite-float structs, serialization is total (lint: allow(panic-in-lib) checkpoints are plain finite-float structs, serialization is total)
}

/// Parses a checkpoint from JSON.
pub fn from_json(s: &str) -> Result<Checkpoint, serde_json::Error> {
    serde_json::from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Sequential};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn snapshot_restore_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let src = Sequential::mlp(3, &[5], 2, Activation::Tanh, &mut rng);
        let ckpt = snapshot(&src);
        let json = to_json(&ckpt);
        let parsed = from_json(&json).unwrap();
        let mut dst = Sequential::mlp(3, &[5], 2, Activation::Tanh, &mut rng);
        restore(&mut dst, &parsed);
        for (a, b) in src.parameters().iter().zip(dst.parameters()) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn restore_rejects_wrong_architecture() {
        let mut rng = StdRng::seed_from_u64(2);
        let src = Sequential::mlp(3, &[5], 2, Activation::Tanh, &mut rng);
        let mut dst = Sequential::mlp(3, &[6], 2, Activation::Tanh, &mut rng);
        restore(&mut dst, &snapshot(&src));
    }
}
