//! Row-major `f32` matrices and the linear algebra the layers need.
//!
//! Matrix products are backed by the kernels in [`crate::kernel`]:
//! [`Tensor::matmul`], [`Tensor::t_matmul`], and [`Tensor::matmul_t`]
//! dispatch between a naive loop, a cache-tiled kernel, and a tiled
//! kernel over rayon row bands based on the product's FLOP count. The
//! `*_serial`, `*_tiled`, and `*_parallel` variants pin a specific path
//! (equivalence tests, benchmarks); the fused helpers
//! ([`Tensor::matmul_add_bias`], [`Tensor::matmul_acc`],
//! [`Tensor::t_matmul_acc`], [`Tensor::map_inplace`], [`Tensor::axpy`])
//! merge a GEMM with the surrounding element-wise pass so layer code
//! makes one sweep over memory instead of two.

use crate::kernel;
use crate::sanitize;
use rand::prelude::*;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`. A batch of activations is a tensor
/// with one row per example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A `rows × cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a tensor from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Tensor { rows, cols, data }
    }

    /// A single-row tensor from a slice.
    pub fn row_vector(data: &[f32]) -> Self {
        Tensor::from_vec(1, data.len(), data.to_vec())
    }

    /// Xavier/Glorot-normal initialization, suitable for tanh/sigmoid nets.
    pub fn xavier<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let std = (2.0 / (rows + cols) as f64).sqrt();
        let dist = Normal::new(0.0, std).expect("valid normal"); // lint: allow(panic-in-lib) std is finite and positive by construction (lint: allow(panic-in-lib) std is finite and positive by construction)
        Tensor {
            rows,
            cols,
            data: (0..rows * cols).map(|_| dist.sample(rng) as f32).collect(),
        }
    }

    /// He-normal initialization, suitable for ReLU nets.
    pub fn he<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let std = (2.0 / rows as f64).sqrt();
        let dist = Normal::new(0.0, std).expect("valid normal"); // lint: allow(panic-in-lib) std is finite and positive by construction (lint: allow(panic-in-lib) std is finite and positive by construction)
        Tensor {
            rows,
            cols,
            data: (0..rows * cols).map(|_| dist.sample(rng) as f32).collect(),
        }
    }

    /// Standard-normal noise tensor (the GAN latent input).
    pub fn randn<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let dist = Normal::new(0.0, 1.0).unwrap(); // lint: allow(panic-in-lib) constant (0,1) parameters are valid (lint: allow(panic-in-lib) constant (0,1) parameters are valid)
        Tensor {
            rows,
            cols,
            data: (0..rows * cols).map(|_| dist.sample(rng) as f32).collect(),
        }
    }

    /// Refills every element with standard-normal noise, drawing from
    /// `rng` in the same element order as [`Tensor::randn`] — an
    /// allocation-free refresh for reused latent buffers. A tensor
    /// filled this way is bitwise-identical to a fresh
    /// `Tensor::randn(rows, cols, rng)` from the same RNG state.
    pub fn fill_randn<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let dist = Normal::new(0.0, 1.0).unwrap(); // lint: allow(panic-in-lib) constant (0,1) parameters are valid (lint: allow(panic-in-lib) constant (0,1) parameters are valid)
        self.data.iter_mut().for_each(|x| *x = dist.sample(rng) as f32);
    }

    /// Refills columns `0..k` of every row with standard-normal noise,
    /// drawing row 0's `k` values first, then row 1's, and so on — the
    /// exact element order of `Tensor::randn(rows, k, rng)`. Lets a
    /// latent slice live inside a wider input buffer (columns `k..` are
    /// untouched) without perturbing the RNG stream relative to filling
    /// a standalone `rows × k` tensor.
    pub fn fill_randn_cols<R: Rng + ?Sized>(&mut self, k: usize, rng: &mut R) {
        assert!(k <= self.cols, "fill_randn_cols: k out of range"); // lint: allow(panic-in-lib) caller passes a latent width <= the buffer width by construction
        let dist = Normal::new(0.0, 1.0).unwrap(); // lint: allow(panic-in-lib) constant (0,1) parameters are valid (lint: allow(panic-in-lib) constant (0,1) parameters are valid)
        let cols = self.cols;
        for r in 0..self.rows {
            self.data[r * cols..r * cols + k]
                .iter_mut()
                .for_each(|x| *x = dist.sample(rng) as f32);
        }
    }

    /// Consumes the tensor, returning its backing storage (the arena
    /// recycling path in [`crate::infer`]).
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable raw data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Sets every element to `v`.
    pub fn fill(&mut self, v: f32) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    #[inline]
    fn assert_matmul_dims(&self, other: &Tensor) {
        assert_eq!(
            self.cols, other.rows,
            "matmul {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
    }

    /// Matrix product `self · other`, dispatched between the naive,
    /// tiled, and parallel kernels by problem size.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.assert_matmul_dims(other);
        let mut out = Tensor::zeros(self.rows, other.cols);
        kernel::gemm_auto(
            self.rows, self.cols, other.cols,
            &self.data, &other.data, &mut out.data,
        );
        sanitize::check_finite("matmul", &out.data);
        out
    }

    /// `self · other` on the naive reference kernel (the original
    /// i-k-j loop), regardless of size. Baseline for equivalence tests
    /// and benchmarks.
    pub fn matmul_serial(&self, other: &Tensor) -> Tensor {
        self.assert_matmul_dims(other);
        let mut out = Tensor::zeros(self.rows, other.cols);
        kernel::gemm_naive(
            self.rows, self.cols, other.cols,
            &self.data, &other.data, &mut out.data,
        );
        out
    }

    /// `self · other` on the cache-tiled serial kernel, regardless of size.
    pub fn matmul_tiled(&self, other: &Tensor) -> Tensor {
        self.assert_matmul_dims(other);
        let mut out = Tensor::zeros(self.rows, other.cols);
        kernel::gemm_tiled(
            self.rows, self.cols, other.cols,
            &self.data, &other.data, &mut out.data,
        );
        out
    }

    /// `self · other` on the tiled kernel over rayon row bands,
    /// regardless of size. Bitwise identical to [`Tensor::matmul_tiled`].
    pub fn matmul_parallel(&self, other: &Tensor) -> Tensor {
        self.assert_matmul_dims(other);
        let mut out = Tensor::zeros(self.rows, other.cols);
        kernel::gemm_parallel(
            self.rows, self.cols, other.cols,
            &self.data, &other.data, &mut out.data,
        );
        out
    }

    /// Fused `self · other + bias` (bias broadcast to every row): the
    /// output is seeded with the bias so the GEMM accumulates on top of
    /// it, saving the separate broadcast pass over the output.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch or if `bias` is not a
    /// `1 × other.cols` row vector.
    pub fn matmul_add_bias(&self, other: &Tensor, bias: &Tensor) -> Tensor {
        self.assert_matmul_dims(other);
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, other.cols, "bias width mismatch");
        let mut out = Tensor::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            out.data[r * other.cols..(r + 1) * other.cols].copy_from_slice(&bias.data);
        }
        kernel::gemm_auto(
            self.rows, self.cols, other.cols,
            &self.data, &other.data, &mut out.data,
        );
        sanitize::check_finite("matmul_add_bias", &out.data);
        out
    }

    /// [`Tensor::matmul_add_bias`] into a caller-provided output buffer:
    /// `out` is overwritten with the broadcast bias, then the GEMM
    /// accumulates on top. Bitwise-identical to the allocating variant
    /// (same seed-then-accumulate kernel on the same shapes) — the
    /// inference arena path relies on that.
    ///
    /// # Panics
    /// Panics on an inner-dimension, bias, or `out` shape mismatch.
    pub fn matmul_add_bias_into(&self, other: &Tensor, bias: &Tensor, out: &mut Tensor) {
        self.assert_matmul_dims(other);
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, other.cols, "bias width mismatch");
        assert_eq!(out.shape(), (self.rows, other.cols), "matmul_add_bias_into shape mismatch");
        for r in 0..self.rows {
            out.data[r * other.cols..(r + 1) * other.cols].copy_from_slice(&bias.data);
        }
        kernel::gemm_auto(
            self.rows, self.cols, other.cols,
            &self.data, &other.data, &mut out.data,
        );
        sanitize::check_finite("matmul_add_bias", &out.data);
    }

    /// Fused `acc += self · other`, accumulating straight into an
    /// existing tensor (gradient buffers) without a temporary.
    ///
    /// # Panics
    /// Panics on a dimension mismatch with `acc`.
    pub fn matmul_acc(&self, other: &Tensor, acc: &mut Tensor) {
        self.assert_matmul_dims(other);
        sanitize::check_shape("matmul_acc", (self.rows, other.cols), acc.shape());
        assert_eq!(acc.shape(), (self.rows, other.cols), "matmul_acc shape mismatch");
        kernel::gemm_auto(
            self.rows, self.cols, other.cols,
            &self.data, &other.data, &mut acc.data,
        );
        sanitize::check_finite("matmul_acc", &acc.data);
    }

    /// `selfᵀ · other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "t_matmul row mismatch");
        let mut out = Tensor::zeros(self.cols, other.cols);
        kernel::gemm_tn_auto(
            self.rows, self.cols, other.cols,
            &self.data, &other.data, &mut out.data,
        );
        sanitize::check_finite("t_matmul", &out.data);
        out
    }

    /// `selfᵀ · other` on the naive reference kernel (row-outer
    /// accumulation with zero-skip), regardless of size.
    pub fn t_matmul_serial(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "t_matmul row mismatch");
        let mut out = Tensor::zeros(self.cols, other.cols);
        kernel::gemm_tn_naive(
            self.rows, self.cols, other.cols,
            &self.data, &other.data, &mut out.data,
        );
        out
    }

    /// Fused `acc += selfᵀ · other`: the weight-gradient update
    /// (`grad_w += inputᵀ · grad_out`) in one pass, no temporary.
    ///
    /// # Panics
    /// Panics on a dimension mismatch with `acc`.
    pub fn t_matmul_acc(&self, other: &Tensor, acc: &mut Tensor) {
        assert_eq!(self.rows, other.rows, "t_matmul row mismatch");
        sanitize::check_shape("t_matmul_acc", (self.cols, other.cols), acc.shape());
        assert_eq!(acc.shape(), (self.cols, other.cols), "t_matmul_acc shape mismatch");
        kernel::gemm_tn_auto(
            self.rows, self.cols, other.cols,
            &self.data, &other.data, &mut acc.data,
        );
        sanitize::check_finite("t_matmul_acc", &acc.data);
    }

    /// `self · otherᵀ` without materializing the transpose.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_t col mismatch");
        let mut out = Tensor::zeros(self.rows, other.rows);
        kernel::gemm_nt_auto(
            self.rows, self.cols, other.rows,
            &self.data, &other.data, &mut out.data,
        );
        sanitize::check_finite("matmul_t", &out.data);
        out
    }

    /// Fused `acc += self · otherᵀ`: on a zeroed `acc` this is
    /// bitwise-identical to [`Tensor::matmul_t`] (which also starts
    /// from zeros), letting the BPTT scratch-buffer path reuse storage
    /// without changing any rounding.
    ///
    /// # Panics
    /// Panics on a dimension mismatch with `acc`.
    pub fn matmul_t_acc(&self, other: &Tensor, acc: &mut Tensor) {
        assert_eq!(self.cols, other.cols, "matmul_t col mismatch");
        sanitize::check_shape("matmul_t_acc", (self.rows, other.rows), acc.shape());
        assert_eq!(acc.shape(), (self.rows, other.rows), "matmul_t_acc shape mismatch");
        kernel::gemm_nt_auto(
            self.rows, self.cols, other.rows,
            &self.data, &other.data, &mut acc.data,
        );
        sanitize::check_finite("matmul_t_acc", &acc.data);
    }

    /// `self · otherᵀ` on the naive reference kernel (independent dot
    /// products), regardless of size.
    pub fn matmul_t_serial(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_t col mismatch");
        let mut out = Tensor::zeros(self.rows, other.rows);
        kernel::gemm_nt_naive(
            self.rows, self.cols, other.rows,
            &self.data, &other.data, &mut out.data,
        );
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise addition into `self`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += scale * other`.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// BLAS-style in-place `self += alpha * x` (alias of
    /// [`Tensor::add_scaled`] under its conventional name).
    #[inline]
    pub fn axpy(&mut self, alpha: f32, x: &Tensor) {
        self.add_scaled(x, alpha);
    }

    /// Adds a row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&mut self, bias: &Tensor) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (x, &b) in row.iter_mut().zip(&bias.data) {
                *x += b;
            }
        }
    }

    /// Element-wise product into a new tensor.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).collect(),
        }
    }

    /// Element-wise product into a caller-provided buffer (overwritten).
    /// Same multiplications in the same order as [`Tensor::hadamard`].
    ///
    /// # Panics
    /// Panics on any shape mismatch.
    pub fn hadamard_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        assert_eq!(self.shape(), out.shape(), "hadamard_into out shape mismatch");
        for i in 0..self.data.len() {
            out.data[i] = self.data[i] * other.data[i];
        }
    }

    /// Applies `f` element-wise into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` element-wise in place — the fused
    /// activation-on-output path (no fresh allocation after a GEMM).
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        self.data.iter_mut().for_each(|x| *x = f(*x));
    }

    /// Scales all elements in place.
    pub fn scale(&mut self, s: f32) {
        self.data.iter_mut().for_each(|x| *x *= s);
    }

    /// Column-wise sum, as a row vector (used for bias gradients).
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Column-wise sum into a caller-provided `1 × cols` row vector
    /// (overwritten, then accumulated row by row — the same addition
    /// order as [`Tensor::sum_rows`], so results are bitwise-equal).
    ///
    /// # Panics
    /// Panics if `out` is not `1 × self.cols`.
    pub fn sum_rows_into(&self, out: &mut Tensor) {
        assert_eq!(out.shape(), (1, self.cols), "sum_rows_into shape mismatch");
        out.data.iter_mut().for_each(|x| *x = 0.0);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Euclidean (Frobenius) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Clamps every element into `[lo, hi]` (WGAN weight clipping).
    pub fn clamp_inplace(&mut self, lo: f32, hi: f32) {
        self.data.iter_mut().for_each(|x| *x = x.clamp(lo, hi));
    }

    /// Vertically stacks tensors (all must share the column count).
    pub fn vstack(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "vstack needs at least one tensor");
        let cols = parts[0].cols;
        assert!(parts.iter().all(|p| p.cols == cols), "vstack col mismatch");
        let rows = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Tensor { rows, cols, data }
    }

    /// Horizontally concatenates tensors (all must share the row count).
    pub fn hstack(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "hstack needs at least one tensor");
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows), "hstack row mismatch");
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Tensor::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                out.data[r * cols + offset..r * cols + offset + p.cols]
                    .copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Extracts a column range `[start, end)` into a new tensor.
    pub fn slice_cols(&self, start: usize, end: usize) -> Tensor {
        assert!(start <= end && end <= self.cols, "column slice out of range");
        let mut out = Tensor::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r)
                .copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Extracts the given rows into a new tensor (minibatch gather).
    pub fn select_rows(&self, idx: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn matmul_reference() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transpose_variants_agree() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(4, 3, &mut rng);
        let b = Tensor::randn(4, 5, &mut rng);
        let c = Tensor::randn(6, 3, &mut rng);
        // aᵀ·b two ways
        let direct = a.transpose().matmul(&b);
        let fused = a.t_matmul(&b);
        for (x, y) in direct.data().iter().zip(fused.data()) {
            assert!((x - y).abs() < 1e-5);
        }
        // a·cᵀ two ways
        let direct2 = a.matmul(&c.transpose());
        let fused2 = a.matmul_t(&c);
        for (x, y) in direct2.data().iter().zip(fused2.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn broadcast_and_sum_rows_are_inverse_shapes() {
        let mut x = Tensor::from_vec(2, 3, vec![1.; 6]);
        let bias = Tensor::row_vector(&[1., 2., 3.]);
        x.add_row_broadcast(&bias);
        assert_eq!(x.row(0), &[2., 3., 4.]);
        assert_eq!(x.row(1), &[2., 3., 4.]);
        let s = x.sum_rows();
        assert_eq!(s.data(), &[4., 6., 8.]);
    }

    #[test]
    fn hstack_vstack_slice_round_trip() {
        let a = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec(2, 1, vec![5., 6.]);
        let h = Tensor::hstack(&[&a, &b]);
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h.row(0), &[1., 2., 5.]);
        assert_eq!(h.slice_cols(0, 2), a);
        assert_eq!(h.slice_cols(2, 3), b);
        let v = Tensor::vstack(&[&a, &a]);
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v.row(3), &[3., 4.]);
    }

    #[test]
    fn select_rows_gathers() {
        let a = Tensor::from_vec(3, 2, vec![0., 1., 10., 11., 20., 21.]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[20., 21.]);
        assert_eq!(s.row(1), &[0., 1.]);
    }

    #[test]
    fn norm_and_clamp() {
        let mut a = Tensor::from_vec(1, 2, vec![3., 4.]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        a.clamp_inplace(-3.5, 3.5);
        assert_eq!(a.data(), &[3., 3.5]);
    }

    #[test]
    fn xavier_init_has_reasonable_scale() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = Tensor::xavier(100, 100, &mut rng);
        let std = (w.data().iter().map(|x| x * x).sum::<f32>() / w.len() as f32).sqrt();
        let expected = (2.0f32 / 200.0).sqrt();
        assert!((std - expected).abs() < expected * 0.2, "std {std} vs {expected}");
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_dimension_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
