//! Dense layers, activations, and sequential composition.

use crate::sanitize;
use crate::tensor::Tensor;
use crate::Parameterized;
use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// A differentiable layer with explicit forward/backward passes.
///
/// `forward` caches whatever the backward pass needs; `backward` consumes
/// the gradient w.r.t. the layer output, accumulates parameter gradients,
/// and returns the gradient w.r.t. the input — so layers chain into
/// networks and networks chain into GANs (generator gradients flow through
/// the frozen discriminator's `backward`).
pub trait Layer: Parameterized {
    /// Computes the layer output for a batch (rows = examples).
    fn forward(&mut self, input: &Tensor) -> Tensor;
    /// Back-propagates `grad_output`, accumulating parameter gradients and
    /// returning the gradient w.r.t. the layer input.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;
}

/// Fully-connected layer: `y = x·W + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    w: Tensor,
    b: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Builds a layer mapping `in_dim → out_dim` with Xavier-initialized
    /// weights and zero bias.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Linear {
            w: Tensor::xavier(in_dim, out_dim, rng),
            b: Tensor::zeros(1, out_dim),
            grad_w: Tensor::zeros(in_dim, out_dim),
            grad_b: Tensor::zeros(1, out_dim),
            cached_input: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// The weight matrix (`in × out`), for frozen inference views.
    pub fn weights(&self) -> &Tensor {
        &self.w
    }

    /// The bias row vector (`1 × out`), for frozen inference views.
    pub fn bias(&self) -> &Tensor {
        &self.b
    }
}

impl Parameterized for Linear {
    fn parameters(&self) -> Vec<&Tensor> {
        vec![&self.w, &self.b]
    }
    fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w, &mut self.b]
    }
    fn gradients_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.grad_w, &mut self.grad_b]
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = input.matmul_add_bias(&self.w, &self.b);
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward"); // lint: allow(panic-in-lib) documented API contract: forward precedes backward (lint: allow(panic-in-lib) documented API contract: forward precedes backward)
        // dW = xᵀ·dy (accumulated in place), db = Σ_rows dy, dx = dy·Wᵀ
        input.t_matmul_acc(grad_output, &mut self.grad_w);
        self.grad_b.add_assign(&grad_output.sum_rows());
        grad_output.matmul_t(&self.w)
    }
}

/// Element-wise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// max(αx, x) with α = 0.2 (the GAN-literature default).
    LeakyRelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Identity (no-op; useful as a placeholder).
    Identity,
}

impl Activation {
    const LEAK: f32 = 0.2;

    /// Applies the activation to one element (shared by the training
    /// layer and the frozen inference path, which must agree bitwise).
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    Self::LEAK * x
                }
            }
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the *output* value `y = f(x)`
    /// (cheaper than re-deriving from the input for these functions).
    fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if y > 0.0 {
                    1.0
                } else {
                    Self::LEAK
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Identity => 1.0,
        }
    }
}

/// Activation as a (parameter-free) layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActivationLayer {
    act: Activation,
    cached_output: Option<Tensor>,
}

impl ActivationLayer {
    /// Wraps an activation function.
    pub fn new(act: Activation) -> Self {
        ActivationLayer {
            act,
            cached_output: None,
        }
    }

    /// The wrapped activation function, for frozen inference views.
    pub fn activation(&self) -> Activation {
        self.act
    }
}

impl Parameterized for ActivationLayer {
    fn parameters(&self) -> Vec<&Tensor> {
        vec![]
    }
    fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        vec![]
    }
    fn gradients_mut(&mut self) -> Vec<&mut Tensor> {
        vec![]
    }
}

impl Layer for ActivationLayer {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = input.map(|x| self.act.apply(x));
        sanitize::check_finite("activation", out.data());
        self.cached_output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let y = self
            .cached_output
            .as_ref()
            .expect("backward called before forward"); // lint: allow(panic-in-lib) documented API contract: forward precedes backward (lint: allow(panic-in-lib) documented API contract: forward precedes backward)
        let deriv = y.map(|v| self.act.derivative_from_output(v));
        grad_output.hadamard(&deriv)
    }
}

/// Items composable into a [`Sequential`] network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Node {
    /// Dense layer.
    Linear(Linear),
    /// Activation layer.
    Activation(ActivationLayer),
    /// 2-D convolution layer.
    Conv(crate::conv::Conv2d),
}

impl Node {
    fn as_layer_mut(&mut self) -> &mut dyn Layer {
        match self {
            Node::Linear(l) => l,
            Node::Activation(a) => a,
            Node::Conv(c) => c,
        }
    }

    /// Short kind name for sanitizer scope attribution.
    fn kind_name(&self) -> &'static str {
        match self {
            Node::Linear(_) => "Linear",
            Node::Activation(_) => "Activation",
            Node::Conv(_) => "Conv",
        }
    }
}

/// A stack of layers applied in order — the MLP building block used for
/// GAN generators, discriminators, and the auxiliary discriminator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sequential {
    nodes: Vec<Node>,
}

impl Sequential {
    /// An empty network (identity).
    pub fn new() -> Self {
        Sequential { nodes: Vec::new() }
    }

    /// Builds the standard MLP shape `in → hidden… → out` with the given
    /// hidden activation and a final linear (no output activation).
    pub fn mlp<R: Rng + ?Sized>(
        in_dim: usize,
        hidden: &[usize],
        out_dim: usize,
        act: Activation,
        rng: &mut R,
    ) -> Self {
        let mut net = Sequential::new();
        let mut prev = in_dim;
        for &h in hidden {
            net.push_linear(Linear::new(prev, h, rng));
            net.push_activation(act);
            prev = h;
        }
        net.push_linear(Linear::new(prev, out_dim, rng));
        net
    }

    /// Appends a dense layer.
    pub fn push_linear(&mut self, l: Linear) {
        self.nodes.push(Node::Linear(l));
    }

    /// Appends an activation.
    pub fn push_activation(&mut self, a: Activation) {
        self.nodes.push(Node::Activation(ActivationLayer::new(a)));
    }

    /// Appends a 2-D convolution.
    pub fn push_conv(&mut self, c: crate::conv::Conv2d) {
        self.nodes.push(Node::Conv(c));
    }

    /// Number of nodes (layers + activations).
    pub fn depth(&self) -> usize {
        self.nodes.len()
    }

    /// The node list, for frozen inference views over this network.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Sequential::new()
    }
}

impl Parameterized for Sequential {
    fn parameters(&self) -> Vec<&Tensor> {
        self.nodes
            .iter()
            .flat_map(|n| match n {
                Node::Linear(l) => l.parameters(),
                Node::Activation(a) => a.parameters(),
                Node::Conv(c) => c.parameters(),
            })
            .collect()
    }
    fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        self.nodes
            .iter_mut()
            .flat_map(|n| match n {
                Node::Linear(l) => l.parameters_mut(),
                Node::Activation(a) => a.parameters_mut(),
                Node::Conv(c) => c.parameters_mut(),
            })
            .collect()
    }
    fn gradients_mut(&mut self) -> Vec<&mut Tensor> {
        self.nodes
            .iter_mut()
            .flat_map(|n| match n {
                Node::Linear(l) => l.gradients_mut(),
                Node::Activation(a) => a.gradients_mut(),
                Node::Conv(c) => c.gradients_mut(),
            })
            .collect()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let kind = node.kind_name();
            let _scope = sanitize::scope_with(|| format!("seq[{i}]:{kind}"));
            x = node.as_layer_mut().forward(&x);
        }
        x
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for (i, node) in self.nodes.iter_mut().enumerate().rev() {
            let kind = node.kind_name();
            let _scope = sanitize::scope_with(|| format!("seq[{i}]:{kind}/backward"));
            g = node.as_layer_mut().backward(&g);
        }
        g
    }
}

/// Applies a row-wise softmax over the column range `[start, end)` of a
/// tensor in place. Used to turn generator logits for categorical fields
/// into simplex-valued "soft one-hots" (the DoppelGANger approach to
/// discrete outputs).
pub fn softmax_cols_inplace(x: &mut Tensor, start: usize, end: usize) {
    for r in 0..x.rows() {
        let row = x.row_mut(r);
        let slice = &mut row[start..end];
        let max = slice.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in slice.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in slice.iter_mut() {
            *v /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    /// Finite-difference check of an entire network's input gradient.
    fn check_input_gradient(net: &mut Sequential, x: &Tensor) {
        let y = net.forward(x);
        // Loss = sum of outputs → grad_output = ones.
        let ones = Tensor::from_vec(y.rows(), y.cols(), vec![1.0; y.len()]);
        net.zero_grad();
        let gx = net.backward(&ones);
        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp: f32 = net.forward(&xp).data().iter().sum();
            let fm: f32 = net.forward(&xm).data().iter().sum();
            let num = (fp - fm) / (2.0 * eps);
            let ana = gx.data()[i];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "input grad {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    /// Finite-difference check of parameter gradients.
    fn check_param_gradients(net: &mut Sequential, x: &Tensor) {
        let y = net.forward(x);
        let ones = Tensor::from_vec(y.rows(), y.cols(), vec![1.0; y.len()]);
        net.zero_grad();
        let _ = net.backward(&ones);
        let grads: Vec<f32> = net.flat_gradients();
        let eps = 1e-3f32;
        let n = net.num_parameters();
        // Spot-check a spread of parameter indices (full check is O(P·F)).
        let step = (n / 25).max(1);
        for i in (0..n).step_by(step) {
            let orig = {
                let mut flat_i = 0;
                let mut val = 0.0;
                for p in net.parameters_mut() {
                    if i < flat_i + p.len() {
                        val = p.data()[i - flat_i];
                        break;
                    }
                    flat_i += p.len();
                }
                val
            };
            let perturb = |net: &mut Sequential, delta: f32| {
                let mut flat_i = 0;
                for p in net.parameters_mut() {
                    if i < flat_i + p.len() {
                        p.data_mut()[i - flat_i] = orig + delta;
                        return;
                    }
                    flat_i += p.len();
                }
            };
            perturb(net, eps);
            let fp: f32 = net.forward(x).data().iter().sum();
            perturb(net, -eps);
            let fm: f32 = net.forward(x).data().iter().sum();
            perturb(net, 0.0);
            let num = (fp - fm) / (2.0 * eps);
            let ana = grads[i];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "param grad {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn linear_forward_matches_manual() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new(2, 2, &mut rng);
        l.parameters_mut()[0].data_mut().copy_from_slice(&[1., 2., 3., 4.]);
        l.parameters_mut()[1].data_mut().copy_from_slice(&[0.5, -0.5]);
        let x = Tensor::from_vec(1, 2, vec![1., 1.]);
        let y = l.forward(&x);
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn gradients_match_finite_differences_tanh() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Sequential::mlp(3, &[5, 4], 2, Activation::Tanh, &mut rng);
        let x = Tensor::randn(2, 3, &mut rng);
        check_input_gradient(&mut net, &x);
        check_param_gradients(&mut net, &x);
    }

    #[test]
    fn gradients_match_finite_differences_leaky_relu() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Sequential::mlp(4, &[6], 3, Activation::LeakyRelu, &mut rng);
        let x = Tensor::randn(3, 4, &mut rng);
        check_input_gradient(&mut net, &x);
        check_param_gradients(&mut net, &x);
    }

    #[test]
    fn gradients_match_finite_differences_sigmoid() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = Sequential::mlp(2, &[4], 1, Activation::Sigmoid, &mut rng);
        // Sigmoid only on hidden; add one on the output too.
        net.push_activation(Activation::Sigmoid);
        let x = Tensor::randn(2, 2, &mut rng);
        check_input_gradient(&mut net, &x);
    }

    #[test]
    fn softmax_cols_is_simplex() {
        let mut x = Tensor::from_vec(2, 4, vec![1., 2., 3., 9., -1., 0., 1., 9.]);
        softmax_cols_inplace(&mut x, 0, 3);
        for r in 0..2 {
            let s: f32 = x.row(r)[..3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!((x.row(r)[3] - 9.0).abs() < 1e-6, "untouched outside range");
        }
    }

    #[test]
    fn copy_parameters_transfers_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let src = Sequential::mlp(3, &[4], 2, Activation::Relu, &mut rng);
        let mut dst = Sequential::mlp(3, &[4], 2, Activation::Relu, &mut rng);
        assert_ne!(src.parameters()[0].data(), dst.parameters()[0].data());
        dst.copy_parameters_from(&src);
        for (a, b) in src.parameters().iter().zip(dst.parameters()) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn num_parameters_counts_weights_and_biases() {
        let mut rng = StdRng::seed_from_u64(6);
        let net = Sequential::mlp(3, &[5], 2, Activation::Relu, &mut rng);
        assert_eq!(net.num_parameters(), 3 * 5 + 5 + 5 * 2 + 2);
    }
}
