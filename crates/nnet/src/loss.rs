//! Loss functions. Each returns `(loss_value, grad_wrt_input)` so training
//! loops stay one-liners.

use crate::tensor::Tensor;

/// Mean-squared error against a target of the same shape.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len() as f32;
    let mut grad = Tensor::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0;
    for i in 0..pred.len() {
        let d = pred.data()[i] - target.data()[i];
        loss += d * d;
        grad.data_mut()[i] = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Binary cross-entropy on *logits* (numerically stable), with per-element
/// labels in `{0, 1}`. The classic (non-saturating) GAN loss for
/// discriminators and generators.
pub fn bce_with_logits(logits: &Tensor, labels: &Tensor) -> (f32, Tensor) {
    assert_eq!(logits.shape(), labels.shape(), "bce shape mismatch");
    let n = logits.len() as f32;
    let mut grad = Tensor::zeros(logits.rows(), logits.cols());
    let mut loss = 0.0;
    for i in 0..logits.len() {
        let x = logits.data()[i];
        let y = labels.data()[i];
        // log(1 + e^{-|x|}) + max(x,0) - x*y
        loss += x.max(0.0) - x * y + (1.0 + (-x.abs()).exp()).ln();
        let sigma = 1.0 / (1.0 + (-x).exp());
        grad.data_mut()[i] = (sigma - y) / n;
    }
    (loss / n, grad)
}

/// Softmax cross-entropy on logits with integer class targets, one row per
/// example. Returns mean loss and the gradient w.r.t. the logits.
pub fn softmax_cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.rows(), targets.len(), "target count mismatch");
    let mut grad = Tensor::zeros(logits.rows(), logits.cols());
    let mut loss = 0.0;
    let n = logits.rows() as f32;
    for (r, &t) in targets.iter().enumerate() {
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        assert!(t < logits.cols(), "target class out of range");
        loss += -(exps[t] / sum).ln();
        let grow = grad.row_mut(r);
        for (c, g) in grow.iter_mut().enumerate() {
            *g = (exps[c] / sum - if c == t { 1.0 } else { 0.0 }) / n;
        }
    }
    (loss / n, grad)
}

/// Wasserstein critic objective pieces.
///
/// The critic maximizes `E[f(real)] − E[f(fake)]`; as a minimization this
/// is `−mean(real_scores) + mean(fake_scores)`. Returns the loss and the
/// gradients w.r.t. the two score tensors.
pub fn wasserstein_critic(real_scores: &Tensor, fake_scores: &Tensor) -> (f32, Tensor, Tensor) {
    let nr = real_scores.len().max(1) as f32;
    let nf = fake_scores.len().max(1) as f32;
    let loss = -real_scores.mean() + fake_scores.mean();
    let grad_real = real_scores.map(|_| -1.0 / nr);
    let grad_fake = fake_scores.map(|_| 1.0 / nf);
    (loss, grad_real, grad_fake)
}

/// Wasserstein generator objective: minimize `−E[f(fake)]`. Returns the
/// loss and the gradient w.r.t. the fake scores.
pub fn wasserstein_generator(fake_scores: &Tensor) -> (f32, Tensor) {
    let nf = fake_scores.len().max(1) as f32;
    (-fake_scores.mean(), fake_scores.map(|_| -1.0 / nf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_at_target() {
        let p = Tensor::row_vector(&[1., 2., 3.]);
        let (l, g) = mse(&p, &p);
        assert_eq!(l, 0.0);
        assert!(g.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let p = Tensor::row_vector(&[0.5, -1.0]);
        let t = Tensor::row_vector(&[1.0, 1.0]);
        let (_, g) = mse(&p, &t);
        let eps = 1e-3;
        for i in 0..2 {
            let mut pp = p.clone();
            pp.data_mut()[i] += eps;
            let mut pm = p.clone();
            pm.data_mut()[i] -= eps;
            let num = (mse(&pp, &t).0 - mse(&pm, &t).0) / (2.0 * eps);
            assert!((num - g.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn bce_is_stable_for_extreme_logits() {
        let logits = Tensor::row_vector(&[100.0, -100.0]);
        let labels = Tensor::row_vector(&[1.0, 0.0]);
        let (l, g) = bce_with_logits(&logits, &labels);
        assert!(l.is_finite() && l < 1e-3, "correct confident predictions ≈ 0 loss");
        assert!(g.data().iter().all(|x| x.is_finite()));

        let wrong = Tensor::row_vector(&[0.0, 1.0]);
        let (l2, _) = bce_with_logits(&logits, &wrong);
        assert!(l2.is_finite() && l2 > 10.0, "confident wrong predictions are punished");
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let logits = Tensor::row_vector(&[0.3, -0.7, 2.0]);
        let labels = Tensor::row_vector(&[1.0, 0.0, 1.0]);
        let (_, g) = bce_with_logits(&logits, &labels);
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num = (bce_with_logits(&lp, &labels).0 - bce_with_logits(&lm, &labels).0)
                / (2.0 * eps);
            assert!((num - g.data()[i]).abs() < 1e-3, "grad {i}");
        }
    }

    #[test]
    fn softmax_ce_gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(2, 3, vec![0.2, -0.4, 1.0, 0.0, 0.5, -0.5]);
        let targets = vec![2usize, 1usize];
        let (_, g) = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num = (softmax_cross_entropy(&lp, &targets).0
                - softmax_cross_entropy(&lm, &targets).0)
                / (2.0 * eps);
            assert!((num - g.data()[i]).abs() < 1e-3, "grad {i}");
        }
    }

    #[test]
    fn softmax_ce_prefers_correct_class() {
        let good = Tensor::from_vec(1, 3, vec![5.0, 0.0, 0.0]);
        let bad = Tensor::from_vec(1, 3, vec![0.0, 5.0, 0.0]);
        assert!(softmax_cross_entropy(&good, &[0]).0 < softmax_cross_entropy(&bad, &[0]).0);
    }

    #[test]
    fn wasserstein_signs() {
        let real = Tensor::row_vector(&[2.0, 2.0]);
        let fake = Tensor::row_vector(&[1.0]);
        let (l, gr, gf) = wasserstein_critic(&real, &fake);
        assert!((l - (-2.0 + 1.0)).abs() < 1e-6);
        assert!(gr.data().iter().all(|&x| x < 0.0), "critic pushes real scores up");
        assert!(gf.data().iter().all(|&x| x > 0.0), "critic pushes fake scores down");
        let (lg, gg) = wasserstein_generator(&fake);
        assert!((lg + 1.0).abs() < 1e-6);
        assert!(gg.data().iter().all(|&x| x < 0.0), "generator pushes fake scores up");
    }
}
