//! GEMM kernels behind [`crate::Tensor`]'s matrix products.
//!
//! Three implementations per product shape (`A·B`, `Aᵀ·B`, `A·Bᵀ`):
//!
//! * **naive** — the original i-k-j reference loop with the zero-skip
//!   fast path. Kept callable (`*_naive`) as the correctness baseline for
//!   equivalence tests and benchmarks.
//! * **tiled** — k-direction micro-blocking ([`KB`]-term fused updates,
//!   one read-modify-write of the output row per block instead of per
//!   scalar) plus [`TILE_J`]-wide output tiles so the hot output slice and
//!   the `KB` streamed input rows stay in L1.
//! * **parallel** — the tiled kernel over contiguous row bands of the
//!   output via `rayon::par_chunks_mut`.
//!
//! Determinism contract: every kernel computes each output row with a
//! fixed accumulation order anchored to *absolute* indices (k-blocks
//! always start at 0, column tiles at fixed offsets), so the tiled and
//! parallel paths are bitwise identical regardless of band boundaries or
//! thread count. Naive and tiled differ only by floating-point
//! reassociation (the tests bound it at 1e-4 relative).
//!
//! Dispatch ([`gemm_auto`] and friends) picks a path from the product's
//! FLOP count, so layer code never chooses: small recurrent steps stay on
//! the low-overhead naive loop, batched products tile, and large batched
//! products additionally parallelize.

use rayon::slice::ParallelSliceMut;

/// k-direction micro-block: output rows are updated once per `KB`
/// accumulated terms.
pub const KB: usize = 4;

/// Output-column tile width: one output tile plus `KB` input-row tiles is
/// ~2.5 KiB, comfortably inside L1 alongside the streamed operands.
pub const TILE_J: usize = 128;

/// Products below this many FLOPs (`m·k·n`) stay on the naive loop.
pub const TILE_MIN_FLOPS: usize = 1 << 12;

/// Products at or above this many FLOPs engage the parallel path (a
/// batch-32 × hidden-64 training step is ~131k and qualifies).
pub const PAR_MIN_FLOPS: usize = 1 << 17;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Path {
    Naive,
    Tiled,
    Parallel,
}

fn choose(flops: usize) -> Path {
    if flops >= PAR_MIN_FLOPS && rayon::current_num_threads() > 1 {
        Path::Parallel
    } else if flops >= TILE_MIN_FLOPS {
        Path::Tiled
    } else {
        Path::Naive
    }
}

/// Counts the dispatch and starts a per-call µs timer for the chosen
/// path's histogram (`gemm.us.naive|tiled|parallel` — the shape class is
/// the dispatch class, since `choose` partitions by FLOP count). All
/// telemetry no-ops away when the `telemetry` feature is off.
fn instrument(path: Path) -> telemetry::metrics::ScopedTimer {
    telemetry::metrics::counter("gemm.calls").inc();
    telemetry::metrics::scoped_timer_us(match path {
        Path::Naive => "gemm.us.naive",
        Path::Tiled => "gemm.us.tiled",
        Path::Parallel => "gemm.us.parallel",
    })
}

// ------------------------------------------------------------------ A·B

/// `c += a·b` for row-major `a: m×k`, `b: k×n`, `c: m×n`; original
/// reference loop (i-k-j with zero-skip).
pub fn gemm_naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let out_row = &mut c[i * n..(i + 1) * n];
        for kk in 0..k {
            let av = a[i * k + kk];
            if av == 0.0 { // lint: allow(float-eq) zero-skip fast path: only exact 0.0 may skip the FMA, bitwise-identical to the dense path
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Tiled row-band kernel: `c_band += a_band·b` for `rows` output rows.
///
/// Accumulation order per output element depends only on absolute k/j
/// indices, never on the band split.
fn gemm_rows_tiled(rows: usize, k: usize, n: usize, a_band: &[f32], b: &[f32], c_band: &mut [f32]) {
    let kb_end = k - k % KB;
    for i in 0..rows {
        let a_row = &a_band[i * k..(i + 1) * k];
        let c_row = &mut c_band[i * n..(i + 1) * n];
        let mut jt = 0;
        while jt < n {
            let je = (jt + TILE_J).min(n);
            let mut kk = 0;
            while kk < kb_end {
                let a0 = a_row[kk];
                let a1 = a_row[kk + 1];
                let a2 = a_row[kk + 2];
                let a3 = a_row[kk + 3];
                // Zero-skip generalizes to the block: all-zero input rows
                // (padding, one-hot tails) skip the whole fused update.
                if a0 != 0.0 || a1 != 0.0 || a2 != 0.0 || a3 != 0.0 { // lint: allow(float-eq) zero-skip fast path: only exact 0.0 may skip the FMA, bitwise-identical to the dense path
                    let b0 = &b[kk * n + jt..kk * n + je];
                    let b1 = &b[(kk + 1) * n + jt..(kk + 1) * n + je];
                    let b2 = &b[(kk + 2) * n + jt..(kk + 2) * n + je];
                    let b3 = &b[(kk + 3) * n + jt..(kk + 3) * n + je];
                    let ct = &mut c_row[jt..je];
                    for (j, o) in ct.iter_mut().enumerate() {
                        *o += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                    }
                }
                kk += KB;
            }
            for kk in kb_end..k {
                let av = a_row[kk];
                if av == 0.0 { // lint: allow(float-eq) zero-skip fast path: only exact 0.0 may skip the FMA, bitwise-identical to the dense path
                    continue;
                }
                let b_row = &b[kk * n + jt..kk * n + je];
                let ct = &mut c_row[jt..je];
                for (o, &bv) in ct.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
            jt = je;
        }
    }
}

/// `c += a·b`, tiled serial path.
pub fn gemm_tiled(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(c.len(), m * n);
    gemm_rows_tiled(m, k, n, a, b, c);
}

/// `c += a·b`, tiled kernel over parallel row bands. Bitwise identical
/// to [`gemm_tiled`] for any thread count.
pub fn gemm_parallel(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    if m == 0 || n == 0 {
        return;
    }
    let band_rows = m.div_ceil(rayon::current_num_threads()).max(1);
    c.par_chunks_mut(band_rows * n)
        .enumerate()
        .for_each(|(band, c_band)| {
            let row0 = band * band_rows;
            let rows = c_band.len() / n;
            gemm_rows_tiled(rows, k, n, &a[row0 * k..(row0 + rows) * k], b, c_band);
        });
}

/// `c += a·b` with size-based path dispatch.
pub fn gemm_auto(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let path = choose(m * k * n);
    let _timer = instrument(path);
    match path {
        Path::Naive => gemm_naive(m, k, n, a, b, c),
        Path::Tiled => gemm_tiled(m, k, n, a, b, c),
        Path::Parallel => gemm_parallel(m, k, n, a, b, c),
    }
}

// ----------------------------------------------------------------- Aᵀ·B

/// `c += aᵀ·b` for `a: m×k`, `b: m×n`, `c: k×n`; original reference loop
/// (row-outer accumulation of outer products, zero-skip).
pub fn gemm_tn_naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), m * n);
    debug_assert_eq!(c.len(), k * n);
    for r in 0..m {
        let a_row = &a[r * k..(r + 1) * k];
        let b_row = &b[r * n..(r + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 { // lint: allow(float-eq) zero-skip fast path: only exact 0.0 may skip the FMA, bitwise-identical to the dense path
                continue;
            }
            let out_row = &mut c[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Tiled band kernel for `c += aᵀ·b`: each output row `i` (a column of
/// `a`) is owned by exactly one band, accumulating over example rows `r`
/// in absolute `KB` blocks.
#[allow(clippy::too_many_arguments)] // flat scalar ABI: the band bounds and dims must stay separate for the hot loop
fn gemm_tn_rows_tiled(
    i0: usize,
    rows: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c_band: &mut [f32],
) {
    let rb_end = m - m % KB;
    for i in 0..rows {
        let col = i0 + i;
        let c_row = &mut c_band[i * n..(i + 1) * n];
        let mut r = 0;
        while r < rb_end {
            let a0 = a[r * k + col];
            let a1 = a[(r + 1) * k + col];
            let a2 = a[(r + 2) * k + col];
            let a3 = a[(r + 3) * k + col];
            if a0 != 0.0 || a1 != 0.0 || a2 != 0.0 || a3 != 0.0 { // lint: allow(float-eq) zero-skip fast path: only exact 0.0 may skip the FMA, bitwise-identical to the dense path
                let b0 = &b[r * n..(r + 1) * n];
                let b1 = &b[(r + 1) * n..(r + 2) * n];
                let b2 = &b[(r + 2) * n..(r + 3) * n];
                let b3 = &b[(r + 3) * n..(r + 4) * n];
                for (j, o) in c_row.iter_mut().enumerate() {
                    *o += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                }
            }
            r += KB;
        }
        for r in rb_end..m {
            let av = a[r * k + col];
            if av == 0.0 { // lint: allow(float-eq) zero-skip fast path: only exact 0.0 may skip the FMA, bitwise-identical to the dense path
                continue;
            }
            let b_row = &b[r * n..(r + 1) * n];
            for (o, &bv) in c_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// `c += aᵀ·b`, tiled serial path.
pub fn gemm_tn_tiled(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(c.len(), k * n);
    gemm_tn_rows_tiled(0, k, m, k, n, a, b, c);
}

/// `c += aᵀ·b`, tiled kernel over parallel bands of output rows.
pub fn gemm_tn_parallel(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    if k == 0 || n == 0 {
        return;
    }
    let band_rows = k.div_ceil(rayon::current_num_threads()).max(1);
    c.par_chunks_mut(band_rows * n)
        .enumerate()
        .for_each(|(band, c_band)| {
            let i0 = band * band_rows;
            let rows = c_band.len() / n;
            gemm_tn_rows_tiled(i0, rows, m, k, n, a, b, c_band);
        });
}

/// `c += aᵀ·b` with size-based path dispatch.
pub fn gemm_tn_auto(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let path = choose(m * k * n);
    let _timer = instrument(path);
    match path {
        Path::Naive => gemm_tn_naive(m, k, n, a, b, c),
        Path::Tiled => gemm_tn_tiled(m, k, n, a, b, c),
        Path::Parallel => gemm_tn_parallel(m, k, n, a, b, c),
    }
}

// ----------------------------------------------------------------- A·Bᵀ

/// `c += a·bᵀ` for `a: m×k`, `b: p×k`, `c: m×p`; original reference loop
/// (independent dot products).
pub fn gemm_nt_naive(m: usize, k: usize, p: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), p * k);
    debug_assert_eq!(c.len(), m * p);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..p {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            c[i * p + j] += acc;
        }
    }
}

/// Tiled band kernel for `c += a·bᵀ`: a 1×[`KB`] micro-kernel shares each
/// `a` load across `KB` simultaneous dot products.
fn gemm_nt_rows_tiled(rows: usize, k: usize, p: usize, a_band: &[f32], b: &[f32], c_band: &mut [f32]) {
    let pb_end = p - p % KB;
    for i in 0..rows {
        let a_row = &a_band[i * k..(i + 1) * k];
        let c_row = &mut c_band[i * p..(i + 1) * p];
        let mut j = 0;
        while j < pb_end {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (kk, &av) in a_row.iter().enumerate() {
                s0 += av * b0[kk];
                s1 += av * b1[kk];
                s2 += av * b2[kk];
                s3 += av * b3[kk];
            }
            c_row[j] += s0;
            c_row[j + 1] += s1;
            c_row[j + 2] += s2;
            c_row[j + 3] += s3;
            j += KB;
        }
        for j in pb_end..p {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            c_row[j] += acc;
        }
    }
}

/// `c += a·bᵀ`, tiled serial path.
pub fn gemm_nt_tiled(m: usize, k: usize, p: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(c.len(), m * p);
    gemm_nt_rows_tiled(m, k, p, a, b, c);
}

/// `c += a·bᵀ`, tiled kernel over parallel row bands.
pub fn gemm_nt_parallel(m: usize, k: usize, p: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    if m == 0 || p == 0 {
        return;
    }
    let band_rows = m.div_ceil(rayon::current_num_threads()).max(1);
    c.par_chunks_mut(band_rows * p)
        .enumerate()
        .for_each(|(band, c_band)| {
            let row0 = band * band_rows;
            let rows = c_band.len() / p;
            gemm_nt_rows_tiled(rows, k, p, &a[row0 * k..(row0 + rows) * k], b, c_band);
        });
}

/// `c += a·bᵀ` with size-based path dispatch.
pub fn gemm_nt_auto(m: usize, k: usize, p: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let path = choose(m * k * p);
    let _timer = instrument(path);
    match path {
        Path::Naive => gemm_nt_naive(m, k, p, a, b, c),
        Path::Tiled => gemm_nt_tiled(m, k, p, a, b, c),
        Path::Parallel => gemm_nt_parallel(m, k, p, a, b, c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn randv(len: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
    }

    fn assert_close(x: &[f32], y: &[f32]) {
        assert_eq!(x.len(), y.len());
        for (a, b) in x.iter().zip(y) {
            assert!((a - b).abs() <= 1e-4 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn all_paths_agree_on_awkward_shapes() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 7, 1),
            (5, 1, 9),
            (3, 4, 5),
            (17, 23, 9),
            (33, 65, 31),
        ] {
            let a = randv(m * k, &mut rng);
            let b = randv(k * n, &mut rng);
            let mut naive = vec![0.0; m * n];
            let mut tiled = vec![0.0; m * n];
            let mut par = vec![0.0; m * n];
            gemm_naive(m, k, n, &a, &b, &mut naive);
            gemm_tiled(m, k, n, &a, &b, &mut tiled);
            gemm_parallel(m, k, n, &a, &b, &mut par);
            assert_close(&naive, &tiled);
            assert_eq!(tiled, par, "parallel must be bitwise identical to tiled");

            let bt = randv(m * n, &mut rng);
            let mut tn_naive = vec![0.0; k * n];
            let mut tn_tiled = vec![0.0; k * n];
            let mut tn_par = vec![0.0; k * n];
            gemm_tn_naive(m, k, n, &a, &bt, &mut tn_naive);
            gemm_tn_tiled(m, k, n, &a, &bt, &mut tn_tiled);
            gemm_tn_parallel(m, k, n, &a, &bt, &mut tn_par);
            assert_close(&tn_naive, &tn_tiled);
            assert_eq!(tn_tiled, tn_par);

            let bp = randv(n * k, &mut rng);
            let mut nt_naive = vec![0.0; m * n];
            let mut nt_tiled = vec![0.0; m * n];
            let mut nt_par = vec![0.0; m * n];
            gemm_nt_naive(m, k, n, &a, &bp, &mut nt_naive);
            gemm_nt_tiled(m, k, n, &a, &bp, &mut nt_tiled);
            gemm_nt_parallel(m, k, n, &a, &bp, &mut nt_par);
            assert_close(&nt_naive, &nt_tiled);
            assert_eq!(nt_tiled, nt_par);
        }
    }

    #[test]
    fn accumulates_instead_of_overwriting() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let mut c = [100.0f32];
        gemm_auto(1, 2, 1, &a, &b, &mut c);
        assert_eq!(c[0], 100.0 + 11.0);
    }

    #[test]
    fn zero_rows_are_skipped_not_wrong() {
        let mut rng = StdRng::seed_from_u64(12);
        let (m, k, n) = (9, 12, 7);
        let mut a = randv(m * k, &mut rng);
        for x in a[2 * k..4 * k].iter_mut() {
            *x = 0.0; // two all-zero input rows
        }
        let b = randv(k * n, &mut rng);
        let mut naive = vec![0.0; m * n];
        let mut tiled = vec![0.0; m * n];
        gemm_naive(m, k, n, &a, &b, &mut naive);
        gemm_tiled(m, k, n, &a, &b, &mut tiled);
        assert_close(&naive, &tiled);
        assert!(naive[2 * n..4 * n].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn degenerate_dims_do_nothing() {
        gemm_parallel(0, 4, 4, &[], &randv(16, &mut StdRng::seed_from_u64(1)), &mut []);
        gemm_tn_parallel(4, 0, 4, &[], &randv(16, &mut StdRng::seed_from_u64(2)), &mut []);
        let a = randv(8, &mut StdRng::seed_from_u64(3));
        let mut c = vec![0.0; 4];
        gemm_auto(2, 0, 2, &[], &[], &mut c);
        assert!(c.iter().all(|&x| x == 0.0));
        let _ = a;
    }
}
