//! # nnet
//!
//! A minimal, dependency-light neural-network training framework — the
//! deep-learning substrate of this NetShare reproduction. The paper's
//! implementation uses TensorFlow 1.15 + tensorflow-privacy; neither is
//! available as mature Rust, so this crate provides the pieces the
//! pipeline actually needs, from scratch:
//!
//! * [`Tensor`]: a row-major `f32` matrix with the linear algebra used by
//!   dense and recurrent layers;
//! * [`layers`]: `Linear`, activations, `Sequential` MLPs with hand-written
//!   forward/backward passes, plus a stride-1 [`Conv2d`] (PAC-GAN's CNN
//!   discriminator);
//! * [`gru`]: a GRU cell with full back-propagation through time, the
//!   recurrent record generator of the time-series GAN;
//! * [`loss`]: MSE, binary cross-entropy on logits, softmax cross-entropy,
//!   and the Wasserstein critic objective;
//! * [`optim`]: SGD and Adam with global-norm gradient clipping and the
//!   weight clipping used for Wasserstein training;
//! * [`dpsgd`]: differentially-private SGD — per-example gradient clipping
//!   plus calibrated Gaussian noise (Abadi et al., 2016);
//! * [`serialize`]: parameter checkpointing, the mechanism behind
//!   NetShare's fine-tuning warm starts (Insights 3 and 4);
//! * [`infer`]: the forward-only sampling path — frozen weight views
//!   (no grad tape), a recycling activation [`infer::Arena`], and an
//!   optional bf16-packed weight store behind the `infer-f32` feature;
//!   proven bitwise-equivalent to the training forward pass at default
//!   precision;
//! * [`sanitize`]: feature-gated (`sanitize`) runtime guards — NaN/Inf and
//!   shape checks after kernel ops, gradient-norm explosion detection,
//!   with layer attribution via a thread-local scope stack.
//!
//! Everything is deterministic given a seeded RNG, so experiments are
//! reproducible.

pub mod conv;
pub mod dpsgd;
pub mod gru;
pub mod infer;
pub mod kernel;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod sanitize;
pub mod serialize;
pub mod tensor;

pub use conv::Conv2d;
pub use dpsgd::{DpSgdConfig, DpSgdTrainer};
pub use gru::Gru;
pub use infer::{Arena, FrozenGru, FrozenNode, FrozenSequential};
pub use layers::{Activation, Layer, Linear, Sequential};
pub use optim::{Adam, GradClip, Optimizer, Sgd};
pub use tensor::Tensor;

/// Objects that own trainable parameters.
///
/// Exposing parameters and their gradient buffers as parallel flat lists
/// lets optimizers, DP-SGD, checkpointing, and fine-tuning treat every
/// network uniformly.
pub trait Parameterized {
    /// Immutable views of all parameter tensors, in a stable order.
    fn parameters(&self) -> Vec<&Tensor>;
    /// Mutable views of all parameter tensors, in the same order.
    fn parameters_mut(&mut self) -> Vec<&mut Tensor>;
    /// Mutable views of the gradient buffers, matching `parameters` 1:1.
    fn gradients_mut(&mut self) -> Vec<&mut Tensor>;

    /// Zeroes every gradient buffer.
    fn zero_grad(&mut self) {
        for g in self.gradients_mut() {
            g.fill(0.0);
        }
    }

    /// Total number of scalar parameters.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.len()).sum()
    }

    /// Flattens all gradients into one vector (used by DP-SGD).
    fn flat_gradients(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        for g in self.gradients_mut() {
            out.extend_from_slice(g.data());
        }
        out
    }

    /// Overwrites all gradient buffers from a flat vector (inverse of
    /// [`Parameterized::flat_gradients`]).
    ///
    /// # Panics
    /// Panics if `flat` has the wrong length.
    fn set_flat_gradients(&mut self, flat: &[f32]) {
        let mut offset = 0;
        for g in self.gradients_mut() {
            let n = g.len();
            g.data_mut().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        }
        assert_eq!(offset, flat.len(), "flat gradient length mismatch");
    }

    /// Copies parameter values from another instance (same architecture).
    /// This is the fine-tuning warm start: seed-chunk → later chunks,
    /// public model → private model.
    fn copy_parameters_from(&mut self, other: &dyn Parameterized) {
        let src = other.parameters();
        let mut dst = self.parameters_mut();
        assert_eq!(src.len(), dst.len(), "parameter count mismatch");
        for (d, s) in dst.iter_mut().zip(src) {
            assert_eq!(d.shape(), s.shape(), "parameter shape mismatch");
            d.data_mut().copy_from_slice(s.data());
        }
    }
}
