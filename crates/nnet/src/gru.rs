//! A GRU recurrent cell with back-propagation through time.
//!
//! DoppelGANger's record generator is an RNN that emits a few timeseries
//! steps per RNN pass; this GRU is that recurrent core. The cell follows
//! Cho et al. (2014):
//!
//! ```text
//! z_t = σ(x_t·Wz + h_{t-1}·Uz + bz)          (update gate)
//! r_t = σ(x_t·Wr + h_{t-1}·Ur + br)          (reset gate)
//! ĥ_t = tanh(x_t·Wh + (r_t ⊙ h_{t-1})·Uh + bh)
//! h_t = (1 - z_t) ⊙ h_{t-1} + z_t ⊙ ĥ_t
//! ```

use crate::infer::{Arena, FrozenGru};
use crate::tensor::Tensor;
use crate::Parameterized;
use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// Per-step cache for BPTT.
#[derive(Debug, Clone)]
struct StepCache {
    x: Tensor,
    h_prev: Tensor,
    z: Tensor,
    r: Tensor,
    hhat: Tensor,
}

/// A GRU cell (single layer) operating on batched sequences.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gru {
    wz: Tensor,
    uz: Tensor,
    bz: Tensor,
    wr: Tensor,
    ur: Tensor,
    br: Tensor,
    wh: Tensor,
    uh: Tensor,
    bh: Tensor,
    gwz: Tensor,
    guz: Tensor,
    gbz: Tensor,
    gwr: Tensor,
    gur: Tensor,
    gbr: Tensor,
    gwh: Tensor,
    guh: Tensor,
    gbh: Tensor,
    #[serde(skip)]
    cache: Vec<StepCache>,
    /// Recycled scratch storage for step temporaries and BPTT caches:
    /// after the first sequence warms the pool, the step loop performs
    /// no per-step heap allocation beyond the hidden states and input
    /// gradients that escape to the caller (pinned by the alloc-count
    /// regression test). Skipped by serde and reset by clone — scratch
    /// is an optimization, never state.
    #[serde(skip)]
    scratch: Arena,
    input_dim: usize,
    hidden_dim: usize,
}

impl Gru {
    /// Builds a GRU mapping `input_dim` inputs to `hidden_dim` hidden units.
    pub fn new<R: Rng + ?Sized>(input_dim: usize, hidden_dim: usize, rng: &mut R) -> Self {
        let w = |r: &mut R| Tensor::xavier(input_dim, hidden_dim, r);
        let u = |r: &mut R| Tensor::xavier(hidden_dim, hidden_dim, r);
        Gru {
            wz: w(rng),
            uz: u(rng),
            bz: Tensor::zeros(1, hidden_dim),
            wr: w(rng),
            ur: u(rng),
            br: Tensor::zeros(1, hidden_dim),
            wh: w(rng),
            uh: u(rng),
            bh: Tensor::zeros(1, hidden_dim),
            gwz: Tensor::zeros(input_dim, hidden_dim),
            guz: Tensor::zeros(hidden_dim, hidden_dim),
            gbz: Tensor::zeros(1, hidden_dim),
            gwr: Tensor::zeros(input_dim, hidden_dim),
            gur: Tensor::zeros(hidden_dim, hidden_dim),
            gbr: Tensor::zeros(1, hidden_dim),
            gwh: Tensor::zeros(input_dim, hidden_dim),
            guh: Tensor::zeros(hidden_dim, hidden_dim),
            gbh: Tensor::zeros(1, hidden_dim),
            cache: Vec::new(),
            scratch: Arena::new(),
            input_dim,
            hidden_dim,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// A forward-only view over this cell's weights for the inference
    /// path: no grad buffers, no BPTT cache, `&self` stepping. The view
    /// replays [`Gru::step`]'s arithmetic bitwise.
    pub fn freeze(&self) -> FrozenGru<'_> {
        FrozenGru {
            wz: &self.wz,
            uz: &self.uz,
            bz: &self.bz,
            wr: &self.wr,
            ur: &self.ur,
            br: &self.br,
            wh: &self.wh,
            uh: &self.uh,
            bh: &self.bh,
        }
    }

    /// Recycles every cached step tensor back into the scratch pool.
    fn drain_cache(&mut self) {
        for c in std::mem::take(&mut self.cache) {
            self.scratch.recycle(c.x);
            self.scratch.recycle(c.h_prev);
            self.scratch.recycle(c.z);
            self.scratch.recycle(c.r);
            self.scratch.recycle(c.hhat);
        }
    }

    /// One forward step: returns `h_t` and caches for BPTT.
    ///
    /// Each gate is one fused chain — `x·W + b` seeds the output, `h·U`
    /// accumulates into it, and the nonlinearity is applied in place —
    /// so a gate costs two GEMMs and zero temporaries instead of two
    /// GEMMs plus three extra passes over the pre-activation. All gate
    /// buffers and cache copies draw on the scratch arena, so a warm
    /// cell allocates nothing here. The returned hidden state borrows
    /// pool storage and is reclaimed by the next cache drain.
    pub fn step(&mut self, x: &Tensor, h_prev: &Tensor) -> Tensor {
        let sigmoid = |v: f32| 1.0 / (1.0 + (-v).exp());
        let mut z = self.scratch.take_zeroed(x.rows(), self.hidden_dim);
        x.matmul_add_bias_into(&self.wz, &self.bz, &mut z);
        h_prev.matmul_acc(&self.uz, &mut z);
        z.map_inplace(sigmoid);

        let mut r = self.scratch.take_zeroed(x.rows(), self.hidden_dim);
        x.matmul_add_bias_into(&self.wr, &self.br, &mut r);
        h_prev.matmul_acc(&self.ur, &mut r);
        r.map_inplace(sigmoid);

        let mut rh = self.scratch.take_zeroed(h_prev.rows(), h_prev.cols());
        r.hadamard_into(h_prev, &mut rh);
        let mut hhat = self.scratch.take_zeroed(x.rows(), self.hidden_dim);
        x.matmul_add_bias_into(&self.wh, &self.bh, &mut hhat);
        rh.matmul_acc(&self.uh, &mut hhat);
        hhat.map_inplace(f32::tanh);
        self.scratch.recycle(rh);

        // h = (1-z)⊙h_prev + z⊙ĥ
        let mut h = self.scratch.take_zeroed(h_prev.rows(), h_prev.cols());
        for i in 0..h.len() {
            let zv = z.data()[i];
            h.data_mut()[i] = (1.0 - zv) * h_prev.data()[i] + zv * hhat.data()[i];
        }

        let cached_x = self.scratch.take_copy(x);
        let cached_h_prev = self.scratch.take_copy(h_prev);
        self.cache.push(StepCache {
            x: cached_x,
            h_prev: cached_h_prev,
            z,
            r,
            hhat,
        });
        h
    }

    /// Runs a full sequence from `h0`, returning all hidden states
    /// `[h_1, …, h_T]`. Clears any previous cache (recycling its
    /// buffers into the scratch pool).
    pub fn forward_sequence(&mut self, xs: &[Tensor], h0: &Tensor) -> Vec<Tensor> {
        self.drain_cache();
        let _scope = crate::sanitize::scope_with(|| "Gru::forward".to_string());
        telemetry::metrics::counter("gru.steps").add(xs.len() as u64);
        let _timer = telemetry::metrics::scoped_timer_us("gru.forward.us");
        let mut hs = Vec::with_capacity(xs.len());
        let mut h = self.scratch.take_copy(h0);
        // lint: step-loop
        for x in xs {
            let next = self.step(x, &h);
            self.scratch.recycle(std::mem::replace(&mut h, next));
            hs.push(h.clone());
        }
        self.scratch.recycle(h);
        hs
    }

    /// BPTT over the cached sequence. `grad_hs[t]` is the gradient of the
    /// loss w.r.t. hidden state `h_{t+1}` coming from the *outputs* (the
    /// recurrent contribution is handled internally). Returns per-step
    /// input gradients and the gradient w.r.t. `h0`. Consumes the cache.
    pub fn backward_sequence(&mut self, grad_hs: &[Tensor]) -> (Vec<Tensor>, Tensor) {
        assert_eq!(grad_hs.len(), self.cache.len(), "grad/cache length mismatch");
        let _scope = crate::sanitize::scope_with(|| "Gru::backward".to_string());
        let _timer = telemetry::metrics::scoped_timer_us("gru.backward.us");
        let steps = self.cache.len();
        let batch = grad_hs.last().map(|g| g.rows()).unwrap_or(0);
        let mut dxs = vec![Tensor::zeros(0, 0); steps];
        let mut dh_next = self.scratch.take_zeroed(batch, self.hidden_dim);
        // Scratch temporaries — every buffer below comes from (and is
        // returned to) the arena, so a warm backward pass only allocates
        // the per-step `dx` tensors that escape to the caller. All
        // accumulation orders match the original allocating code: GEMM
        // temporaries start from zeros exactly as their allocating
        // counterparts did, and bias sums still go through a zeroed row
        // temp before `add_assign` (accumulating into the grad directly
        // would change the rounding order).
        // lint: step-loop
        for t in (0..steps).rev() {
            let Some(cache) = self.cache.pop() else { break };
            let StepCache { x, h_prev, z, r, hhat } = cache;
            let mut dh = self.scratch.take_copy(&grad_hs[t]);
            dh.add_assign(&dh_next);

            // dz = dh ⊙ (ĥ - h_prev); dĥ = dh ⊙ z; dh_prev = dh ⊙ (1-z)
            let mut dz = self.scratch.take_zeroed(dh.rows(), dh.cols());
            let mut dhhat = self.scratch.take_zeroed(dh.rows(), dh.cols());
            let mut dh_prev = self.scratch.take_zeroed(dh.rows(), dh.cols());
            for i in 0..dh.len() {
                let d = dh.data()[i];
                dz.data_mut()[i] = d * (hhat.data()[i] - h_prev.data()[i]);
                dhhat.data_mut()[i] = d * z.data()[i];
                dh_prev.data_mut()[i] = d * (1.0 - z.data()[i]);
            }

            // Candidate path.
            let mut dhhat_raw = self.scratch.take_zeroed(dhhat.rows(), dhhat.cols());
            for i in 0..dhhat_raw.len() {
                let y = hhat.data()[i];
                dhhat_raw.data_mut()[i] = dhhat.data()[i] * (1.0 - y * y);
            }
            let mut rh = self.scratch.take_zeroed(h_prev.rows(), h_prev.cols());
            r.hadamard_into(&h_prev, &mut rh);
            x.t_matmul_acc(&dhhat_raw, &mut self.gwh);
            rh.t_matmul_acc(&dhhat_raw, &mut self.guh);
            let mut bias_sum = self.scratch.take_zeroed(1, self.hidden_dim);
            dhhat_raw.sum_rows_into(&mut bias_sum);
            self.gbh.add_assign(&bias_sum);
            let mut drh = self.scratch.take_zeroed(dhhat_raw.rows(), self.uh.rows());
            dhhat_raw.matmul_t_acc(&self.uh, &mut drh);
            let mut dr = self.scratch.take_zeroed(drh.rows(), drh.cols());
            drh.hadamard_into(&h_prev, &mut dr);
            let mut hid_tmp = self.scratch.take_zeroed(drh.rows(), drh.cols());
            drh.hadamard_into(&r, &mut hid_tmp);
            dh_prev.add_assign(&hid_tmp);

            // Gate pre-activations.
            let mut dz_raw = self.scratch.take_zeroed(dz.rows(), dz.cols());
            for i in 0..dz_raw.len() {
                let y = z.data()[i];
                dz_raw.data_mut()[i] = dz.data()[i] * y * (1.0 - y);
            }
            let mut dr_raw = self.scratch.take_zeroed(dr.rows(), dr.cols());
            for i in 0..dr_raw.len() {
                let y = r.data()[i];
                dr_raw.data_mut()[i] = dr.data()[i] * y * (1.0 - y);
            }
            x.t_matmul_acc(&dz_raw, &mut self.gwz);
            h_prev.t_matmul_acc(&dz_raw, &mut self.guz);
            dz_raw.sum_rows_into(&mut bias_sum);
            self.gbz.add_assign(&bias_sum);
            x.t_matmul_acc(&dr_raw, &mut self.gwr);
            h_prev.t_matmul_acc(&dr_raw, &mut self.gur);
            dr_raw.sum_rows_into(&mut bias_sum);
            self.gbr.add_assign(&bias_sum);

            // Input gradient (escapes to the caller — a real allocation).
            let mut dx = dz_raw.matmul_t(&self.wz);
            let mut in_tmp = self.scratch.take_zeroed(dr_raw.rows(), self.wr.rows());
            dr_raw.matmul_t_acc(&self.wr, &mut in_tmp);
            dx.add_assign(&in_tmp);
            self.scratch.recycle(in_tmp);
            let mut in_tmp = self.scratch.take_zeroed(dhhat_raw.rows(), self.wh.rows());
            dhhat_raw.matmul_t_acc(&self.wh, &mut in_tmp);
            dx.add_assign(&in_tmp);
            self.scratch.recycle(in_tmp);
            dxs[t] = dx;

            // Recurrent gradient to the previous step.
            hid_tmp.fill(0.0);
            dz_raw.matmul_t_acc(&self.uz, &mut hid_tmp);
            dh_prev.add_assign(&hid_tmp);
            hid_tmp.fill(0.0);
            dr_raw.matmul_t_acc(&self.ur, &mut hid_tmp);
            dh_prev.add_assign(&hid_tmp);
            self.scratch.recycle(std::mem::replace(&mut dh_next, dh_prev));

            self.scratch.recycle(dh);
            self.scratch.recycle(dz);
            self.scratch.recycle(dhhat);
            self.scratch.recycle(dhhat_raw);
            self.scratch.recycle(rh);
            self.scratch.recycle(bias_sum);
            self.scratch.recycle(drh);
            self.scratch.recycle(dr);
            self.scratch.recycle(hid_tmp);
            self.scratch.recycle(dz_raw);
            self.scratch.recycle(dr_raw);
            self.scratch.recycle(x);
            self.scratch.recycle(h_prev);
            self.scratch.recycle(z);
            self.scratch.recycle(r);
            self.scratch.recycle(hhat);
        }
        let dh0 = dh_next.clone();
        self.scratch.recycle(dh_next);
        (dxs, dh0)
    }
}

impl Parameterized for Gru {
    fn parameters(&self) -> Vec<&Tensor> {
        vec![
            &self.wz, &self.uz, &self.bz, &self.wr, &self.ur, &self.br, &self.wh, &self.uh,
            &self.bh,
        ]
    }
    fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        vec![
            &mut self.wz, &mut self.uz, &mut self.bz, &mut self.wr, &mut self.ur, &mut self.br,
            &mut self.wh, &mut self.uh, &mut self.bh,
        ]
    }
    fn gradients_mut(&mut self) -> Vec<&mut Tensor> {
        vec![
            &mut self.gwz, &mut self.guz, &mut self.gbz, &mut self.gwr, &mut self.gur,
            &mut self.gbr, &mut self.gwh, &mut self.guh, &mut self.gbh,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn seq_loss(gru: &mut Gru, xs: &[Tensor], h0: &Tensor) -> f32 {
        gru.forward_sequence(xs, h0)
            .iter()
            .map(|h| h.data().iter().sum::<f32>())
            .sum()
    }

    #[test]
    fn hidden_states_are_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut gru = Gru::new(3, 4, &mut rng);
        let xs: Vec<Tensor> = (0..5).map(|_| Tensor::randn(2, 3, &mut rng)).collect();
        let hs = gru.forward_sequence(&xs, &Tensor::zeros(2, 4));
        assert_eq!(hs.len(), 5);
        for h in &hs {
            assert!(h.data().iter().all(|v| v.abs() <= 1.0 + 1e-5), "GRU state in (-1,1)");
        }
    }

    #[test]
    fn input_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut gru = Gru::new(2, 3, &mut rng);
        let xs: Vec<Tensor> = (0..4).map(|_| Tensor::randn(1, 2, &mut rng)).collect();
        let h0 = Tensor::zeros(1, 3);
        let hs = gru.forward_sequence(&xs, &h0);
        let grads: Vec<Tensor> = hs
            .iter()
            .map(|h| Tensor::from_vec(h.rows(), h.cols(), vec![1.0; h.len()]))
            .collect();
        gru.zero_grad();
        let (dxs, _) = gru.backward_sequence(&grads);

        let eps = 1e-3f32;
        for t in 0..xs.len() {
            for i in 0..xs[t].len() {
                let mut xp: Vec<Tensor> = xs.clone();
                xp[t].data_mut()[i] += eps;
                let mut xm: Vec<Tensor> = xs.clone();
                xm[t].data_mut()[i] -= eps;
                let fp = seq_loss(&mut gru, &xp, &h0);
                let fm = seq_loss(&mut gru, &xm, &h0);
                let num = (fp - fm) / (2.0 * eps);
                let ana = dxs[t].data()[i];
                assert!(
                    (num - ana).abs() < 3e-2 * (1.0 + num.abs()),
                    "dx[{t}][{i}]: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn parameter_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut gru = Gru::new(2, 3, &mut rng);
        let xs: Vec<Tensor> = (0..3).map(|_| Tensor::randn(2, 2, &mut rng)).collect();
        let h0 = Tensor::zeros(2, 3);
        let hs = gru.forward_sequence(&xs, &h0);
        let grads: Vec<Tensor> = hs
            .iter()
            .map(|h| Tensor::from_vec(h.rows(), h.cols(), vec![1.0; h.len()]))
            .collect();
        gru.zero_grad();
        let _ = gru.backward_sequence(&grads);
        let flat = gru.flat_gradients();

        let eps = 1e-3f32;
        let n = gru.num_parameters();
        let step = (n / 20).max(1);
        for i in (0..n).step_by(step) {
            let set = |g: &mut Gru, delta: f32| {
                let mut off = 0;
                for p in g.parameters_mut() {
                    if i < off + p.len() {
                        p.data_mut()[i - off] += delta;
                        return;
                    }
                    off += p.len();
                }
            };
            set(&mut gru, eps);
            let fp = seq_loss(&mut gru, &xs, &h0);
            set(&mut gru, -2.0 * eps);
            let fm = seq_loss(&mut gru, &xs, &h0);
            set(&mut gru, eps);
            let num = (fp - fm) / (2.0 * eps);
            let ana = flat[i];
            assert!(
                (num - ana).abs() < 3e-2 * (1.0 + num.abs()),
                "param {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn h0_gradient_flows() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut gru = Gru::new(2, 3, &mut rng);
        let xs: Vec<Tensor> = (0..3).map(|_| Tensor::randn(1, 2, &mut rng)).collect();
        let h0 = Tensor::randn(1, 3, &mut rng);
        let hs = gru.forward_sequence(&xs, &h0);
        let grads: Vec<Tensor> = hs
            .iter()
            .map(|h| Tensor::from_vec(h.rows(), h.cols(), vec![1.0; h.len()]))
            .collect();
        gru.zero_grad();
        let (_, dh0) = gru.backward_sequence(&grads);
        let eps = 1e-3f32;
        for i in 0..h0.len() {
            let mut hp = h0.clone();
            hp.data_mut()[i] += eps;
            let mut hm = h0.clone();
            hm.data_mut()[i] -= eps;
            let fp = seq_loss(&mut gru, &xs, &hp);
            let fm = seq_loss(&mut gru, &xs, &hm);
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - dh0.data()[i]).abs() < 3e-2 * (1.0 + num.abs()),
                "dh0[{i}]: numeric {num} vs analytic {}",
                dh0.data()[i]
            );
        }
    }
}
