//! A GRU recurrent cell with back-propagation through time.
//!
//! DoppelGANger's record generator is an RNN that emits a few timeseries
//! steps per RNN pass; this GRU is that recurrent core. The cell follows
//! Cho et al. (2014):
//!
//! ```text
//! z_t = σ(x_t·Wz + h_{t-1}·Uz + bz)          (update gate)
//! r_t = σ(x_t·Wr + h_{t-1}·Ur + br)          (reset gate)
//! ĥ_t = tanh(x_t·Wh + (r_t ⊙ h_{t-1})·Uh + bh)
//! h_t = (1 - z_t) ⊙ h_{t-1} + z_t ⊙ ĥ_t
//! ```

use crate::tensor::Tensor;
use crate::Parameterized;
use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// Per-step cache for BPTT.
#[derive(Debug, Clone)]
struct StepCache {
    x: Tensor,
    h_prev: Tensor,
    z: Tensor,
    r: Tensor,
    hhat: Tensor,
}

/// A GRU cell (single layer) operating on batched sequences.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gru {
    wz: Tensor,
    uz: Tensor,
    bz: Tensor,
    wr: Tensor,
    ur: Tensor,
    br: Tensor,
    wh: Tensor,
    uh: Tensor,
    bh: Tensor,
    gwz: Tensor,
    guz: Tensor,
    gbz: Tensor,
    gwr: Tensor,
    gur: Tensor,
    gbr: Tensor,
    gwh: Tensor,
    guh: Tensor,
    gbh: Tensor,
    #[serde(skip)]
    cache: Vec<StepCache>,
    input_dim: usize,
    hidden_dim: usize,
}

impl Gru {
    /// Builds a GRU mapping `input_dim` inputs to `hidden_dim` hidden units.
    pub fn new<R: Rng + ?Sized>(input_dim: usize, hidden_dim: usize, rng: &mut R) -> Self {
        let w = |r: &mut R| Tensor::xavier(input_dim, hidden_dim, r);
        let u = |r: &mut R| Tensor::xavier(hidden_dim, hidden_dim, r);
        Gru {
            wz: w(rng),
            uz: u(rng),
            bz: Tensor::zeros(1, hidden_dim),
            wr: w(rng),
            ur: u(rng),
            br: Tensor::zeros(1, hidden_dim),
            wh: w(rng),
            uh: u(rng),
            bh: Tensor::zeros(1, hidden_dim),
            gwz: Tensor::zeros(input_dim, hidden_dim),
            guz: Tensor::zeros(hidden_dim, hidden_dim),
            gbz: Tensor::zeros(1, hidden_dim),
            gwr: Tensor::zeros(input_dim, hidden_dim),
            gur: Tensor::zeros(hidden_dim, hidden_dim),
            gbr: Tensor::zeros(1, hidden_dim),
            gwh: Tensor::zeros(input_dim, hidden_dim),
            guh: Tensor::zeros(hidden_dim, hidden_dim),
            gbh: Tensor::zeros(1, hidden_dim),
            cache: Vec::new(),
            input_dim,
            hidden_dim,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// One forward step: returns `h_t` and caches for BPTT.
    ///
    /// Each gate is one fused chain — `x·W + b` seeds the output, `h·U`
    /// accumulates into it, and the nonlinearity is applied in place —
    /// so a gate costs two GEMMs and zero temporaries instead of two
    /// GEMMs plus three extra passes over the pre-activation.
    pub fn step(&mut self, x: &Tensor, h_prev: &Tensor) -> Tensor {
        let sigmoid = |v: f32| 1.0 / (1.0 + (-v).exp());
        let mut z = x.matmul_add_bias(&self.wz, &self.bz);
        h_prev.matmul_acc(&self.uz, &mut z);
        z.map_inplace(sigmoid);

        let mut r = x.matmul_add_bias(&self.wr, &self.br);
        h_prev.matmul_acc(&self.ur, &mut r);
        r.map_inplace(sigmoid);

        let rh = r.hadamard(h_prev);
        let mut hhat = x.matmul_add_bias(&self.wh, &self.bh);
        rh.matmul_acc(&self.uh, &mut hhat);
        hhat.map_inplace(f32::tanh);

        // h = (1-z)⊙h_prev + z⊙ĥ
        let mut h = Tensor::zeros(h_prev.rows(), h_prev.cols());
        for i in 0..h.len() {
            let zv = z.data()[i];
            h.data_mut()[i] = (1.0 - zv) * h_prev.data()[i] + zv * hhat.data()[i];
        }

        self.cache.push(StepCache {
            x: x.clone(),
            h_prev: h_prev.clone(),
            z,
            r,
            hhat,
        });
        h
    }

    /// Runs a full sequence from `h0`, returning all hidden states
    /// `[h_1, …, h_T]`. Clears any previous cache.
    pub fn forward_sequence(&mut self, xs: &[Tensor], h0: &Tensor) -> Vec<Tensor> {
        self.cache.clear();
        let _scope = crate::sanitize::scope_with(|| "Gru::forward".to_string());
        telemetry::metrics::counter("gru.steps").add(xs.len() as u64);
        let _timer = telemetry::metrics::scoped_timer_us("gru.forward.us");
        let mut hs = Vec::with_capacity(xs.len());
        let mut h = h0.clone();
        for x in xs {
            h = self.step(x, &h);
            hs.push(h.clone());
        }
        hs
    }

    /// BPTT over the cached sequence. `grad_hs[t]` is the gradient of the
    /// loss w.r.t. hidden state `h_{t+1}` coming from the *outputs* (the
    /// recurrent contribution is handled internally). Returns per-step
    /// input gradients and the gradient w.r.t. `h0`. Consumes the cache.
    pub fn backward_sequence(&mut self, grad_hs: &[Tensor]) -> (Vec<Tensor>, Tensor) {
        assert_eq!(grad_hs.len(), self.cache.len(), "grad/cache length mismatch");
        let _scope = crate::sanitize::scope_with(|| "Gru::backward".to_string());
        let _timer = telemetry::metrics::scoped_timer_us("gru.backward.us");
        let steps = self.cache.len();
        let mut dxs = vec![Tensor::zeros(0, 0); steps];
        let mut dh_next = Tensor::zeros(
            grad_hs.last().map(|g| g.rows()).unwrap_or(0),
            self.hidden_dim,
        );
        for t in (0..steps).rev() {
            let cache = self.cache[t].clone();
            let mut dh = grad_hs[t].clone();
            dh.add_assign(&dh_next);

            let StepCache { x, h_prev, z, r, hhat } = &cache;

            // dz = dh ⊙ (ĥ - h_prev); dĥ = dh ⊙ z; dh_prev = dh ⊙ (1-z)
            let mut dz = Tensor::zeros(dh.rows(), dh.cols());
            let mut dhhat = Tensor::zeros(dh.rows(), dh.cols());
            let mut dh_prev = Tensor::zeros(dh.rows(), dh.cols());
            for i in 0..dh.len() {
                let d = dh.data()[i];
                dz.data_mut()[i] = d * (hhat.data()[i] - h_prev.data()[i]);
                dhhat.data_mut()[i] = d * z.data()[i];
                dh_prev.data_mut()[i] = d * (1.0 - z.data()[i]);
            }

            // Candidate path.
            let dhhat_raw = {
                let mut t = Tensor::zeros(dhhat.rows(), dhhat.cols());
                for i in 0..t.len() {
                    let y = hhat.data()[i];
                    t.data_mut()[i] = dhhat.data()[i] * (1.0 - y * y);
                }
                t
            };
            let rh = r.hadamard(h_prev);
            x.t_matmul_acc(&dhhat_raw, &mut self.gwh);
            rh.t_matmul_acc(&dhhat_raw, &mut self.guh);
            self.gbh.add_assign(&dhhat_raw.sum_rows());
            let drh = dhhat_raw.matmul_t(&self.uh);
            let dr = drh.hadamard(h_prev);
            dh_prev.add_assign(&drh.hadamard(r));

            // Gate pre-activations.
            let dz_raw = {
                let mut t = Tensor::zeros(dz.rows(), dz.cols());
                for i in 0..t.len() {
                    let y = z.data()[i];
                    t.data_mut()[i] = dz.data()[i] * y * (1.0 - y);
                }
                t
            };
            let dr_raw = {
                let mut t = Tensor::zeros(dr.rows(), dr.cols());
                for i in 0..t.len() {
                    let y = r.data()[i];
                    t.data_mut()[i] = dr.data()[i] * y * (1.0 - y);
                }
                t
            };
            x.t_matmul_acc(&dz_raw, &mut self.gwz);
            h_prev.t_matmul_acc(&dz_raw, &mut self.guz);
            self.gbz.add_assign(&dz_raw.sum_rows());
            x.t_matmul_acc(&dr_raw, &mut self.gwr);
            h_prev.t_matmul_acc(&dr_raw, &mut self.gur);
            self.gbr.add_assign(&dr_raw.sum_rows());

            // Input gradient.
            let mut dx = dz_raw.matmul_t(&self.wz);
            dx.add_assign(&dr_raw.matmul_t(&self.wr));
            dx.add_assign(&dhhat_raw.matmul_t(&self.wh));
            dxs[t] = dx;

            // Recurrent gradient to the previous step.
            dh_prev.add_assign(&dz_raw.matmul_t(&self.uz));
            dh_prev.add_assign(&dr_raw.matmul_t(&self.ur));
            dh_next = dh_prev;
        }
        self.cache.clear();
        (dxs, dh_next)
    }
}

impl Parameterized for Gru {
    fn parameters(&self) -> Vec<&Tensor> {
        vec![
            &self.wz, &self.uz, &self.bz, &self.wr, &self.ur, &self.br, &self.wh, &self.uh,
            &self.bh,
        ]
    }
    fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        vec![
            &mut self.wz, &mut self.uz, &mut self.bz, &mut self.wr, &mut self.ur, &mut self.br,
            &mut self.wh, &mut self.uh, &mut self.bh,
        ]
    }
    fn gradients_mut(&mut self) -> Vec<&mut Tensor> {
        vec![
            &mut self.gwz, &mut self.guz, &mut self.gbz, &mut self.gwr, &mut self.gur,
            &mut self.gbr, &mut self.gwh, &mut self.guh, &mut self.gbh,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn seq_loss(gru: &mut Gru, xs: &[Tensor], h0: &Tensor) -> f32 {
        gru.forward_sequence(xs, h0)
            .iter()
            .map(|h| h.data().iter().sum::<f32>())
            .sum()
    }

    #[test]
    fn hidden_states_are_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut gru = Gru::new(3, 4, &mut rng);
        let xs: Vec<Tensor> = (0..5).map(|_| Tensor::randn(2, 3, &mut rng)).collect();
        let hs = gru.forward_sequence(&xs, &Tensor::zeros(2, 4));
        assert_eq!(hs.len(), 5);
        for h in &hs {
            assert!(h.data().iter().all(|v| v.abs() <= 1.0 + 1e-5), "GRU state in (-1,1)");
        }
    }

    #[test]
    fn input_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut gru = Gru::new(2, 3, &mut rng);
        let xs: Vec<Tensor> = (0..4).map(|_| Tensor::randn(1, 2, &mut rng)).collect();
        let h0 = Tensor::zeros(1, 3);
        let hs = gru.forward_sequence(&xs, &h0);
        let grads: Vec<Tensor> = hs
            .iter()
            .map(|h| Tensor::from_vec(h.rows(), h.cols(), vec![1.0; h.len()]))
            .collect();
        gru.zero_grad();
        let (dxs, _) = gru.backward_sequence(&grads);

        let eps = 1e-3f32;
        for t in 0..xs.len() {
            for i in 0..xs[t].len() {
                let mut xp: Vec<Tensor> = xs.clone();
                xp[t].data_mut()[i] += eps;
                let mut xm: Vec<Tensor> = xs.clone();
                xm[t].data_mut()[i] -= eps;
                let fp = seq_loss(&mut gru, &xp, &h0);
                let fm = seq_loss(&mut gru, &xm, &h0);
                let num = (fp - fm) / (2.0 * eps);
                let ana = dxs[t].data()[i];
                assert!(
                    (num - ana).abs() < 3e-2 * (1.0 + num.abs()),
                    "dx[{t}][{i}]: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn parameter_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut gru = Gru::new(2, 3, &mut rng);
        let xs: Vec<Tensor> = (0..3).map(|_| Tensor::randn(2, 2, &mut rng)).collect();
        let h0 = Tensor::zeros(2, 3);
        let hs = gru.forward_sequence(&xs, &h0);
        let grads: Vec<Tensor> = hs
            .iter()
            .map(|h| Tensor::from_vec(h.rows(), h.cols(), vec![1.0; h.len()]))
            .collect();
        gru.zero_grad();
        let _ = gru.backward_sequence(&grads);
        let flat = gru.flat_gradients();

        let eps = 1e-3f32;
        let n = gru.num_parameters();
        let step = (n / 20).max(1);
        for i in (0..n).step_by(step) {
            let set = |g: &mut Gru, delta: f32| {
                let mut off = 0;
                for p in g.parameters_mut() {
                    if i < off + p.len() {
                        p.data_mut()[i - off] += delta;
                        return;
                    }
                    off += p.len();
                }
            };
            set(&mut gru, eps);
            let fp = seq_loss(&mut gru, &xs, &h0);
            set(&mut gru, -2.0 * eps);
            let fm = seq_loss(&mut gru, &xs, &h0);
            set(&mut gru, eps);
            let num = (fp - fm) / (2.0 * eps);
            let ana = flat[i];
            assert!(
                (num - ana).abs() < 3e-2 * (1.0 + num.abs()),
                "param {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn h0_gradient_flows() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut gru = Gru::new(2, 3, &mut rng);
        let xs: Vec<Tensor> = (0..3).map(|_| Tensor::randn(1, 2, &mut rng)).collect();
        let h0 = Tensor::randn(1, 3, &mut rng);
        let hs = gru.forward_sequence(&xs, &h0);
        let grads: Vec<Tensor> = hs
            .iter()
            .map(|h| Tensor::from_vec(h.rows(), h.cols(), vec![1.0; h.len()]))
            .collect();
        gru.zero_grad();
        let (_, dh0) = gru.backward_sequence(&grads);
        let eps = 1e-3f32;
        for i in 0..h0.len() {
            let mut hp = h0.clone();
            hp.data_mut()[i] += eps;
            let mut hm = h0.clone();
            hm.data_mut()[i] -= eps;
            let fp = seq_loss(&mut gru, &xs, &hp);
            let fm = seq_loss(&mut gru, &xs, &hm);
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - dh0.data()[i]).abs() < 3e-2 * (1.0 + num.abs()),
                "dh0[{i}]: numeric {num} vs analytic {}",
                dh0.data()[i]
            );
        }
    }
}
