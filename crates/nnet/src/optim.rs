//! Optimizers: SGD and Adam, plus gradient and weight clipping.

use crate::tensor::Tensor;
use crate::Parameterized;

/// A first-order optimizer stepping a [`Parameterized`] model from its
/// accumulated gradients.
pub trait Optimizer {
    /// Applies one update step and leaves gradients untouched (call
    /// [`Parameterized::zero_grad`] before the next accumulation).
    fn step(&mut self, model: &mut dyn Parameterized);
}

/// Plain stochastic gradient descent: `θ ← θ − lr·g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Builds SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn Parameterized) {
        let grads: Vec<Tensor> = model.gradients_mut().iter().map(|g| (**g).clone()).collect();
        for (p, g) in model.parameters_mut().iter_mut().zip(&grads) {
            p.add_scaled(g, -self.lr);
        }
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction — the optimizer used for
/// all GAN training here, matching DoppelGANger's configuration.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay (default 0.5, the GAN-training convention).
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with GAN-style defaults (β₁ = 0.5, β₂ = 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.5,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adam with explicit betas.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        Adam {
            beta1,
            beta2,
            ..Adam::new(lr)
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn Parameterized) {
        let grads: Vec<Tensor> = model.gradients_mut().iter().map(|g| (**g).clone()).collect();
        if self.m.is_empty() {
            self.m = grads.iter().map(|g| Tensor::zeros(g.rows(), g.cols())).collect();
            self.v = self.m.clone();
        }
        assert_eq!(self.m.len(), grads.len(), "optimizer bound to a different model");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, g), (m, v)) in model
            .parameters_mut()
            .iter_mut()
            .zip(&grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            for i in 0..g.len() {
                let gi = g.data()[i];
                m.data_mut()[i] = self.beta1 * m.data()[i] + (1.0 - self.beta1) * gi;
                v.data_mut()[i] = self.beta2 * v.data()[i] + (1.0 - self.beta2) * gi * gi;
                let mhat = m.data()[i] / bc1;
                let vhat = v.data()[i] / bc2;
                p.data_mut()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Global-norm gradient clipping: rescales all gradients so their joint
/// L2 norm is at most `max_norm`. Returns the pre-clip norm.
pub struct GradClip;

impl GradClip {
    /// Clips the model's gradients in place; returns the original norm.
    pub fn clip_global_norm(model: &mut dyn Parameterized, max_norm: f32) -> f32 {
        let norm: f32 = model
            .gradients_mut()
            .iter()
            .map(|g| g.data().iter().map(|&x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt();
        crate::sanitize::check_grad_norm("clip_global_norm", norm);
        telemetry::metrics::histogram("train.grad_norm", &telemetry::metrics::NORM_EDGES)
            // lint: allow(dp-taint-flow) batch-aggregate norm on the non-DP training path; DP runs clip per example in dpsgd::sanitize_batch
            .record(norm as f64);
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for g in model.gradients_mut() {
                g.scale(scale);
            }
        }
        norm
    }
}

/// Clamps every parameter into `[-c, c]` — the 1-Lipschitz enforcement of
/// the original WGAN (Arjovsky et al., 2017). This repo's substitution for
/// the gradient penalty (see DESIGN.md §1): both constrain the critic to
/// (approximately) unit Lipschitz constant.
pub fn clip_weights(model: &mut dyn Parameterized, c: f32) {
    for p in model.parameters_mut() {
        p.clamp_inplace(-c, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Layer, Sequential};
    use crate::loss::mse;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    /// Trains y = 2x − 1 with each optimizer; loss must fall sharply.
    fn train_regression(opt: &mut dyn Optimizer) -> f32 {
        let mut rng = StdRng::seed_from_u64(10);
        let mut net = Sequential::mlp(1, &[8], 1, Activation::Tanh, &mut rng);
        let xs: Vec<f32> = (0..64).map(|i| i as f32 / 32.0 - 1.0).collect();
        let ys: Vec<f32> = xs.iter().map(|&x| 2.0 * x - 1.0).collect();
        let x = Tensor::from_vec(64, 1, xs);
        let y = Tensor::from_vec(64, 1, ys);
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let pred = net.forward(&x);
            let (loss, grad) = mse(&pred, &y);
            net.zero_grad();
            let _ = net.backward(&grad);
            opt.step(&mut net);
            last = loss;
        }
        last
    }

    #[test]
    fn sgd_learns_linear_function() {
        let mut opt = Sgd::new(0.05);
        assert!(train_regression(&mut opt) < 0.05);
    }

    #[test]
    fn adam_learns_linear_function_faster_than_sgd() {
        let mut adam = Adam::new(0.01);
        let adam_loss = train_regression(&mut adam);
        assert!(adam_loss < 0.01, "adam loss {adam_loss}");
    }

    #[test]
    fn grad_clip_caps_global_norm() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::mlp(2, &[4], 1, Activation::Relu, &mut rng);
        // Manufacture large gradients.
        for g in net.gradients_mut() {
            g.fill(10.0);
        }
        let pre = GradClip::clip_global_norm(&mut net, 1.0);
        assert!(pre > 1.0);
        let post: f32 = net
            .gradients_mut()
            .iter()
            .map(|g| g.data().iter().map(|&x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt();
        assert!((post - 1.0).abs() < 1e-4, "post-clip norm {post}");
    }

    #[test]
    fn grad_clip_leaves_small_gradients_alone() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Sequential::mlp(2, &[3], 1, Activation::Relu, &mut rng);
        for g in net.gradients_mut() {
            g.fill(1e-4);
        }
        let before: Vec<f32> = net.flat_gradients();
        let _ = GradClip::clip_global_norm(&mut net, 1.0);
        assert_eq!(before, net.flat_gradients());
    }

    #[test]
    fn weight_clipping_bounds_parameters() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Sequential::mlp(4, &[8], 2, Activation::LeakyRelu, &mut rng);
        for p in net.parameters_mut() {
            p.scale(100.0);
        }
        clip_weights(&mut net, 0.01);
        for p in net.parameters() {
            assert!(p.data().iter().all(|v| v.abs() <= 0.01 + 1e-7));
        }
    }

    #[test]
    #[should_panic(expected = "different model")]
    fn adam_detects_model_swap() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut a = Sequential::mlp(2, &[3], 1, Activation::Relu, &mut rng);
        let mut b = Sequential::mlp(2, &[3, 3], 1, Activation::Relu, &mut rng);
        let mut opt = Adam::new(0.01);
        opt.step(&mut a);
        opt.step(&mut b);
    }
}
