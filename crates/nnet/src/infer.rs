//! Forward-only inference: frozen weight views and a recycling
//! activation arena.
//!
//! Training forwards pay for bookkeeping sampling never needs — every
//! [`crate::layers::Linear`] clones its input for the backward pass, the
//! GRU caches five tensors per timestep, and each intermediate activation
//! is a fresh heap allocation. This module is the sampling path without
//! any of that:
//!
//! * [`Arena`] — a pool of recycled `f32` buffers. Activations are taken
//!   from the pool and recycled back, so a warm sampler performs zero
//!   steady-state allocations per timestep.
//! * [`FrozenSequential`] / [`FrozenGru`] — immutable views over the
//!   training networks' weights (no grad buffers, no caches, `&self`
//!   forwards) that replay the training forward arithmetic **bitwise**:
//!   identical GEMM shapes (hence identical kernel dispatch), identical
//!   fused bias-seed + accumulate ordering, identical activation
//!   closures. The equivalence suite in `crates/doppelganger` pins this.
//! * `PackedTensor` (feature `infer-f32`) — bf16-packed weight storage
//!   at half the memory, dequantized through the arena per forward.
//!   Packed outputs match the reference within a documented ~1e-2
//!   relative tolerance; they are *not* bitwise-equal.
//!
//! Batched multi-stream sampling falls out of the design: a frozen
//! forward over a `K × in` input advances K independent flows per GRU
//! step, amortizing every weight-matrix traversal K ways.

use crate::layers::{Activation, Node, Sequential};
use crate::tensor::Tensor;

/// A recycling pool of `f32` buffers backing inference activations.
///
/// `take_*` hands out an owned [`Tensor`] whose storage comes from the
/// pool when a large-enough buffer is available (best fit by capacity)
/// and from the global allocator otherwise; [`Arena::recycle`] returns
/// the storage. After a warm-up pass over a given shape profile, every
/// take is a reuse — the property suite in `tests/infer_arena.rs` pins
/// this, and [`Arena::allocs`]/[`Arena::reuses`] expose the counters it
/// asserts on.
///
/// Tensors that escape to a caller (sampler outputs) must **not** be
/// recycled-by-contract arena tensors unless the caller recycles them;
/// internal users recycle every intermediate before returning.
#[derive(Default)]
pub struct Arena {
    pool: Vec<Vec<f32>>,
    allocs: u64,
    reuses: u64,
}

impl Clone for Arena {
    /// Clones to a *fresh, empty* arena: pooled scratch storage is an
    /// optimization, not state, so a cloned model re-warms on first use.
    fn clone(&self) -> Self {
        Arena::new()
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("pooled", &self.pool.len())
            .field("pooled_bytes", &self.pooled_bytes())
            .field("allocs", &self.allocs)
            .field("reuses", &self.reuses)
            .finish()
    }
}

impl Arena {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            pool: Vec::new(),
            allocs: 0,
            reuses: 0,
        }
    }

    /// Pops the smallest pooled buffer holding at least `n` elements, or
    /// allocates a fresh one. Zero-element requests never touch the pool.
    fn take_buf(&mut self, n: usize) -> Vec<f32> {
        if n == 0 {
            return Vec::new();
        }
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in self.pool.iter().enumerate() {
            let cap = b.capacity();
            if cap >= n && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        match best {
            Some((i, _)) => {
                self.reuses += 1;
                self.pool.swap_remove(i)
            }
            None => {
                self.allocs += 1;
                Vec::with_capacity(n)
            }
        }
    }

    /// A zero-filled `rows × cols` tensor backed by pooled storage.
    pub fn take_zeroed(&mut self, rows: usize, cols: usize) -> Tensor {
        let n = rows * cols;
        let mut buf = self.take_buf(n);
        buf.clear();
        buf.resize(n, 0.0);
        Tensor::from_vec(rows, cols, buf)
    }

    /// A `rows × cols` tensor backed by pooled storage with
    /// **unspecified contents** (stale values from earlier recycles, or
    /// zeros for fresh storage). Strictly for buffers every element of
    /// which is written before it is read — overwrite-style kernels
    /// (`matmul_add_bias_into`, `hadamard_into`, `fill_randn`) and full
    /// elementwise fills qualify; accumulate-style kernels
    /// (`matmul_acc`, `matmul_t_acc`) do NOT — those need
    /// [`Arena::take_zeroed`]. Skipping the memset is worth a few
    /// percent per generate call at production batch sizes.
    pub fn take_scratch(&mut self, rows: usize, cols: usize) -> Tensor {
        let n = rows * cols;
        let mut buf = self.take_buf(n);
        if buf.len() > n {
            buf.truncate(n);
        } else {
            // Zero-fills only the growth past the stale prefix.
            buf.resize(n, 0.0);
        }
        Tensor::from_vec(rows, cols, buf)
    }

    /// A pooled-storage copy of `src` (same shape, same bytes).
    pub fn take_copy(&mut self, src: &Tensor) -> Tensor {
        let mut buf = self.take_buf(src.len());
        buf.clear();
        buf.extend_from_slice(src.data());
        Tensor::from_vec(src.rows(), src.cols(), buf)
    }

    /// Returns a tensor's storage to the pool for reuse.
    pub fn recycle(&mut self, t: Tensor) {
        let buf = t.into_vec();
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Number of fresh heap allocations performed so far.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Number of takes satisfied from the pool.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Number of buffers currently sitting in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Total capacity (bytes) currently held by the pool.
    pub fn pooled_bytes(&self) -> usize {
        self.pool.iter().map(|b| b.capacity() * 4).sum()
    }

    /// Publishes the arena counters to telemetry (`infer.arena.*`).
    /// Counter lookups cost a registry access, so hot loops keep local
    /// counts and callers flush once per batch instead of once per take.
    pub fn publish_metrics(&self) {
        telemetry::metrics::counter("infer.arena.allocs").add(self.allocs);
        telemetry::metrics::counter("infer.arena.reuses").add(self.reuses);
        telemetry::metrics::gauge("infer.arena.pooled_bytes").set(self.pooled_bytes() as f64);
    }
}

/// One node of a [`FrozenSequential`]: a borrowed dense layer or a
/// stateless activation.
pub enum FrozenNode<'a> {
    /// Dense layer view: `y = x·w + b`.
    Linear {
        /// Weight matrix, `in × out`.
        w: &'a Tensor,
        /// Bias row vector, `1 × out`.
        b: &'a Tensor,
    },
    /// Element-wise activation.
    Activation(Activation),
}

/// A forward-only view over a [`Sequential`] MLP: borrowed weights, no
/// caches, activations applied in place on arena buffers.
pub struct FrozenSequential<'a> {
    nodes: Vec<FrozenNode<'a>>,
}

impl<'a> FrozenSequential<'a> {
    /// Builds a frozen view over `net`. Errors on convolution nodes,
    /// which the inference path does not support (the DoppelGANger
    /// generator networks are Linear/Activation stacks by construction).
    pub fn of(net: &'a Sequential) -> Result<Self, String> {
        FrozenSequential::from_nodes_of(net.nodes())
    }

    /// Builds a frozen view from an explicit node slice (used by the
    /// packed-weight path, which dequantizes into its own tensors).
    pub fn from_nodes(nodes: Vec<FrozenNode<'a>>) -> Self {
        FrozenSequential { nodes }
    }

    fn from_nodes_of(nodes: &'a [Node]) -> Result<Self, String> {
        let mut out = Vec::with_capacity(nodes.len());
        for n in nodes {
            match n {
                Node::Linear(l) => out.push(FrozenNode::Linear {
                    w: l.weights(),
                    b: l.bias(),
                }),
                Node::Activation(a) => out.push(FrozenNode::Activation(a.activation())),
                Node::Conv(_) => {
                    return Err(
                        "FrozenSequential supports Linear/Activation nodes only".to_string()
                    )
                }
            }
        }
        Ok(FrozenSequential { nodes: out })
    }

    /// Forward pass. Bitwise-identical to the training
    /// [`crate::Layer::forward`] on [`Sequential`]: each dense node runs
    /// the same fused bias-seed + GEMM, each activation the same
    /// element-wise map (in place here, into a fresh tensor there — same
    /// values either way).
    ///
    /// The returned tensor borrows pool storage — recycle it into
    /// `arena` when done.
    pub fn forward(&self, input: &Tensor, arena: &mut Arena) -> Tensor {
        let mut cur = arena.take_copy(input);
        for node in &self.nodes {
            match node {
                FrozenNode::Linear { w, b } => {
                    // Scratch is fine: matmul_add_bias_into overwrites
                    // every element (bias seed, then GEMM accumulate).
                    let mut out = arena.take_scratch(cur.rows(), w.cols());
                    cur.matmul_add_bias_into(w, b, &mut out);
                    arena.recycle(std::mem::replace(&mut cur, out));
                }
                FrozenNode::Activation(a) => {
                    let act = *a;
                    cur.map_inplace(|x| act.apply(x));
                }
            }
        }
        cur
    }
}

/// A forward-only view over a GRU cell's weights: the nine parameter
/// tensors of [`crate::Gru`], borrowed, with an allocation-free `step`.
/// Built via [`crate::Gru::freeze`], or field-by-field by the
/// packed-weight path.
pub struct FrozenGru<'a> {
    /// Update-gate input weights, `in × hidden`.
    pub wz: &'a Tensor,
    /// Update-gate recurrent weights, `hidden × hidden`.
    pub uz: &'a Tensor,
    /// Update-gate bias, `1 × hidden`.
    pub bz: &'a Tensor,
    /// Reset-gate input weights.
    pub wr: &'a Tensor,
    /// Reset-gate recurrent weights.
    pub ur: &'a Tensor,
    /// Reset-gate bias.
    pub br: &'a Tensor,
    /// Candidate input weights.
    pub wh: &'a Tensor,
    /// Candidate recurrent weights.
    pub uh: &'a Tensor,
    /// Candidate bias.
    pub bh: &'a Tensor,
}

impl FrozenGru<'_> {
    /// Hidden-state width.
    pub fn hidden_dim(&self) -> usize {
        self.uz.rows()
    }

    /// One forward step: returns `h_t` with no cache and no grad tape.
    /// Replays [`crate::Gru::step`]'s arithmetic exactly (same fused
    /// GEMM chains, same gate expressions), so outputs are bitwise-equal
    /// to the training path. The returned tensor borrows pool storage.
    pub fn step(&self, x: &Tensor, h_prev: &Tensor, arena: &mut Arena) -> Tensor {
        let sigmoid = |v: f32| 1.0 / (1.0 + (-v).exp());
        // All five buffers here are overwrite-style (bias-seeded GEMMs,
        // hadamard_into, or a full element-wise store), so scratch
        // storage — no memset — produces the same bytes as zeroed.
        let mut z = arena.take_scratch(x.rows(), self.wz.cols());
        x.matmul_add_bias_into(self.wz, self.bz, &mut z);
        h_prev.matmul_acc(self.uz, &mut z);
        z.map_inplace(sigmoid);

        let mut r = arena.take_scratch(x.rows(), self.wr.cols());
        x.matmul_add_bias_into(self.wr, self.br, &mut r);
        h_prev.matmul_acc(self.ur, &mut r);
        r.map_inplace(sigmoid);

        let mut rh = arena.take_scratch(h_prev.rows(), h_prev.cols());
        r.hadamard_into(h_prev, &mut rh);
        let mut hhat = arena.take_scratch(x.rows(), self.wh.cols());
        x.matmul_add_bias_into(self.wh, self.bh, &mut hhat);
        rh.matmul_acc(self.uh, &mut hhat);
        hhat.map_inplace(f32::tanh);

        // h = (1-z)⊙h_prev + z⊙ĥ — every element written below.
        let mut h = arena.take_scratch(h_prev.rows(), h_prev.cols());
        for i in 0..h.len() {
            let zv = z.data()[i];
            h.data_mut()[i] = (1.0 - zv) * h_prev.data()[i] + zv * hhat.data()[i];
        }
        arena.recycle(z);
        arena.recycle(r);
        arena.recycle(rh);
        arena.recycle(hhat);
        h
    }
}

/// bf16-packed weight storage: each `f32` is rounded to the nearest
/// bfloat16 (round-to-nearest-even on the truncated mantissa) and stored
/// as its high 16 bits — half the memory of the source tensor.
///
/// Dequantization restores an exact `f32` per element (bf16 values are a
/// subset of f32), so the *storage* is lossless after the initial
/// rounding; the rounding itself costs ~3 decimal digits of mantissa.
/// Forward passes through packed weights therefore track the
/// full-precision reference within a relative tolerance of about `1e-2`
/// on trained-network outputs (pinned by the `infer-f32` equivalence
/// test) — they are **not** bitwise-equal.
#[cfg(feature = "infer-f32")]
pub struct PackedTensor {
    rows: usize,
    cols: usize,
    bits: Vec<u16>,
}

#[cfg(feature = "infer-f32")]
impl PackedTensor {
    /// Packs a tensor, rounding each element to bfloat16.
    pub fn pack(t: &Tensor) -> Self {
        let bits = t
            .data()
            .iter()
            .map(|v| {
                let b = v.to_bits();
                // Round-to-nearest-even on the low 16 bits.
                let rounded = b.wrapping_add(0x7FFF + ((b >> 16) & 1));
                (rounded >> 16) as u16
            })
            .collect();
        PackedTensor {
            rows: t.rows(),
            cols: t.cols(),
            bits,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Dequantizes into an arena tensor (recycle it after the GEMMs that
    /// consume it).
    pub fn unpack_into(&self, arena: &mut Arena) -> Tensor {
        let mut out = arena.take_zeroed(self.rows, self.cols);
        for (o, &b) in out.data_mut().iter_mut().zip(&self.bits) {
            *o = f32::from_bits((b as u32) << 16);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Layer;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn arena_reuses_after_warmup() {
        let mut a = Arena::new();
        let t1 = a.take_zeroed(4, 8);
        let t2 = a.take_zeroed(2, 2);
        assert_eq!(a.allocs(), 2);
        a.recycle(t1);
        a.recycle(t2);
        let t3 = a.take_zeroed(4, 8);
        let t4 = a.take_zeroed(2, 2);
        assert_eq!(a.allocs(), 2, "warm takes must hit the pool");
        assert_eq!(a.reuses(), 2);
        assert!(t3.data().iter().all(|&v| v == 0.0), "recycled buffers are re-zeroed");
        drop(t4);
    }

    #[test]
    fn arena_best_fit_prefers_the_smallest_buffer() {
        let mut a = Arena::new();
        let big = a.take_zeroed(10, 10);
        let small = a.take_zeroed(2, 2);
        a.recycle(big);
        a.recycle(small);
        let t = a.take_zeroed(2, 2);
        assert_eq!(t.len(), 4);
        // The 100-element buffer must still be pooled.
        assert_eq!(a.pooled(), 1);
        assert!(a.pooled_bytes() >= 400);
    }

    #[test]
    fn frozen_sequential_matches_training_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Sequential::mlp(5, &[7, 6], 3, Activation::Relu, &mut rng);
        let x = Tensor::randn(4, 5, &mut rng);
        let reference = net.forward(&x);
        let frozen = FrozenSequential::of(&net).expect("linear-only net");
        let mut arena = Arena::new();
        let fast = frozen.forward(&x, &mut arena);
        assert_eq!(reference.data(), fast.data(), "frozen forward must be bitwise-equal");
        arena.recycle(fast);
    }

    #[test]
    fn frozen_sequential_rejects_conv() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut net = Sequential::new();
        net.push_conv(crate::conv::Conv2d::new(1, 1, 3, 4, 4, 0, &mut rng));
        assert!(FrozenSequential::of(&net).is_err());
    }

    #[test]
    fn frozen_gru_matches_training_step_bitwise() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut gru = crate::Gru::new(3, 5, &mut rng);
        let frozen = gru.freeze();
        let mut arena = Arena::new();
        let x = Tensor::randn(2, 3, &mut rng);
        let h0 = Tensor::zeros(2, 5);
        let h_fast = frozen.step(&x, &h0, &mut arena);
        let h_ref = gru.step(&x, &h0);
        assert_eq!(h_ref.data(), h_fast.data(), "frozen GRU step must be bitwise-equal");
    }

    #[cfg(feature = "infer-f32")]
    #[test]
    fn packed_round_trip_is_close_and_half_size() {
        let mut rng = StdRng::seed_from_u64(14);
        let t = Tensor::randn(6, 9, &mut rng);
        let p = PackedTensor::pack(&t);
        let mut arena = Arena::new();
        let u = p.unpack_into(&mut arena);
        for (a, b) in t.data().iter().zip(u.data()) {
            assert!((a - b).abs() <= a.abs() * 0.01 + 1e-6, "bf16 round {a} -> {b}");
        }
        assert_eq!(p.bits.len() * 2, t.len() * 4 / 2, "half the storage");
    }
}
