//! Differentially-private SGD (Abadi et al., CCS 2016).
//!
//! DP-SGD makes each gradient step differentially private by (1) clipping
//! every *per-example* gradient to L2 norm at most `C`, bounding any one
//! record's influence, and (2) adding Gaussian noise `N(0, σ²C²I)` to the
//! summed gradient. The privacy cost of a run is accounted by the
//! `privacy` crate's RDP accountant from `(σ, sampling rate, steps)`.
//!
//! The paper's Insight 4 uses DP-SGD only for *fine-tuning* a model
//! pre-trained on public data, cutting the number of noisy steps needed —
//! this module is agnostic to that and simply makes steps private.

use crate::Parameterized;
use rand::prelude::*;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// DP-SGD hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpSgdConfig {
    /// Per-example gradient clipping norm `C`.
    pub clip_norm: f32,
    /// Noise multiplier `σ`: noise stddev is `σ·C` per coordinate (on the
    /// gradient *sum*, before averaging).
    pub noise_multiplier: f32,
}

impl Default for DpSgdConfig {
    fn default() -> Self {
        DpSgdConfig {
            clip_norm: 1.0,
            noise_multiplier: 1.1,
        }
    }
}

/// Stateful DP-SGD gradient sanitizer.
pub struct DpSgdTrainer {
    cfg: DpSgdConfig,
    rng: StdRng,
    steps: u64,
}

impl DpSgdTrainer {
    /// Builds a trainer with its own noise RNG.
    pub fn new(cfg: DpSgdConfig, seed: u64) -> Self {
        DpSgdTrainer {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            steps: 0,
        }
    }

    /// Number of noisy gradient steps sanitized so far (feed this to the
    /// privacy accountant).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The configuration in use.
    pub fn config(&self) -> DpSgdConfig {
        self.cfg
    }

    /// Computes a sanitized (clipped, noised, averaged) gradient over
    /// `batch` and loads it into the model's gradient buffers, ready for an
    /// ordinary optimizer step.
    ///
    /// `per_example(model, i)` must run forward + backward for example `i`
    /// alone, accumulating its gradient into the (zeroed) model buffers.
    ///
    /// The per-example structure is a privacy requirement, not a
    /// performance choice: clipping must see each example's gradient in
    /// isolation. The tensor kernels may tile or parallelize *within* one
    /// example's forward/backward, but examples are never batched here —
    /// `tests/dpsgd_golden.rs` pins the exact sanitized values.
    pub fn sanitize_batch<M, F>(&mut self, model: &mut M, batch: &[usize], mut per_example: F)
    where
        M: Parameterized,
        F: FnMut(&mut M, usize),
    {
        assert!(!batch.is_empty(), "DP-SGD batch must be non-empty");
        let _span = telemetry::span!("dpsgd/sanitize_batch[{}]", batch.len());
        let _timer = telemetry::metrics::scoped_timer_us("dpsgd.sanitize.us");
        let grad_norms =
            telemetry::metrics::histogram("dpsgd.grad_norm", &telemetry::metrics::NORM_EDGES);
        let dim = model.num_parameters();
        let mut sum = vec![0.0f32; dim];
        for &i in batch {
            model.zero_grad();
            per_example(model, i);
            let mut g = model.flat_gradients();
            let norm = clip_l2(&mut g, self.cfg.clip_norm);
            // lint: allow(dp-taint-flow) pre-noise clip-rate histogram is a deliberate, documented side channel outside the DP release path; see OPERATIONS.md lint triage
            grad_norms.record(norm as f64);
            for (s, gi) in sum.iter_mut().zip(&g) {
                *s += gi;
            }
        }
        // Gaussian noise on the sum, then average.
        let noise_std = self.cfg.noise_multiplier * self.cfg.clip_norm;
        if noise_std > 0.0 {
            let normal = Normal::new(0.0, noise_std as f64).unwrap(); // lint: allow(panic-in-lib) noise_std > 0 checked on the previous line (lint: allow(panic-in-lib) noise_std > 0 checked on the previous line)
            for s in sum.iter_mut() {
                *s += normal.sample(&mut self.rng) as f32;
            }
        }
        let inv = 1.0 / batch.len() as f32;
        for s in sum.iter_mut() {
            *s *= inv;
        }
        crate::sanitize::check_finite("dpsgd::sanitize_batch", &sum);
        model.set_flat_gradients(&sum);
        self.steps += 1;
        telemetry::metrics::counter("dpsgd.steps").inc();
    }
}

/// Clips a flat gradient vector to L2 norm at most `c` in place and
/// returns the pre-clip norm (telemetry records it as the per-example
/// grad-norm distribution).
pub fn clip_l2(g: &mut [f32], c: f32) -> f32 {
    let norm: f32 = g.iter().map(|&x| x * x).sum::<f32>().sqrt();
    if norm > c && norm > 0.0 {
        let scale = c / norm;
        for x in g.iter_mut() {
            *x *= scale;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Layer, Sequential};
    use crate::loss::mse;
    use crate::optim::{Optimizer, Sgd};
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;

    #[test]
    fn clip_l2_caps_norm() {
        let mut g = vec![3.0, 4.0];
        clip_l2(&mut g, 1.0);
        let n: f32 = g.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-6);
        assert!((g[0] / g[1] - 0.75).abs() < 1e-6, "direction preserved");
    }

    #[test]
    fn clip_l2_leaves_small_vectors() {
        let mut g = vec![0.1, 0.1];
        let orig = g.clone();
        clip_l2(&mut g, 1.0);
        assert_eq!(g, orig);
    }

    fn tiny_problem() -> (Sequential, Tensor, Tensor) {
        let mut rng = StdRng::seed_from_u64(1);
        let net = Sequential::mlp(1, &[4], 1, Activation::Tanh, &mut rng);
        let x = Tensor::from_vec(8, 1, (0..8).map(|i| i as f32 / 8.0).collect());
        let y = x.map(|v| 0.5 * v);
        (net, x, y)
    }

    #[test]
    fn per_example_gradients_bounded_by_clip_norm() {
        let (mut net, x, y) = tiny_problem();
        // Scale inputs up so raw per-example grads exceed the clip norm.
        let big_x = x.map(|v| v * 100.0);
        let cfg = DpSgdConfig {
            clip_norm: 0.01,
            noise_multiplier: 0.0, // isolate clipping
        };
        let mut trainer = DpSgdTrainer::new(cfg, 7);
        let batch: Vec<usize> = (0..8).collect();
        trainer.sanitize_batch(&mut net, &batch, |m, i| {
            let xi = big_x.select_rows(&[i]);
            let yi = y.select_rows(&[i]);
            let pred = m.forward(&xi);
            let (_, grad) = mse(&pred, &yi);
            let _ = m.backward(&grad);
        });
        // The averaged sum of 8 clipped grads has norm ≤ clip_norm.
        let norm: f32 = net
            .flat_gradients()
            .iter()
            .map(|x| x * x)
            .sum::<f32>()
            .sqrt();
        assert!(norm <= cfg.clip_norm + 1e-6, "norm {norm}");
    }

    #[test]
    fn noise_is_added_when_sigma_positive() {
        let (mut net, x, y) = tiny_problem();
        let run = |sigma: f32, seed: u64, net: &mut Sequential, x: &Tensor, y: &Tensor| {
            let mut trainer = DpSgdTrainer::new(
                DpSgdConfig {
                    clip_norm: 1.0,
                    noise_multiplier: sigma,
                },
                seed,
            );
            trainer.sanitize_batch(net, &[0, 1, 2, 3], |m, i| {
                let xi = x.select_rows(&[i]);
                let yi = y.select_rows(&[i]);
                let pred = m.forward(&xi);
                let (_, grad) = mse(&pred, &yi);
                let _ = m.backward(&grad);
            });
            net.flat_gradients()
        };
        let clean = run(0.0, 1, &mut net.clone(), &x, &y);
        let noisy1 = run(1.0, 1, &mut net.clone(), &x, &y);
        let noisy2 = run(1.0, 2, &mut net, &x, &y);
        assert_ne!(clean, noisy1, "noise must perturb gradients");
        assert_ne!(noisy1, noisy2, "different seeds, different noise");
    }

    #[test]
    fn dp_training_still_learns_without_noise() {
        // σ=0 DP-SGD is just per-example clipping; it must still converge.
        let (mut net, x, y) = tiny_problem();
        let mut trainer = DpSgdTrainer::new(
            DpSgdConfig {
                clip_norm: 1.0,
                noise_multiplier: 0.0,
            },
            3,
        );
        let mut opt = Sgd::new(0.1);
        let batch: Vec<usize> = (0..8).collect();
        let loss_at = |net: &mut Sequential| {
            let pred = net.forward(&x);
            mse(&pred, &y).0
        };
        let before = loss_at(&mut net);
        for _ in 0..200 {
            trainer.sanitize_batch(&mut net, &batch, |m, i| {
                let xi = x.select_rows(&[i]);
                let yi = y.select_rows(&[i]);
                let pred = m.forward(&xi);
                let (_, grad) = mse(&pred, &yi);
                let _ = m.backward(&grad);
            });
            opt.step(&mut net);
        }
        let after = loss_at(&mut net);
        assert!(after < before * 0.2, "before {before}, after {after}");
        assert_eq!(trainer.steps(), 200);
    }
}
