//! Runtime tensor sanitizer (feature `sanitize`).
//!
//! When the `sanitize` feature is enabled, the tensor kernels and layers
//! verify their outputs as they compute: every GEMM exit is scanned for
//! NaN/Inf, fused-accumulate shapes are cross-checked, and the global
//! gradient norm is tested against an explosion threshold at the clipping
//! point. A trip is *fatal by design* — the faulty op panics immediately
//! with a layer-attributed message instead of letting a NaN silently
//! poison thousands of downstream training steps (the classic GAN
//! failure mode, visible only as a flat-lined loss hours later).
//!
//! Attribution comes from a thread-local *scope stack*: [`Sequential`]
//! pushes `seq[i]:<kind>` around each node, the GRU pushes its step
//! markers, so a trip inside the third layer of the generator reads
//! `seq[2]:Linear` rather than "somewhere in a matmul". Before the panic,
//! the incident is handed to an optional process-global hook
//! (`set_hook`, compiled in both feature states) — the pipeline uses it
//! to emit a `SanitizerTripped`
//! event into the orchestrator's JSONL stream, so the diagnostic survives
//! the worker's panic-recovery machinery.
//!
//! With the feature disabled (the default), every entry point compiles to
//! an empty inline function and the scope closures are never evaluated:
//! the hot path carries no cost.
//!
//! [`Sequential`]: crate::layers::Sequential

#[cfg(feature = "sanitize")]
mod imp {
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::{Arc, Mutex};

    /// What kind of invariant a trip violated.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum IncidentKind {
        /// A NaN or ±Inf escaped an op.
        NonFinite,
        /// A fused-accumulate output had the wrong shape.
        ShapeMismatch,
        /// The global gradient norm exceeded the explosion threshold.
        GradExplosion,
    }

    impl IncidentKind {
        /// Stable short name (used in event streams and panic messages).
        pub fn name(self) -> &'static str {
            match self {
                IncidentKind::NonFinite => "non-finite",
                IncidentKind::ShapeMismatch => "shape-mismatch",
                IncidentKind::GradExplosion => "grad-explosion",
            }
        }
    }

    /// One sanitizer trip, as handed to the [`set_hook`] observer just
    /// before the fatal panic.
    #[derive(Debug, Clone)]
    pub struct Incident {
        /// The scope stack at the trip, joined with `/` (layer attribution).
        pub scope: String,
        /// The op that tripped (e.g. `matmul_add_bias`, `clip_global_norm`).
        pub op: String,
        /// Violation category.
        pub kind: IncidentKind,
        /// Human-readable specifics (index, value, shapes, norms).
        pub detail: String,
    }

    thread_local! {
        static SCOPES: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
        /// The formatted message of this thread's most recent trip, left
        /// behind for a `catch_unwind` boundary to claim (see
        /// [`take_last_incident`]).
        static LAST: RefCell<Option<String>> = const { RefCell::new(None) };
    }

    /// The installed incident observer, cloned out of the lock before
    /// being called so a hook can itself take the lock.
    type Hook = Arc<dyn Fn(&Incident) + Send + Sync>;

    static HOOK: Mutex<Option<Hook>> = Mutex::new(None);

    /// Gradient-norm explosion threshold, stored as f32 bits. The default
    /// (1e6) is far above any healthy WGAN gradient but still finite, so
    /// a diverging run trips before the norm overflows to Inf.
    static GRAD_LIMIT_BITS: AtomicU32 = AtomicU32::new(1.0e6f32.to_bits());

    /// Installs the process-global incident observer, replacing any
    /// previous one. The hook runs on the tripping thread *before* the
    /// panic, so it must not itself panic or block on the tripping
    /// thread's locks.
    pub fn set_hook(hook: impl Fn(&Incident) + Send + Sync + 'static) {
        // lint: allow(panic-in-lib) poisoned hook lock is unrecoverable
        *HOOK.lock().expect("sanitizer hook lock") = Some(Arc::new(hook));
    }

    /// Removes the incident observer installed by [`set_hook`].
    pub fn clear_hook() {
        // lint: allow(panic-in-lib) poisoned hook lock is unrecoverable
        *HOOK.lock().expect("sanitizer hook lock") = None;
    }

    /// Sets the gradient-norm explosion threshold (process-global).
    pub fn set_grad_norm_limit(limit: f32) {
        GRAD_LIMIT_BITS.store(limit.to_bits(), Ordering::Relaxed);
    }

    /// The current gradient-norm explosion threshold.
    pub fn grad_norm_limit() -> f32 {
        f32::from_bits(GRAD_LIMIT_BITS.load(Ordering::Relaxed))
    }

    /// RAII guard popping one scope-stack entry on drop.
    pub struct ScopeGuard(());

    impl Drop for ScopeGuard {
        fn drop(&mut self) {
            SCOPES.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }

    /// Pushes a named scope (layer attribution) for the guard's lifetime.
    /// The name closure is only evaluated when the feature is on, so call
    /// sites can format freely without taxing release builds.
    pub fn scope_with(name: impl FnOnce() -> String) -> ScopeGuard {
        SCOPES.with(|s| s.borrow_mut().push(name()));
        ScopeGuard(())
    }

    /// The current scope path (`a/b/c`), `<unscoped>` outside any scope.
    pub fn current_scope() -> String {
        let joined = SCOPES.with(|s| s.borrow().join("/"));
        if joined.is_empty() {
            "<unscoped>".to_string()
        } else {
            joined
        }
    }

    /// Claims (and clears) the formatted message of this thread's most
    /// recent sanitizer trip. A `catch_unwind` boundary that just caught a
    /// panic calls this to tell "the sanitizer tripped — recoverable
    /// divergence" apart from "some other bug — re-raise": `Some` means
    /// the panic it caught came from a trip on this thread.
    pub fn take_last_incident() -> Option<String> {
        LAST.with(|l| l.borrow_mut().take())
    }

    fn trip(kind: IncidentKind, op: &str, detail: String) -> ! {
        let incident = Incident {
            scope: current_scope(),
            op: op.to_string(),
            kind,
            detail,
        };
        // lint: allow(panic-in-lib) poisoned hook lock is unrecoverable
        let hook = HOOK.lock().expect("sanitizer hook lock").clone();
        if let Some(hook) = hook {
            hook(&incident);
        }
        let message = format!(
            "sanitize[{}]: {} in scope `{}` during `{}`",
            incident.kind.name(),
            incident.detail,
            incident.scope,
            incident.op
        );
        LAST.with(|l| *l.borrow_mut() = Some(message.clone()));
        // lint: allow(panic-in-lib) sanitizer trips are deliberately fatal: fail at the faulty op, not thousands of steps later
        panic!("{message}");
    }

    /// Trips if any element of `data` is NaN or ±Inf.
    pub fn check_finite(op: &str, data: &[f32]) {
        if let Some((i, &v)) = data.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            trip(
                IncidentKind::NonFinite,
                op,
                format!("element {i} of {} is {v}", data.len()),
            );
        }
    }

    /// Trips if a fused-accumulate output shape disagrees with the
    /// operands (reported with attribution before the plain assert fires).
    pub fn check_shape(op: &str, expected: (usize, usize), got: (usize, usize)) {
        if expected != got {
            trip(
                IncidentKind::ShapeMismatch,
                op,
                format!(
                    "expected {}x{}, got {}x{}",
                    expected.0, expected.1, got.0, got.1
                ),
            );
        }
    }

    /// Trips on a non-finite or exploding global gradient norm.
    pub fn check_grad_norm(op: &str, norm: f32) {
        if !norm.is_finite() {
            trip(
                IncidentKind::NonFinite,
                op,
                format!("global gradient norm is {norm}"),
            );
        }
        let limit = grad_norm_limit();
        if norm > limit {
            trip(
                IncidentKind::GradExplosion,
                op,
                format!("global gradient norm {norm} exceeds limit {limit}"),
            );
        }
    }
}

#[cfg(feature = "sanitize")]
pub use imp::*;

#[cfg(not(feature = "sanitize"))]
mod noop {
    /// No-op stand-in; the real guard only exists under `sanitize`.
    pub struct ScopeGuard(());

    /// No-op: the name closure is never evaluated.
    #[inline(always)]
    pub fn scope_with(_name: impl FnOnce() -> String) -> ScopeGuard {
        ScopeGuard(())
    }

    /// No-op.
    #[inline(always)]
    pub fn check_finite(_op: &str, _data: &[f32]) {}

    /// No-op.
    #[inline(always)]
    pub fn check_shape(_op: &str, _expected: (usize, usize), _got: (usize, usize)) {}

    /// No-op.
    #[inline(always)]
    pub fn check_grad_norm(_op: &str, _norm: f32) {}

    /// Always `None`: with the sanitizer compiled out, no panic is ever a
    /// sanitizer trip, so callers fall through to their re-raise path.
    #[inline(always)]
    pub fn take_last_incident() -> Option<String> {
        None
    }
}

#[cfg(not(feature = "sanitize"))]
pub use noop::*;

#[cfg(all(test, feature = "sanitize"))]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn panic_message(r: std::thread::Result<()>) -> String {
        let err = r.expect_err("should have tripped");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn finite_data_passes() {
        check_finite("test-op", &[0.0, 1.5, -3.0]);
        check_shape("test-op", (2, 3), (2, 3));
        check_grad_norm("test-op", 1.0);
    }

    #[test]
    fn nan_trips_with_scope_attribution() {
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _outer = scope_with(|| "outer".to_string());
            let _inner = scope_with(|| "inner".to_string());
            check_finite("unit-nan", &[1.0, f32::NAN]);
        })));
        assert!(msg.contains("non-finite"), "{msg}");
        assert!(msg.contains("outer/inner"), "{msg}");
        assert!(msg.contains("unit-nan"), "{msg}");
        assert!(msg.contains("element 1"), "{msg}");
    }

    #[test]
    fn scope_stack_unwinds_with_guards() {
        {
            let _g = scope_with(|| "transient".to_string());
            assert_eq!(current_scope(), "transient");
        }
        assert_eq!(current_scope(), "<unscoped>");
    }

    #[test]
    fn shape_mismatch_trips() {
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            check_shape("unit-shape", (2, 3), (3, 2));
        })));
        assert!(msg.contains("shape-mismatch"), "{msg}");
        assert!(msg.contains("expected 2x3, got 3x2"), "{msg}");
    }

    #[test]
    fn trip_leaves_a_claimable_incident_and_ordinary_panics_do_not() {
        assert_eq!(take_last_incident(), None, "clean slate");
        let _ = catch_unwind(AssertUnwindSafe(|| {
            check_finite("claim-op", &[f32::NAN]);
        }));
        let claimed = take_last_incident().expect("trip left an incident behind");
        assert!(claimed.contains("claim-op"), "{claimed}");
        assert_eq!(take_last_incident(), None, "claiming clears it");
        // A non-sanitizer panic must not masquerade as a trip.
        let _ = catch_unwind(|| panic!("unrelated"));
        assert_eq!(take_last_incident(), None);
    }

    #[test]
    fn infinite_norm_trips_as_non_finite() {
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            check_grad_norm("unit-norm", f32::INFINITY);
        })));
        assert!(msg.contains("non-finite"), "{msg}");
    }
}
