//! Property tests for sketch estimators.

use proptest::prelude::*;
use sketch::{CountMin, CountSketch, Sketch, UnivMon};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn countmin_never_underestimates(
        updates in prop::collection::vec((0u64..200, 1u64..50), 1..300),
    ) {
        let mut s = CountMin::new(4, 128);
        let mut exact = std::collections::HashMap::new();
        for &(k, c) in &updates {
            s.update(k, c);
            *exact.entry(k).or_insert(0u64) += c;
        }
        for (&k, &true_count) in &exact {
            prop_assert!(s.estimate(k) >= true_count as f64, "key {}", k);
        }
    }

    #[test]
    fn estimates_are_exact_when_load_is_tiny(
        keys in prop::collection::hash_set(0u64..1_000_000, 1..8),
        count in 1u64..1000,
    ) {
        // Far fewer keys than counters: collisions are overwhelmingly
        // unlikely; all three deterministic sketches are exact.
        let mut cms = CountMin::new(4, 4096);
        let mut cs = CountSketch::new(5, 4096);
        let mut um = UnivMon::new(4, 4096, 4);
        for &k in &keys {
            cms.update(k, count);
            cs.update(k, count);
            um.update(k, count);
        }
        for &k in &keys {
            prop_assert_eq!(cms.estimate(k), count as f64);
            prop_assert_eq!(cs.estimate(k), count as f64);
            prop_assert_eq!(um.estimate(k), count as f64);
        }
    }

    #[test]
    fn countmin_error_bounded_by_stream_mass(
        updates in prop::collection::vec((0u64..100, 1u64..20), 1..200),
        probe in 0u64..100,
    ) {
        let mut s = CountMin::new(4, 256);
        let mut total = 0u64;
        let mut exact = std::collections::HashMap::new();
        for &(k, c) in &updates {
            s.update(k, c);
            total += c;
            *exact.entry(k).or_insert(0u64) += c;
        }
        let true_count = *exact.get(&probe).unwrap_or(&0);
        // Standard CMS guarantee: est ≤ true + total (loose but universal).
        prop_assert!(s.estimate(probe) <= (true_count + total) as f64);
    }
}
